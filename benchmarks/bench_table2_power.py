"""Table II — power and energy: Loihi vs CPU vs GPU, training and testing.

Paper (Table II):

    device     train FPS / W / mJ      test FPS / W / mJ
    i7 8700    422 / 58 / 137          1536 / 58 / 37
    RTX 5000   625 / 48 / 77           2857 / 47 / 16
    Loihi      50 / 0.42 / 8.4         97 / 0.24 / 2.47

Shape criteria: Loihi throughput ~1 order below CPU/GPU; Loihi power ~2
orders below; Loihi energy/image 1-2 orders below; testing cheaper than
training on every platform.  The Loihi rows come from running the actual
network (conv frontend mapped as fixed layers + trainable dense part) on
the chip simulator and feeding the measured spike statistics to the
calibrated energy model; CPU/GPU rows come from the analytic device models.
"""

from repro.analysis import format_table
from repro.baselines import I7_8700, RTX_5000, device_report
from repro.core import loihi_default_config
from repro.models.convert import frontend_matrices
from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network

N_SAMPLES = 15
PAPER = {
    "i7 8700": ((422, 58, 137), (1536, 58, 37)),
    "RTX 5000": ((625, 48, 77), (2857, 47, 16)),
    "Loihi": ((50, 0.42, 8.4), (97, 0.24, 2.47)),
}


def _loihi_reports(frontends):
    frontend, ftr, ytr, _, _ = frontends.get("mnist_like")
    mats, biases = frontend_matrices(frontend)
    layers = list(zip(mats, biases))
    dims = (frontend.n_features, 100, 10)
    reports = {}
    # training: full network with error path
    cfg = loihi_default_config(seed=1)
    model = build_emstdp_network(dims, cfg, frontend_layers=layers)
    trainer = LoihiEMSTDPTrainer(model, neurons_per_core=10)
    images = frontends.get("mnist_like")[0]  # keep cache warm
    raw_train, _ = _raw_images(frontends)
    trainer.train_stream(raw_train[:N_SAMPLES], ytr[:N_SAMPLES])
    reports["train"] = trainer.energy_report(learning=True)
    # testing: inference-only network (backward path not implemented,
    # Section IV-A2), fewer cores and shorter samples
    model_inf = build_emstdp_network(dims, cfg, include_error_path=False,
                                     frontend_layers=layers)
    trainer_inf = LoihiEMSTDPTrainer(model_inf, neurons_per_core=10)
    for x in raw_train[:N_SAMPLES]:
        trainer_inf.infer(x)
    reports["test"] = trainer_inf.energy_report(learning=False)
    return reports


def _raw_images(frontends):
    from repro.data import load_dataset
    train, test = load_dataset("mnist_like", 400, 150, side=16, seed=0)
    return train.flat(), test.flat()


def _run_table(frontends):
    frontend = frontends.get("mnist_like")[0]
    dims_sw = ((256, 1024, 128, 100, 10))  # software simulates all layers
    rows = []
    results = {}
    loihi = _loihi_reports(frontends)
    for device in (I7_8700, RTX_5000):
        tr = device_report(device, dims_sw, 64, training=True)
        te = device_report(device, dims_sw, 64, training=False)
        results[device.name] = (tr, te)
    results["Loihi"] = (loihi["train"], loihi["test"])
    for name, (tr, te) in results.items():
        p_tr, p_te = PAPER[name]
        rows.append([
            name,
            f"{tr.fps:.0f} ({p_tr[0]})", f"{tr.power_w:.3g} ({p_tr[1]})",
            f"{tr.energy_per_sample_mj:.3g} ({p_tr[2]})",
            f"{te.fps:.0f} ({p_te[0]})", f"{te.power_w:.3g} ({p_te[1]})",
            f"{te.energy_per_sample_mj:.3g} ({p_te[2]})",
        ])
    print()
    print(format_table(
        ["device", "train FPS", "train W", "train mJ/img",
         "test FPS", "test W", "test mJ/img"],
        rows, title="Table II — measured (paper)"))
    return results


def bench_table2(benchmark, frontends):
    results = benchmark.pedantic(_run_table, args=(frontends,),
                                 rounds=1, iterations=1)
    loihi_tr, loihi_te = results["Loihi"]
    cpu_tr, cpu_te = results["i7 8700"]
    gpu_tr, gpu_te = results["RTX 5000"]
    # Loihi: orders-of-magnitude power and energy advantage.
    assert loihi_tr.power_w < cpu_tr.power_w / 50
    assert loihi_tr.power_w < gpu_tr.power_w / 50
    assert loihi_tr.energy_per_sample_mj < cpu_tr.energy_per_sample_mj / 10
    assert loihi_te.energy_per_sample_mj < gpu_te.energy_per_sample_mj / 10
    # ...at lower throughput.
    assert loihi_tr.fps < cpu_tr.fps
    # Testing is cheaper than training everywhere.
    for tr, te in results.values():
        assert te.energy_per_sample_mj < tr.energy_per_sample_mj
        assert te.fps > tr.fps
