"""Observability overhead gate: instrumentation must stay under 3%.

Not a paper figure — the engineering benchmark behind ``repro.obs``.  The
observability layer is on by default (sampled kernel profiling, labeled
metrics on the serving path), so its cost is paid by every training run
and every served request.  This benchmark measures that cost directly by
timing the same workload twice:

* **on** — the default configuration: kernel profiling at the default
  sampling stride (time 1 call in 64, count all), metrics registry
  enabled.  No trace sink is bound, matching the default (tracing only
  writes when a run directory or ``REPRO_OBS_TRACE_FILE`` binds one, and
  span boundaries sit far above the per-call hot path anyway);
* **off** — ``kernel_profiler.sample = 0`` (the wrapper collapses to a
  single branch) and ``metrics.enabled = False``.

Two workload classes, because the overhead lands in different places:

* **kernels** — the wrapped hot loops at training shapes (the IF membrane
  step on 64 x 4096 state, Eq. (7) batched ``dW`` at B = 32).  Per-call
  bookkeeping is a dict upsert; at these shapes the array math dominates;
* **serving** — sequential ``predict`` against an in-process
  :class:`InferenceService` (spike backend, cache off, ``max_batch=1`` so
  dispatch is immediate).  Per-request cost is a few counter increments
  and one histogram observation.

Acceptance gate (full run): every workload's overhead is < 3%.
``bench_obs_overhead_smoke`` is the <60s CI variant: fewer repetitions
and a relaxed < 10% gate (shared CI runners jitter more than the
overhead being measured), same workloads.
"""

import time

import numpy as np

from repro import obs
from repro.core import EMSTDPNetwork, full_precision_config, kernels
from repro.serve import InferenceService, ModelRegistry

from _bench_utils import make_blobs, write_bench_json

#: Default profiling stride the "on" configuration pins (decoupled from the
#: ambient ``REPRO_OBS_KERNEL_SAMPLE`` so the bench measures the shipped
#: default, not whatever the environment happens to override).
DEFAULT_SAMPLE = 64


class _obs_config:
    """Pin the observability switches for one timed configuration."""

    def __init__(self, enabled: bool):
        self.enabled = enabled

    def __enter__(self):
        self._sample = obs.kernel_profiler.sample
        self._metrics = obs.metrics.enabled
        obs.kernel_profiler.sample = DEFAULT_SAMPLE if self.enabled else 0
        obs.metrics.enabled = self.enabled
        return self

    def __exit__(self, *exc):
        obs.kernel_profiler.sample = self._sample
        obs.metrics.enabled = self._metrics


def _best_of(fn, repeats, inner):
    fn()  # warm-up (first call may touch lazy caches)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def _kernel_cases(rng):
    """name -> zero-arg callable running one wrapped-kernel call.

    Training shapes on purpose: at tiny shapes Python call dispatch (with
    or without the profiler) dwarfs the array math and the ratio measures
    interpreter noise, not instrumentation.
    """
    shape = (64, 4096)
    v = np.zeros(shape)
    refrac = np.zeros(shape, dtype=np.int64)
    drive = rng.uniform(0.0, 1.0, shape)

    B, n_pre, n_post = 32, 512, 64
    bh_hat = rng.random((B, n_post))
    bh = rng.random((B, n_post))
    bpre = rng.random((B, n_pre))

    return {
        "if_step": lambda: kernels.if_step(v, refrac, drive, 1.0),
        "delta_w_batch": lambda: kernels.delta_w_batch(
            bh_hat, bh, bpre, 0.125),
    }


def _serving_seconds_per_request(n_requests, rounds=3):
    """Best-of-rounds seconds per sequential predict, current obs config."""
    dims = (16, 32, 4)
    net = EMSTDPNetwork(dims, full_precision_config(
        seed=1, dynamics="spike", phase_length=16))
    registry = ModelRegistry()
    registry.register("spike-net", net)
    # Cache off and max_batch=1: every request does real inference and
    # dispatches immediately, so the ratio is not diluted by batcher
    # deadline waits.
    service = InferenceService(registry, max_batch=1, max_wait_ms=5.0,
                               cache_size=0, workers=1)
    xs, _ = make_blobs(dims[0], dims[-1], 64, seed=0)
    try:
        service.predict(xs[0])  # warm-up: lazy batcher + first-call numpy
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            for i in range(n_requests):
                service.predict(xs[i % len(xs)], use_cache=False)
            best = min(best, (time.perf_counter() - t0) / n_requests)
    finally:
        service.shutdown()
    return best


def _run(variant, gate, repeats, inner, n_requests):
    rng = np.random.default_rng(7)
    rows = {}

    for name, fn in _kernel_cases(rng).items():
        with _obs_config(enabled=False):
            t_off = _best_of(fn, repeats, inner)
        with _obs_config(enabled=True):
            obs.kernel_profiler.reset()
            t_on = _best_of(fn, repeats, inner)
        rows[name] = {"kind": "kernel",
                      "off_us": round(t_off * 1e6, 2),
                      "on_us": round(t_on * 1e6, 2),
                      "overhead_pct": round((t_on / t_off - 1.0) * 100, 2)}

    with _obs_config(enabled=False):
        t_off = _serving_seconds_per_request(n_requests)
    with _obs_config(enabled=True):
        t_on = _serving_seconds_per_request(n_requests)
    rows["serve_predict"] = {
        "kind": "serving",
        "off_us": round(t_off * 1e6, 2),
        "on_us": round(t_on * 1e6, 2),
        "overhead_pct": round((t_on / t_off - 1.0) * 100, 2)}

    print()
    for name, row in rows.items():
        print(f"{name:16s} off {row['off_us']:9.1f}us  "
              f"on {row['on_us']:9.1f}us  "
              f"overhead {row['overhead_pct']:+6.2f}%")

    write_bench_json("obs_overhead", {
        "variant": variant,
        "gate_pct": gate * 100,
        "kernel_sample": DEFAULT_SAMPLE,
        "workloads": rows,
    })
    for name, row in rows.items():
        assert row["overhead_pct"] < gate * 100, \
            (f"{name}: observability adds {row['overhead_pct']}% at the "
             f"default sampling stride (gate: < {gate * 100:.0f}%)")


def bench_obs_overhead():
    """Full run: < 3% overhead on every workload at default sampling."""
    _run(variant=None, gate=0.03, repeats=30, inner=20, n_requests=200)


def bench_obs_overhead_smoke():
    """CI smoke variant: same workloads, relaxed gate, <60s."""
    _run(variant="smoke", gate=0.10, repeats=8, inner=10, n_requests=60)
