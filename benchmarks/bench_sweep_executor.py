"""Distributed sweep executor: kill/resume correctness and scaling.

The engineering benchmark behind ``repro.exec``.  Two variants:

* ``bench_sweep_executor_smoke`` — the <60s CI gate.  Launches the tiny
  2x2 ``t_sweep`` (2 seeds per point) on 2 queue workers as a real
  ``python -m repro sweep run`` subprocess, SIGKILLs the whole process
  group mid-run (a crash-stop of planner and workers together), resumes
  with ``--resume`` to completion, and then asserts the executor's
  exactly-once-recording contract: every child run holds exactly one
  ``ok`` record per seed, the resumed parallel metrics are bit-identical
  to a fresh sequential (``workers=1``) run of the same spec, and
  ``sweep pareto`` renders a front over the result.

* ``bench_sweep_executor`` — the full measurement: the same sweep spec
  run with 1 worker vs 4 workers, wall-clock compared.  The scaling gate
  is honest about hardware: on >= 4 CPU cores it asserts **>= 2x speedup
  at 4 workers**; on smaller machines it records the single-core truth
  without asserting a physical impossibility (the committed
  ``BENCH_sweep_executor.json`` carries the machine stamp either way).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments import get_scenario
from repro.experiments.store import RECORDS_NAME, RunStore, read_jsonl
from repro.sweeps import SweepAxis, SweepRunner, SweepSpec, SweepStore
from repro.sweeps.store import SWEEP_SUMMARY_NAME

from _bench_utils import REPO_ROOT, write_bench_json

GATE_WORKERS = 4
GATE_MIN_SPEEDUP = 2.0
GATE_MIN_CORES = 4

#: First-attempt task delay injected into the *subprocess* sweep (never
#: this process), widening the window in which the kill lands mid-task.
KILL_WINDOW_S = 1.0


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    env["REPRO_EXEC_INJECT_DELAY_S"] = str(KILL_WINDOW_S)
    return env


def _sweep_cmd(*args: str, out: Path) -> list:
    return [sys.executable, "-m", "repro", "sweep", *args,
            "--out", str(out)]


def _ok_records(out: Path) -> int:
    return sum(
        1
        for records in out.glob(f"*/*/{RECORDS_NAME}")
        for rec in read_jsonl(records)
        if rec.get("status") == "ok")


def _point_metrics(store: SweepStore, sweep) -> dict:
    """point_id -> metrics dict, complete points only."""
    return {pid: entry.get("metrics", {})
            for pid, entry in store.summaries(sweep).items()
            if entry.get("status") == "complete"}


def _assert_exactly_once(out: Path, sweep) -> int:
    """Every child run: exactly one ok record per seed; returns seeds."""
    run_store = RunStore(out)
    checked = 0
    for point in sweep.points():
        run = run_store.find(point["run_id"])
        per_seed = {}
        for rec in read_jsonl(run.path / RECORDS_NAME):
            per_seed.setdefault(rec["seed"], []).append(rec["status"])
        assert sorted(per_seed) == sorted(run.manifest["seeds"]), \
            f"point {point['point_id']}: seeds {sorted(per_seed)}"
        for seed, statuses in per_seed.items():
            assert statuses.count("ok") == 1, \
                f"point {point['point_id']} seed {seed}: {statuses}"
            checked += 1
    return checked


def bench_sweep_executor_smoke(tmp_path, benchmark):
    """CI gate: kill a 2-worker sweep mid-run, resume, verify, pareto."""

    def _run() -> dict:
        out = tmp_path / "killed"
        t0 = time.perf_counter()
        proc = subprocess.Popen(
            _sweep_cmd("run", "--tiny", "--seeds", "2", "--workers", "2",
                       out=out),
            env=_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True, start_new_session=True)
        # Kill once real work has landed but the sweep cannot be done:
        # at least one seed record, with the injected delay still pacing
        # the remaining tasks.
        killed = False
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline and proc.poll() is None:
            if _ok_records(out) >= 1:
                os.killpg(proc.pid, signal.SIGKILL)
                killed = True
                break
            time.sleep(0.05)
        if not killed:
            output = proc.stdout.read()
            proc.wait(timeout=60.0)
            raise AssertionError(
                f"sweep finished (or died) before the kill "
                f"landed:\n{output}")
        proc.wait(timeout=60.0)

        store = SweepStore(out)
        (sweep,) = store.list_sweeps()
        assert sweep.status != "complete"
        t_resume0 = time.perf_counter()
        resumed = subprocess.run(
            _sweep_cmd("run", "--resume", sweep.sweep_id, "--workers",
                       "2", out=out),
            env=_env(), capture_output=True, text=True, timeout=240.0)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        resume_s = time.perf_counter() - t_resume0

        sweep = store.find(sweep.sweep_id)
        assert sweep.status == "complete"
        seeds_checked = _assert_exactly_once(out, sweep)

        # Bit-identical to sequential: a fresh workers=1 run of the very
        # spec recorded in sweep.json produces the same per-point
        # metrics (wall-clock fields aside).
        spec = SweepSpec.from_dict(sweep.manifest["spec"])
        seq_out = tmp_path / "sequential"
        seq = SweepRunner(out_root=seq_out, max_workers=1).run(spec)
        assert seq.status == "complete"
        seq_sweep = SweepStore(seq_out).find(seq.sweep_id)
        parallel_metrics = _point_metrics(store, sweep)
        sequential_metrics = _point_metrics(SweepStore(seq_out), seq_sweep)
        assert parallel_metrics == sequential_metrics

        pareto = subprocess.run(
            _sweep_cmd("pareto", sweep.sweep_id, out=out),
            env=_env(), capture_output=True, text=True, timeout=60.0)
        assert pareto.returncode == 0, pareto.stdout + pareto.stderr
        assert "pareto front" in pareto.stdout

        return {
            "sweep_id": sweep.sweep_id,
            "points": len(sweep.points()),
            "seeds_checked": seeds_checked,
            "resume_s": round(resume_s, 2),
            "total_s": round(time.perf_counter() - t0, 2),
            "sequential_match": True,
            "pareto_head": pareto.stdout.splitlines()[0],
        }

    stats = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(f"kill/resume smoke: {stats['points']} points, "
          f"{stats['seeds_checked']} seed records exactly-once, "
          f"resume {stats['resume_s']}s, total {stats['total_s']}s, "
          f"parallel == sequential metrics")
    write_bench_json("sweep_executor", {
        "variant": "smoke",
        "workers": 2,
        "cpu_cores": os.cpu_count() or 1,
        "kill": "SIGKILL whole process group mid-sweep",
        **stats,
    })
    assert stats["sequential_match"]


def bench_sweep_executor(tmp_path, benchmark):
    """Full measurement: 1 vs 4 workers, gated >= 2x on >= 4 cores."""
    # Sized so each seed is ~2-3s of real training: worker spawn
    # (~1-1.5s of interpreter + numpy import, paid concurrently) must be
    # small against the compute or the scaling gate measures process
    # startup instead of executor throughput.
    base = get_scenario("offline_accuracy").build_spec(tiny=True).replace(
        backends=("backprop",), n_train=4000, n_test=800,
        seeds=(0, 1, 2, 3))
    spec = SweepSpec(name="executor_scaling", base=base,
                     grid=(SweepAxis("epochs", (2, 4)),),
                     objective="backprop.test_acc")

    def _timed(workers: int):
        out = tmp_path / f"w{workers}"
        t0 = time.perf_counter()
        result = SweepRunner(out_root=out, max_workers=workers).run(spec)
        elapsed = time.perf_counter() - t0
        assert result.status == "complete"
        sweep = SweepStore(out).find(result.sweep_id)
        return elapsed, _point_metrics(SweepStore(out), sweep)

    def _run():
        cores = os.cpu_count() or 1
        t_seq, seq_metrics = _timed(1)
        t_par, par_metrics = _timed(GATE_WORKERS)
        assert par_metrics == seq_metrics  # worker count never changes math
        speedup = t_seq / t_par if t_par else 0.0
        return cores, t_seq, t_par, speedup

    cores, t_seq, t_par, speedup = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    gate_enforced = cores >= GATE_MIN_CORES
    print()
    print(f"sweep executor scaling — 2 points x 4 seeds, "
          f"{cores} CPU core(s)")
    print(f"workers=1 {t_seq:6.1f}s   workers={GATE_WORKERS} "
          f"{t_par:6.1f}s   speedup {speedup:.2f}x — gate "
          f"{'enforced' if gate_enforced else 'recorded only'}")
    write_bench_json("sweep_executor", {
        "variant": "full",
        "points": 2,
        "seeds_per_point": 4,
        "workers": GATE_WORKERS,
        "cpu_cores": cores,
        "sequential_s": round(t_seq, 2),
        "parallel_s": round(t_par, 2),
        "speedup": round(speedup, 2),
        "per_core_efficiency": round(
            speedup / min(GATE_WORKERS, cores), 2),
        "gate": (f">={GATE_MIN_SPEEDUP}x enforced" if gate_enforced
                 else f"recorded only ({cores} cores < {GATE_MIN_CORES})"),
        "metrics_identical_across_worker_counts": True,
    })
    if gate_enforced:
        assert speedup >= GATE_MIN_SPEEDUP, \
            f"executor speedup {speedup:.2f}x < {GATE_MIN_SPEEDUP}x " \
            f"at {GATE_WORKERS} workers"
