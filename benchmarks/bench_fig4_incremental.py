"""Fig. 4 — incremental online learning on MNIST(-like).

Paper: pretrain on 4 random classes, then three incremental iterations of
2 new classes each, spread over 5 rounds per iteration with the two-step
(learn-new / retrain-mixed) schedule.  Accuracy over observed classes dips
sharply at every class introduction (catastrophic forgetting under the
approximate cross-distillation of step 1) and recovers over the following
rounds; the step-2 curve sits above the step-1 curve.
"""

import numpy as np

from repro.analysis import ascii_plot
from repro.core import EMSTDPNetwork, full_precision_config
from repro.incremental import (IOLConfig, IncrementalOnlineLearner,
                               forgetting_dip, recovery)


def _run_iol(frontends):
    frontend, ftr, ytr, fte, yte = frontends.get("mnist_like", n_train=1000,
                                                 n_test=400)
    from repro.data.synth import Dataset
    train = Dataset(ftr, ytr, name="features")
    test = Dataset(fte, yte, name="features")
    net = EMSTDPNetwork((frontend.n_features, 100, 10),
                        full_precision_config(seed=3))
    # Baseline: same network trained on the full dataset (the dashed line).
    baseline_net = EMSTDPNetwork((frontend.n_features, 100, 10),
                                 full_precision_config(seed=3))
    for _ in range(2):
        baseline_net.train_stream(ftr, ytr)
    baseline = baseline_net.evaluate(fte, yte)

    learner = IncrementalOnlineLearner(
        net, train, test, IOLConfig(seed=5, chunk_size=50))
    result = learner.run(baseline_accuracy=baseline)
    curves = result.curves()
    print()
    print("Fig. 4 — incremental online learning (accuracy on observed "
          "classes)")
    print(f"baseline (full-dataset training): {baseline:.3f}")
    print(f"class introductions at rounds: {curves['introduction_rounds']}")
    print("round  after_step1  after_step2")
    for r, a1, a2 in zip(curves["rounds"], curves["after_step1"],
                         curves["after_step2"]):
        marker = " <- new classes" if r in curves["introduction_rounds"] else ""
        print(f"{r:5d}  {a1:.3f}        {a2:.3f}{marker}")
    print(ascii_plot(curves["rounds"], curves["after_step2"], label="after step 2"))
    return result


def bench_fig4(benchmark, frontends):
    result = benchmark.pedantic(_run_iol, args=(frontends,),
                                rounds=1, iterations=1)
    curves = result.curves()
    a1 = np.array(curves["after_step1"])
    a2 = np.array(curves["after_step2"])
    # Step-2 retraining recovers what step-1 forgets (on average).
    assert a2.mean() >= a1.mean()
    # Visible dip at introductions, recovery afterwards.
    assert forgetting_dip(result) > 0.02, "introductions should cost accuracy"
    assert recovery(result) > 0.0, "rounds should recover accuracy"
    # End state approaches the full-dataset baseline.
    assert a2[-1] >= result.baseline_accuracy - 0.25
