"""Ablations of the design choices DESIGN.md calls out.

Not paper tables — engineering evidence for the four adaptation techniques
of Section I and the knobs around them:

* ``bench_ablation_feedback``   — FA vs DFA resource cost (synapses,
  error neurons, cores): the DFA savings argument of Section III-A.
* ``bench_ablation_gating``     — h'-gating of hidden error channels
  on/off: gating must not hurt accuracy while silencing dead neurons.
* ``bench_ablation_precision``  — weight precision sweep 4..32 bits: the
  quantization gap of Table I should shrink monotonically-ish with bits.
* ``bench_ablation_phase_length`` — T in {16, 32, 64}: longer phases give
  finer rate resolution but cost linearly more time ("Reducing the duration
  of each phase will improve the throughput but also sacrifice the quality
  of learning", Section IV-A2).
* ``bench_ablation_input_encoding`` — host I/O events: bias programming vs
  streaming rate-coded spikes (Section III-D's motivation).
"""


from repro.analysis import format_table
from repro.core import (EMSTDPConfig, EMSTDPNetwork, bias_io_events,
                        feedback_neuron_count, feedback_synapse_count,
                        full_precision_config, spike_train_io_events)
from repro.data import load_dataset


def _task(n_train=400, n_test=150):
    train, test = load_dataset("mnist_like", n_train, n_test, side=16)
    return train.flat(), train.labels, test.flat(), test.labels


def _train_eval(cfg, xs, ys, tx, ty, dims=(256, 64, 10), epochs=1):
    net = EMSTDPNetwork(dims, cfg)
    for _ in range(epochs):
        net.train_stream(xs, ys)
    return net.evaluate(tx, ty)


def bench_ablation_feedback(benchmark):
    dims = (256, 1024, 128, 100, 10)

    def run():
        rows = []
        for mode in ("fa", "dfa"):
            rows.append([mode, feedback_neuron_count(dims, mode),
                         feedback_synapse_count(dims, mode)])
        print()
        print(format_table(["feedback", "error neurons", "feedback synapses"],
                           rows, title="Ablation — feedback path cost"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    (_, fa_neurons, fa_syn), (_, dfa_neurons, dfa_syn) = rows
    assert dfa_neurons < fa_neurons
    assert dfa_syn < fa_syn


def bench_ablation_gating(benchmark):
    xs, ys, tx, ty = _task()

    def run():
        rows = []
        for gate in (True, False):
            cfg = full_precision_config(seed=1, feedback="fa",
                                        gate_hidden=gate)
            acc = _train_eval(cfg, xs, ys, tx, ty)
            rows.append(["on" if gate else "off", acc])
        print()
        print(format_table(["h' gating", "accuracy"], rows,
                           title="Ablation — hidden error gating (FA)"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Gating is a hardware necessity; it must not collapse learning.
    assert rows[0][1] > 0.6


def bench_ablation_precision(benchmark):
    xs, ys, tx, ty = _task()

    def run():
        rows = []
        for bits in (4, 6, 8, 16, None):
            cfg = EMSTDPConfig(seed=1, weight_bits=bits,
                               weight_clip=2.0 if bits else None)
            acc = _train_eval(cfg, xs, ys, tx, ty)
            rows.append([bits if bits else "float", acc])
        print()
        print(format_table(["weight bits", "accuracy"], rows,
                           title="Ablation — weight precision"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    accs = {r[0]: r[1] for r in rows}
    # 8-bit (the chip's precision) must be close to float; 4-bit degrades.
    assert accs["float"] - accs[8] < 0.12
    assert accs[8] >= accs[4] - 0.05


def bench_ablation_phase_length(benchmark):
    xs, ys, tx, ty = _task()

    def run():
        rows = []
        for T in (8, 16, 32, 64):
            cfg = full_precision_config(seed=1, phase_length=T)
            acc = _train_eval(cfg, xs, ys, tx, ty)
            rows.append([T, acc, 2 * T])
        print()
        print(format_table(["T", "accuracy", "steps/sample"], rows,
                           title="Ablation — phase length (accuracy vs time)"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    accs = [r[1] for r in rows]
    # Longer phases must not be materially worse; T=64 beats T=8.
    assert accs[-1] > accs[0] - 0.05


def bench_ablation_input_encoding(benchmark):
    xs, _, _, _ = _task(n_train=100)
    T = 64

    def run():
        bias_events = sum(bias_io_events(x, T) for x in xs)
        spike_events = sum(spike_train_io_events(x, T) for x in xs)
        print()
        print(format_table(
            ["encoding", "host->chip events (100 samples)"],
            [["bias programming", bias_events],
             ["rate-coded spike streaming", spike_events]],
            title="Ablation — input I/O cost (Section III-D)"))
        return bias_events, spike_events

    bias_events, spike_events = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    assert bias_events < spike_events
