"""Cluster serving: multi-process scaling, p99 under load, and recovery.

The engineering benchmark behind ``repro.cluster``.  Both sides of the
comparison serve the same spike-backend EMSTDP checkpoint over HTTP and
are driven by the same closed-loop load generator:

* **single** — one ``InferenceHTTPServer`` over one in-process
  ``InferenceService`` (the PR 3 serving tier);
* **cluster** — the front-end router over N self-loading model-worker
  processes (prediction caches off on both sides, so every request does
  real spike-simulation work).

The scaling gate is honest about hardware: a worker pool cannot beat one
process without cores to run on.  On >= 4 CPU cores the full benchmark
asserts **>= 2.5x throughput at 4 workers**; on smaller machines (CI
runners with 1-2 cores included) it still measures and records everything
— per-core efficiency, p99 under load, error/rejection taxonomy — but
reports the gate as skipped rather than asserting a physical
impossibility.

``bench_serving_cluster_smoke`` is the <60s CI variant and gates what CI
*can* verify on any machine: a 2-worker cluster boots, serves under
concurrent load with zero hard errors, loses a SIGKILLed worker, restarts
it within the backoff budget, and ends with quorum restored and every
accepted request accounted for.
"""

import os
import signal
import threading
import time

from repro.cluster import ClusterService, Supervisor, WorkerSpec
from repro.core import EMSTDPNetwork, full_precision_config
from repro.persist import save_checkpoint
from repro.serve import (InferenceHTTPServer, InferenceService, ModelRegistry,
                         http_predict_fn, run_load)

from _bench_utils import make_blobs, write_bench_json

DIMS = (64, 128, 10)
PHASE_LENGTH = 16
N_CLIENTS = 16
MAX_BATCH = 8
GATE_WORKERS = 4
GATE_MIN_SPEEDUP = 2.5
GATE_MIN_CORES = 4


def _checkpoint(tmp_path) -> str:
    net = EMSTDPNetwork(DIMS, full_precision_config(
        seed=1, dynamics="spike", phase_length=PHASE_LENGTH))
    stem = tmp_path / "cluster_bench_model"
    save_checkpoint(net, stem)
    return str(stem)


def _load(url: str, xs, n_requests: int):
    report = run_load(http_predict_fn(url, timeout=60.0), xs,
                      n_requests=n_requests, n_clients=N_CLIENTS)
    return report


def _single_process(stem: str, xs, n_requests: int):
    registry = ModelRegistry()
    registry.load_source(stem)
    service = InferenceService(registry, max_batch=MAX_BATCH,
                               max_wait_ms=10.0, cache_size=0, workers=1)
    server = InferenceHTTPServer(service, port=0).start()
    try:
        service.predict(xs[0])  # warm-up
        return _load(server.url, xs, n_requests)
    finally:
        server.stop()
        service.shutdown()


def _cluster(stem: str, xs, n_requests: int, n_workers: int,
             kill_one: bool = False):
    spec = WorkerSpec(source=stem, max_batch=MAX_BATCH, max_wait_ms=10.0,
                      cache_size=0, heartbeat_s=0.2)
    # Generous heartbeat timeout: on an oversubscribed machine (CI gives
    # 1-2 cores) a busy worker's heartbeat thread can be starved for
    # seconds, and this benchmark measures scaling + crash recovery, not
    # wedge detection (tests/test_cluster.py covers that with SIGSTOP).
    supervisor = Supervisor(spec, n_workers=n_workers,
                            heartbeat_timeout_s=30.0, backoff_base_s=0.2,
                            backoff_cap_s=1.0)
    supervisor.start(wait=True)
    service = ClusterService(supervisor, max_inflight_per_worker=64)
    server = InferenceHTTPServer(service, port=0).start()
    recovery = {}
    try:
        service.predict(xs[0])  # warm-up (all workers loaded already)
        if not kill_one:
            return _load(server.url, xs, n_requests), service.metrics(), {}
        box = {}
        thread = threading.Thread(
            target=lambda: box.update(
                report=_load(server.url, xs, n_requests)), daemon=True)
        thread.start()
        time.sleep(0.5)  # mid-load
        victim = supervisor.describe()[0]["pid"]
        os.kill(victim, signal.SIGKILL)
        t_kill = time.monotonic()
        thread.join(timeout=300)
        assert not thread.is_alive(), "load run hung after worker kill"
        # Wait on the restart counter, not live_count(): the latter is
        # vacuously n_workers in the window before the death is noticed.
        deadline = time.monotonic() + 30.0
        while (supervisor.restarts_total() < 1
               or supervisor.live_count() < n_workers) \
                and time.monotonic() < deadline:
            time.sleep(0.05)
        recovery = {
            "killed_pid": victim,
            "recovered_s": round(time.monotonic() - t_kill, 2),
            "restarts": supervisor.restarts_total(),
            "live_after": supervisor.live_count(),
            "healthz_after": service.healthz()["status"],
        }
        return box["report"], service.metrics(), recovery
    finally:
        server.stop()
        supervisor.stop()


def _run(tmp_path, n_requests: int, n_workers: int, variant: str,
         kill_one: bool):
    cores = os.cpu_count() or 1
    stem = _checkpoint(tmp_path)
    xs, _ = make_blobs(DIMS[0], DIMS[-1], 256, seed=0)
    print()
    print(f"cluster serving — spike backend, dims {DIMS}, "
          f"T={PHASE_LENGTH}, {N_CLIENTS} clients, {n_workers} workers, "
          f"{cores} CPU core(s), cache off")

    single = _single_process(stem, xs, max(n_requests // 2, 100))
    cluster_report, metrics, recovery = _cluster(
        stem, xs, n_requests, n_workers, kill_one=kill_one)
    speedup = (cluster_report.throughput_rps / single.throughput_rps
               if single.throughput_rps else 0.0)
    gate_enforced = cores >= GATE_MIN_CORES and not kill_one

    for label, rep in (("single", single),
                       (f"cluster({n_workers})", cluster_report)):
        print(f"{label:12s} {rep.throughput_rps:8.0f} rps   "
              f"p50 {rep.latency_ms['p50']:7.2f} ms   "
              f"p99 {rep.latency_ms['p99']:7.2f} ms   "
              f"errors {rep.errors}   rejected {rep.rejected}")
    print(f"speedup {speedup:.2f}x at {n_workers} workers on {cores} "
          f"core(s) — gate "
          f"{'enforced' if gate_enforced else 'recorded only'}")
    if recovery:
        print(f"recovery: worker {recovery['killed_pid']} killed mid-load, "
              f"restarted in {recovery['recovered_s']}s, "
              f"healthz {recovery['healthz_after']}")

    write_bench_json("serving_cluster", {
        "variant": variant,
        "dims": list(DIMS),
        "phase_length": PHASE_LENGTH,
        "n_clients": N_CLIENTS,
        "n_workers": n_workers,
        "n_requests": n_requests,
        "cpu_cores": cores,
        "single_rps": round(single.throughput_rps, 1),
        "cluster_rps": round(cluster_report.throughput_rps, 1),
        "speedup": round(speedup, 2),
        "per_core_efficiency": round(speedup / min(n_workers, cores), 2),
        "gate": (f">={GATE_MIN_SPEEDUP}x enforced" if gate_enforced
                 else f"recorded only ({cores} cores < {GATE_MIN_CORES} "
                      f"or recovery variant)"),
        "single_latency_ms": {k: round(v, 3)
                              for k, v in single.latency_ms.items()},
        "cluster_latency_ms": {k: round(v, 3)
                               for k, v in cluster_report.latency_ms.items()},
        "errors": cluster_report.errors,
        "rejected_503": cluster_report.rejected,
        "restarts": metrics["supervisor"]["restarts"],
        "recovery": recovery,
    })
    return single, cluster_report, speedup, gate_enforced, recovery


def bench_serving_cluster_smoke(tmp_path, benchmark):
    """CI gate: boot 2 workers, serve under load, kill one, recover."""
    single, cluster_report, speedup, _, recovery = benchmark.pedantic(
        lambda: _run(tmp_path, n_requests=240, n_workers=2,
                     variant="smoke", kill_one=True),
        rounds=1, iterations=1)
    # Every accepted request is accounted for: answered, errored loudly
    # (in flight on the killed worker), or shed with a 503 — never hung.
    assert cluster_report.requests == 240
    successes = (cluster_report.requests - cluster_report.errors
                 - cluster_report.rejected)
    assert successes > cluster_report.requests // 2
    # Losing one of two workers may fail its in-flight requests (loudly);
    # it must not take down the tier.
    assert cluster_report.errors <= N_CLIENTS + 5
    assert recovery["restarts"] >= 1, "killed worker was never restarted"
    assert recovery["live_after"] == 2, "cluster did not recover quorum"
    assert recovery["healthz_after"] == "ok"
    assert single.errors == 0


def bench_serving_cluster(tmp_path, benchmark):
    """Full measurement: 4-worker scaling, gated >= 2.5x on >= 4 cores."""
    _, cluster_report, speedup, gate_enforced, _ = benchmark.pedantic(
        lambda: _run(tmp_path, n_requests=800, n_workers=GATE_WORKERS,
                     variant="full", kill_one=False),
        rounds=1, iterations=1)
    assert cluster_report.errors == 0
    assert cluster_report.latency_ms["p99"] > 0.0
    if gate_enforced:
        assert speedup >= GATE_MIN_SPEEDUP, \
            f"cluster speedup {speedup:.2f}x < {GATE_MIN_SPEEDUP}x " \
            f"at {GATE_WORKERS} workers"
