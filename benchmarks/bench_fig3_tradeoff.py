"""Fig. 3 — trade-off between throughput and active power vs neurons/core.

Paper: sweeping 5..30 neurons per core while training 10 000 samples,
execution time rises (~150 -> 400 s), active power falls (cores are power
gated), occupied cores fall (~45 -> 10), and energy/sample passes through a
minimum; DFA consistently uses fewer cores and less power than FA at every
packing level, with similar throughput.
"""

from repro.analysis import (as_series, best_energy_point, format_series,
                            sweep_neurons_per_core)
from repro.core import loihi_default_config

DIMS = (128, 100, 10)
PACKINGS = (5, 10, 15, 20, 25, 30)
N_SAMPLES = 10_000


def _run_sweep():
    out = {}
    for feedback in ("fa", "dfa"):
        cfg = loihi_default_config(seed=1, feedback=feedback)
        out[feedback] = sweep_neurons_per_core(
            DIMS, cfg, packings=PACKINGS, n_samples=N_SAMPLES)
        print()
        print(format_series(as_series(out[feedback]),
                            title=f"Fig. 3 series — {feedback.upper()} "
                                  f"(training {N_SAMPLES} samples)",
                            x_key="neurons_per_core"))
        best = best_energy_point(out[feedback])
        print(f"energy-optimal packing ({feedback}): "
              f"{best.neurons_per_core} neurons/core "
              f"({best.energy_per_sample_mj:.2f} mJ/sample)")
    return out


def bench_fig3(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    for feedback, points in results.items():
        times = [p.time_s for p in points]
        powers = [p.active_power_w for p in points]
        cores = [p.cores_used for p in points]
        # Monotone trends of Fig. 3.
        assert times == sorted(times), f"{feedback}: time must rise"
        assert powers == sorted(powers, reverse=True), \
            f"{feedback}: power must fall"
        assert cores == sorted(cores, reverse=True), \
            f"{feedback}: cores must fall"
    # DFA strictly cheaper than FA at every packing level.
    for pf, pd in zip(results["fa"], results["dfa"]):
        assert pd.cores_used < pf.cores_used
        assert pd.active_power_w < pf.active_power_w
    # Energy/sample has an interior minimum for at least one mode (the
    # falling-power and rising-time terms cross).
    fa_energy = [p.energy_per_sample_mj for p in results["fa"]]
    assert min(fa_energy) not in (fa_energy[0],), \
        "energy minimum should be interior, not at the smallest packing"
