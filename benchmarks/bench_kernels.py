"""Compiled kernel speedups: the four hot loops vs the NumPy reference.

Not a paper figure — the engineering benchmark behind ``repro.core.kernels``
(the backend-selected compiled inner loops).  Measures the best available
compiled backend (numba if installed, else the C extension) against the
pure-NumPy reference on representative sizes:

* IF membrane step at the batched-trainer shape (32 replicas x 1024
  neurons) and the CUBA compartment step at (32, 256);
* Eq. (7) ``dW`` at the paper's MNIST MLP hidden layer (784 x 512) and the
  ordered batch reduction at B = 32;
* trace update and the microcode sum-of-products at (512, 64).

Acceptance gate (full run): the compiled IF step and both dW kernels must
be >= 3x the NumPy reference.  Every run first re-asserts bit-identity on
the benchmark inputs before timing anything — a fast kernel that drifts
the math by one ulp is a wrong kernel, so there is no point measuring it.

``bench_kernels_smoke`` is the <60s CI variant: fewer repetitions and a
relaxed >= 1.5x gate (shared CI runners jitter too much for the full
bar), same bit-identity assertions.
"""

import time

import numpy as np
import pytest

from repro.core import kernels
from repro.loihi.microcode import parse_rule

from _bench_utils import write_bench_json

RULE = parse_rule("dw = 2^-7 * y1 * x1 - 2^-8 * t * x1")

#: Kernels whose full-run speedup is gated (the ISSUE's acceptance bar).
GATED = ("if_step", "delta_w", "delta_w_batch")


def _best_of(fn, repeats, inner=10):
    fn()  # warm-up (first call may touch lazy caches)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def _cases(rng):
    """name -> zero-arg callable constructing fresh state and running once."""
    shape = (32, 1024)
    drive = rng.uniform(0.0, 1.0, shape)

    def case_if_step():
        v = np.zeros(shape)
        refrac = np.zeros(shape, dtype=np.int64)
        return lambda: kernels.if_step(v, refrac, drive, 1.0)

    cshape = (32, 256)
    syn = rng.integers(0, 9000, cshape)

    def case_cuba_step():
        u = np.zeros(cshape, dtype=np.int64)
        v = np.zeros(cshape, dtype=np.int64)
        refrac = np.zeros(cshape, dtype=np.int64)
        bias = np.zeros(cshape, dtype=np.int64)
        return lambda: kernels.cuba_step(u, v, refrac, bias, syn,
                                         4096, 0, 256 << 6)

    spikes = rng.random(cshape) < 0.3

    def case_trace_update():
        values = np.zeros(cshape)
        return lambda: kernels.trace_update(values, spikes, 1, 1.0, 127)

    n_pre, n_post = 784, 512
    h_hat = rng.random(n_post)
    h = rng.random(n_post)
    pre = rng.random(n_pre)

    def case_delta_w():
        return lambda: kernels.delta_w(h_hat, h, pre, 0.125)

    B, bn_pre, bn_post = 32, 512, 64
    bh_hat = rng.random((B, bn_post))
    bh = rng.random((B, bn_post))
    bpre = rng.random((B, bn_pre))

    def case_delta_w_batch():
        return lambda: kernels.delta_w_batch(bh_hat, bh, bpre, 0.125)

    S, D = 512, 64
    x0 = rng.integers(0, 2, S)
    x1 = rng.integers(0, 128, S)
    y0 = rng.integers(0, 2, D)
    y1 = rng.integers(0, 128, D)
    tag = rng.integers(-255, 256, (S, D))
    w = rng.integers(-127, 128, (S, D))

    def case_sum_of_products():
        return lambda: kernels.sum_of_products(RULE, x0, x1, y0, y1, tag, w)

    return {
        "if_step": (case_if_step, shape),
        "cuba_step": (case_cuba_step, cshape),
        "trace_update": (case_trace_update, cshape),
        "delta_w": (case_delta_w, (n_pre, n_post)),
        "delta_w_batch": (case_delta_w_batch, (B, bn_pre, bn_post)),
        "sum_of_products": (case_sum_of_products, (S, D)),
    }


def _assert_bit_identical(compiled, make):
    """The compiled backend reproduces NumPy's bits on the bench inputs."""
    def run(backend):
        with kernels.forced_backend(backend):
            fn = make()
            out = [np.asarray(fn()) for _ in range(3)]
        return out
    for ref, got in zip(run("numpy"), run(compiled)):
        assert ref.dtype == got.dtype and np.array_equal(ref, got), \
            f"{compiled} drifted from the NumPy reference on bench inputs"


def _run(variant, repeats, min_speedup):
    compiled = [b for b in kernels.available_backends() if b != "numpy"]
    if not compiled:
        pytest.skip("no compiled kernel backend available (numba or a C "
                    "compiler required)")
    backend = compiled[0]  # available_backends() follows preference order

    rng = np.random.default_rng(42)
    rows = {}
    for name, (make, shape) in _cases(rng).items():
        _assert_bit_identical(backend, make)
        with kernels.forced_backend("numpy"):
            t_numpy = _best_of(make(), repeats)
        with kernels.forced_backend(backend):
            t_compiled = _best_of(make(), repeats)
        rows[name] = {
            "shape": list(shape),
            "numpy_us": round(t_numpy * 1e6, 2),
            "compiled_us": round(t_compiled * 1e6, 2),
            "speedup": round(t_numpy / t_compiled, 2),
        }
        print(f"{name:18s} {str(shape):18s} numpy {t_numpy*1e6:8.1f}us  "
              f"{backend} {t_compiled*1e6:8.1f}us  "
              f"{t_numpy/t_compiled:5.1f}x")

    write_bench_json("kernels", {
        "variant": variant,
        "backend": backend,
        "available_backends": list(kernels.available_backends()),
        "min_speedup_gate": min_speedup,
        "gated_kernels": list(GATED),
        "kernels": rows,
    })
    for name in GATED:
        assert rows[name]["speedup"] >= min_speedup, \
            (f"{name}: compiled backend {backend!r} is only "
             f"{rows[name]['speedup']}x the NumPy reference "
             f"(gate: >= {min_speedup}x)")


def bench_kernels():
    """Full run: >= 3x gate on the IF step and both dW kernels."""
    _run(variant=None, repeats=30, min_speedup=3.0)


def bench_kernels_smoke():
    """CI smoke variant: same assertions, relaxed gate, <60s."""
    _run(variant="smoke", repeats=5, min_speedup=1.5)
