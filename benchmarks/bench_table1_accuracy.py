"""Table I — test accuracy: {datasets} x {Loihi, Python FP} x {FA, DFA}.

Paper (Table I):

    dataset          Loihi/FA  FP/FA   Loihi/DFA  FP/DFA
    MNIST            94.5      98.9    94.7       98.9
    Fashion-MNIST    84.3      92.7    84.8       92.5
    MSTAR (10cls)    78.4      83.5    79.5       83.3
    CIFAR10          61.6      64.2    62.2       64.4

Shape criteria: FP >= Loihi on every dataset (8-bit quantization gap);
DFA >= FA on chip (fewer accumulated quantization hops); difficulty
ordering MNIST > Fashion > MSTAR > CIFAR.  The substrates are synthetic
stand-ins (see DESIGN.md), so absolute numbers differ from the paper's.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import EMSTDPNetwork, full_precision_config, loihi_default_config
from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network

DATASETS = ["mnist_like", "fashion_like", "mstar_like", "cifar_like"]
PAPER = {  # dataset -> (loihi_fa, fp_fa, loihi_dfa, fp_dfa), percent
    "mnist_like": (94.5, 98.9, 94.7, 98.9),
    "fashion_like": (84.3, 92.7, 84.8, 92.5),
    "mstar_like": (78.4, 83.5, 79.5, 83.3),
    "cifar_like": (61.6, 64.2, 62.2, 64.4),
}
EPOCHS = 3
N_TRAIN = 600


def _fp_accuracy(features, labels, test_features, test_labels, feedback,
                 n_features):
    cfg = full_precision_config(seed=1, feedback=feedback)
    net = EMSTDPNetwork((n_features, 100, 10), cfg)
    for _ in range(EPOCHS):
        net.train_stream(features, labels)
    return net.evaluate(test_features, test_labels)


def _loihi_accuracy(features, labels, test_features, test_labels, feedback,
                    n_features):
    # The chip's phase-2 targets are measured from a noisy closed loop
    # (limit-cycle averaging, quantized corrections), so the stable
    # operating point uses a smaller step and a stiffer error loop than the
    # paper's nominal eta = 2^-3 (which is defined up to the weight-scale
    # normalization anyway).
    cfg = loihi_default_config(seed=1, feedback=feedback,
                               learning_rate=2.0 ** -5, error_gain=2.0)
    model = build_emstdp_network((n_features, 100, 10), cfg)
    trainer = LoihiEMSTDPTrainer(model, neurons_per_core=10)
    for _ in range(EPOCHS):
        trainer.train_stream(features, labels)
    return trainer.evaluate(test_features, test_labels)


def _run_table(frontends):
    rows = []
    measured = {}
    for dataset in DATASETS:
        frontend, ftr, ytr, fte, yte = frontends.get(dataset, n_train=N_TRAIN)
        n = frontend.n_features
        accs = {}
        for feedback in ("fa", "dfa"):
            accs[f"fp_{feedback}"] = _fp_accuracy(ftr, ytr, fte, yte,
                                                  feedback, n)
            accs[f"loihi_{feedback}"] = _loihi_accuracy(ftr, ytr, fte, yte,
                                                        feedback, n)
        measured[dataset] = accs
        paper = PAPER[dataset]
        rows.append([
            dataset,
            f"{accs['loihi_fa'] * 100:.1f} ({paper[0]})",
            f"{accs['fp_fa'] * 100:.1f} ({paper[1]})",
            f"{accs['loihi_dfa'] * 100:.1f} ({paper[2]})",
            f"{accs['fp_dfa'] * 100:.1f} ({paper[3]})",
        ])
    print()
    print(format_table(
        ["dataset", "Loihi/FA (paper)", "FP/FA (paper)",
         "Loihi/DFA (paper)", "FP/DFA (paper)"],
        rows, title="Table I — accuracy, measured (paper) in %"))
    return measured


def bench_table1(benchmark, frontends):
    measured = benchmark.pedantic(_run_table, args=(frontends,),
                                  rounds=1, iterations=1)
    # Shape criteria.
    for dataset, accs in measured.items():
        for feedback in ("fa", "dfa"):
            assert accs[f"fp_{feedback}"] >= accs[f"loihi_{feedback}"] - 0.08, \
                f"{dataset}: FP should not trail the 8-bit chip materially"
    mean = {d: np.mean(list(a.values())) for d, a in measured.items()}
    assert mean["mnist_like"] > mean["fashion_like"] > mean["cifar_like"]
    assert mean["mstar_like"] > mean["cifar_like"]
