"""Importable helpers shared by the benchmark harness.

Kept out of ``conftest.py`` on purpose: pytest imports every ``conftest.py``
under a bare-basename module name, so any code that does
``from conftest import ...`` silently binds to whichever conftest was loaded
first.  With both ``tests/`` and ``benchmarks/`` collected in one run, the
benchmark conftest used to shadow the test one and break collection
(``ImportError: cannot import name 'make_blobs'``).  Benchmark code should
import from this module; ``benchmarks/conftest.py`` only declares fixtures.
"""

import json
import os
import socket
import subprocess
import time
from pathlib import Path

from repro import __version__
from repro.core import kernels
from repro.data import load_dataset, make_blobs  # noqa: F401  (re-exported)
from repro.models import ConvFrontend, paper_topology


#: Where benchmark JSON lands when ``$BENCH_RESULTS_DIR`` is unset: the
#: repository root (this file's grandparent), NOT the current directory.
#: Anchoring on the file keeps the destination deterministic however the
#: benchmark is invoked (`pytest benchmarks/...` from the root, from inside
#: ``benchmarks/``, or via an absolute path in CI) — with a cwd-relative
#: default, local runs scattered the files or silently dropped them
#: elsewhere, which is why the repo never accumulated its ``BENCH_*.json``
#: trajectory.
REPO_ROOT = Path(__file__).resolve().parent.parent


def _git_sha() -> str:
    """The checked-out commit, or ``"unknown"`` outside a git work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def environment_stamp() -> dict:
    """Machine attribution stamped into every ``BENCH_*.json``.

    Numbers from different machines (or kernel backends) are not
    comparable; without this stamp the bench trajectory cannot tell a
    regression from a hardware change.
    """
    return {
        "git_sha": _git_sha(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count() or 1,
        "kernel_backend": kernels.backend_name(),
    }


def write_bench_json(name: str, payload: dict) -> Path:
    """Persist one benchmark's results as machine-readable JSON.

    Writes ``BENCH_<name>[_<variant>].json`` into ``$BENCH_RESULTS_DIR``
    (default: the repository root), stamped with the repro version,
    wall-clock time, and the machine attribution of
    :func:`environment_stamp`, so CI can upload the files as artifacts
    and the performance trajectory is attributable across commits and
    machines instead of living only in log scrollback.  A ``variant``
    key in the payload becomes a filename suffix so smoke and full runs
    of one benchmark never overwrite each other.
    """
    out_dir = Path(os.environ.get("BENCH_RESULTS_DIR", REPO_ROOT))
    out_dir.mkdir(parents=True, exist_ok=True)
    variant = payload.get("variant")
    stem = f"BENCH_{name}_{variant}" if variant else f"BENCH_{name}"
    path = out_dir / f"{stem}.json"
    record = {
        "benchmark": name,
        "repro_version": __version__,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        **environment_stamp(),
        **payload,
    }
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"bench results -> {path}")
    return path


class FrontendCache:
    """Pretrains each dataset's conv frontend once per session."""

    def __init__(self):
        self._cache = {}

    def get(self, dataset: str, n_train: int = 400, n_test: int = 150,
            side: int = 16, seed: int = 0):
        key = (dataset, n_train, n_test, side, seed)
        if key not in self._cache:
            train, test = load_dataset(dataset, n_train, n_test, side=side,
                                       seed=seed)
            channels = train.image_shape[2] if len(train.image_shape) == 3 else 1
            frontend = ConvFrontend(paper_topology(side, channels), seed=seed)
            frontend.pretrain(train.images, train.labels, epochs=4)
            self._cache[key] = (
                frontend,
                frontend.features(train.images), train.labels,
                frontend.features(test.images), test.labels,
            )
        return self._cache[key]
