"""Importable helpers shared by the benchmark harness.

Kept out of ``conftest.py`` on purpose: pytest imports every ``conftest.py``
under a bare-basename module name, so any code that does
``from conftest import ...`` silently binds to whichever conftest was loaded
first.  With both ``tests/`` and ``benchmarks/`` collected in one run, the
benchmark conftest used to shadow the test one and break collection
(``ImportError: cannot import name 'make_blobs'``).  Benchmark code should
import from this module; ``benchmarks/conftest.py`` only declares fixtures.
"""

from repro.data import load_dataset, make_blobs  # noqa: F401  (re-exported)
from repro.models import ConvFrontend, paper_topology


class FrontendCache:
    """Pretrains each dataset's conv frontend once per session."""

    def __init__(self):
        self._cache = {}

    def get(self, dataset: str, n_train: int = 400, n_test: int = 150,
            side: int = 16, seed: int = 0):
        key = (dataset, n_train, n_test, side, seed)
        if key not in self._cache:
            train, test = load_dataset(dataset, n_train, n_test, side=side,
                                       seed=seed)
            channels = train.image_shape[2] if len(train.image_shape) == 3 else 1
            frontend = ConvFrontend(paper_topology(side, channels), seed=seed)
            frontend.pretrain(train.images, train.labels, epochs=4)
            self._cache[key] = (
                frontend,
                frontend.features(train.images), train.labels,
                frontend.features(test.images), test.labels,
            )
        return self._cache[key]
