"""Batched engine throughput: samples/sec vs. the per-sample online loop.

Not a paper figure — the engineering benchmark behind the batched
vectorized engine (``EMSTDPNetwork.fit_batch`` / ``predict_batch``).  The
sequential path pays Python-level dispatch for every sample's two-phase
presentation; the batched path runs the same NumPy ops once per minibatch,
so throughput should scale roughly with the batch size until the matmuls
stop being overhead-dominated.

Measured here, rate backend, dims (64, 128, 10):

* training:  ``train_sample`` loop vs ``fit_batch(update_mode="minibatch")``
  at batch size 32 — the acceptance gate is >= 5x samples/sec;
* inference: ``predict`` loop vs ``predict_batch`` at batch size 256.

``bench_batched_smoke`` is the <60s CI variant: smaller sample budget, same
assertions.
"""

import time


from repro.core import EMSTDPConfig, EMSTDPNetwork

from _bench_utils import make_blobs, write_bench_json

DIMS = (64, 128, 10)
BATCH = 32


def _samples_per_sec(fn, n_samples: int) -> float:
    t0 = time.perf_counter()
    fn()
    return n_samples / (time.perf_counter() - t0)


def _train_throughput(n_samples: int, batch: int = BATCH):
    xs, ys = make_blobs(DIMS[0], DIMS[-1], n_samples, seed=0)

    seq = EMSTDPNetwork(DIMS, EMSTDPConfig(seed=1))
    def run_seq():
        for x, y in zip(xs, ys):
            seq.train_sample(x, int(y))
    seq_sps = _samples_per_sec(run_seq, n_samples)

    bat = EMSTDPNetwork(DIMS, EMSTDPConfig(seed=1))
    def run_bat():
        for lo in range(0, n_samples, batch):
            bat.fit_batch(xs[lo:lo + batch], ys[lo:lo + batch],
                          update_mode="minibatch")
    bat_sps = _samples_per_sec(run_bat, n_samples)
    return seq_sps, bat_sps


def _infer_throughput(n_samples: int, batch: int = 256):
    xs, _ = make_blobs(DIMS[0], DIMS[-1], n_samples, seed=0)
    net = EMSTDPNetwork(DIMS, EMSTDPConfig(seed=1))

    def run_seq():
        for x in xs:
            net.predict(x)
    seq_sps = _samples_per_sec(run_seq, n_samples)

    def run_bat():
        for lo in range(0, n_samples, batch):
            net.predict_batch(xs[lo:lo + batch])
    bat_sps = _samples_per_sec(run_bat, n_samples)
    return seq_sps, bat_sps


def _report(kind, seq_sps, bat_sps, batch):
    speedup = bat_sps / seq_sps
    print(f"{kind:9s}  sequential {seq_sps:8.0f} sps   "
          f"batched({batch:3d}) {bat_sps:8.0f} sps   speedup {speedup:5.1f}x")
    return speedup


def _run(n_train: int, n_infer: int, variant: str):
    print()
    print(f"batched-engine throughput — rate backend, dims {DIMS}")
    train_seq, train_bat = _train_throughput(n_train)
    infer_seq, infer_bat = _infer_throughput(n_infer)
    train_speedup = _report("training", train_seq, train_bat, BATCH)
    infer_speedup = _report("inference", infer_seq, infer_bat, 256)
    write_bench_json("batched_throughput", {
        "variant": variant,
        "dims": list(DIMS),
        "train_batch": BATCH,
        "infer_batch": 256,
        "n_train": n_train,
        "n_infer": n_infer,
        "train_sequential_sps": round(train_seq, 1),
        "train_batched_sps": round(train_bat, 1),
        "train_speedup": round(train_speedup, 2),
        "infer_sequential_sps": round(infer_seq, 1),
        "infer_batched_sps": round(infer_bat, 1),
        "infer_speedup": round(infer_speedup, 2),
    })
    return train_speedup, infer_speedup


def bench_batched_smoke(benchmark):
    """CI gate: the acceptance assertions on a small sample budget."""
    train_speedup, infer_speedup = benchmark.pedantic(
        lambda: _run(n_train=512, n_infer=2048, variant="smoke"),
        rounds=1, iterations=1)
    assert train_speedup >= 5.0, \
        f"batched training speedup {train_speedup:.1f}x < 5x at batch {BATCH}"
    assert infer_speedup >= 5.0, \
        f"batched inference speedup {infer_speedup:.1f}x < 5x"


def bench_batched_throughput(benchmark):
    """Full measurement (longer run, tighter timing noise)."""
    train_speedup, infer_speedup = benchmark.pedantic(
        lambda: _run(n_train=2048, n_infer=8192, variant="full"),
        rounds=1, iterations=1)
    assert train_speedup >= 5.0
    assert infer_speedup >= 5.0
