"""Shared setup for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and prints the measured rows next to the
paper's published values.  Run with::

    pytest benchmarks/ --benchmark-only -s

Sizes are scaled down from the paper's full runs (hundreds instead of tens
of thousands of samples) so the whole harness finishes in minutes; the
*shape* criteria recorded in EXPERIMENTS.md are unaffected by the scale.
"""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.models import ConvFrontend, paper_topology


class FrontendCache:
    """Pretrains each dataset's conv frontend once per session."""

    def __init__(self):
        self._cache = {}

    def get(self, dataset: str, n_train: int = 400, n_test: int = 150,
            side: int = 16, seed: int = 0):
        key = (dataset, n_train, n_test, side, seed)
        if key not in self._cache:
            train, test = load_dataset(dataset, n_train, n_test, side=side,
                                       seed=seed)
            channels = train.image_shape[2] if len(train.image_shape) == 3 else 1
            frontend = ConvFrontend(paper_topology(side, channels), seed=seed)
            frontend.pretrain(train.images, train.labels, epochs=4)
            self._cache[key] = (
                frontend,
                frontend.features(train.images), train.labels,
                frontend.features(test.images), test.labels,
            )
        return self._cache[key]


@pytest.fixture(scope="session")
def frontends():
    return FrontendCache()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
