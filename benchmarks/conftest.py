"""Fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper (see
DESIGN.md's experiment index) and prints the measured rows next to the
paper's published values.  Run from the repo root with::

    python -m pytest benchmarks/ -s

(``benchmarks/pytest.ini`` wires up collection and ``pythonpath``; no
environment variables needed.)

Sizes are scaled down from the paper's full runs (hundreds instead of tens
of thousands of samples) so the whole harness finishes in minutes; the
*shape* criteria recorded in EXPERIMENTS.md are unaffected by the scale.

Only fixtures live here — importable helpers are in ``_bench_utils.py`` so
that this conftest never shadows ``tests/conftest.py`` (both are imported
under the bare module name ``conftest``).
"""

import numpy as np
import pytest

from _bench_utils import FrontendCache


@pytest.fixture(scope="session")
def frontends():
    return FrontendCache()


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)
