"""Serving throughput: micro-batched vs. batch-size-1 request dispatch.

Not a paper figure — the engineering benchmark behind ``repro.serve``.  A
closed-loop load generator (``repro.serve.loadgen``) drives the in-process
:class:`InferenceService` from many client threads; the only variable is
the micro-batcher's ``max_batch``:

* ``max_batch=1`` — every request is dispatched alone (the baseline a
  naive request/response server would give you);
* ``max_batch=16`` — concurrent requests coalesce into one
  ``predict_batch`` call.  ``max_batch`` is set to the client count so a
  full round of in-flight requests flushes on *full*, not on deadline —
  the tuning rule the README documents (a ``max_batch`` far above the
  offered concurrency turns every flush into a ``max_wait_ms`` stall).

The served model is the spike-backend :class:`EMSTDPNetwork` — its
``T``-step simulation costs nearly the same for one sample as for a whole
batch, so it is exactly the workload micro-batching exists for (and the
honest one: the prediction cache is disabled so every request does real
inference).  The acceptance gate is >= 3x requests/sec; measured here it is
typically 5-9x with 16 clients.

``bench_serving_smoke`` is the <60s CI variant: fewer requests, same
assertions, plus the /metrics shape checks (latency percentiles,
batch-size histogram, cache stats, per-request energy estimate).
"""


from repro.core import EMSTDPNetwork, full_precision_config
from repro.serve import InferenceService, ModelRegistry, run_load, \
    service_predict_fn

from _bench_utils import make_blobs, write_bench_json

DIMS = (64, 128, 10)
PHASE_LENGTH = 32
N_CLIENTS = 16
MAX_BATCH = 16


def _make_service(max_batch: int) -> InferenceService:
    net = EMSTDPNetwork(DIMS, full_precision_config(
        seed=1, dynamics="spike", phase_length=PHASE_LENGTH))
    registry = ModelRegistry()
    registry.register("spike-net", net)
    # Cache off: the comparison must measure dispatch, not memoization.
    return InferenceService(registry, max_batch=max_batch, max_wait_ms=10.0,
                            cache_size=0, workers=1)


def _throughput(max_batch: int, n_requests: int):
    xs, _ = make_blobs(DIMS[0], DIMS[-1], 256, seed=0)
    service = _make_service(max_batch)
    try:
        service.predict(xs[0])  # warm-up: lazy batcher + first-call numpy
        report = run_load(service_predict_fn(service), xs,
                          n_requests=n_requests, n_clients=N_CLIENTS)
        metrics = service.metrics()
    finally:
        service.shutdown()
    assert report.errors == 0, f"{report.errors} request(s) failed"
    return report, metrics


def _run(n_requests: int, variant: str):
    print()
    print(f"serving throughput — spike backend, dims {DIMS}, "
          f"T={PHASE_LENGTH}, {N_CLIENTS} closed-loop clients, cache off")
    base, _ = _throughput(max_batch=1, n_requests=max(n_requests // 2, 50))
    micro, metrics = _throughput(max_batch=MAX_BATCH, n_requests=n_requests)
    speedup = micro.throughput_rps / base.throughput_rps
    for label, rep in (("batch-1", base), (f"micro({MAX_BATCH})", micro)):
        print(f"{label:10s} {rep.throughput_rps:8.0f} rps   "
              f"p50 {rep.latency_ms['p50']:6.2f} ms   "
              f"p99 {rep.latency_ms['p99']:6.2f} ms")
    print(f"speedup {speedup:.1f}x   mean dispatched batch "
          f"{metrics['mean_batch_size']:.1f}")
    write_bench_json("serving_throughput", {
        "variant": variant,
        "dims": list(DIMS),
        "phase_length": PHASE_LENGTH,
        "n_clients": N_CLIENTS,
        "max_batch": MAX_BATCH,
        "n_requests": n_requests,
        "batch1_rps": round(base.throughput_rps, 1),
        "micro_rps": round(micro.throughput_rps, 1),
        "speedup": round(speedup, 2),
        "batch1_latency_ms": {k: round(v, 3)
                              for k, v in base.latency_ms.items()},
        "micro_latency_ms": {k: round(v, 3)
                             for k, v in micro.latency_ms.items()},
        "mean_batch_size": round(metrics["mean_batch_size"], 2),
        "energy_mj_per_request": metrics["energy_mj_per_request"],
    })
    return speedup, metrics


def _check_metrics_shape(metrics: dict) -> None:
    """The acceptance-criteria /metrics fields, asserted on real traffic."""
    for q in ("p50", "p95", "p99"):
        assert metrics["latency_ms"][q] > 0.0
    hist = metrics["batch_size_histogram"]
    assert hist and sum(hist.values()) == metrics["dispatched_requests"]
    # Micro-batching must actually have coalesced requests.
    assert any(int(size) > 1 for size in hist)
    assert "hit_rate" in metrics["cache"]
    assert metrics["energy_mj_per_request"] > 0.0


def bench_serving_smoke(benchmark):
    """CI gate: >= 3x micro-batched throughput on a small request budget."""
    speedup, metrics = benchmark.pedantic(
        lambda: _run(n_requests=400, variant="smoke"), rounds=1,
        iterations=1)
    _check_metrics_shape(metrics)
    assert speedup >= 3.0, \
        f"micro-batched serving speedup {speedup:.1f}x < 3x"


def bench_serving_throughput(benchmark):
    """Full measurement (longer run, tighter timing noise)."""
    speedup, metrics = benchmark.pedantic(
        lambda: _run(n_requests=2000, variant="full"), rounds=1,
        iterations=1)
    _check_metrics_shape(metrics)
    assert speedup >= 3.0
