"""Batch-parallel chip runtime: replicas/sec vs. sequential Runtime stepping.

Not a paper figure — the engineering benchmark behind the batch-parallel
sharded Loihi runtime.  The sequential path steps one network replica per
call (per-sample Python dispatch through every group and connection of the
two-phase presentation); the batched path replicates the network ``R``
times (``build_emstdp_network(..., replicas=R)``) and advances all replicas
in one vectorized pass per timestep through a :class:`ShardedRuntime`.

Measured here, DFA feedback, dims (64, 64, 10), T = 32:

* inference: ``infer`` loop vs ``infer_batch`` at 32 replicas — the
  acceptance gate is >= 4x samples/sec;
* training: ``train_sample`` loop vs ``fit_batch(update_mode="minibatch")``
  at 32 replicas;
* equivalence: every benchmark run re-asserts that batched learning is
  bit-identical (weights and output spike counts) to sequential
  per-replica execution before timing anything — a fast batched runtime
  that drifted from the chip semantics would be worthless.

``bench_loihi_smoke`` is the <60s CI variant: smaller sample budget, same
assertions.
"""

import time

import numpy as np

from repro.core import loihi_default_config
from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network

from _bench_utils import make_blobs, write_bench_json

DIMS = (64, 64, 10)
T = 32
REPLICAS = 32


def _config(seed=1):
    return loihi_default_config(seed=seed, phase_length=T, feedback="dfa")


def _trainer(batch_replicas):
    model = build_emstdp_network(DIMS, _config())
    return LoihiEMSTDPTrainer(model, neurons_per_core=32,
                              batch_replicas=batch_replicas)


def _samples_per_sec(fn, n_samples: int) -> float:
    t0 = time.perf_counter()
    fn()
    return n_samples / (time.perf_counter() - t0)


def _assert_bit_identical(replicas: int = 4) -> None:
    """Batched learning == sequential per-replica execution, bit for bit."""
    from repro.onchip.trainer import host_reduce_rng

    cfg = _config()
    xs, ys = make_blobs(DIMS[0], DIMS[-1], replicas, seed=5)
    batched = _trainer(replicas)
    w0 = [c.weight_mant.copy() for c in batched.model.plastic_connections]
    batched.fit_batch(xs, ys, update_mode="minibatch")
    twin_model, twin_rt = batched._twin(replicas)
    counts = twin_rt.spike_counts(twin_model.output_name)
    deltas = [np.zeros_like(w, dtype=np.int64) for w in w0]
    for r in range(replicas):
        seq = LoihiEMSTDPTrainer(
            build_emstdp_network(DIMS, cfg),
            rng=np.random.default_rng((cfg.seed + 1, r)))
        seq.train_sample(xs[r], int(ys[r]))
        seq_counts = seq.runtime.spike_counts(seq.model.output_name)
        assert np.array_equal(seq_counts, counts[r]), \
            f"replica {r}: batched spike counts differ from sequential"
        for i, conn in enumerate(seq.model.plastic_connections):
            deltas[i] += conn.weight_mant - w0[i]
    host = host_reduce_rng(cfg.seed)
    for i, conn in enumerate(batched.model.plastic_connections):
        mean = deltas[i] / replicas
        floor = np.floor(mean)
        add = floor + (host.random(mean.shape) < (mean - floor))
        expect = np.clip(w0[i] + add, -127, 127)
        assert np.array_equal(conn.weight_mant, expect.astype(np.int64)), \
            f"connection {i}: batched mean-of-deltas write-back differs"


def _infer_throughput(n_samples: int):
    xs, _ = make_blobs(DIMS[0], DIMS[-1], n_samples, seed=0)
    seq = _trainer(batch_replicas=1)      # sequential Runtime stepping
    bat = _trainer(batch_replicas=REPLICAS)
    seq_sps = _samples_per_sec(lambda: [seq.infer(x) for x in xs], n_samples)
    bat_sps = _samples_per_sec(lambda: bat.infer_batch(xs), n_samples)
    return seq_sps, bat_sps


def _train_throughput(n_samples: int):
    xs, ys = make_blobs(DIMS[0], DIMS[-1], n_samples, seed=1)
    seq = _trainer(batch_replicas=1)
    bat = _trainer(batch_replicas=REPLICAS)

    def run_seq():
        for x, y in zip(xs, ys):
            seq.train_sample(x, int(y))

    seq_sps = _samples_per_sec(run_seq, n_samples)
    bat_sps = _samples_per_sec(
        lambda: bat.fit_batch(xs, ys, update_mode="minibatch"), n_samples)
    return seq_sps, bat_sps


def _report(kind, seq_sps, bat_sps):
    speedup = bat_sps / seq_sps
    print(f"{kind:9s}  sequential {seq_sps:7.1f} sps   "
          f"batched({REPLICAS:3d}) {bat_sps:7.1f} sps   "
          f"speedup {speedup:5.1f}x")
    return speedup


def _run(n_train: int, n_infer: int, variant):
    print()
    print(f"batch-parallel chip runtime — DFA, dims {DIMS}, T={T}, "
          f"{REPLICAS} replicas")
    _assert_bit_identical()
    print("equivalence: batched learning bit-identical to sequential "
          "per-replica execution ✓")
    infer_seq, infer_bat = _infer_throughput(n_infer)
    train_seq, train_bat = _train_throughput(n_train)
    infer_speedup = _report("inference", infer_seq, infer_bat)
    train_speedup = _report("training", train_seq, train_bat)
    payload = {
        "dims": list(DIMS),
        "T": T,
        "replicas": REPLICAS,
        "n_train": n_train,
        "n_infer": n_infer,
        "bit_identical": True,
        "infer_sequential_sps": round(infer_seq, 1),
        "infer_batched_sps": round(infer_bat, 1),
        "infer_speedup": round(infer_speedup, 2),
        "train_sequential_sps": round(train_seq, 1),
        "train_batched_sps": round(train_bat, 1),
        "train_speedup": round(train_speedup, 2),
    }
    if variant:
        payload["variant"] = variant
    write_bench_json("loihi_runtime", payload)
    return infer_speedup, train_speedup


def bench_loihi_smoke(benchmark):
    """CI gate: the acceptance assertions on a small sample budget."""
    infer_speedup, train_speedup = benchmark.pedantic(
        lambda: _run(n_train=96, n_infer=192, variant="smoke"),
        rounds=1, iterations=1)
    assert infer_speedup >= 4.0, \
        f"batched inference speedup {infer_speedup:.1f}x < 4x " \
        f"at {REPLICAS} replicas"
    assert train_speedup >= 2.0, \
        f"batched training speedup {train_speedup:.1f}x < 2x " \
        f"at {REPLICAS} replicas"


def bench_loihi_runtime(benchmark):
    """Full measurement (longer run, tighter timing noise)."""
    infer_speedup, train_speedup = benchmark.pedantic(
        lambda: _run(n_train=256, n_infer=512, variant=None),
        rounds=1, iterations=1)
    assert infer_speedup >= 4.0
    assert train_speedup >= 2.0
