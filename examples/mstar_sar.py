"""Domain example: SAR target recognition (the paper's MSTAR workload).

MSTAR is the paper's edge-relevant workload: classify vehicles in radar
chips on a low-power device in the field.  This example renders synthetic
SAR chips (speckle, bright returns, shadows), pretrains the conv frontend
offline, and trains the dense classifier on the simulated chip — then
compares FA and DFA feedback on the same task.

Run:  python examples/mstar_sar.py
"""

import numpy as np

from repro.core import loihi_default_config
from repro.data import load_dataset
from repro.models import ConvFrontend, paper_topology
from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network


def ascii_chip(img, width=32):
    """Terminal rendering of one SAR chip."""
    shades = " .:-=+*#%@"
    lines = []
    for row in img:
        lines.append("".join(shades[min(int(v * len(shades)), len(shades) - 1)]
                             for v in row))
    return "\n".join(lines)


def main():
    train, test = load_dataset("mstar_like", n_train=600, n_test=150, side=16)
    print("one synthetic SAR target chip (class "
          f"{int(train.labels[0])}):")
    print(ascii_chip(train.images[0]))

    frontend = ConvFrontend(paper_topology(16, 1), seed=0)
    frontend.pretrain(train.images, train.labels, epochs=4)
    ftr = frontend.features(train.images)
    fte = frontend.features(test.images)

    for feedback in ("fa", "dfa"):
        cfg = loihi_default_config(seed=1, feedback=feedback,
                                   learning_rate=2.0**-5, error_gain=2.0)
        model = build_emstdp_network((frontend.n_features, 100, 10), cfg)
        trainer = LoihiEMSTDPTrainer(model, neurons_per_core=10)
        for _ in range(2):
            trainer.train_stream(ftr[:300], train.labels[:300])
        acc = trainer.evaluate(fte[:100], test.labels[:100])
        print(f"{feedback.upper():3s}: test accuracy {acc:.3f}, "
              f"{trainer.mapping.cores_used} cores")


if __name__ == "__main__":
    main()
