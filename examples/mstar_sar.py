"""Domain example: SAR target recognition (the paper's MSTAR workload).

MSTAR is the paper's edge-relevant workload: classify vehicles in radar
chips on a low-power device in the field.  A thin wrapper over the
``offline_accuracy`` spec pointed at the synthetic SAR dataset: the conv
frontend is pretrained offline and the dense classifier is trained on the
simulated chip with FA and DFA feedback on the same task.

Run:  PYTHONPATH=src python examples/mstar_sar.py [--tiny]
"""

import sys

from repro.data import load_dataset
from repro.experiments import Runner, get_scenario


def ascii_chip(img):
    """Terminal rendering of one SAR chip."""
    shades = " .:-=+*#%@"
    return "\n".join(
        "".join(shades[min(int(v * len(shades)), len(shades) - 1)]
                for v in row)
        for row in img)


def main(tiny: bool = False):
    scenario = get_scenario("offline_accuracy")
    spec = scenario.build_spec(tiny=tiny)
    spec = spec.replace(
        dataset="mstar_like", n_test=min(spec.n_test, 150),
        backends=("chip:fa", "chip:dfa"), epochs=2, seeds=(1,),
        params={**spec.params, "use_frontend": True, "frontend_epochs": 4},
    )

    preview, _ = load_dataset(spec.dataset, n_train=1, n_test=1,
                              side=spec.side)
    print(f"one synthetic SAR target chip (class {int(preview.labels[0])}):")
    print(ascii_chip(preview.images[0]))

    result = Runner(max_workers=1).run(spec, progress=print)
    print()
    print(result.summary())
    for backend, entry in result.first_ok()["metrics"].items():
        print(f"{backend}: test accuracy {entry['test_acc']:.3f}, "
              f"{entry['cores_used']} cores")
    print(f"run directory: {result.run_dir}")


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv)
