"""Quickstart: train a multilayer SNN online with EMSTDP, two ways.

1. the full-precision reference implementation (``repro.core``), and
2. the same network built on the Loihi-like chip simulator under hardware
   constraints (8-bit weights, microcode learning rule, two-phase schedule).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import EMSTDPNetwork, full_precision_config, loihi_default_config
from repro.data import load_dataset
from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network


def main():
    # A small MNIST-like task, flattened to 256 inputs (no conv frontend).
    train, test = load_dataset("mnist_like", n_train=600, n_test=200, side=16)
    dims = (256, 100, 10)

    print("== full-precision reference (Python FP) ==")
    net = EMSTDPNetwork(dims, full_precision_config(seed=1))
    running = net.train_stream(train.flat(), train.labels)
    print(f"running train accuracy: {running:.3f}")
    print(f"test accuracy:          {net.evaluate(test.flat(), test.labels):.3f}")

    print()
    print("== on-chip (simulated Loihi, 8-bit weights, DFA) ==")
    model = build_emstdp_network(dims, loihi_default_config(seed=1, learning_rate=2.0**-5, error_gain=2.0))
    trainer = LoihiEMSTDPTrainer(model, neurons_per_core=10)
    print(f"mapped onto {trainer.mapping.cores_used} cores "
          f"({model.network.n_compartments()} compartments, "
          f"{model.network.n_synapses()} synapses)")
    running = trainer.train_stream(train.flat()[:300], train.labels[:300])
    print(f"running train accuracy: {running:.3f}")
    print(f"test accuracy:          "
          f"{trainer.evaluate(test.flat()[:100], test.labels[:100]):.3f}")
    report = trainer.energy_report()
    print(f"modeled: {report.fps:.0f} FPS, {report.power_w:.3f} W, "
          f"{report.energy_per_sample_mj:.2f} mJ/sample")


if __name__ == "__main__":
    main()
