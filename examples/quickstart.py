"""Quickstart: train a multilayer SNN online with EMSTDP, two ways.

A thin wrapper over the ``offline_accuracy`` experiment spec comparing

1. the full-precision reference implementation (backend ``rate``), and
2. the same network built on the Loihi-like chip simulator under hardware
   constraints (backend ``chip``: 8-bit weights, microcode learning rule,
   two-phase schedule).

The run (records, checkpoints, manifest) lands in ``runs/`` and can be
re-rendered later with ``python -m repro show <run_id>``.

Run:  PYTHONPATH=src python examples/quickstart.py [--tiny]
"""

import sys

from repro.experiments import Runner, get_scenario


def main(tiny: bool = False):
    scenario = get_scenario("offline_accuracy")
    spec = scenario.build_spec(tiny=tiny).replace(
        backends=("rate", "chip"), seeds=(1,))
    print(f"running {spec.name} (dataset={spec.dataset}, "
          f"n_train={spec.n_train}, backends={spec.backends})...")
    result = Runner(max_workers=1).run(spec, progress=print)
    print()
    print(result.summary())
    chip = result.first_ok()["metrics"]["chip"]
    print(f"\nmodeled chip: {chip['cores_used']} cores, "
          f"{chip['fps']:.0f} FPS, {chip['power_w']:.3f} W, "
          f"{chip['energy_per_sample_mj']:.2f} mJ/sample "
          f"(paper: 50 FPS, 0.42 W, 8.4 mJ/img while training)")
    print(f"run directory: {result.run_dir}")


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv)
