"""Cluster quickstart: boot a supervised worker pool, hurt it, watch it heal.

End-to-end walk through ``repro.cluster``:

1. train a small EMSTDP network, checkpoint it twice (v1, then v2 after
   more training) — the second stem is the rolling-upgrade target;
2. boot a 2-worker cluster: a :class:`Supervisor` spawning self-loading
   model-worker processes, a :class:`ClusterService` front end routing
   over them, and the stdlib HTTP server on top;
3. fire a closed-loop load run at ``POST /predict``;
4. **SIGKILL one worker** and assert the supervision contract: the death
   is detected, quorum ``/healthz`` degrades, the worker restarts within
   the backoff budget, and quorum recovers;
5. **rolling hot-swap** to the v2 checkpoint through ``POST /admin/swap``
   while background load runs — zero hard errors allowed (admission 503s
   are fine; refused-by-absence is not), version visibly bumps;
6. drain: every worker finishes its in-flight micro-batches and confirms.

This doubles as the CI ``cluster-smoke`` script: every step asserts, and
the script exits non-zero on any broken contract.

Run:  PYTHONPATH=src python examples/cluster_quickstart.py [--tiny]
      (--tiny shrinks training + load for CI; the default takes ~60 s)
"""

import json
import os
import signal
import sys
import threading
import time
import urllib.request

from repro.cluster import ClusterService, Supervisor, WorkerSpec
from repro.core import EMSTDPNetwork, full_precision_config
from repro.data import make_blobs
from repro.persist import save_checkpoint
from repro.serve import InferenceHTTPServer, http_predict_fn, run_load


def _wait(predicate, timeout_s: float) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def main(tiny: bool = False) -> int:
    n_requests = 120 if tiny else 600
    n_train = 60 if tiny else 200
    dims = (32, 24, 6)

    print(f"training a {dims} EMSTDP network...")
    net = EMSTDPNetwork(dims, full_precision_config(seed=1, phase_length=16))
    xs, ys = make_blobs(dims[0], dims[-1], 300, seed=0)
    net.train_stream(xs[:n_train], ys[:n_train])
    stem_v1 = "runs/cluster-quickstart/ckpt/blobs-net"
    save_checkpoint(net, stem_v1, meta={"example": "cluster_quickstart"})
    net.train_stream(xs[n_train:n_train + n_train // 2],
                     ys[n_train:n_train + n_train // 2])
    stem_v2 = "runs/cluster-quickstart/ckpt/blobs-net-retrained"
    save_checkpoint(net, stem_v2, meta={"example": "cluster_quickstart"})
    print(f"  checkpoints: {stem_v1} (v1), {stem_v2} (upgrade target)")

    print("\nbooting a 2-worker cluster (workers self-load the checkpoint)")
    spec = WorkerSpec(source=stem_v1, max_batch=8, heartbeat_s=0.2)
    # Generous heartbeat timeout: on a 1-core CI runner a busy worker's
    # heartbeat thread can stall for seconds; crash detection (step 4)
    # goes through pipe EOF, not heartbeats, so stays instant.
    supervisor = Supervisor(spec, n_workers=2, heartbeat_timeout_s=30.0,
                            backoff_base_s=0.2, backoff_cap_s=1.0)
    supervisor.start(wait=True)
    service = ClusterService(supervisor, max_inflight_per_worker=32)
    server = InferenceHTTPServer(service, port=0).start()
    pids = [w["pid"] for w in supervisor.describe()]
    print(f"  front end {server.url} (pid {os.getpid()}), workers {pids}")

    try:
        # -- 3: serve under load ----------------------------------------
        report = run_load(http_predict_fn(server.url), xs[:40],
                          n_requests=n_requests, n_clients=8)
        print(f"\nload run: {report.requests} requests -> "
              f"{report.throughput_rps:.0f} rps, p99 "
              f"{report.latency_ms['p99']:.1f} ms, errors {report.errors}, "
              f"rejected {report.rejected}")
        assert report.errors == 0, f"{report.errors} request(s) failed"

        # -- 4: kill a worker, watch supervision heal it -----------------
        victim = supervisor.describe()[0]["pid"]
        print(f"\nSIGKILL worker pid {victim} ...")
        os.kill(victim, signal.SIGKILL)
        assert _wait(lambda: supervisor.live_count() < 2, 10.0), \
            "worker death never detected"
        degraded = service.healthz()
        print(f"  detected: healthz {degraded['status']} "
              f"(live {degraded['live_workers']}/{degraded['workers']})")
        t0 = time.monotonic()
        assert _wait(lambda: supervisor.live_count() == 2, 30.0), \
            "worker not restarted within the backoff budget"
        healed = service.healthz()
        print(f"  restarted in {time.monotonic() - t0:.2f}s: healthz "
              f"{healed['status']}, restarts {healed['restarts']}")
        assert healed["status"] == "ok" and healed["restarts"] >= 1

        # -- 5: rolling hot-swap under background load -------------------
        print(f"\nrolling swap to {stem_v2} under load ...")
        box = {}
        loader = threading.Thread(
            target=lambda: box.update(report=run_load(
                http_predict_fn(server.url), xs[:40],
                n_requests=n_requests, n_clients=8)),
            daemon=True)
        loader.start()
        request = urllib.request.Request(
            server.url + "/admin/swap",
            data=json.dumps({"source": stem_v2}).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        with urllib.request.urlopen(request, timeout=120) as response:
            swap = json.loads(response.read())
        loader.join(timeout=300)
        assert not loader.is_alive(), "load run hung during rolling swap"
        swap_load = box["report"]
        print(f"  swapped workers {swap['swapped']}, failed "
              f"{swap['failed']}; load during swap: "
              f"{swap_load.requests} requests, errors {swap_load.errors}, "
              f"rejected {swap_load.rejected}")
        assert swap["failed"] == [], f"swap failed on {swap['failed']}"
        # Zero refused-by-absence: only admission 503s are acceptable.
        assert swap_load.errors == 0, \
            f"{swap_load.errors} hard error(s) during rolling swap"
        answer = service.predict(xs[0], use_cache=False)
        print(f"  now serving {answer['model']} {answer['version']} "
              f"(worker pid {answer['worker']['pid']})")
        assert answer["version"] == "v2", "version did not bump"

        metrics = service.metrics()
        print(f"\naggregated /metrics: p50 "
              f"{metrics['latency_ms']['p50']:.1f} ms, p99 "
              f"{metrics['latency_ms']['p99']:.1f} ms, rejected_503 "
              f"{metrics['rejected_503']}, restarts "
              f"{metrics['supervisor']['restarts']}")
    finally:
        server.stop()
        # -- 6: graceful drain ------------------------------------------
        drained = service.shutdown(timeout=30.0)
        print(f"\ndrain: every worker confirmed = {drained}")

    assert drained, "at least one worker failed to drain"
    print("clean shutdown — all good")
    return 0


if __name__ == "__main__":
    sys.exit(main(tiny="--tiny" in sys.argv))
