"""Observability quickstart: trace a run, scrape live Prometheus metrics.

End-to-end walk through ``repro.obs``:

1. run a tiny ``offline_accuracy`` experiment (2 seeds fanned out over 2
   worker processes) — the runner binds a ``trace.jsonl`` sink under the
   run directory and every seed, epoch, and sampled kernel timing lands
   in it, across process boundaries;
2. re-read the trace with :func:`repro.obs.read_trace` and assert its
   shape: a root ``run`` span, one ``seed`` span per seed parented to
   it, and per-process ``kernel_stats`` records;
3. render the span tree and the timing summary through the real CLI
   (``python -m repro trace show|summary <run_id>``);
4. start a live :class:`InferenceService` behind the stdlib HTTP server,
   send real requests, scrape ``GET /metrics?format=prometheus``, and
   lint the exposition with :func:`repro.obs.prom.lint` (the invariants a
   real Prometheus scraper enforces).

This doubles as the CI ``obs-smoke`` script: it exits non-zero if the
trace is missing or malformed, the CLI rendering fails, or the
Prometheus exposition does not lint clean.

Run:  PYTHONPATH=src python examples/obs_quickstart.py
"""

import json
import sys
import urllib.request

from repro import cli, obs
from repro.core import EMSTDPNetwork, full_precision_config
from repro.data import make_blobs
from repro.experiments import Runner, get_scenario
from repro.obs import prom
from repro.obs.trace import read_trace
from repro.serve import InferenceHTTPServer, InferenceService, ModelRegistry

OUT_ROOT = "runs"


def traced_run() -> str:
    """Run the tiny experiment with process fan-out; return its run id."""
    spec = get_scenario("offline_accuracy").build_spec(tiny=True)
    spec = spec.replace(seeds=(0, 1))
    print(f"running {spec.name} (tiny, seeds {spec.seeds}, 2 workers)...")
    result = Runner(out_root=OUT_ROOT, max_workers=2).run(spec)
    assert result.status == "complete", f"run ended {result.status}"
    return result.run_id


def check_trace(run_id: str) -> None:
    path = cli._resolve_trace_path(run_id, OUT_ROOT)
    records = read_trace(path)
    assert records, f"no parsable records in {path}"
    for record in records:  # every line is valid standalone JSON
        json.dumps(record)

    spans = [r for r in records if r.get("kind") == "span"]
    by_name = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)
    assert "run" in by_name, f"no root run span (saw {sorted(by_name)})"
    root = by_name["run"][0]
    seeds = by_name.get("seed", [])
    assert len(seeds) == 2, f"expected 2 seed spans, saw {len(seeds)}"
    for seed in seeds:
        assert seed["parent_id"] == root["span_id"], \
            "seed span not parented to the run span (cross-process link)"
    kstats = [r for r in records if r.get("kind") == "kernel_stats"]
    assert kstats, "no kernel_stats records (sampled profiling missing)"
    pids = {r["pid"] for r in seeds}
    assert len(pids) == 2, \
        f"seeds should come from 2 worker processes, saw pids {pids}"
    print(f"trace.jsonl: {len(records)} records, {len(spans)} spans, "
          f"{len(kstats)} kernel_stats, {len(pids)} worker pids — OK")


def render_cli(run_id: str) -> None:
    print(f"\n$ python -m repro trace show {run_id}")
    assert cli.main(["trace", "show", run_id, "--out", OUT_ROOT]) == 0
    print(f"\n$ python -m repro trace summary {run_id}")
    assert cli.main(["trace", "summary", run_id, "--out", OUT_ROOT]) == 0


def scrape_live_service() -> None:
    dims = (16, 24, 4)
    net = EMSTDPNetwork(dims, full_precision_config(seed=1, phase_length=16))
    registry = ModelRegistry()
    registry.register("blobs-net", net)
    service = InferenceService(registry, max_batch=8, max_wait_ms=5.0,
                               cache_size=64)
    server = InferenceHTTPServer(service, port=0).start()
    print(f"\nserving at {server.url} — sending requests, then scraping "
          f"/metrics in Prometheus format")
    try:
        xs, _ = make_blobs(dims[0], dims[-1], 16, seed=0)
        for x in xs:
            body = json.dumps({"input": x.tolist()}).encode()
            urllib.request.urlopen(urllib.request.Request(
                f"{server.url}/predict", data=body,
                headers={"Content-Type": "application/json"}), timeout=10)
        with urllib.request.urlopen(
                f"{server.url}/metrics?format=prometheus", timeout=10) as rsp:
            ctype = rsp.headers.get("Content-Type", "")
            text = rsp.read().decode()
    finally:
        server.stop()
        service.shutdown()

    assert ctype.startswith("text/plain"), f"wrong content type: {ctype}"
    problems = prom.lint(text)
    assert not problems, "exposition does not lint clean:\n  " \
        + "\n  ".join(problems)
    for needle in ("# TYPE repro_requests_total counter",
                   "repro_serve_requests_total",
                   "repro_latency_ms_p99"):
        assert needle in text, f"missing {needle!r} in exposition"
    lines = [l for l in text.splitlines() if l and not l.startswith("#")]
    print(f"/metrics: {len(lines)} samples, lint clean — OK")
    print("\n".join(text.splitlines()[:6]))


def main() -> int:
    run_id = traced_run()
    check_trace(run_id)
    render_cli(run_id)
    scrape_live_service()
    print("\nall observability checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
