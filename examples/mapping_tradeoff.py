"""Fig. 3 in miniature: the neurons-per-core energy trade-off.

A thin wrapper over the ``energy_tradeoff`` experiment spec: sweeps the
packing of the trainable layers through the chip energy model, prints
time / power / cores / energy per sample for FA and DFA from the stored
series, and picks the energy-optimal packing the way the paper picked
10 neurons/core for Table II.

Run:  PYTHONPATH=src python examples/mapping_tradeoff.py [--tiny]
"""

import sys

from repro.analysis import ascii_plot, format_series
from repro.experiments import Runner, get_scenario


def main(tiny: bool = False):
    scenario = get_scenario("energy_tradeoff")
    spec = scenario.build_spec(tiny=tiny).replace(seeds=(1,))
    result = Runner(max_workers=1).run(spec, progress=print)
    record = result.first_ok()
    for feedback in spec.backends:
        series = record["series"][feedback]
        print(format_series(series, title=f"=== {feedback.upper()} ===",
                            x_key="neurons_per_core"))
        print(ascii_plot(series["neurons_per_core"],
                         series["energy_per_sample_mj"],
                         label="energy per sample (mJ)"))
        best = record["metrics"][feedback]
        print(f"-> energy-optimal packing: {best['best_packing']} "
              f"neurons/core, {best['cores_used']} cores, "
              f"{best['energy_per_sample_mj']:.2f} mJ/sample\n")
    print(f"run directory: {result.run_dir}")


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv)
