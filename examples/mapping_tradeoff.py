"""Fig. 3 in miniature: the neurons-per-core energy trade-off.

Sweeps the packing of the trainable layers, prints time / power / cores /
energy per sample for FA and DFA, and picks the energy-optimal packing the
way the paper picked 10 neurons/core for Table II.

Run:  python examples/mapping_tradeoff.py
"""

from repro.analysis import (as_series, ascii_plot, best_energy_point,
                            format_series, sweep_neurons_per_core)
from repro.core import loihi_default_config


def main():
    dims = (128, 100, 10)
    for feedback in ("fa", "dfa"):
        cfg = loihi_default_config(seed=1, feedback=feedback)
        points = sweep_neurons_per_core(dims, cfg,
                                        packings=(5, 10, 15, 20, 25, 30),
                                        n_samples=10_000)
        series = as_series(points)
        print(format_series(series, title=f"=== {feedback.upper()} ===",
                            x_key="neurons_per_core"))
        print(ascii_plot(series["neurons_per_core"],
                         series["energy_per_sample_mj"],
                         label="energy per sample (mJ)"))
        best = best_energy_point(points)
        print(f"-> energy-optimal packing: {best.neurons_per_core} "
              f"neurons/core, {best.cores_used} cores, "
              f"{best.energy_per_sample_mj:.2f} mJ/sample\n")


if __name__ == "__main__":
    main()
