"""Incremental online learning (Fig. 4): add new classes after deployment.

Starts from a model trained on 4 classes, then introduces 2 new classes at
a time over three incremental iterations, using the paper's alternating
two-step schedule (learn-new with old classifier neurons disabled, then
retrain on a balanced old/new mix).  Prints the Fig. 4 curves.

Run:  python examples/incremental_learning.py
"""

from repro.analysis import ascii_plot
from repro.core import EMSTDPNetwork, full_precision_config
from repro.data import load_dataset
from repro.data.synth import Dataset
from repro.incremental import (IOLConfig, IncrementalOnlineLearner,
                               forgetting_dip, recovery)
from repro.models import ConvFrontend, paper_topology


def main():
    train, test = load_dataset("mnist_like", n_train=900, n_test=300, side=16)
    frontend = ConvFrontend(paper_topology(16, 1), seed=0)
    frontend.pretrain(train.images, train.labels, epochs=3)
    ftrain = Dataset(frontend.features(train.images), train.labels)
    ftest = Dataset(frontend.features(test.images), test.labels)

    net = EMSTDPNetwork((frontend.n_features, 100, 10),
                        full_precision_config(seed=3))
    learner = IncrementalOnlineLearner(net, ftrain, ftest,
                                       IOLConfig(seed=5))
    print("running 3 incremental iterations x 5 rounds "
          "(2 new classes per iteration)...")
    result = learner.run()
    curves = result.curves()
    print("round  step1  step2")
    for r, a1, a2 in zip(curves["rounds"], curves["after_step1"],
                         curves["after_step2"]):
        mark = "  <- 2 new classes" if r in curves["introduction_rounds"] else ""
        print(f"{r:5d}  {a1:.3f}  {a2:.3f}{mark}")
    print(ascii_plot(curves["rounds"], curves["after_step2"],
                     label="accuracy on observed classes (after step 2)"))
    print(f"mean forgetting dip at introductions: {forgetting_dip(result):.3f}")
    print(f"mean within-iteration recovery:       {recovery(result):.3f}")


if __name__ == "__main__":
    main()
