"""Incremental online learning (Fig. 4): add new classes after deployment.

A thin wrapper over the ``incremental_iol`` experiment spec: pretrain on 4
classes, then introduce 2 new classes at a time over three incremental
iterations with the paper's alternating two-step schedule.  Prints the
Fig. 4 curves from the run record's stored series.

Run:  PYTHONPATH=src python examples/incremental_learning.py [--tiny]
"""

import sys

from repro.analysis import ascii_plot
from repro.experiments import Runner, get_scenario


def main(tiny: bool = False):
    scenario = get_scenario("incremental_iol")
    spec = scenario.build_spec(tiny=tiny).replace(seeds=(5,))
    print("running the incremental-learning protocol "
          "(2 new classes per iteration)...")
    result = Runner(max_workers=1).run(spec, progress=print)
    print()
    print(result.summary())

    record = result.first_ok()
    curves = record["series"]
    print("\nround  step1  step2")
    for r, a1, a2 in zip(curves["rounds"], curves["after_step1"],
                         curves["after_step2"]):
        mark = ("  <- new classes"
                if r in curves["introduction_rounds"] else "")
        print(f"{int(r):5d}  {a1:.3f}  {a2:.3f}{mark}")
    print(ascii_plot(curves["rounds"], curves["after_step2"],
                     label="accuracy on observed classes (after step 2)"))
    m = record["metrics"]
    print(f"mean forgetting dip at introductions: {m['forgetting_dip']:.3f}")
    print(f"mean within-iteration recovery:       {m['recovery']:.3f}")
    print(f"run directory: {result.run_dir}")


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv)
