"""Serving quickstart: train a tiny model, serve it over HTTP, load-test it.

End-to-end walk through ``repro.serve``:

1. train a small EMSTDP network and save a ``repro.persist`` checkpoint;
2. load it into a :class:`ModelRegistry` and start the micro-batching
   :class:`InferenceService` plus the stdlib HTTP endpoint;
3. fire a closed-loop load run (many client threads, repeated inputs) at
   ``POST /predict`` through :mod:`repro.serve.loadgen`;
4. print the ``/metrics`` payload highlights — latency percentiles,
   batch-size histogram, cache hit rate, modeled energy per request —
   and shut everything down cleanly.

This doubles as the CI ``serve-smoke`` script: it asserts non-zero cache
hits, zero request errors, and a clean shutdown, and exits non-zero
otherwise.

Run:  PYTHONPATH=src python examples/serve_quickstart.py [--tiny]
      (--tiny shrinks the load run for CI; the default takes ~30 s)
"""

import sys

from repro.core import EMSTDPNetwork, full_precision_config
from repro.data import make_blobs
from repro.persist import save_checkpoint
from repro.serve import (InferenceHTTPServer, InferenceService, ModelRegistry,
                         http_predict_fn, run_load)


def main(tiny: bool = False) -> int:
    n_requests = 200 if tiny else 1000
    dims = (32, 24, 6)

    print(f"training a {dims} EMSTDP network...")
    net = EMSTDPNetwork(dims, full_precision_config(seed=1, phase_length=16))
    xs, ys = make_blobs(dims[0], dims[-1], 300, seed=0)
    train_acc = net.train_stream(xs[:200], ys[:200])
    print(f"  online training accuracy: {train_acc:.2f}")

    stem = "runs/serve-quickstart/ckpt/blobs-net"
    save_checkpoint(net, stem, meta={"example": "serve_quickstart"})
    print(f"  checkpoint: {stem}.npz / .json")

    registry = ModelRegistry()
    registry.load(stem, name="blobs-net")
    service = InferenceService(registry, max_batch=16, max_wait_ms=5.0,
                               cache_size=256)
    server = InferenceHTTPServer(service, port=0).start()
    print(f"serving at {server.url}  (POST /predict, GET /healthz, "
          f"GET /metrics)")

    try:
        report = run_load(http_predict_fn(server.url), xs[:40],
                          n_requests=n_requests, n_clients=8)
        metrics = service.metrics()
    finally:
        server.stop()
        service.shutdown()

    print(f"\nload run: {report.requests} requests from "
          f"{report.n_clients} clients in {report.duration_s:.2f}s "
          f"-> {report.throughput_rps:.0f} rps")
    lat = metrics["latency_ms"]
    print(f"latency (ms): p50 {lat['p50']:.2f}  p95 {lat['p95']:.2f}  "
          f"p99 {lat['p99']:.2f}")
    print(f"batch sizes: {metrics['batch_size_histogram']} "
          f"(mean {metrics['mean_batch_size']:.1f})")
    cache = metrics["cache"]
    print(f"cache: {cache['hits']} hits / {cache['misses']} misses "
          f"(hit rate {cache['hit_rate']:.2f})")
    print(f"energy: {metrics['energy_mj_per_request']:.3f} mJ/request "
          f"modeled ({metrics['energy_mj_total']:.1f} mJ total)")

    # The CI smoke contract: real traffic, warm cache, clean shutdown.
    assert report.errors == 0, f"{report.errors} request(s) failed"
    assert cache["hits"] > 0, "repeated inputs produced no cache hits"
    assert service.closed, "service did not shut down"
    print("\nclean shutdown — all good")
    return 0


if __name__ == "__main__":
    sys.exit(main(tiny="--tiny" in sys.argv))
