"""Section IV-A setup: pretrained conv frontend + on-chip dense training.

A thin wrapper over the ``offline_accuracy`` spec with the paper's
transfer-learning arrangement switched on (``use_frontend`` +
``onchip_frontend``): the convolutional layers are pretrained offline with
backprop, unrolled into fixed spiking connectivity on the chip, and the
dense layers are trained from scratch *in hardware* with EMSTDP, online,
batch size 1.

Run:  PYTHONPATH=src python examples/online_learning_mnist.py [--tiny]
"""

import sys

from repro.experiments import Runner, get_scenario


def main(tiny: bool = False):
    scenario = get_scenario("offline_accuracy")
    spec = scenario.build_spec(tiny=tiny)
    spec = spec.replace(
        backends=("chip",), seeds=(1,),
        params={**spec.params, "use_frontend": True, "onchip_frontend": True,
                "frontend_epochs": 4, "chip_train_limit": 200,
                "chip_test_limit": 100},
    )
    print("pretraining conv frontend offline, then training the dense "
          "layers on-chip (online, batch 1)...")
    result = Runner(max_workers=1).run(spec, progress=print)
    print()
    print(result.summary())
    chip = result.first_ok()["metrics"]["chip"]
    print(f"\nmodeled hardware: {chip['cores_used']} cores, "
          f"{chip['fps']:.0f} FPS, {chip['power_w']:.3f} W, "
          f"{chip['energy_per_sample_mj']:.2f} mJ/img "
          f"(paper: 50 FPS, 0.42 W, 8.4 mJ/img while training)")
    print(f"run directory: {result.run_dir}")


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv)
