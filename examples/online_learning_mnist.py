"""Section IV-A setup: pretrained conv frontend + on-chip dense training.

Reproduces the paper's transfer-learning arrangement on the MNIST-like
dataset: the two convolutional layers are pretrained offline with backprop,
converted to fixed spiking connectivity on the chip, and the two dense
layers (100d-10d) are trained from scratch *in hardware* with EMSTDP,
online, batch size 1.

Run:  python examples/online_learning_mnist.py
"""

import numpy as np

from repro.core import loihi_default_config
from repro.data import load_dataset
from repro.models import ConvFrontend, paper_topology
from repro.models.convert import frontend_matrices
from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network


def main():
    train, test = load_dataset("mnist_like", n_train=600, n_test=150, side=16)

    print("pretraining conv frontend offline (numpy CNN, SGD+momentum)...")
    frontend = ConvFrontend(paper_topology(side=16, channels=1), seed=0)
    result = frontend.pretrain(train.images, train.labels, epochs=4)
    print(f"offline head train accuracy: {result.train_accuracy:.3f}")

    print("unrolling conv layers into fixed on-chip connectivity...")
    mats, biases = frontend_matrices(frontend)
    for i, m in enumerate(mats):
        print(f"  conv{i}: {m.shape[0]} -> {m.shape[1]} "
              f"({np.count_nonzero(m)} synapses)")

    cfg = loihi_default_config(seed=1, feedback="dfa",
                               learning_rate=2.0**-5, error_gain=2.0)
    model = build_emstdp_network(
        (frontend.n_features, 100, 10), cfg,
        frontend_layers=list(zip(mats, biases)))
    trainer = LoihiEMSTDPTrainer(model, neurons_per_core=10)
    print(f"deployed on {trainer.mapping.cores_used} cores")

    print("training dense layers on-chip (online, batch 1)...")
    n = 200  # keep the demo quick; more samples -> higher accuracy
    correct = 0
    for i, (x, y) in enumerate(zip(train.flat()[:n], train.labels[:n])):
        out = trainer.train_sample(x, int(y))
        correct += int(out["correct"])
        if (i + 1) % 50 == 0:
            print(f"  sample {i + 1}: running accuracy {correct / (i + 1):.3f}")

    acc = trainer.evaluate(test.flat()[:100], test.labels[:100])
    print(f"test accuracy after {n} online samples: {acc:.3f}")
    report = trainer.energy_report()
    print(f"modeled hardware: {report.fps:.0f} FPS, {report.power_w:.3f} W, "
          f"{report.energy_per_sample_mj:.2f} mJ/img "
          f"(paper: 50 FPS, 0.42 W, 8.4 mJ/img while training)")


if __name__ == "__main__":
    main()
