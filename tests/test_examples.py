"""Smoke coverage for the example scripts.

Each example is a thin wrapper over an :class:`ExperimentSpec`; importing
one must be side-effect free, and the quickstart spec must run end-to-end
on tiny sizes in well under 30 s.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.experiments import Runner, get_scenario

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_NAMES = ["quickstart", "online_learning_mnist",
                 "incremental_learning", "mapping_tradeoff", "mstar_sar"]


def _load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


@pytest.mark.parametrize("name", EXAMPLE_NAMES)
def test_example_imports_cleanly_and_exposes_main(name):
    module = _load_example(name)
    assert callable(module.main)
    # thin-wrapper contract: every example drives the runner, not ad-hoc
    # training loops
    assert hasattr(module, "Runner")


def test_serve_quickstart_imports_cleanly_and_exposes_main():
    # The serving example wraps repro.serve instead of the runner.
    module = _load_example("serve_quickstart")
    assert callable(module.main)
    assert hasattr(module, "InferenceService")


def test_quickstart_spec_end_to_end_tiny(tmp_path):
    """The quickstart spec (rate + chip backends) runs end to end."""
    spec = get_scenario("offline_accuracy").build_spec(tiny=True).replace(
        backends=("rate", "chip"), seeds=(1,))
    result = Runner(out_root=tmp_path, max_workers=1).run(spec)
    assert result.status == "complete"
    metrics = result.ok_records()[0]["metrics"]
    assert set(metrics) == {"rate", "chip"}
    assert metrics["chip"]["cores_used"] > 0
    assert (result.run_dir / "checkpoints" / "seed1-chip.json").is_file()
