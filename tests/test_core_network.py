"""Integration tests for the full-precision EMSTDP network."""

import numpy as np
import pytest

from repro.core import (EMSTDPConfig, EMSTDPNetwork, full_precision_config,
                        loihi_default_config)

from conftest import make_blobs


def small_cfg(**kw):
    base = dict(seed=1, phase_length=32)
    base.update(kw)
    return EMSTDPConfig(**base)


class TestConstruction:
    def test_weight_shapes_include_bias_row(self):
        net = EMSTDPNetwork((8, 16, 3), small_cfg(use_bias_neuron=True))
        assert [w.shape for w in net.weights] == [(9, 16), (17, 3)]

    def test_weight_shapes_without_bias(self):
        net = EMSTDPNetwork((8, 16, 3), small_cfg(use_bias_neuron=False))
        assert [w.shape for w in net.weights] == [(8, 16), (16, 3)]

    def test_seed_reproducibility(self):
        a = EMSTDPNetwork((8, 16, 3), small_cfg())
        b = EMSTDPNetwork((8, 16, 3), small_cfg())
        for wa, wb in zip(a.weights, b.weights):
            assert np.array_equal(wa, wb)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            EMSTDPNetwork((8,), small_cfg())
        with pytest.raises(ValueError):
            EMSTDPNetwork((8, 0, 3), small_cfg())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EMSTDPConfig(feedback="backprop")
        with pytest.raises(ValueError):
            EMSTDPConfig(phase_length=0)
        with pytest.raises(ValueError):
            EMSTDPConfig(weight_bits=8)  # needs weight_clip


class TestLearning:
    @pytest.mark.parametrize("feedback", ["fa", "dfa"])
    def test_learns_blobs(self, blob_task, feedback):
        xs, ys, tx, ty = blob_task
        net = EMSTDPNetwork((8, 16, 3), small_cfg(feedback=feedback))
        before = net.evaluate(tx, ty)
        net.train_stream(xs, ys)
        after = net.evaluate(tx, ty)
        assert after > before
        assert after >= 0.9

    def test_learns_with_8bit_weights(self, blob_task):
        xs, ys, tx, ty = blob_task
        net = EMSTDPNetwork((8, 16, 3),
                            loihi_default_config(seed=1, phase_length=32))
        net.train_stream(xs, ys)
        assert net.evaluate(tx, ty) >= 0.85

    def test_quantized_weights_stay_on_grid(self, blob_task):
        xs, ys, _, _ = blob_task
        cfg = loihi_default_config(seed=1, phase_length=32)
        net = EMSTDPNetwork((8, 16, 3), cfg)
        net.train_stream(xs[:50], ys[:50])
        from repro.core import quant_step
        step = quant_step(cfg.weight_bits, cfg.weight_clip)
        for w in net.weights:
            assert np.allclose(w, np.round(w / step) * step, atol=1e-9)

    def test_three_layer_network_learns(self, blob_task):
        xs, ys, tx, ty = blob_task
        net = EMSTDPNetwork((8, 24, 16, 3), small_cfg())
        net.train_stream(xs, ys)
        net.train_stream(xs, ys)
        assert net.evaluate(tx, ty) >= 0.8

    def test_lr_scale_zero_freezes_weights(self, blob_task):
        xs, ys, _, _ = blob_task
        net = EMSTDPNetwork((8, 16, 3), small_cfg(stochastic_rounding=False))
        snapshot = [w.copy() for w in net.weights]
        net.train_stream(xs[:20], ys[:20], lr_scale=0.0)
        for w, s in zip(net.weights, snapshot):
            assert np.array_equal(w, s)

    def test_train_sample_diagnostics(self):
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        out = net.train_sample(np.full(8, 0.5), 1)
        assert set(out) == {"h", "h_hat", "prediction", "correct"}
        assert len(out["h"]) == 3
        assert out["h"][0].shape == (8,)


class TestPhases:
    def test_phase2_moves_output_toward_target(self):
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        x = np.full(8, 0.6)
        h, h_hat = net._rate_two_phase(x, 0)
        # target class rate must not decrease; rival classes must not rise
        assert h_hat[-1][0] >= h[-1][0]
        assert h_hat[-1][1] <= h[-1][1] + 1e-9
        assert h_hat[-1][2] <= h[-1][2] + 1e-9

    def test_gating_blocks_dead_neuron_errors(self):
        cfg = small_cfg(feedback="fa", gate_hidden=True)
        net = EMSTDPNetwork((8, 16, 3), cfg)
        x = np.zeros(8)  # with zero input only bias drives; most units silent
        h, h_hat = net._rate_two_phase(x, 0)
        dead = h[1] == 0
        # corrections cannot excite dead hidden neurons through FA
        assert np.all(h_hat[1][dead] <= h[1][dead] + 1e-9)

    def test_rates_always_on_grid(self):
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        T = net.config.T
        h, h_hat = net._rate_two_phase(np.full(8, 0.37), 2)
        for r in h:  # phase-1 rates are exact grid rates
            assert np.allclose(r * T, np.round(r * T), atol=1e-9)


class TestClassMask:
    def test_masked_classes_never_predicted(self, blob_task):
        xs, ys, tx, ty = blob_task
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        net.set_class_mask([0, 2])
        preds = {net.predict(x) for x in tx[:50]}
        assert 1 not in preds

    def test_mask_requires_nonempty(self):
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        with pytest.raises(ValueError):
            net.set_class_mask([])

    def test_clear_mask_restores(self):
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        net.set_class_mask([0])
        net.clear_class_mask()
        assert net.class_mask.all()


class TestCheckpointing:
    def test_state_roundtrip(self, blob_task):
        xs, ys, tx, ty = blob_task
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        net.train_stream(xs[:100], ys[:100])
        state = net.state_dict()
        clone = EMSTDPNetwork((8, 16, 3), small_cfg(seed=99))
        clone.load_state_dict(state)
        assert clone.evaluate(tx, ty) == net.evaluate(tx, ty)

    def test_dims_mismatch_rejected(self):
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        other = EMSTDPNetwork((8, 8, 3), small_cfg())
        with pytest.raises(ValueError):
            other.load_state_dict(net.state_dict())


class TestSpikeBackend:
    def test_spike_phase1_matches_rate_phase1(self):
        """The closed-form rate solution tracks the explicit simulation."""
        cfg_rate = small_cfg(phase_length=64)
        cfg_spike = small_cfg(phase_length=64, dynamics="spike")
        a = EMSTDPNetwork((8, 12, 3), cfg_rate)
        b = EMSTDPNetwork((8, 12, 3), cfg_spike)
        b.load_state_dict(a.state_dict())
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.uniform(0, 1, 8)
            ra = a.output_rates(x)
            rb = b.output_rates(x)
            # transients cost at most a few spikes out of T
            assert np.max(np.abs(ra - rb)) <= 8.0 / 64

    def test_spike_backend_learns(self):
        xs, ys = make_blobs(8, 3, 200, seed=0)
        tx, ty = make_blobs(8, 3, 100, seed=1)
        net = EMSTDPNetwork((8, 16, 3), small_cfg(dynamics="spike"))
        before = net.evaluate(tx, ty)
        net.train_stream(xs, ys)
        assert net.evaluate(tx, ty) > before

    @pytest.mark.parametrize("feedback", ["fa", "dfa"])
    def test_spike_two_phase_runs(self, feedback):
        cfg = small_cfg(dynamics="spike", feedback=feedback, phase_length=16)
        net = EMSTDPNetwork((6, 10, 3), cfg)
        out = net.train_sample(np.full(6, 0.5), 1)
        assert 0.0 <= out["h_hat"][-1].max() <= 1.0


class TestConfigFactories:
    def test_loihi_default_has_8bit(self):
        cfg = loihi_default_config()
        assert cfg.weight_bits == 8
        assert cfg.weight_clip is not None

    def test_full_precision_has_no_quantization(self):
        cfg = full_precision_config()
        assert cfg.weight_bits is None

    def test_paper_hyperparameters(self):
        cfg = full_precision_config()
        assert cfg.phase_length == 64
        assert cfg.learning_rate == pytest.approx(2.0 ** -3)
