"""Checkpoint round trips: save -> load must be bit-identical.

Covers the three trainable model families the ``repro.persist`` layer
supports — the full-precision :class:`EMSTDPNetwork` (both dynamics
backends), the :class:`BackpropMLP` baseline, and the simulated-chip
:class:`LoihiEMSTDPTrainer` — plus the manifest/versioning contract.
"""

import json

import numpy as np
import pytest

import repro
from repro.baselines import BackpropMLP
from repro.core import EMSTDPNetwork, full_precision_config, loihi_default_config
from repro.data.synth import make_blobs
from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network
from repro.persist import (CHECKPOINT_FORMAT_VERSION, CheckpointError,
                           checkpoint_paths, load_checkpoint, save_checkpoint)

DIMS = (12, 10, 4)


def _task(seed=3, n=40):
    return make_blobs(DIMS[0], DIMS[-1], n, seed=seed)


def _trained_emstdp(dynamics="rate"):
    net = EMSTDPNetwork(DIMS, full_precision_config(
        seed=1, dynamics=dynamics, phase_length=8))
    xs, ys = _task()
    net.train_stream(xs[:20], ys[:20])
    return net


@pytest.mark.parametrize("dynamics", ["rate", "spike"])
def test_emstdp_round_trip_bit_identical(tmp_path, dynamics):
    net = _trained_emstdp(dynamics)
    xs, _ = _task(seed=9)
    before = [net.predict(x) for x in xs]

    save_checkpoint(net, tmp_path / "net")
    fresh = EMSTDPNetwork(DIMS, full_precision_config(
        seed=77, dynamics=dynamics, phase_length=8))  # different init
    load_checkpoint(tmp_path / "net", model=fresh)

    assert [fresh.predict(x) for x in xs] == before
    for w_a, w_b in zip(net.weights, fresh.weights):
        np.testing.assert_array_equal(w_a, w_b)
    for b_a, b_b in zip(net.feedback_weights, fresh.feedback_weights):
        np.testing.assert_array_equal(b_a, b_b)
    assert fresh.samples_seen == net.samples_seen


def test_backprop_round_trip_bit_identical(tmp_path):
    model = BackpropMLP(DIMS, lr=0.1, seed=2)
    xs, ys = _task()
    model.train_stream(xs[:20], ys[:20])
    logits_before = model._forward_batch(xs)[-1]

    save_checkpoint(model, tmp_path / "mlp")
    fresh = BackpropMLP(DIMS, lr=0.5, seed=99)
    load_checkpoint(tmp_path / "mlp", model=fresh)

    np.testing.assert_array_equal(fresh._forward_batch(xs)[-1],
                                  logits_before)
    assert fresh.lr == 0.1


def test_loihi_trainer_round_trip_bit_identical(tmp_path):
    cfg = loihi_default_config(seed=4, phase_length=8,
                               learning_rate=2.0 ** -4, error_gain=2.0)
    trainer = LoihiEMSTDPTrainer(build_emstdp_network(DIMS, cfg))
    xs, ys = _task()
    trainer.train_stream(xs[:10], ys[:10])
    rates_before = np.stack([trainer.infer(x) for x in xs[:8]])

    save_checkpoint(trainer, tmp_path / "chip")
    fresh = LoihiEMSTDPTrainer(build_emstdp_network(DIMS, cfg.replace(seed=55)))
    load_checkpoint(tmp_path / "chip", model=fresh)

    np.testing.assert_array_equal(
        np.stack([fresh.infer(x) for x in xs[:8]]), rates_before)
    assert fresh.samples_trained == trainer.samples_trained


def test_class_mask_survives_round_trip(tmp_path):
    net = _trained_emstdp()
    net.set_class_mask([0, 2])
    save_checkpoint(net, tmp_path / "masked")
    fresh = EMSTDPNetwork(DIMS, full_precision_config(seed=5,
                                                      phase_length=8))
    load_checkpoint(tmp_path / "masked", model=fresh)
    np.testing.assert_array_equal(fresh.class_mask, net.class_mask)


def test_dotted_stem_keeps_its_name(tmp_path):
    npz_path, json_path = checkpoint_paths(tmp_path / "model-v1.2")
    assert npz_path.name == "model-v1.2.npz"
    assert json_path.name == "model-v1.2.json"
    net = _trained_emstdp()
    save_checkpoint(net, tmp_path / "model-v1.2")
    state, _ = load_checkpoint(tmp_path / "model-v1.2")
    assert tuple(state["dims"]) == DIMS


def test_manifest_contents_and_meta(tmp_path):
    net = _trained_emstdp()
    manifest_path = save_checkpoint(net, tmp_path / "net",
                                    meta={"seed": 7, "experiment": "x"})
    npz_path, json_path = checkpoint_paths(tmp_path / "net")
    assert manifest_path == json_path and npz_path.exists()
    manifest = json.loads(json_path.read_text())
    assert manifest["format_version"] == CHECKPOINT_FORMAT_VERSION
    assert manifest["repro_version"] == repro.__version__
    assert manifest["model_class"] == "EMSTDPNetwork"
    assert manifest["meta"] == {"seed": 7, "experiment": "x"}


def test_wrong_model_class_rejected(tmp_path):
    save_checkpoint(_trained_emstdp(), tmp_path / "net")
    with pytest.raises(CheckpointError, match="EMSTDPNetwork"):
        load_checkpoint(tmp_path / "net", model=BackpropMLP(DIMS))


def test_dims_mismatch_rejected(tmp_path):
    save_checkpoint(_trained_emstdp(), tmp_path / "net")
    other = EMSTDPNetwork((12, 6, 4), full_precision_config(phase_length=8))
    with pytest.raises(ValueError, match="dims"):
        load_checkpoint(tmp_path / "net", model=other)


def test_future_format_version_rejected(tmp_path):
    save_checkpoint(_trained_emstdp(), tmp_path / "net")
    _, json_path = checkpoint_paths(tmp_path / "net")
    manifest = json.loads(json_path.read_text())
    manifest["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
    json_path.write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="newer"):
        load_checkpoint(tmp_path / "net")


def test_missing_checkpoint_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint"):
        load_checkpoint(tmp_path / "nope")


def test_missing_npz_half_raises_checkpoint_error(tmp_path):
    save_checkpoint(_trained_emstdp(), tmp_path / "net")
    npz_path, _ = checkpoint_paths(tmp_path / "net")
    npz_path.unlink()
    with pytest.raises(CheckpointError, match="no array file"):
        load_checkpoint(tmp_path / "net")


def test_missing_manifest_half_raises_checkpoint_error(tmp_path):
    save_checkpoint(_trained_emstdp(), tmp_path / "net")
    _, json_path = checkpoint_paths(tmp_path / "net")
    json_path.unlink()
    with pytest.raises(CheckpointError, match="no manifest"):
        load_checkpoint(tmp_path / "net")


def test_str_and_path_stems_are_equivalent(tmp_path):
    net = _trained_emstdp()
    save_checkpoint(net, str(tmp_path / "as-str"))  # str stem
    state, _ = load_checkpoint(tmp_path / "as-str")  # Path stem
    assert tuple(state["dims"]) == DIMS
    assert checkpoint_paths(str(tmp_path / "x")) == \
        checkpoint_paths(tmp_path / "x")


def test_stem_with_pair_extension_resolves_to_same_pair(tmp_path):
    net = _trained_emstdp()
    save_checkpoint(net, tmp_path / "net")
    for alias in ("net.npz", "net.json"):
        assert checkpoint_paths(tmp_path / alias) == \
            checkpoint_paths(tmp_path / "net")
        state, _ = load_checkpoint(tmp_path / alias)
        assert tuple(state["dims"]) == DIMS


def test_state_dict_carries_config_for_registry_rebuilds(tmp_path):
    net = _trained_emstdp()
    save_checkpoint(net, tmp_path / "net")
    state, _ = load_checkpoint(tmp_path / "net")
    assert state["config"]["phase_length"] == 8
    assert state["config"]["dynamics"] == "rate"


def test_load_without_model_returns_state(tmp_path):
    net = _trained_emstdp()
    save_checkpoint(net, tmp_path / "net")
    state, manifest = load_checkpoint(tmp_path / "net")
    assert tuple(state["dims"]) == DIMS
    assert len(state["weights"]) == len(net.weights)
    assert manifest["model_class"] == "EMSTDPNetwork"
