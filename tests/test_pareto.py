"""Tests for Pareto-front analysis and the sweep CLI around it.

The pure-function half exercises :mod:`repro.analysis.pareto` on a
hand-built set of summaries with a known frontier; the CLI half drives
``sweep pareto`` / ``sweep show --strict`` / ``sweep compare --strict``
against a synthetic on-disk sweep (no training runs needed).
"""

import json

import pytest

from repro import cli
from repro.analysis.pareto import (ParetoAxis, axis_value, pareto_front,
                                   pareto_table, resolve_axes)
from repro.experiments import get_scenario
from repro.sweeps import SweepStore
from repro.sweeps.spec import SweepAxis, SweepSpec


def summary(pid, status="complete", metrics=None, **extra):
    entry = {"point_id": pid, "run_id": f"run-{pid}",
             "overrides": {"epochs": 1}, "status": status,
             "seeds_ok": 2 if status == "complete" else 0,
             "seeds_total": 2, "duration_s": 1.0,
             "metrics": metrics or {}}
    entry.update(extra)
    return entry


#: A known frontier over (acc max, energy_nj min):
#: p000 and p001 trade off (both on front), p003 ties p000 exactly
#: (ties never dominate, so it stays on front), p002 is dominated by
#: p000 on both axes.
KNOWN = [
    summary("p000", metrics={"acc": 0.90, "energy_nj": 10.0}),
    summary("p001", metrics={"acc": 0.80, "energy_nj": 5.0}),
    summary("p002", metrics={"acc": 0.85, "energy_nj": 12.0}),
    summary("p003", metrics={"acc": 0.90, "energy_nj": 10.0}),
]
AXES = [ParetoAxis("acc", "max"), ParetoAxis("energy_nj", "min")]


# ---------------------------------------------------------------------------
# axes
# ---------------------------------------------------------------------------

def test_axis_parse_forms():
    assert ParetoAxis.parse("acc") == ParetoAxis("acc", "max")
    assert ParetoAxis.parse("energy_nj:min") == ParetoAxis("energy_nj",
                                                           "min")
    assert ParetoAxis.parse(" acc :max") == ParetoAxis("acc", "max")
    # A colon with an unknown mode is part of the metric name.
    assert ParetoAxis.parse("ns:chip").metric == "ns:chip"
    with pytest.raises(ValueError, match="max.*min"):
        ParetoAxis("acc", "best")


def test_axis_value_reads_metrics_then_top_level():
    entry = summary("p", metrics={"acc": 0.5}, duration_s=2.5)
    assert axis_value(entry, "acc") == 0.5
    assert axis_value(entry, "duration_s") == 2.5  # pseudo-metric
    assert axis_value(entry, "missing") is None
    assert axis_value(summary("p", metrics={"flag": True}), "flag") is None


def test_resolve_axes_defaults_mirror_the_paper():
    entries = [summary("p", metrics={"test_acc": 0.9, "energy_nj": 3.0,
                                     "latency_ms": 7.0})]
    axes = resolve_axes(entries)
    assert axes == [ParetoAxis("test_acc", "max"),
                    ParetoAxis("energy_nj", "min"),
                    ParetoAxis("latency_ms", "min")]
    # Without a latency-like metric, wall clock is the latency proxy.
    entries = [summary("p", metrics={"test_acc": 0.9})]
    assert resolve_axes(entries) == [ParetoAxis("test_acc", "max"),
                                     ParetoAxis("duration_s", "min")]
    # Axes nobody carries are dropped; explicit axes pass through.
    assert resolve_axes(entries, [ParetoAxis("nope")]) == []
    assert resolve_axes(entries, [ParetoAxis("test_acc")]) == [
        ParetoAxis("test_acc")]


# ---------------------------------------------------------------------------
# the front
# ---------------------------------------------------------------------------

def test_known_frontier():
    result = pareto_front(KNOWN, AXES)
    assert result["front"] == ["p000", "p001", "p003"]
    by_id = {p["point_id"]: p for p in result["points"]}
    assert by_id["p002"]["dominated_by"] == 2  # by p000 and p003
    assert by_id["p002"]["on_front"] is False
    assert by_id["p000"]["dominates"] == 1
    # Strictly better on acc than p001/p002, on energy than p002 only
    # (p001 is cheaper, p003 is an exact tie).
    assert by_id["p000"]["per_axis_beats"] == {"acc": 2, "energy_nj": 1}
    assert by_id["p000"]["values"] == {"acc": 0.90, "energy_nj": 10.0}
    assert result["skipped"] == []


def test_failed_and_metricless_points_are_skipped():
    entries = KNOWN + [
        summary("p004", status="failed"),
        summary("p005", status="running"),
        summary("p006", metrics={"acc": 0.99}),  # no energy value
    ]
    result = pareto_front(entries, AXES)
    assert result["front"] == ["p000", "p001", "p003"]
    assert {(s["point_id"], s["reason"]) for s in result["skipped"]} == {
        ("p004", "failed"), ("p005", "running"),
        ("p006", "missing_metric")}
    # A skipped point never enters dominance counts.
    by_id = {p["point_id"]: p for p in result["points"]}
    assert "p006" not in by_id
    assert by_id["p000"]["dominates"] == 1


def test_single_axis_front_is_the_argmax():
    result = pareto_front(KNOWN, [ParetoAxis("acc", "max")])
    assert result["front"] == ["p000", "p003"]


def test_pareto_table_front_first_best_leading():
    headers, rows = pareto_table(pareto_front(KNOWN, AXES))
    assert headers[:2] == ["point", "front"]
    assert "acc (max)" in headers and "energy_nj (min)" in headers
    assert [r[0] for r in rows] == ["p000", "p003", "p001", "p002"]
    assert [r[1] for r in rows] == ["*", "*", "*", ""]


# ---------------------------------------------------------------------------
# CLI over a synthetic sweep
# ---------------------------------------------------------------------------

@pytest.fixture()
def sweep_on_disk(tmp_path):
    """A 3-point sweep directory: two complete points, one failed."""
    base = get_scenario("offline_accuracy").build_spec(tiny=True).replace(
        backends=("backprop",), n_train=40, n_test=20)
    spec = SweepSpec(name="epochs_sweep", base=base,
                     grid=(SweepAxis("epochs", (1, 2, 3)),),
                     objective="backprop.test_acc")
    store = SweepStore(tmp_path)
    sweep = store.create_sweep(spec, "20260101-000000-abc123")
    lines = [
        summary("p000", metrics={"backprop.test_acc": 0.90,
                                 "energy_nj": 10.0}),
        summary("p001", metrics={"backprop.test_acc": 0.80,
                                 "energy_nj": 5.0}),
        summary("p002", status="failed"),
    ]
    for line, status in zip(lines, ("complete", "complete", "failed")):
        sweep = store.update_point(sweep, line["point_id"],
                                   run_id=line["run_id"], status=status)
        store.append_summary(sweep, line)
    store.update_status(sweep, "failed")
    return tmp_path, sweep.sweep_id


def test_cli_sweep_pareto_table(sweep_on_disk, capsys):
    root, sweep_id = sweep_on_disk
    assert cli.main(["sweep", "pareto", sweep_id,
                     "--out", str(root)]) == 0
    out = capsys.readouterr().out
    assert "pareto front" in out
    assert "2/2 point(s) on front" in out
    assert "backprop.test_acc:max" in out and "energy_nj:min" in out
    assert "1 point(s) excluded: p002 (failed)" in out


def test_cli_sweep_pareto_json_and_explicit_axes(sweep_on_disk, capsys):
    root, sweep_id = sweep_on_disk
    assert cli.main(["sweep", "pareto", sweep_id, "--out", str(root),
                     "--axis", "backprop.test_acc:max",
                     "--axis", "energy_nj:min", "--json"]) == 0
    result = json.loads(capsys.readouterr().out)
    assert result["front"] == ["p000", "p001"]
    assert result["axes"] == [
        {"metric": "backprop.test_acc", "mode": "max"},
        {"metric": "energy_nj", "mode": "min"}]


def test_cli_sweep_pareto_no_scored_points_errors(sweep_on_disk, capsys):
    root, sweep_id = sweep_on_disk
    assert cli.main(["sweep", "pareto", sweep_id, "--out", str(root),
                     "--axis", "no_such_metric"]) == 2
    assert "no complete points" in capsys.readouterr().err


def test_cli_sweep_show_renders_failed_without_crashing(sweep_on_disk,
                                                        capsys):
    root, sweep_id = sweep_on_disk
    assert cli.main(["sweep", "show", sweep_id, "--out", str(root)]) == 0
    out = capsys.readouterr().out
    assert "FAILED" in out
    assert "excluded from best-point/marginals/pareto" in out
    assert "best:p000" in out  # failed point never wins best
    # --strict is the only path to a non-zero exit.
    assert cli.main(["sweep", "show", sweep_id, "--out", str(root),
                     "--strict"]) == 1


def test_cli_sweep_compare_failed_points(sweep_on_disk, capsys):
    root, sweep_id = sweep_on_disk
    assert cli.main(["sweep", "compare", sweep_id, sweep_id,
                     "--out", str(root)]) == 0
    out = capsys.readouterr().out
    assert "sweeps side by side" in out
    assert "p000" in out
    assert cli.main(["sweep", "compare", sweep_id,
                     "--out", str(root), "--strict"]) == 1
