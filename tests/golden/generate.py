"""Regenerate the golden kernel fixtures (``kernels_golden.npz``).

The fixtures pin the EMSTDP learning-rule outputs — Eq. (7), its ordered
batch reduction, Eq. (12) and the microcode sum-of-products — to the exact
float64 values the reference NumPy implementation produced when they were
first recorded.  ``tests/test_kernels.py`` asserts every kernel backend
reproduces them bit for bit, so a kernel edit that drifts the math by even
one ulp fails loudly instead of silently skewing training.

Run from the repo root (only when the *reference semantics* intentionally
change, never to paper over a failing equivalence test)::

    PYTHONPATH=src python tests/golden/generate.py

All inputs are stored alongside the outputs so the test does not depend on
RNG reproducibility across NumPy versions.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.learning import delta_w_loihi_form, delta_w_reference

#: Microcode rules pinned by the fixture (stored as text, parsed on load).
RULES = (
    "dt = y1",
    "dw = 2^-2 * y1 * x1 - 2^-3 * t * x1",
    "dw = 2^-4 * y1 * (x1 + 2) - 2^-6 * t * w + 3",
)

OUT = Path(__file__).with_name("kernels_golden.npz")


def _sop_reference(rule_text: str, x0, x1, y0, y1, tag, w) -> np.ndarray:
    """Reference sum-of-products evaluation (mirrors LearningEngine)."""
    from repro.loihi.microcode import parse_rule

    rule = parse_rule(rule_text)
    if x0.ndim == 2:  # replicated: (R, S) / (R, D) / (R, S, D)
        variables = {
            "x0": x0[:, :, None], "x1": x1[:, :, None],
            "y0": y0[:, None, :], "y1": y1[:, None, :],
            "t": tag, "w": w,
        }
    else:
        variables = {
            "x0": x0[:, None], "x1": x1[:, None],
            "y0": y0[None, :], "y1": y1[None, :],
            "t": tag, "w": w,
        }
    dz = np.zeros(w.shape, dtype=np.float64)
    for term in rule.terms:
        value = np.array(float(term.sign) * 2.0 ** term.scale_exp)
        for factor in term.factors:
            base = variables[factor.var] if factor.var is not None else 0
            value = value * (base + factor.const)
        dz = dz + value
    return dz


def main() -> None:
    rng = np.random.default_rng(20260807)
    data = {}

    # -- Eq. (7): dW = eta * (h_hat - h) (x) h_pre ----------------------
    n_pre, n_post, eta = 48, 32, 0.125
    h_hat = rng.random(n_post)
    h = rng.random(n_post)
    pre = rng.random(n_pre)
    data.update(eq7_h_hat=h_hat, eq7_h=h, eq7_pre=pre,
                eq7_eta=np.float64(eta),
                eq7_dw=delta_w_reference(h_hat, h, pre, eta))

    # -- Ordered batch reduction of Eq. (7) -----------------------------
    # The reference order is defined as: accumulate per-sample outer
    # products in batch order, then scale by eta (and 1/B for the mean).
    B = 16
    bh_hat = rng.random((B, n_post))
    bh = rng.random((B, n_post))
    bpre = rng.random((B, n_pre))
    diff = bh_hat - bh
    acc = np.zeros((n_pre, n_post))
    for b in range(B):
        acc += bpre[b][:, None] * diff[b][None, :]
    data.update(eq7b_h_hat=bh_hat, eq7b_h=bh, eq7b_pre=bpre,
                eq7b_eta=np.float64(eta),
                eq7b_dw_sum=eta * acc,
                eq7b_dw_mean=(eta * acc) / B)

    # -- Eq. (12): dW = 2*eta * h_hat (x) pre - eta * Z (x) pre ---------
    z = rng.random(n_post) * 2.0
    data.update(eq12_h_hat=h_hat, eq12_z=z, eq12_pre=pre,
                eq12_eta=np.float64(eta),
                eq12_dw=delta_w_loihi_form(h_hat, z, pre, eta))

    # -- Microcode sum-of-products (single replica and replicated) ------
    S, D, R = 12, 7, 3
    for tag_name, shape_pre, shape_post, shape_syn in (
            ("sop1", (S,), (D,), (S, D)),
            ("sopR", (R, S), (R, D), (R, S, D))):
        x0 = (rng.random(shape_pre) < 0.5).astype(np.int64)
        x1 = rng.integers(0, 128, shape_pre, dtype=np.int64)
        y0 = (rng.random(shape_post) < 0.5).astype(np.int64)
        y1 = rng.integers(0, 128, shape_post, dtype=np.int64)
        tag = rng.integers(-255, 256, shape_syn, dtype=np.int64)
        w = rng.integers(-127, 128, shape_syn, dtype=np.int64)
        data.update({f"{tag_name}_x0": x0, f"{tag_name}_x1": x1,
                     f"{tag_name}_y0": y0, f"{tag_name}_y1": y1,
                     f"{tag_name}_t": tag, f"{tag_name}_w": w})
        for k, rule_text in enumerate(RULES):
            data[f"{tag_name}_dz{k}"] = _sop_reference(
                rule_text, x0, x1, y0, y1, tag, w)

    data["rules"] = np.array(RULES)
    np.savez_compressed(OUT, **data)
    print(f"golden fixtures -> {OUT} ({len(data)} arrays)")


if __name__ == "__main__":
    main()
