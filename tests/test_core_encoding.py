"""Unit tests for input/label encodings (Section III-D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (bias_encode, bias_io_events, encode_label,
                        quantize_to_bins, rate_encode_spikes,
                        spike_train_io_events)


class TestQuantizeToBins:
    def test_grid_values(self):
        x = np.array([0.0, 0.24, 0.26, 1.0])
        q = quantize_to_bins(x, 4)
        assert q.tolist() == [0.0, 0.25, 0.25, 1.0]

    def test_out_of_range_clipped(self):
        q = quantize_to_bins(np.array([-0.5, 1.5]), 8)
        assert q.tolist() == [0.0, 1.0]

    def test_invalid_T(self):
        with pytest.raises(ValueError):
            quantize_to_bins(np.zeros(2), 0)

    @given(x=st.floats(0, 1), T=st.integers(1, 256))
    @settings(max_examples=80, deadline=None)
    def test_quantization_error_bound(self, x, T):
        q = quantize_to_bins(np.array([x]), T)[0]
        assert abs(q - x) <= 0.5 / T + 1e-12


class TestSpikeTrains:
    def test_deterministic_train_sums_to_count(self):
        x = np.array([0.0, 0.25, 0.5, 1.0])
        train = rate_encode_spikes(x, 16)
        assert train.shape == (16, 4)
        assert train.sum(axis=0).tolist() == [0, 4, 8, 16]

    def test_bernoulli_train_statistics(self):
        rng = np.random.default_rng(0)
        x = np.full(50, 0.5)
        train = rate_encode_spikes(x, 200, rng=rng, deterministic=False)
        assert abs(train.mean() - 0.5) < 0.05

    @given(x=st.lists(st.floats(0, 1), min_size=1, max_size=16),
           T=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_train_matches_quantized_rate(self, x, T):
        x = np.array(x)
        train = rate_encode_spikes(x, T)
        expected = np.round(quantize_to_bins(x, T) * T)
        assert np.array_equal(train.sum(axis=0), expected)


class TestIOCost:
    def test_bias_encoding_is_one_write_per_neuron(self):
        x = np.linspace(0, 1, 100)
        assert bias_io_events(x, 64) == 100

    def test_spike_streaming_scales_with_rate(self):
        dark = np.zeros(100)
        bright = np.ones(100)
        assert spike_train_io_events(dark, 64) == 0
        assert spike_train_io_events(bright, 64) == 6400

    def test_bias_beats_streaming_for_typical_images(self):
        """The paper's motivation: dense-ish images make streaming costly."""
        rng = np.random.default_rng(3)
        x = rng.uniform(0.2, 0.8, 256)
        assert bias_io_events(x, 64) < spike_train_io_events(x, 64)


class TestLabelEncoding:
    def test_one_hot(self):
        t = encode_label(2, 5)
        assert t.tolist() == [0, 0, 1, 0, 0]

    def test_custom_rate(self):
        t = encode_label(0, 3, rate=0.5)
        assert t.tolist() == [0.5, 0, 0]

    def test_out_of_range_label(self):
        with pytest.raises(ValueError):
            encode_label(5, 5)
        with pytest.raises(ValueError):
            encode_label(-1, 5)

    def test_bias_encode_matches_quantize(self):
        x = np.array([0.1, 0.9])
        assert np.array_equal(bias_encode(x, 32), quantize_to_bins(x, 32))
