"""Unit tests for the EMSTDP weight-update rule, both published forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (WeightUpdater, delta_w_loihi_form, delta_w_reference)

rates = st.lists(st.floats(0, 1), min_size=1, max_size=12)


class TestUpdateForms:
    @given(h_hat=rates, h=rates, pre=rates)
    @settings(max_examples=60, deadline=None)
    def test_eq7_equals_eq12_with_exact_pre(self, h_hat, h, pre):
        """Eq. (12) with Z = h_hat + h reduces to Eq. (7) algebraically."""
        n = min(len(h_hat), len(h))
        h_hat, h = np.array(h_hat[:n]), np.array(h[:n])
        pre = np.array(pre)
        eta = 2.0 ** -3
        ref = delta_w_reference(h_hat, h, pre, eta)
        loihi = delta_w_loihi_form(h_hat, h_hat + h, pre, eta)
        assert np.allclose(ref, loihi)

    def test_sign_of_update(self):
        """Post firing below target with active pre => weight grows."""
        dw = delta_w_reference(np.array([0.8]), np.array([0.2]),
                               np.array([0.5]), eta=0.1)
        assert dw[0, 0] > 0
        dw = delta_w_reference(np.array([0.2]), np.array([0.8]),
                               np.array([0.5]), eta=0.1)
        assert dw[0, 0] < 0

    def test_silent_presynaptic_no_update(self):
        """Locality: no presynaptic spikes => no weight change (STDP-like)."""
        dw = delta_w_reference(np.array([1.0]), np.array([0.0]),
                               np.array([0.0]), eta=0.1)
        assert dw[0, 0] == 0.0

    def test_shape(self):
        dw = delta_w_reference(np.zeros(3), np.zeros(3), np.zeros(5), 0.1)
        assert dw.shape == (5, 3)


class TestWeightUpdater:
    def test_full_precision_apply(self):
        up = WeightUpdater(eta=0.5, rng=np.random.default_rng(0))
        w = np.zeros((1, 1))
        w2 = up.apply(w, np.array([1.0]), np.array([0.0]), np.array([1.0]))
        assert w2[0, 0] == pytest.approx(0.5)

    def test_quantized_apply_stays_on_grid(self):
        up = WeightUpdater(eta=0.5, weight_bits=8, weight_clip=1.27,
                           stochastic_rounding=False,
                           rng=np.random.default_rng(0))
        w = np.zeros((2, 2))
        w2 = up.apply(w, np.array([0.9, 0.1]), np.array([0.1, 0.9]),
                      np.array([1.0, 0.5]))
        assert np.allclose(w2, np.round(w2 / 0.01) * 0.01)

    def test_stochastic_rounding_progresses_in_expectation(self):
        """Updates far below one grid step still move weights on average."""
        rng = np.random.default_rng(42)
        up = WeightUpdater(eta=0.01, weight_bits=8, weight_clip=1.27,
                           stochastic_rounding=True, rng=rng)
        w = np.zeros((1, 2000))
        # each update is eta * 0.5 * 1.0 = 0.005 = half a grid step
        w = up.apply(w, np.full(2000, 0.5), np.zeros(2000), np.array([1.0]))
        assert abs(w.mean() - 0.005) < 0.001

    def test_deterministic_rounding_stalls_below_half_step(self):
        up = WeightUpdater(eta=0.001, weight_bits=8, weight_clip=1.27,
                           stochastic_rounding=False,
                           rng=np.random.default_rng(0))
        w = np.zeros((1, 10))
        w = up.apply(w, np.full(10, 0.5), np.zeros(10), np.array([1.0]))
        assert (w == 0).all()

    def test_loihi_form_apply(self):
        up = WeightUpdater(eta=0.25, rng=np.random.default_rng(0))
        w = np.zeros((1, 1))
        # h_hat = 0.8, h = 0.2 -> Z = 1.0, pre = 1.0 -> dw = eta*(0.6)
        w2 = up.apply_loihi_form(w, np.array([0.8]), np.array([1.0]),
                                 np.array([1.0]))
        assert w2[0, 0] == pytest.approx(0.15)

    def test_invalid_eta(self):
        with pytest.raises(ValueError):
            WeightUpdater(eta=0.0)

    def test_clip_enforced(self):
        up = WeightUpdater(eta=10.0, weight_clip=1.0,
                           rng=np.random.default_rng(0))
        w = np.zeros((1, 1))
        w2 = up.apply(w, np.array([1.0]), np.array([0.0]), np.array([1.0]))
        assert w2[0, 0] == 1.0
