"""REP000 fixture: everything alive (0 findings)."""
from __future__ import annotations

import json
from collections import OrderedDict

__all__ = ["dumps", "Registry"]


def dumps(obj) -> str:
    return json.dumps(obj)


class Registry:
    def __init__(self):
        self.entries: "OrderedDict[str, object]" = OrderedDict()

    def first_or_none(self, key):
        if key in self.entries:
            return self.entries[key]
        return None
