"""REP005 fixture: conformant metric calls (0 findings)."""
from repro import obs


def good_calls(name, latency_ms):
    obs.counter("serve_requests", outcome="hit", model="mnist")
    obs.counter("serve_requests", value=2.0, outcome="miss")
    obs.gauge("serve_queue_depth", 3)
    obs.metrics.inc("cluster_rejected")
    obs.observe("serve_latency_ms", latency_ms, outcome="miss")
    obs.observe("batch_wait_ms", 0.5, buckets=(0.1, 1.0, 10.0))
    obs.counter(name, outcome="hit")  # dynamic name: prom.lint()'s job
