"""REP001 fixture: every statement below should fire (7 findings)."""
import random
import time

import numpy as np


def unseeded_rng():
    return np.random.default_rng()


def none_seeded_rng():
    return np.random.default_rng(None)


def legacy_numpy(x):
    np.random.seed(0)
    return np.random.shuffle(x)


def stdlib_random(xs):
    random.shuffle(xs)
    return random.random()


def wall_clock():
    return time.time()
