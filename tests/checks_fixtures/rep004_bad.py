"""REP004 fixture: wire-protocol violations (5 findings).

The test copies this next to the repo's real ``protocol.py`` under a
path ending in ``src/repro/cluster/worker.py``, so the rule checks it
against the real MESSAGES contract.
"""
from . import protocol


class BadWorker:
    def two_element_tuple(self, conn):
        conn.send((protocol.READY, 0))

    def unknown_kind_literal(self, conn, msg_id):
        conn.send(("predictt", msg_id, {}))

    def undeclared_constant(self, conn, msg_id):
        conn.send((protocol.REBALANCE, msg_id, {}))

    def missing_required_field(self, conn, msg_id):
        conn.send((protocol.RESPONSE, msg_id, {"value": 41}))

    def undeclared_field(self, handle):
        body = {"source": "ckpt/model", "force": True}
        handle.request(protocol.SWAP, body)
