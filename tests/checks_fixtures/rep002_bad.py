"""REP002 fixture: backend imports + a kernel reimplementation (5)."""
from repro.core.kernels import _numpy
from repro.core.kernels._numba import delta_w_dense
from .kernels import _cext

import repro.core.kernels._csrc


def delta_w(h_hat, h, pre, eta):
    # A reimplementation of the public kernel signature: never re-pinned
    # against the golden fixtures, so it *will* drift.
    return eta * (h_hat - h)[None, :] * pre[:, None]
