"""REP005 fixture: metric naming violations (7 findings)."""
from repro import obs


def bad_names():
    obs.counter("repro_serve_requests")        # namespace prefix
    obs.counter("serve_requests_total")        # counter suffix
    obs.gauge("ServeQueueDepth", 3)            # not snake_case
    obs.metrics.inc("2fast")                   # not snake_case


def bad_labels(extra):
    obs.counter("serve_requests", le="0.5")    # reserved label
    obs.observe("serve_latency_ms", 1.0, Outcome="hit")  # not snake_case
    obs.counter("serve_requests", **extra)     # unbounded label set
