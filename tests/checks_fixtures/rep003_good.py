"""REP003 fixture: lock discipline followed (0 findings)."""
import threading


class DisciplinedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        # guarded-by: _lock
        self.items = []
        self._log = []  # guarded-by: _log_lock [writes]
        self._log_lock = threading.Lock()
        self.count = 0  # __init__ is exempt: not shared yet

    def locked_rmw(self):
        with self._lock:
            self.count += 1
            return self.count

    def locked_both(self):
        with self._lock, self._log_lock:
            self.items.append(self.count)
            self._log = list(self._log)

    def nested_locks(self):
        with self._log_lock:
            with self._lock:
                self.items.clear()

    def writes_only_read(self):
        # [writes] permits lock-free reads by design.
        return len(self._log)

    def unguarded_attr(self):
        return self._lock  # the lock object itself is not guarded
