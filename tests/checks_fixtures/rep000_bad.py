"""REP000 fixture: dead symbols (5 findings: three unused imports,
two unreachable statements)."""
import json
import os as _os
from collections import OrderedDict, defaultdict


def early_return(x):
    if x:
        return defaultdict(list)
    return None
    print("unreachable")


def after_raise():
    raise ValueError("always")
    return 1
