"""REP001 fixture: none of this should fire."""
import time

import numpy as np

from repro.seeding import as_rng


def funneled(rng=None):
    return as_rng(rng)


def explicit_seed(seed):
    return np.random.default_rng(seed)


def literal_seed():
    return np.random.default_rng(1234)


def spawned(rng):
    return np.random.default_rng(int(rng.integers(0, 2 ** 63)))


def durations():
    t0 = time.perf_counter()
    time.monotonic()
    return time.perf_counter() - t0


def generator_draws(rng):
    # Methods on an explicit Generator are fine; only the module-level
    # global-state API is banned.
    return rng.random(4), rng.shuffle([1, 2])
