"""REP004 fixture: protocol-conformant send sites (0 findings)."""
from . import protocol


class GoodWorker:
    def ready(self, conn):
        conn.send((protocol.READY, 0, self.stats()))

    def ok_response(self, conn, msg_id):
        conn.send((protocol.RESPONSE, msg_id, {"ok": True, "value": 1}))

    def error_response(self, conn, msg_id):
        conn.send((protocol.RESPONSE, msg_id,
                   {"ok": False, "status": 500, "error": "boom"}))

    def local_body(self, handle):
        body = {"input": [1.0], "model": None, "use_cache": True}
        return handle.request(protocol.PREDICT, body)

    def dynamic_payload(self, handle, request):
        # Not a dict literal: out of static reach, deliberately skipped.
        return handle.request(protocol.PREDICT_MANY, request)

    def forwarded(self, conn, message):
        conn.send(message)  # prebuilt elsewhere: skipped

    def stats(self):
        return {}
