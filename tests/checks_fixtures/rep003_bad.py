"""REP003 fixture: guarded state touched outside its lock (5 findings:
four bad accesses plus one orphaned marker)."""
import threading


class LeakyCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        # guarded-by: _lock
        self.items = []
        self._log = []  # guarded-by: _log_lock [writes]
        self._log_lock = threading.Lock()

    def unlocked_read(self):
        return self.count  # finding: read outside the lock

    def unlocked_write(self):
        self.count += 1  # finding: write outside the lock

    def wrong_lock(self):
        with self._log_lock:
            self.items.append(1)  # finding: held lock is not _lock

    def writes_only_write(self):
        self._log = []  # finding: [writes] still guards writes


class Orphan:
    def __init__(self):
        # guarded-by: _lock
        x = 1  # finding: marker not on a self-attribute assignment
        self.value = x
