"""REP002 fixture: the public API, used the supported ways."""
from repro.core import kernels
from repro.core.kernels import delta_w, if_step, kernel_backend


def public_calls(v, refrac, drive):
    kernels.if_step(v, refrac, drive, 1.0)
    return if_step(v, refrac, drive, 1.0)


def public_update(h_hat, h, pre):
    with kernels.forced_backend("numpy"):
        return delta_w(h_hat, h, pre, 0.125)


def introspection():
    return kernel_backend()
