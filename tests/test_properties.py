"""Cross-module property-based tests: invariants that must hold for any
input, not just the fixture tasks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (EMSTDPConfig, EMSTDPNetwork, encode_label,
                        signed_error_rates)
from repro.core.learning import delta_w_reference
from repro.loihi import LearningEngine, parse_rule
from repro.onchip import ScaleScheme

unit_floats = st.lists(st.floats(0.0, 1.0), min_size=3, max_size=12)


class TestRateInvariants:
    @given(x=unit_floats, label=st.integers(0, 2), T=st.integers(4, 64))
    @settings(max_examples=30, deadline=None)
    def test_all_phase_rates_bounded(self, x, label, T):
        """Every layer's h and h_hat stay on [0, 1] for any input."""
        cfg = EMSTDPConfig(seed=0, phase_length=T)
        net = EMSTDPNetwork((len(x), 6, 3), cfg)
        h, h_hat = net._rate_two_phase(np.array(x), label)
        for rates in list(h) + list(h_hat):
            assert (rates >= 0).all() and (rates <= 1).all()

    @given(x=unit_floats, label=st.integers(0, 2))
    @settings(max_examples=20, deadline=None)
    def test_training_never_breaks_prediction_range(self, x, label):
        cfg = EMSTDPConfig(seed=0, phase_length=16, weight_bits=8,
                           weight_clip=2.0)
        net = EMSTDPNetwork((len(x), 6, 3), cfg)
        net.train_sample(np.array(x), label)
        pred = net.predict(np.array(x))
        assert 0 <= pred < 3
        for w in net.weights:
            assert np.abs(w).max() <= 2.0 + 1e-9

    @given(target_label=st.integers(0, 3), predicted=unit_floats,
           gain=st.floats(0.25, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_error_channels_never_both_fire(self, target_label, predicted,
                                            gain):
        """A signed error excites exactly one channel per neuron."""
        predicted = np.array(predicted[:4] + [0.0] * (4 - len(predicted[:4])))
        target = encode_label(target_label, 4)
        e_pos, e_neg = signed_error_rates(target, predicted, gain, T=32)
        assert (np.minimum(e_pos, e_neg) == 0).all()
        assert (e_pos >= 0).all() and (e_neg >= 0).all()


class TestUpdateInvariants:
    @given(h=unit_floats, pre=unit_floats)
    @settings(max_examples=30, deadline=None)
    def test_zero_error_zero_update(self, h, pre):
        """h_hat == h must produce exactly no weight change (Eq. 7)."""
        h = np.array(h)
        dw = delta_w_reference(h, h, np.array(pre), eta=0.125)
        assert (dw == 0).all()

    @given(scale=st.integers(-10, 0), h=st.integers(0, 64),
           pre=st.integers(0, 64))
    @settings(max_examples=30, deadline=None)
    def test_microcode_dw_magnitude_bound(self, scale, h, pre):
        """|dw| <= 2^scale * y1 * x1 for the single-term rule."""
        from repro.loihi import ConnectionGroup, if_prototype
        from repro.loihi.compartment import CompartmentGroup
        src = CompartmentGroup(1, if_prototype(), name="s")
        dst = CompartmentGroup(1, if_prototype(), name="d")
        conn = ConnectionGroup(src, dst, np.zeros((1, 1)), 64, plastic=True)
        conn.post_trace.values[:] = h
        conn.pre_trace.values[:] = pre
        eng = LearningEngine(stochastic_rounding=False)
        eng.apply(parse_rule(f"dw = 2^{scale} * y1 * x1"), conn)
        bound = (2.0 ** scale) * h * pre + 0.5
        assert abs(int(conn.weight_mant[0, 0])) <= min(bound, 127)


class TestScaleSchemeInvariants:
    @given(clip=st.floats(0.5, 8.0),
           w=st.lists(st.floats(-10, 10), min_size=1, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_mant_roundtrip_error_bounded(self, clip, w):
        s = ScaleScheme(weight_clip=clip)
        w = np.array(w)
        back = s.from_mant(s.to_mant(w))
        clipped = np.clip(w, -clip, clip)
        assert np.max(np.abs(back - clipped)) <= s.step / 2 + 1e-9

    @given(rate=st.floats(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_bias_rate_roundtrip(self, rate):
        """rate -> bias -> realised IF rate agrees to 1/T resolution."""
        s = ScaleScheme()
        bias = int(s.rate_to_bias(np.array([rate]))[0])
        T = 64
        realised = (bias * T // s.vth) / T
        assert abs(realised - rate) <= 1.0 / T + 1.0 / s.vth


class TestDeterminism:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_run(self, seed):
        cfg = EMSTDPConfig(seed=seed, phase_length=16)
        xs = np.random.default_rng(0).uniform(0, 1, (10, 5))
        ys = np.random.default_rng(1).integers(0, 3, 10)
        nets = []
        for _ in range(2):
            net = EMSTDPNetwork((5, 8, 3), cfg)
            net.train_stream(xs, ys)
            nets.append(net)
        for wa, wb in zip(nets[0].weights, nets[1].weights):
            assert np.array_equal(wa, wb)


class TestKernelInvariants:
    """Property-style invariants of the backend-selected hot kernels.

    These run on whatever backend is active (all backends are pinned
    bit-identical by ``tests/test_kernels.py``, so the invariants transfer).
    """

    @given(v0=st.lists(st.floats(0.0, 3.0), min_size=1, max_size=16),
           drive=st.floats(-1.0, 1.5), threshold=st.floats(0.5, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_membrane_reset_only_where_spiked(self, v0, drive, threshold):
        """Neurons that do not spike just integrate (floored at rest)."""
        from repro.core import kernels
        v = np.array(v0)
        refrac = np.zeros(len(v0), dtype=np.int64)
        expected_quiet = np.maximum(v + drive, 0.0)
        spikes = kernels.if_step(v, refrac, np.full(len(v0), drive),
                                 threshold)
        assert np.array_equal(v[~spikes], expected_quiet[~spikes])
        # Spiking neurons lost exactly one threshold (soft reset).
        assert np.allclose(v[spikes], expected_quiet[spikes] - threshold)

    @given(values=st.lists(st.floats(0.0, 127.0), min_size=1, max_size=16),
           decay=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_trace_decay_monotone_toward_zero(self, values, decay):
        """Without spikes a trace never grows and never crosses zero."""
        from repro.core import kernels
        trace = np.array(values)
        before = trace.copy()
        kernels.trace_update(trace, np.zeros(len(values), dtype=bool),
                             impulse=1, decay=decay, trace_max=127)
        assert (trace <= before).all()
        assert (trace >= 0).all()

    @given(h=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=12),
           pre=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=12),
           eta=st.floats(1e-3, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_dw_zero_when_activity_zero(self, h, pre, eta):
        """No presynaptic activity, or h_hat == h, means exactly dW == 0."""
        from repro.core import kernels
        h = np.array(h)
        pre = np.array(pre)
        assert (kernels.delta_w(h, h, pre, eta) == 0).all()
        assert (kernels.delta_w(h, np.zeros_like(h), np.zeros_like(pre),
                                eta) == 0).all()
        zero = np.zeros_like(h)
        assert (kernels.delta_w_loihi(zero, zero, pre, eta) == 0).all()

    @given(y1=st.integers(0, 127), t=st.integers(-255, 255))
    @settings(max_examples=30, deadline=None)
    def test_microcode_dw_zero_without_presynaptic_trace(self, y1, t):
        """Every Eq. (12) term carries an x1 factor: x1 == 0 kills dw."""
        from repro.core import kernels
        from repro.loihi import parse_rule as _parse
        rule = _parse("dw = 2^-7 * y1 * x1 - 2^-8 * t * x1")
        dz = kernels.sum_of_products(
            rule, np.zeros(3, dtype=np.int64), np.zeros(3, dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
            np.full(2, y1, dtype=np.int64),
            np.full((3, 2), t, dtype=np.int64),
            np.zeros((3, 2), dtype=np.int64))
        assert (dz == 0).all()
