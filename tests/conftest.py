"""Shared fixtures: a deterministic toy classification task.

Every test that needs a learnable dataset uses these Gaussian-blob tasks so
unit tests stay fast while still exercising real learning dynamics.  The
generator itself lives in :mod:`repro.data.synth`; the re-export keeps the
many ``from conftest import make_blobs`` call sites working.
"""

import numpy as np
import pytest

from repro.data import make_blobs  # noqa: F401  (re-exported for tests)


@pytest.fixture
def blob_task():
    """(train_x, train_y, test_x, test_y) for a 3-class, 8-feature task."""
    xs, ys = make_blobs(8, 3, 400, seed=0)
    tx, ty = make_blobs(8, 3, 200, seed=1)
    return xs, ys, tx, ty


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
