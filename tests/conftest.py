"""Shared fixtures: a deterministic toy classification task.

Every test that needs a learnable dataset uses these Gaussian-blob tasks so
unit tests stay fast while still exercising real learning dynamics.
"""

import numpy as np
import pytest


def make_blobs(n_features: int, n_classes: int, n_samples: int, seed: int,
               noise: float = 0.08, task_seed: int = 77):
    """Clipped Gaussian blobs in [0, 1]^d with one mean per class.

    ``task_seed`` fixes the class means so different ``seed`` values draw
    train/test splits from the *same* underlying task.
    """
    means = np.random.default_rng(task_seed).uniform(
        0.2, 0.8, size=(n_classes, n_features))
    rng = np.random.default_rng(seed)
    ys = rng.integers(0, n_classes, n_samples)
    xs = np.clip(means[ys] + rng.normal(0, noise, (n_samples, n_features)), 0, 1)
    return xs, ys


@pytest.fixture
def blob_task():
    """(train_x, train_y, test_x, test_y) for a 3-class, 8-feature task."""
    xs, ys = make_blobs(8, 3, 400, seed=0)
    tx, ty = make_blobs(8, 3, 200, seed=1)
    return xs, ys, tx, ty


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
