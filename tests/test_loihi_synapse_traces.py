"""Unit tests for synaptic connections and trace counters."""

import numpy as np
import pytest

from repro.loihi import (ConnectionGroup, TraceConfig, TraceState,
                         counter_trace, if_prototype)
from repro.loihi.compartment import CompartmentGroup


def groups(n_src=3, n_dst=2):
    return (CompartmentGroup(n_src, if_prototype(), name="a"),
            CompartmentGroup(n_dst, if_prototype(), name="b"))


class TestConnectionGroup:
    def test_propagate_scales_mantissa(self):
        src, dst = groups()
        w = np.array([[10, 0], [0, 20], [5, 5]])
        conn = ConnectionGroup(src, dst, w, weight_scale=64)
        spikes = np.array([True, False, True])
        out = conn.propagate(spikes)
        assert out.tolist() == [(10 + 5) * 64, 5 * 64]

    def test_no_spikes_no_events(self):
        src, dst = groups()
        conn = ConnectionGroup(src, dst, np.ones((3, 2)), 64)
        conn.propagate(np.zeros(3, dtype=bool))
        assert conn.syn_events == 0

    def test_syn_event_counting(self):
        src, dst = groups()
        conn = ConnectionGroup(src, dst, np.ones((3, 2)), 64)
        conn.propagate(np.array([True, True, False]))
        assert conn.syn_events == 2 * 2  # 2 spikes x fan-out 2

    def test_weight_range_enforced(self):
        src, dst = groups()
        with pytest.raises(ValueError):
            ConnectionGroup(src, dst, np.full((3, 2), 200), 64)

    def test_shape_enforced(self):
        src, dst = groups()
        with pytest.raises(ValueError):
            ConnectionGroup(src, dst, np.ones((2, 3)), 64)

    def test_plastic_allocates_tag_and_traces(self):
        src, dst = groups()
        conn = ConnectionGroup(src, dst, np.zeros((3, 2)), 64, plastic=True)
        assert conn.tag.shape == (3, 2)
        assert conn.pre_trace.n == 3
        assert conn.post_trace.n == 2

    def test_static_has_no_learning_state(self):
        src, dst = groups()
        conn = ConnectionGroup(src, dst, np.zeros((3, 2)), 64)
        assert conn.tag is None
        assert conn.pre_trace is None

    def test_set_weights_clips(self):
        src, dst = groups()
        conn = ConnectionGroup(src, dst, np.zeros((3, 2)), 64)
        conn.set_weights(np.full((3, 2), 300))
        assert (conn.weight_mant == 127).all()


class TestTraces:
    def test_counter_counts(self):
        tr = counter_trace(2)
        tr.update(np.array([True, False]))
        tr.update(np.array([True, True]))
        assert tr.read().tolist() == [2, 1]

    def test_saturation_at_127(self):
        tr = counter_trace(1)
        for _ in range(200):
            tr.update(np.array([True]))
        assert tr.read()[0] == 127

    def test_decaying_trace(self):
        tr = TraceState(1, TraceConfig(impulse=16, decay=0.5))
        tr.update(np.array([True]))
        tr.update(np.array([False]))
        assert tr.read()[0] == 8

    def test_reset(self):
        tr = counter_trace(1)
        tr.update(np.array([True]))
        tr.reset()
        assert tr.read()[0] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(impulse=-1)
        with pytest.raises(ValueError):
            TraceConfig(decay=1.5)

    def test_shape_check(self):
        tr = counter_trace(2)
        with pytest.raises(ValueError):
            tr.update(np.array([True]))
