"""The observability layer: metrics registry, tracing, profiling, Prometheus.

The durability-sensitive pieces get explicit coverage: trace-file
integrity after a SIGKILL mid-write (single-write O_APPEND lines),
cross-process span linking in a real multi-worker run, histogram merging
across per-process snapshots, serve-telemetry percentile math under
concurrent recording, and the exposition linter against the invariants a
real Prometheus scrape enforces.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro import cli, obs
from repro.core import EMSTDPNetwork, full_precision_config, kernels
from repro.data import make_blobs
from repro.experiments import Runner, get_scenario
from repro.obs import prom
from repro.obs.profile import KernelProfiler
from repro.obs.registry import MetricsRegistry, merge_snapshots
from repro.obs.trace import (TraceWriter, Tracer, build_span_forest,
                             read_trace, slowest_spans, summarize_kernels,
                             summarize_spans)
from repro.serve import InferenceHTTPServer, InferenceService, ModelRegistry
from repro.serve.telemetry import Telemetry, merge_batch_histograms


def tiny_spec(**overrides):
    return get_scenario("offline_accuracy").build_spec(
        tiny=True).replace(**overrides)


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------

def test_counters_accumulate_per_label_set():
    reg = MetricsRegistry()
    reg.inc("requests", outcome="hit")
    reg.inc("requests", 2.0, outcome="hit")
    reg.inc("requests", outcome="miss")
    snap = reg.snapshot()
    by_labels = {tuple(sorted(c["labels"].items())): c["value"]
                 for c in snap["counters"]}
    assert by_labels[(("outcome", "hit"),)] == 3.0
    assert by_labels[(("outcome", "miss"),)] == 1.0


def test_gauges_last_write_wins():
    reg = MetricsRegistry()
    reg.set_gauge("depth", 3)
    reg.set_gauge("depth", 7)
    assert reg.snapshot()["gauges"] == [
        {"name": "depth", "labels": {}, "value": 7.0}]


def test_histogram_buckets_sum_to_count():
    reg = MetricsRegistry()
    values = [0.02, 0.3, 5.0, 80.0, 1e6]  # last one overflows to +inf
    for v in values:
        reg.observe("latency_ms", v)
    hist, = reg.snapshot()["histograms"]
    assert sum(hist["bucket_counts"]) == hist["count"] == len(values)
    assert hist["bucket_counts"][-1] == 1  # the +inf overflow bucket
    assert hist["sum"] == pytest.approx(sum(values))
    assert hist["min"] == 0.02 and hist["max"] == 1e6
    assert len(hist["bucket_counts"]) == len(hist["bounds"]) + 1


def test_disabled_registry_writes_nothing():
    reg = MetricsRegistry(enabled=False)
    reg.inc("n")
    reg.set_gauge("g", 1)
    reg.observe("h", 1.0)
    assert reg.snapshot() == {"counters": [], "gauges": [],
                              "histograms": []}


def test_merge_snapshots_sums_and_labels():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("reqs", 3)
    b.inc("reqs", 4)
    a.observe("lat", 0.3)
    b.observe("lat", 0.3)
    b.observe("lat", 9000.0)

    # Same labels: series add (counters and histogram buckets alike).
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"] == [
        {"name": "reqs", "labels": {}, "value": 7.0}]
    hist, = merged["histograms"]
    assert hist["count"] == 3 and sum(hist["bucket_counts"]) == 3
    assert hist["min"] == 0.3 and hist["max"] == 9000.0

    # Per-process extra labels keep attribution: nothing collapses.
    merged = merge_snapshots([a.snapshot(), b.snapshot()],
                             extra_labels=[{"worker": "0"}, {"worker": "1"}])
    assert [c["value"] for c in merged["counters"]] == [3.0, 4.0]
    assert [c["labels"]["worker"] for c in merged["counters"]] == ["0", "1"]


def test_merge_snapshots_incompatible_bounds_kept_apart():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.observe("sizes", 2, buckets=(1, 2, 4))
    b.observe("sizes", 2, buckets=(10, 20))
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    names = sorted(h["name"] for h in merged["histograms"])
    assert names == ["sizes", "sizes_alt"]


def test_merge_snapshots_skips_missing():
    reg = MetricsRegistry()
    reg.inc("n")
    merged = merge_snapshots([None, reg.snapshot(), {}])
    assert merged["counters"][0]["value"] == 1.0


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------

def test_span_records_nesting_and_attrs(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.jsonl"
    with tracer.bind(path):
        with tracer.span("outer", experiment="x") as sp:
            sp.set(result=np.float64(0.5))  # numpy scalar must coerce
            with tracer.span("inner", epoch=0):
                tracer.event("tick", n=1)
    records = read_trace(path)
    assert [r["kind"] for r in records] == ["event", "span", "span"]
    event, inner, outer = records
    assert inner["parent_id"] == outer["span_id"]
    assert event["parent_id"] == inner["span_id"]
    assert outer["parent_id"] is None
    assert outer["attrs"] == {"experiment": "x", "result": 0.5}
    assert outer["dur_ms"] >= inner["dur_ms"]
    assert all(r["pid"] == os.getpid() for r in records)


def test_span_without_sink_is_noop(tmp_path):
    tracer = Tracer()
    with tracer.span("anything") as sp:
        assert sp is None
    tracer.event("ignored")
    with tracer.bind(None) as writer:  # None path: bind declines politely
        assert writer is None
        with tracer.span("still-nothing") as sp:
            assert sp is None


def test_span_error_status_propagates(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.jsonl"
    with tracer.bind(path):
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
    record, = read_trace(path)
    assert record["status"] == "error"


def test_explicit_parent_links_across_processes(tmp_path):
    # The runner hands the parent span id to the worker as a string; the
    # worker's root span must attach to it even though the worker's own
    # thread-local stack is empty.
    tracer = Tracer()
    path = tmp_path / "trace.jsonl"
    with tracer.bind(path):
        with tracer.span("run") as root:
            parent = root.span_id
        with tracer.span("seed", parent_id=parent):
            pass
    run, seed = {r["name"]: r for r in read_trace(path)}.values()
    roots, children = build_span_forest(read_trace(path))
    assert [r["name"] for r in roots] == ["run"]
    assert [c["name"] for c in children[parent]] == ["seed"]


def test_read_trace_tolerates_torn_and_garbage_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    good = json.dumps({"kind": "event", "name": "ok"})
    path.write_bytes((good + "\n" + "not json at all\n"
                      + good + "\n" + '{"kind": "span", "tru').encode())
    records = read_trace(path)
    assert len(records) == 2
    assert all(r["name"] == "ok" for r in records)
    assert read_trace(tmp_path / "missing.jsonl") == []


def test_sigkill_mid_write_leaves_readable_trace(tmp_path):
    """A writer SIGKILLed in a tight write loop never corrupts the file:
    every parsed record is complete, and at most one trailing line tears."""
    path = tmp_path / "trace.jsonl"
    script = (
        "import sys\n"
        "sys.path.insert(0, sys.argv[2])\n"
        "from repro.obs.trace import TraceWriter\n"
        "w = TraceWriter(sys.argv[1])\n"
        "i = 0\n"
        "while True:\n"
        "    w.write({'kind': 'event', 'name': 'spin', 'i': i,\n"
        "             'pad': 'x' * 512})\n"
        "    i += 1\n")
    src = str((os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
              + "/src")
    proc = subprocess.Popen([sys.executable, "-c", script, str(path), src])
    try:
        deadline = time.time() + 20
        while time.time() < deadline:
            if path.exists() and path.stat().st_size > 50_000:
                break
            time.sleep(0.01)
        else:
            pytest.fail("writer subprocess produced no output")
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    raw_lines = [l for l in path.read_bytes().split(b"\n") if l]
    records = read_trace(path)
    assert len(records) >= len(raw_lines) - 1  # at most one torn line
    assert [r["i"] for r in records] == list(range(len(records)))


def test_summaries_and_slowest(tmp_path):
    tracer = Tracer()
    path = tmp_path / "trace.jsonl"
    with tracer.bind(path):
        for _ in range(3):
            with tracer.span("fit_epoch"):
                pass
        with pytest.raises(RuntimeError):
            with tracer.span("evaluate"):
                raise RuntimeError
    records = read_trace(path)
    summary = {s["name"]: s for s in summarize_spans(records)}
    assert summary["fit_epoch"]["count"] == 3
    assert summary["evaluate"]["errors"] == 1
    assert len(slowest_spans(records, top=2)) == 2


def test_summarize_kernels_merges_processes():
    records = [
        {"kind": "kernel_stats", "pid": 1, "kernels": {
            "if_step": {"calls": 100, "timed": 2, "sampled_ms": 1.0}}},
        {"kind": "kernel_stats", "pid": 2, "kernels": {
            "if_step": {"calls": 300, "timed": 2, "sampled_ms": 3.0}}},
    ]
    entry, = summarize_kernels(records)
    assert entry["calls"] == 400 and entry["timed"] == 4
    assert entry["mean_us"] == pytest.approx(1000.0)  # 4ms over 4 samples
    assert entry["est_total_ms"] == pytest.approx(400.0)


# ---------------------------------------------------------------------------
# kernel profiler
# ---------------------------------------------------------------------------

def test_profiler_counts_all_times_sampled():
    prof = KernelProfiler(sample=4)
    calls = []
    fn = prof.wrap("k", lambda x: calls.append(x) or x * 2)
    for i in range(9):
        assert fn(i) == i * 2
    snap = prof.snapshot()["k"]
    assert len(calls) == 9  # wrapping never drops calls
    assert snap["calls"] == 9
    assert snap["timed"] == 2  # calls 4 and 8; call 1 never sampled
    assert snap["sampled_ms"] >= 0.0


def test_profiler_sample_zero_is_passthrough():
    prof = KernelProfiler(sample=0)
    fn = prof.wrap("k", lambda: 1)
    for _ in range(10):
        fn()
    assert prof.snapshot() == {}  # zero-call kernels omitted


def test_profiler_runtime_toggle_affects_wrapped():
    prof = KernelProfiler(sample=1)
    fn = prof.wrap("k", lambda: 1)
    fn()
    prof.sample = 0  # flip after wrapping: the probe must go quiet
    fn()
    assert prof.snapshot()["k"]["calls"] == 1


def test_profiler_delta_isolates_one_unit_of_work():
    prof = KernelProfiler(sample=2)
    fn = prof.wrap("k", lambda: 1)
    for _ in range(4):
        fn()
    baseline = prof.snapshot()
    for _ in range(6):
        fn()
    delta = prof.delta(baseline)["k"]
    assert delta["calls"] == 6 and delta["timed"] == 3
    assert prof.delta(baseline.copy()) != {}
    assert prof.delta(prof.snapshot()) == {}  # nothing new since


def test_public_kernels_are_profiled():
    obs.kernel_profiler.reset()
    v = np.zeros((4, 16))
    refrac = np.zeros((4, 16), dtype=np.int64)
    drive = np.full((4, 16), 0.5)
    before = obs.kernel_profiler.sample
    obs.kernel_profiler.sample = 1
    try:
        for _ in range(3):
            kernels.if_step(v.copy(), refrac.copy(), drive, 1.0)
    finally:
        obs.kernel_profiler.sample = before
        snap = obs.kernel_profiler.snapshot()
        obs.kernel_profiler.reset()
    assert snap["if_step"]["calls"] == 3
    assert snap["if_step"]["timed"] == 3  # stride 1: every call timed


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

def test_render_snapshot_counter_suffix_and_lint():
    reg = MetricsRegistry()
    reg.inc("serve_requests", 5, outcome="hit")
    reg.set_gauge("depth", 2)
    reg.observe("latency_ms", 3.0)
    text = prom.render_snapshot(reg.snapshot())
    assert '# TYPE repro_serve_requests_total counter' in text
    assert 'repro_serve_requests_total{outcome="hit"} 5' in text
    assert '# TYPE repro_depth gauge' in text
    assert 'repro_latency_ms_bucket{le="+Inf"} 1' in text
    assert prom.lint(text) == []


def test_sanitize_names_and_labels():
    assert prom.sanitize_name("serve.latency-ms") == "serve_latency_ms"
    assert prom.sanitize_name("9lives") == "_9lives"
    assert prom.sanitize_label("__reserved") == "x__reserved"
    text = prom.render_snapshot({"counters": [
        {"name": "weird.name", "labels": {"bad-label": 'va"l\nue'},
         "value": 1}], "gauges": [], "histograms": []})
    assert prom.lint(text) == []


def test_lint_catches_real_violations():
    assert prom.lint("# TYPE m counter\n# TYPE m counter\nm 1\n")
    assert prom.lint("orphan_sample 1\n")
    assert prom.lint("# TYPE m gauge\nm not-a-number\n")
    bad_buckets = ("# TYPE h histogram\n"
                   'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
                   "h_sum 1\nh_count 3\n")
    assert any("cumulative" in p for p in prom.lint(bad_buckets))
    no_inf = ('# TYPE h histogram\nh_bucket{le="1"} 1\n')
    assert any("+Inf" in p for p in prom.lint(no_inf))
    dup = ('# TYPE m counter\nm{a="1"} 1\nm{a="1"} 2\n')
    assert any("duplicate sample" in p for p in prom.lint(dup))
    assert prom.lint('# TYPE m counter\nm{a="1"} 1\nm{a="2"} 2\n') == []
    assert prom.lint("") == []


def test_render_metrics_payload_from_live_service():
    net = EMSTDPNetwork((8, 12, 3), full_precision_config(
        seed=0, phase_length=8))
    registry = ModelRegistry()
    registry.register("net", net)
    service = InferenceService(registry, max_batch=4, max_wait_ms=2.0,
                               cache_size=16)
    try:
        xs, _ = make_blobs(8, 3, 6, seed=0)
        for x in xs:
            service.predict(x)
        service.predict(xs[0])  # cache hit
        payload = service.metrics()
    finally:
        service.shutdown()
    text = prom.render_metrics_payload(payload)
    assert prom.lint(text) == []
    assert "repro_requests_total 7" in text
    assert "repro_latency_ms_p99" in text
    assert "repro_cache_hits_total" in text
    assert 'repro_batch_size_total{size="' in text
    # The embedded obs registry snapshot rides along.
    assert "repro_serve_requests_total{" in text


def test_render_cluster_payload_no_duplicate_obs_series():
    # A cluster front end merges worker registry snapshots into its
    # top-level "obs" (worker-labeled); each worker sub-payload still
    # embeds its own "obs".  Rendering both would emit the same series
    # twice, which a Prometheus scrape rejects — the merged view wins.
    worker_obs = {"counters": [{"name": "serve_requests",
                                "labels": {"outcome": "hit"}, "value": 4}],
                  "gauges": [], "histograms": []}
    payload = {
        "requests": 4,
        "obs": merge_snapshots([worker_obs],
                               extra_labels=[{"worker": "0"}]),
        "workers": [{"slot": 0, "state": "ready", "restarts": 0,
                     "metrics": {"requests": 4, "obs": worker_obs}}],
    }
    text = prom.render_metrics_payload(payload)
    assert prom.lint(text) == []
    assert text.count('repro_serve_requests_total{outcome="hit",'
                      'worker="0"} 4') == 1


def test_http_metrics_prometheus_negotiation():
    net = EMSTDPNetwork((8, 12, 3), full_precision_config(
        seed=0, phase_length=8))
    registry = ModelRegistry()
    registry.register("net", net)
    service = InferenceService(registry, max_batch=4, max_wait_ms=2.0)
    server = InferenceHTTPServer(service, port=0).start()
    try:
        xs, _ = make_blobs(8, 3, 2, seed=0)
        service.predict(xs[0])

        with urllib.request.urlopen(
                f"{server.url}/metrics?format=prometheus", timeout=10) as r:
            assert r.headers["Content-Type"].startswith("text/plain")
            assert prom.lint(r.read().decode()) == []

        req = urllib.request.Request(f"{server.url}/metrics",
                                     headers={"Accept": "text/plain"})
        with urllib.request.urlopen(req, timeout=10) as r:
            assert r.headers["Content-Type"].startswith("text/plain")

        with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as r:
            payload = json.loads(r.read())  # JSON stays the default
            assert "latency_ms" in payload
    finally:
        server.stop()
        service.shutdown()


# ---------------------------------------------------------------------------
# serve telemetry percentile math (satellite)
# ---------------------------------------------------------------------------

def test_percentiles_monotonic_under_concurrent_recording():
    telemetry = Telemetry()
    rng = np.random.default_rng(0)
    samples = rng.lognormal(mean=1.0, sigma=1.0, size=(8, 250))

    def client(row):
        for latency in samples[row]:
            telemetry.record(float(latency), queue_ms=float(latency) / 4,
                             batch_size=int(latency) % 7 + 1, cached=False,
                             energy_mj=0.01)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    snap = telemetry.snapshot()
    assert snap["requests"] == samples.size  # no lost updates under the lock
    for dist_key in ("latency_ms", "queue_ms"):
        dist = snap[dist_key]
        assert 0.0 <= dist["p50"] <= dist["p95"] <= dist["p99"] \
            <= dist["max"]
        assert dist["mean"] > 0.0
    hist = snap["batch_size_histogram"]
    assert sum(hist.values()) == samples.size
    assert snap["energy_mj_total"] == pytest.approx(0.01 * samples.size)


def test_percentile_interpolation_and_edges():
    from repro.serve.telemetry import percentile
    assert percentile([], 99) == 0.0
    assert percentile([5.0], 50) == 5.0
    values = list(range(101))  # 0..100: pXX == XX exactly
    assert percentile(values, 50) == 50.0
    assert percentile(values, 95) == 95.0
    assert percentile(values, 99) == 99.0


def test_merge_batch_histograms_sums_and_sorts():
    merged = merge_batch_histograms([
        {"1": 3, "16": 1}, None, {}, {"2": 5, "1": 4}])
    assert merged == {"1": 7, "2": 5, "16": 1}
    assert list(merged) == ["1", "2", "16"]  # numeric, not lexicographic
    assert merge_batch_histograms([]) == {}


# ---------------------------------------------------------------------------
# runner integration + CLI
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One tiny 2-seed run with process fan-out, traced; shared by the
    CLI and integrity tests below (runs real training, so run it once)."""
    out_root = tmp_path_factory.mktemp("runs")
    spec = tiny_spec(seeds=(0, 1), backends=("rate",), n_train=40, n_test=20)
    result = Runner(out_root=out_root, max_workers=2).run(spec)
    assert result.status == "complete"
    return out_root, result


def test_traced_run_writes_linked_spans(traced_run):
    out_root, result = traced_run
    records = read_trace(result.run_dir / obs.TRACE_FILE_NAME)
    spans = {r["name"]: r for r in records if r.get("kind") == "span"}
    assert {"run", "seed", "fit_epoch", "evaluate",
            "load_dataset"} <= set(spans)
    roots, children = build_span_forest(records)
    assert [r["name"] for r in roots] == ["run"]
    seed_spans = [s for s in children[spans["run"]["span_id"]]
                  if s["name"] == "seed"]
    assert len(seed_spans) == 2
    assert len({s["pid"] for s in seed_spans}) == 2  # two worker processes
    kernel_records = [r for r in records if r.get("kind") == "kernel_stats"]
    assert kernel_records and summarize_kernels(records)
    events = [r for r in records if r.get("kind") == "event"]
    assert {"seed_finished"} <= {e["name"] for e in events}


def test_resolve_trace_path_forms(traced_run, tmp_path):
    out_root, result = traced_run
    expected = result.run_dir / obs.TRACE_FILE_NAME
    assert cli._resolve_trace_path(str(expected), str(out_root)) == expected
    assert cli._resolve_trace_path(str(result.run_dir),
                                   str(out_root)) == expected
    assert cli._resolve_trace_path(result.run_id, str(out_root)) == expected
    with pytest.raises(KeyError, match="not a trace file"):
        cli._resolve_trace_path("no-such-run", str(tmp_path))


def test_cli_trace_summary_and_show(traced_run, capsys):
    out_root, result = traced_run
    assert cli.main(["trace", "summary", result.run_id,
                     "--out", str(out_root)]) == 0
    out = capsys.readouterr().out
    assert "per-span aggregates" in out
    assert "kernel timing" in out
    assert "slowest spans" in out
    assert "2 process(es)" not in out  # parent + 2 workers = 3 pids
    assert cli.main(["trace", "show", result.run_id,
                     "--out", str(out_root)]) == 0
    out = capsys.readouterr().out
    assert "run [experiment=offline_accuracy" in out
    assert "seed [" in out


def test_cli_trace_empty_file_errors(tmp_path, capsys):
    (tmp_path / obs.TRACE_FILE_NAME).write_text("")
    assert cli.main(["trace", "summary", str(tmp_path)]) == 2
    assert "no trace records" in capsys.readouterr().err


def test_trace_disabled_by_env(tmp_path, monkeypatch):
    assert obs.trace_path_for(None) is None
    monkeypatch.setattr(obs, "_TRACE_DEFAULT_ON", False)
    assert obs.trace_path_for(tmp_path) is None
    monkeypatch.setattr(obs, "_TRACE_DEFAULT_ON", True)
    assert obs.trace_path_for(tmp_path) == os.path.join(
        str(tmp_path), obs.TRACE_FILE_NAME)


def test_bench_environment_stamp():
    sys.path.insert(0, os.path.join(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))), "benchmarks"))
    try:
        from _bench_utils import environment_stamp
    finally:
        sys.path.pop(0)
    stamp = environment_stamp()
    assert set(stamp) == {"git_sha", "hostname", "cpu_count",
                          "kernel_backend"}
    assert stamp["cpu_count"] >= 1
    assert stamp["kernel_backend"] in ("numpy", "cext", "numba")
    assert stamp["git_sha"]  # a sha in a work tree, "unknown" outside
