"""Tests for the incremental online learning protocol and replay store."""

import numpy as np
import pytest

from repro.core import EMSTDPNetwork, full_precision_config
from repro.data.synth import Dataset
from repro.incremental import (IOLConfig, IncrementalOnlineLearner,
                               ReplayStore, forgetting_dip, recovery)

from conftest import make_blobs


def blob_datasets(n_classes=6, n_features=12):
    xs, ys = make_blobs(n_features, n_classes, 900, seed=0, task_seed=11)
    tx, ty = make_blobs(n_features, n_classes, 300, seed=1, task_seed=11)
    return Dataset(xs, ys, n_classes=n_classes), Dataset(tx, ty,
                                                         n_classes=n_classes)


class TestReplayStore:
    def test_add_and_sample_balanced(self):
        store = ReplayStore(rng=np.random.default_rng(0))
        for c in (0, 1, 2):
            for i in range(10):
                store.add(np.full(4, float(c)), c)
        xs, ys = store.sample(9)
        assert len(xs) == 9
        counts = np.bincount(ys, minlength=3)
        assert (counts == 3).all()

    def test_capacity_reservoir(self):
        store = ReplayStore(per_class_capacity=5,
                            rng=np.random.default_rng(0))
        for i in range(100):
            store.add(np.array([float(i)]), 0)
        assert len(store) == 5

    def test_sample_empty(self):
        store = ReplayStore()
        xs, ys = store.sample(4)
        assert len(xs) == 0

    def test_classes_property(self):
        store = ReplayStore()
        store.add(np.zeros(2), 3)
        assert store.classes == [3]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayStore(per_class_capacity=0)


class TestProtocol:
    def _run(self, **cfg):
        train, test = blob_datasets()
        net = EMSTDPNetwork((12, 20, 6),
                            full_precision_config(seed=2, phase_length=32))
        defaults = dict(initial_classes=2, classes_per_increment=2,
                        n_increments=2, rounds_per_increment=3, seed=4)
        defaults.update(cfg)
        learner = IncrementalOnlineLearner(net, train, test,
                                           IOLConfig(**defaults))
        return learner.run()

    def test_round_count(self):
        result = self._run()
        assert len(result.records) == 2 * 3

    def test_observed_classes_grow(self):
        result = self._run()
        sizes = [len(r.observed_classes) for r in result.records]
        assert sizes[0] == 4 and sizes[-1] == 6
        assert sizes == sorted(sizes)

    def test_introduction_rounds_marked(self):
        result = self._run()
        intro = result.curves()["introduction_rounds"]
        assert intro == [0, 3]

    def test_step2_recovers_on_average(self):
        result = self._run()
        a1 = np.mean([r.acc_after_step1 for r in result.records])
        a2 = np.mean([r.acc_after_step2 for r in result.records])
        assert a2 >= a1 - 0.02

    def test_final_accuracy_reasonable(self):
        result = self._run()
        assert result.records[-1].acc_after_step2 > 0.5

    def test_mask_cleared_after_run(self):
        train, test = blob_datasets()
        net = EMSTDPNetwork((12, 20, 6),
                            full_precision_config(seed=2, phase_length=32))
        learner = IncrementalOnlineLearner(
            net, train, test, IOLConfig(initial_classes=2, n_increments=1,
                                        rounds_per_increment=2, seed=4))
        learner.run()
        assert net.class_mask.all()

    def test_metrics_helpers(self):
        result = self._run()
        assert isinstance(forgetting_dip(result), float)
        assert isinstance(recovery(result), float)
