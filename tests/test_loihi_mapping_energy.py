"""Tests for core resource accounting, the mapper and the energy model."""

import numpy as np
import pytest

from repro.loihi import (ChipSpec, CoreResourceError, CoreSpec, EnergyModel,
                         LoihiChip, Mapper, NeuroCore, RunStats,
                         optimal_neurons_per_core)


class TestNeuroCore:
    def test_allocation_tracks_resources(self):
        core = NeuroCore(0, CoreSpec())
        core.allocate("g", 0, 10, fanin=100, fanout=50)
        assert core.n_compartments == 10
        assert core.n_synapses == 1000

    def test_compartment_budget(self):
        core = NeuroCore(0, CoreSpec(max_compartments=8))
        with pytest.raises(CoreResourceError):
            core.allocate("g", 0, 9, fanin=1, fanout=1)

    def test_synapse_budget(self):
        core = NeuroCore(0, CoreSpec(max_synapses=100))
        with pytest.raises(CoreResourceError):
            core.allocate("g", 0, 2, fanin=51, fanout=1)

    def test_utilization(self):
        core = NeuroCore(0, CoreSpec(max_compartments=100,
                                     max_synapses=1000))
        core.allocate("g", 0, 50, fanin=10, fanout=1)
        cpt, syn = core.utilization()
        assert cpt == pytest.approx(0.5)
        assert syn == pytest.approx(0.5)


class TestMapper:
    def _map(self, groups, neurons_per_core=None, chip=None):
        chip = chip or LoihiChip()
        return Mapper(neurons_per_core=neurons_per_core).map_groups(
            chip, groups)

    def test_layer_at_a_time_uses_fresh_cores(self):
        m = self._map([("a", 10, 4, 4, None, None),
                       ("b", 10, 4, 4, None, None)])
        assert set(m.cores_of("a")).isdisjoint(m.cores_of("b"))

    def test_sweep_packing_controls_cores(self):
        m = self._map([("layer", 100, 10, 10, "sweep", None)],
                      neurons_per_core=10)
        assert len(m.cores_of("layer")) == 10
        m2 = self._map([("layer", 100, 10, 10, "sweep", None)],
                       neurons_per_core=25)
        assert len(m2.cores_of("layer")) == 4

    def test_auto_packing_limited_by_synapses(self):
        chip = LoihiChip(ChipSpec(core=CoreSpec(max_synapses=1000)))
        m = Mapper().map_groups(chip, [("g", 50, 100, 1, None, None)])
        # 1000 synapses / fanin 100 = 10 neurons per core -> 5 cores
        assert len(m.cores_of("g")) == 5

    def test_colocation_shares_cores(self):
        m = self._map([("soma", 40, 10, 10, "sweep", None),
                       ("dend", 40, 10, 10, None, "soma")],
                      neurons_per_core=10)
        assert m.cores_of("dend") == m.cores_of("soma")
        assert m.max_compartments_per_core == 20  # 10 soma + 10 dendrite

    def test_colocation_requires_existing_host(self):
        with pytest.raises(ValueError):
            self._map([("dend", 10, 1, 1, None, "missing")])

    def test_colocation_requires_matching_size(self):
        with pytest.raises(ValueError):
            self._map([("soma", 10, 1, 1, None, None),
                       ("dend", 5, 1, 1, None, "soma")])

    def test_sweep_aware_busiest_core(self):
        m = self._map([("frontend", 500, 4, 4, None, None),
                       ("dense", 40, 10, 10, "sweep", None)],
                      neurons_per_core=10)
        assert m.max_compartments_per_core == 500
        assert m.max_compartments_sweep_cores == 10

    def test_out_of_cores(self):
        chip = LoihiChip(ChipSpec(n_cores=2))
        with pytest.raises(CoreResourceError):
            Mapper(neurons_per_core=5).map_groups(
                chip, [("g", 100, 10, 10, "sweep", None)])

    def test_too_wide_neuron_rejected(self):
        chip = LoihiChip(ChipSpec(core=CoreSpec(max_synapses=10)))
        with pytest.raises(CoreResourceError):
            Mapper().map_groups(chip, [("g", 1, 100, 1, None, None)])

    def test_summary(self):
        m = self._map([("a", 10, 4, 4, None, None)])
        s = m.summary()
        assert s["cores_used"] == 1
        assert s["per_group"]["a"]["n"] == 10


class TestEnergyModel:
    def test_step_time_scales_with_packing(self):
        em = EnergyModel()
        assert em.step_time_us(30) > em.step_time_us(10) > em.step_time_us(5)

    def test_learning_overhead(self):
        em = EnergyModel()
        assert em.step_time_us(10, learning=True) > em.step_time_us(10)

    def test_power_scales_with_cores(self):
        em = EnergyModel()
        assert em.active_power_w(40, 0, 0) > em.active_power_w(10, 0, 0)

    def test_report_consistency(self):
        """Energy/sample = power x time/sample (Table II's identity)."""
        em = EnergyModel()
        stats = RunStats(steps=128 * 100, samples=100, spikes=1000,
                        syn_events=10_000, learning_epochs=200,
                        plastic_synapses=1000)
        rep = em.report(stats, cores_used=20, max_compartments_per_core=10,
                        compartments=500, learning=True)
        assert rep.energy_per_sample_mj == pytest.approx(
            rep.power_w * rep.time_per_sample_ms, rel=0.05)
        assert rep.fps == pytest.approx(1000.0 / rep.time_per_sample_ms)

    def test_report_requires_samples(self):
        em = EnergyModel()
        with pytest.raises(ValueError):
            em.report(RunStats(), 1, 1, 1, False)

    def test_optimal_packing_helper(self):
        best, cost = optimal_neurons_per_core(
            [5, 10, 20], lambda p: (p - 10) ** 2)
        assert best == 10 and cost == 0

    def test_run_stats_merge(self):
        a = RunStats(steps=10, samples=1, spikes=5, syn_events=7,
                     learning_epochs=2, plastic_synapses=100)
        b = RunStats(steps=20, samples=2, spikes=3, syn_events=3,
                     learning_epochs=1, plastic_synapses=50)
        a.merge(b)
        assert a.steps == 30 and a.samples == 3
        assert a.plastic_synapses == 100
