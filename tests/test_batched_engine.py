"""Unit and integration tests for the batched vectorized EMSTDP engine.

Covers the batched primitives (``IFLayer``/``SignedErrorLayer`` with a
leading batch dimension, ``encode_labels``, ``predict_classes``,
``WeightUpdater.apply_batch``), the network-level batch API in both update
modes and both dynamics backends, and the batch APIs threaded through the
on-chip trainer and the backprop baseline.  End-to-end batched-vs-
sequential equivalence lives in ``test_network_equivalence.py``.
"""

import numpy as np
import pytest

from repro.baselines import BackpropMLP
from repro.core import (EMSTDPConfig, EMSTDPNetwork, IFLayer,
                        SignedErrorLayer, WeightUpdater,
                        delta_w_reference, delta_w_reference_batch,
                        encode_label, encode_labels, loihi_default_config,
                        predict_class, predict_classes)
from repro.data import load_dataset

from conftest import make_blobs


def small_cfg(**kw):
    base = dict(seed=1, phase_length=32)
    base.update(kw)
    return EMSTDPConfig(**base)


# ----------------------------------------------------------------------
# Batched neuron primitives
# ----------------------------------------------------------------------

class TestBatchedIFLayer:
    def test_rows_evolve_like_independent_layers(self):
        B, n, steps = 5, 7, 40
        rng = np.random.default_rng(0)
        drives = rng.uniform(-0.4, 1.2, size=(steps, B, n))
        batched = IFLayer(n, batch_size=B, refractory=1)
        singles = [IFLayer(n, refractory=1) for _ in range(B)]
        for t in range(steps):
            sb = batched.step(drives[t])
            for b, layer in enumerate(singles):
                assert np.array_equal(sb[b], layer.step(drives[t, b]))
        for b, layer in enumerate(singles):
            assert np.array_equal(batched.spike_count[b], layer.spike_count)
            assert np.allclose(batched.v[b], layer.v)

    def test_state_shapes(self):
        layer = IFLayer(4, batch_size=3)
        assert layer.v.shape == (3, 4)
        assert layer.spike_count.shape == (3, 4)

    def test_shape_validation_batched(self):
        layer = IFLayer(4, batch_size=3)
        with pytest.raises(ValueError):
            layer.step(np.zeros(4))  # missing batch dim
        with pytest.raises(ValueError):
            layer.step(np.zeros((2, 4)))  # wrong batch size

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            IFLayer(4, batch_size=0)

    def test_unbatched_default_unchanged(self):
        layer = IFLayer(3)
        assert layer.batch_size is None
        assert layer.v.shape == (3,)
        with pytest.raises(ValueError):
            layer.step(np.zeros(4))


class TestBatchedSignedErrorLayer:
    def test_rows_match_independent_pairs_with_gates(self):
        B, n, steps = 4, 6, 30
        rng = np.random.default_rng(1)
        drives = rng.uniform(-1.0, 1.0, size=(steps, B, n))
        gates = rng.random((B, n)) > 0.3
        batched = SignedErrorLayer(n, batch_size=B)
        singles = [SignedErrorLayer(n) for _ in range(B)]
        for t in range(steps):
            out = batched.step(drives[t], gate=gates)
            for b, pair in enumerate(singles):
                assert np.array_equal(out[b],
                                      pair.step(drives[t, b], gate=gates[b]))
        for b, pair in enumerate(singles):
            assert np.array_equal(batched.signed_count[b], pair.signed_count)

    def test_disabled_swallows_batched_spikes(self):
        layer = SignedErrorLayer(3, batch_size=2)
        out = layer.step(np.full((2, 3), 1.5), enabled=False)
        assert out.shape == (2, 3)
        assert np.all(out == 0)
        assert np.all(layer.signed_count == 0)


# ----------------------------------------------------------------------
# Batched encodings / readout / updates
# ----------------------------------------------------------------------

class TestBatchedHelpers:
    def test_encode_labels_matches_scalar(self):
        labels = np.array([0, 3, 1, 3])
        batch = encode_labels(labels, 4, rate=0.5)
        for b, lab in enumerate(labels):
            assert np.array_equal(batch[b], encode_label(int(lab), 4, 0.5))

    def test_encode_labels_validation(self):
        with pytest.raises(ValueError):
            encode_labels([0, 4], 4)
        with pytest.raises(ValueError):
            encode_labels([0, 1], 4, rate=0.0)

    def test_predict_classes_matches_scalar(self):
        rates = np.random.default_rng(2).random((6, 5))
        rates[0] = 0.25  # tie row: argmax tie-break must agree
        preds = predict_classes(rates)
        for b in range(len(rates)):
            assert preds[b] == predict_class(rates[b])

    def test_delta_w_batch_matches_looped_outer(self):
        rng = np.random.default_rng(3)
        B, n_pre, n_post = 9, 5, 4
        h_hat = rng.random((B, n_post))
        h = rng.random((B, n_post))
        pre = rng.random((B, n_pre))
        summed = sum(delta_w_reference(h_hat[b], h[b], pre[b], eta=0.125)
                     for b in range(B))
        assert np.allclose(
            delta_w_reference_batch(h_hat, h, pre, eta=0.125, reduction="sum"),
            summed, atol=1e-12)
        assert np.allclose(
            delta_w_reference_batch(h_hat, h, pre, eta=0.125, reduction="mean"),
            summed / B, atol=1e-12)

    def test_delta_w_batch_validation(self):
        with pytest.raises(ValueError):
            delta_w_reference_batch(np.zeros((2, 3)), np.zeros((2, 3)),
                                    np.zeros((2, 4)), 0.1, reduction="max")
        with pytest.raises(ValueError):
            delta_w_reference_batch(np.zeros(3), np.zeros(3), np.zeros(4), 0.1)

    def test_updater_apply_batch_projects_once(self):
        rng = np.random.default_rng(4)
        up = WeightUpdater(eta=0.25, weight_bits=8, weight_clip=2.0,
                           stochastic_rounding=False, rng=rng)
        w = rng.uniform(-1, 1, (5, 4))
        h_hat, h, pre = rng.random((3, 4)), rng.random((3, 4)), rng.random((3, 5))
        got = up.apply_batch(w, h_hat, h, pre)
        ref = up.project(
            w + delta_w_reference_batch(h_hat, h, pre, 0.25, "mean"))
        assert np.array_equal(got, ref)


# ----------------------------------------------------------------------
# Network-level batch API
# ----------------------------------------------------------------------

class TestFitBatch:
    def test_returns_per_sample_results(self, blob_task):
        xs, ys, _, _ = blob_task
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        out = net.fit_batch(xs[:12], ys[:12], update_mode="minibatch")
        assert out["predictions"].shape == (12,)
        assert out["correct"].shape == (12,)
        assert out["accuracy"] == pytest.approx(np.mean(out["correct"]))
        assert net.samples_seen == 12

    def test_rejects_unknown_mode_and_bad_shapes(self, blob_task):
        xs, ys, _, _ = blob_task
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        with pytest.raises(ValueError):
            net.fit_batch(xs[:4], ys[:4], update_mode="epoch")
        with pytest.raises(ValueError):
            net.fit_batch(xs[:4], ys[:3])
        with pytest.raises(ValueError):
            net.fit_batch(np.zeros((4, 9)), np.zeros(4, dtype=int))

    @pytest.mark.parametrize("dynamics", ["rate", "spike"])
    def test_online_parity_on_mnist_like(self, dynamics):
        """Satellite case: fit(x_i) loop == fit_batch(X) online, MNIST-like."""
        train, _ = load_dataset("mnist_like", n_train=24, n_test=4, side=8)
        dims = (64, 20, 10)
        cfg = small_cfg(phase_length=16, dynamics=dynamics)
        a = EMSTDPNetwork(dims, cfg)
        b = EMSTDPNetwork(dims, cfg)
        out = a.fit_batch(train.flat(), train.labels, update_mode="online")
        seq_preds = [b.train_sample(x, int(y))["prediction"]
                     for x, y in zip(train.flat(), train.labels)]
        assert np.array_equal(out["predictions"], seq_preds)
        for wa, wb in zip(a.weights, b.weights):
            assert np.max(np.abs(wa - wb)) < 1e-9

    def test_minibatch_mode_learns_blobs(self, blob_task):
        xs, ys, tx, ty = blob_task
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        before = net.evaluate_batch(tx, ty)
        for _ in range(3):
            for lo in range(0, len(xs), 32):
                net.fit_batch(xs[lo:lo + 32], ys[lo:lo + 32],
                              update_mode="minibatch")
        after = net.evaluate_batch(tx, ty)
        assert after > before
        assert after >= 0.6

    def test_minibatch_respects_lr_scale_zero(self, blob_task):
        xs, ys, _, _ = blob_task
        net = EMSTDPNetwork((8, 16, 3), small_cfg(stochastic_rounding=False))
        snapshot = [w.copy() for w in net.weights]
        net.fit_batch(xs[:16], ys[:16], update_mode="minibatch", lr_scale=0.0)
        for w, s in zip(net.weights, snapshot):
            assert np.array_equal(w, s)

    def test_minibatch_respects_class_mask(self, blob_task):
        xs, ys, tx, _ = blob_task
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        net.set_class_mask([0, 2])
        keep = ys != 1
        net.fit_batch(xs[keep][:32], ys[keep][:32], update_mode="minibatch")
        assert 1 not in set(net.predict_batch(tx[:50]).tolist())

    @pytest.mark.parametrize("mode", ["online", "minibatch"])
    @pytest.mark.parametrize("empty", [[], np.zeros((0, 8))])
    def test_empty_batch_is_a_safe_noop(self, mode, empty):
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        snapshot = [w.copy() for w in net.weights]
        out = net.fit_batch(empty, [], update_mode=mode)
        assert out["predictions"].shape == (0,)
        assert out["accuracy"] == 0.0
        for w, s in zip(net.weights, snapshot):
            assert np.array_equal(w, s)  # no NaN write-back from a 0/0 mean
        assert net.predict_batch(empty).shape == (0,)
        assert net.evaluate_batch(empty, []) == 0.0

    def test_delta_w_batch_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            delta_w_reference_batch(np.zeros((0, 3)), np.zeros((0, 3)),
                                    np.zeros((0, 4)), 0.1)

    def test_single_sample_input_promoted_to_batch(self):
        net = EMSTDPNetwork((8, 16, 3), small_cfg())
        out = net.fit_batch(np.full(8, 0.5), [1], update_mode="minibatch")
        assert out["predictions"].shape == (1,)
        assert net.predict_batch(np.full(8, 0.5)).shape == (1,)


# ----------------------------------------------------------------------
# Batch APIs threaded through the other layers
# ----------------------------------------------------------------------

class TestOnChipBatchAPI:
    @pytest.fixture()
    def trainer(self):
        from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network
        cfg = loihi_default_config(seed=1, phase_length=8)
        model = build_emstdp_network((6, 8, 3), cfg)
        return LoihiEMSTDPTrainer(model, neurons_per_core=16)

    def test_train_batch_matches_sample_loop_contract(self, trainer):
        xs, ys = make_blobs(6, 3, 6, seed=2)
        out = trainer.train_batch(xs, ys)
        assert out["predictions"].shape == (6,)
        assert out["correct"].dtype == bool
        assert trainer.samples_trained == 6

    def test_fit_batch_alias_and_1d_promotion(self, trainer):
        xs, ys = make_blobs(6, 3, 2, seed=2)
        out = trainer.fit_batch(xs, ys)  # drop-in for EMSTDPNetwork.fit_batch
        assert out["predictions"].shape == (2,)
        out = trainer.train_batch(xs[0], [int(ys[0])])  # 1-D sample -> B=1
        assert out["predictions"].shape == (1,)
        assert trainer.infer_batch(xs[0]).shape == (1, 3)
        # minibatch mode rides the batch-parallel replicated runtime
        out = trainer.fit_batch(xs, ys, update_mode="minibatch")
        assert out["predictions"].shape == (2,)
        with pytest.raises(ValueError):
            trainer.fit_batch(xs, ys, update_mode="bogus")

    def test_predict_and_evaluate_batch(self, trainer):
        xs, ys = make_blobs(6, 3, 5, seed=3)
        preds = trainer.predict_batch(xs)
        assert np.array_equal(preds, [trainer.predict(x) for x in xs])
        assert trainer.evaluate_batch(xs, ys) == trainer.evaluate(xs, ys)
        assert trainer.infer_batch(xs).shape == (5, 3)


class TestBackpropMLPBatch:
    def test_predict_batch_matches_loop(self):
        xs, _ = make_blobs(8, 3, 30, seed=4)
        mlp = BackpropMLP((8, 16, 3), seed=0)
        assert np.array_equal(mlp.predict_batch(xs),
                              [mlp.predict(x) for x in xs])

    def test_evaluate_batch_matches_loop(self):
        xs, ys = make_blobs(8, 3, 30, seed=4)
        mlp = BackpropMLP((8, 16, 3), seed=0)
        assert mlp.evaluate_batch(xs, ys) == mlp.evaluate(xs, ys)

    def test_train_batch_learns(self):
        xs, ys = make_blobs(8, 3, 300, seed=0)
        tx, ty = make_blobs(8, 3, 100, seed=1)
        mlp = BackpropMLP((8, 16, 3), lr=0.5, seed=0)
        before = mlp.evaluate_batch(tx, ty)
        for _ in range(5):
            for lo in range(0, len(xs), 32):
                mlp.train_batch(xs[lo:lo + 32], ys[lo:lo + 32])
        assert mlp.evaluate_batch(tx, ty) > max(before, 0.8)

    def test_train_batch_validates_lengths(self):
        mlp = BackpropMLP((8, 16, 3), seed=0)
        with pytest.raises(ValueError):
            mlp.train_batch(np.zeros((4, 8)), np.zeros(3, dtype=int))

    def test_train_batch_of_one_matches_train_sample(self):
        """Same gradient at B=1: batched and sequential paths agree."""
        xs, ys = make_blobs(8, 3, 10, seed=6)
        a = BackpropMLP((8, 16, 3), lr=0.1, seed=0)
        b = BackpropMLP((8, 16, 3), lr=0.1, seed=0)
        for x, y in zip(xs, ys):
            a.train_sample(x, int(y))
            b.train_batch(x[None, :], [int(y)])
        for wa, wb in zip(a.weights, b.weights):
            assert np.allclose(wa, wb, atol=1e-12)

    def test_empty_input_is_safe(self):
        mlp = BackpropMLP((8, 16, 3), seed=0)
        assert mlp.evaluate_batch([], []) == 0.0
        assert mlp.predict_batch([]).shape == (0,)
        assert mlp.train_batch([], []) == 0.0


class TestIncrementalUsesBatchedEval:
    def test_eval_observed_prefers_evaluate_batch(self):
        from repro.data.synth import Dataset
        from repro.incremental.protocol import IncrementalOnlineLearner

        calls = {"batch": 0, "loop": 0}

        class Probe:
            n_classes = 3

            def evaluate(self, xs, ys):
                calls["loop"] += 1
                return 0.0

            def evaluate_batch(self, xs, ys):
                calls["batch"] += 1
                return 0.0

        xs, ys = make_blobs(4, 3, 30, seed=0)
        data = Dataset(xs, ys, n_classes=3)
        learner = IncrementalOnlineLearner(Probe(), data, data)
        learner._eval_observed([0, 1])
        assert calls == {"batch": 1, "loop": 0}
