"""Tests for the topology parser, numpy CNN and conv->matrix conversion."""

import numpy as np
import pytest

from repro.models import (ConvFrontend, ConvSpec, DenseSpec, feature_dims,
                          im2col, paper_topology, parse_topology)
from repro.models.convert import conv_layer_matrix, frontend_matrices


class TestTopologyParser:
    def test_paper_network(self):
        spec = paper_topology(16, 1)
        input_spec, layers = parse_topology(spec)
        assert input_spec.shape == (16, 16, 1)
        assert layers[0] == ConvSpec(kernel=5, channels=16, stride=2)
        assert layers[1] == ConvSpec(kernel=3, channels=8, stride=2)
        assert layers[2] == DenseSpec(units=100)
        assert layers[3] == DenseSpec(units=10)

    def test_feature_dims(self):
        n, dense = feature_dims(paper_topology(16, 1))
        assert n == 4 * 4 * 8 == 128
        assert dense == [100, 10]

    def test_conv_output_size(self):
        spec = ConvSpec(kernel=5, channels=16, stride=2)
        assert spec.output_hw(16, 16) == (8, 8)
        assert spec.output_hw(28, 28) == (14, 14)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            parse_topology("")
        with pytest.raises(ValueError):
            parse_topology("16x16-100d")
        with pytest.raises(ValueError):
            parse_topology("16x16x1-5x3k8c1s-10d")  # non-square kernel
        with pytest.raises(ValueError):
            parse_topology("16x16x1-100d-5x5k8c2s")  # conv after dense
        with pytest.raises(ValueError):
            parse_topology("16x16x1-5x5k8c2s")  # must end dense
        with pytest.raises(ValueError):
            parse_topology("16x16x1-banana-10d")


class TestIm2col:
    def test_shape(self):
        x = np.zeros((2, 16, 16, 3))
        cols, oh, ow = im2col(x, kernel=5, stride=2)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2, 8, 8, 75)

    def test_identity_kernel_recovers_input(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(size=(1, 8, 8, 1))
        cols, oh, ow = im2col(x, kernel=1, stride=1)
        assert np.allclose(cols[0, :, :, 0], x[0, :, :, 0])


class TestConvFrontend:
    def test_pretraining_learns(self):
        from repro.data import load_dataset
        train, test = load_dataset("mnist_like", 300, 100, side=16)
        fe = ConvFrontend(paper_topology(16, 1), seed=0)
        result = fe.pretrain(train.images, train.labels, epochs=3)
        assert result.train_accuracy > 0.6
        assert fe.head_accuracy(test.images, test.labels) > 0.5

    def test_features_normalized(self):
        from repro.data import load_dataset
        train, _ = load_dataset("mnist_like", 50, 5, side=16)
        fe = ConvFrontend(paper_topology(16, 1), seed=0)
        fe.pretrain(train.images, train.labels, epochs=1)
        feats = fe.features(train.images)
        assert feats.shape == (50, fe.n_features)
        assert feats.min() >= 0.0 and feats.max() <= 1.0

    def test_feature_count_matches_parser(self):
        fe = ConvFrontend(paper_topology(16, 1), seed=0)
        n, _ = feature_dims(paper_topology(16, 1))
        assert fe.n_features == n

    def test_input_shape_validation(self):
        fe = ConvFrontend(paper_topology(16, 1), seed=0)
        with pytest.raises(ValueError):
            fe.features(np.zeros((2, 16)))


class TestConvToMatrix:
    def test_unrolled_matrix_matches_im2col_forward(self):
        """The flat matrix must compute exactly what the conv layer does."""
        rng = np.random.default_rng(0)
        fe = ConvFrontend("8x8x1-3x3k4c2s-10d", seed=0)
        layer = fe.conv_layers[0]
        x = rng.uniform(size=(3, 8, 8, 1))
        direct = layer.forward(x).reshape(3, -1)
        mat, out_shape = conv_layer_matrix(layer.weight, 3, 2, (8, 8, 1))
        flat = np.maximum(x.reshape(3, -1) @ mat + np.tile(
            layer.bias, out_shape[0] * out_shape[1]), 0)
        assert np.allclose(direct, flat, atol=1e-9)

    def test_frontend_matrices_scale(self):
        from repro.data import load_dataset
        train, _ = load_dataset("mnist_like", 60, 5, side=16)
        fe = ConvFrontend(paper_topology(16, 1), seed=0)
        fe.pretrain(train.images, train.labels, epochs=1)
        mats, biases = frontend_matrices(fe)
        assert mats[0].shape == (256, 1024)
        assert mats[1].shape == (1024, 128)
        # chained flat maps approximate the normalized features
        x = train.images[:4].reshape(4, -1)
        a = np.maximum(x @ mats[0] + biases[0], 0)
        b = np.maximum(a @ mats[1] + biases[1], 0)
        feats = fe.features(train.images[:4])
        assert np.allclose(np.clip(b, 0, 1), feats, atol=1e-6)
