"""Bit-identical equivalence suite for the kernel backends.

Every available backend (numba, cext, numpy) must produce *exactly* the
same bits as the pure-NumPy reference — ``np.array_equal``, never
``allclose`` — across edge shapes: empty batches, single neurons, single
replicas, non-contiguous views, float32 and float64 state.  The golden
fixtures in ``tests/golden/kernels_golden.npz`` additionally pin the
learning-rule outputs to the values the reference produced when first
recorded, so a refactor that drifts the math by one ulp fails loudly.
"""

import os
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core import kernels
from repro.loihi.microcode import parse_rule

REPO = Path(__file__).resolve().parents[1]
GOLDEN = Path(__file__).parent / "golden" / "kernels_golden.npz"

AVAILABLE = kernels.available_backends()
COMPILED = tuple(b for b in AVAILABLE if b != "numpy")

FLOATS = (np.float64, np.float32)


def _run_on(backend, fn):
    with kernels.forced_backend(backend):
        return fn()


def _assert_backends_identical(fn):
    """``fn()`` (returning a tuple of arrays) is bitwise backend-invariant."""
    ref = _run_on("numpy", fn)
    for backend in AVAILABLE:
        got = _run_on(backend, fn)
        assert len(got) == len(ref)
        for i, (r, g) in enumerate(zip(ref, got)):
            assert g.dtype == r.dtype, (backend, i)
            assert g.shape == r.shape, (backend, i)
            assert np.array_equal(g, r), \
                f"{backend} output {i} differs from numpy reference"


def _noncontig(arr):
    """Embed ``arr`` in a larger buffer so the view is non-contiguous."""
    if arr.ndim == 1:
        base = np.zeros(arr.shape[0] * 2, dtype=arr.dtype)
        view = base[::2]
    else:
        base = np.zeros((arr.shape[0], arr.shape[1] * 2), dtype=arr.dtype)
        view = base[:, ::2]
    view[...] = arr
    assert not view.flags.c_contiguous or view.size <= 1
    return view


# ----------------------------------------------------------------------
# Cross-backend bit identity
# ----------------------------------------------------------------------

class TestIFStep:
    SHAPES = [(0,), (1,), (7,), (0, 4), (1, 5), (3, 17)]

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("dtype", FLOATS)
    @pytest.mark.parametrize("soft_reset", [True, False])
    def test_multistep_identity(self, shape, dtype, soft_reset):
        rng = np.random.default_rng(7)
        drives = rng.uniform(-0.5, 1.5, (6,) + shape)

        def run():
            v = np.zeros(shape, dtype=dtype)
            refrac = np.zeros(shape, dtype=np.int64)
            spikes = [kernels.if_step(v, refrac, d.astype(dtype), 0.75,
                                      soft_reset=soft_reset, refractory=2)
                      for d in drives]
            return (v, refrac, *spikes)

        _assert_backends_identical(run)

    def test_grid_exact_drive(self):
        """A drive exactly on the 1/T grid must spike identically."""
        def run():
            v = np.zeros(8)
            refrac = np.zeros(8, dtype=np.int64)
            spikes = [kernels.if_step(v, refrac, np.full(8, 0.25), 1.0)
                      for _ in range(8)]
            return (v, *spikes)

        _assert_backends_identical(run)

    @pytest.mark.parametrize("dtype", FLOATS)
    def test_noncontiguous_state(self, dtype):
        rng = np.random.default_rng(11)
        v0 = rng.uniform(0, 1, (4, 6)).astype(dtype)

        def run():
            v = _noncontig(v0.copy())
            refrac = np.zeros((4, 6), dtype=np.int64)
            s = kernels.if_step(v, refrac, np.full((4, 6), 0.4, dtype=dtype),
                                0.75)
            return (np.ascontiguousarray(v), s)

        _assert_backends_identical(run)


class TestCubaStep:
    CONFIGS = [
        # (decay_u, decay_v, soft_reset, refractory, floor, non_spiking)
        (4096, 0, True, 0, True, False),      # paper's IF configuration
        (512, 128, True, 2, True, False),     # generic CUBA LIF
        (512, 128, False, 0, False, False),   # hard reset, signed membrane
        (4096, 0, True, 0, True, True),       # compare-only aux compartment
    ]

    @pytest.mark.parametrize("shape", [(0,), (1,), (6,), (3, 9)])
    @pytest.mark.parametrize("cfg", CONFIGS)
    def test_multistep_identity(self, shape, cfg):
        decay_u, decay_v, soft, refr, floor, non_spiking = cfg
        rng = np.random.default_rng(13)
        syn = rng.integers(-4000, 9000, (5,) + shape)
        bias = rng.integers(0, 2000, shape)

        def run():
            u = np.zeros(shape, dtype=np.int64)
            v = np.zeros(shape, dtype=np.int64)
            refrac = np.zeros(shape, dtype=np.int64)
            fired = [kernels.cuba_step(u, v, refrac, bias, s, decay_u,
                                       decay_v, 256 << 6, soft_reset=soft,
                                       refractory=refr, floor_at_zero=floor,
                                       non_spiking=non_spiking)
                     for s in syn]
            return (u, v, refrac, *fired)

        _assert_backends_identical(run)

    def test_noncontiguous_state(self):
        rng = np.random.default_rng(17)
        u0 = rng.integers(0, 5000, (3, 8))
        v0 = rng.integers(0, 20000, (3, 8))

        def run():
            u = _noncontig(u0.copy())
            v = _noncontig(v0.copy())
            refrac = np.zeros((3, 8), dtype=np.int64)
            fired = kernels.cuba_step(u, v, refrac, 0, 6000, 512, 128,
                                      256 << 6)
            return (np.ascontiguousarray(u), np.ascontiguousarray(v), fired)

        _assert_backends_identical(run)


class TestTraceUpdate:
    @pytest.mark.parametrize("shape", [(0,), (1,), (9,), (1, 6), (4, 11)])
    @pytest.mark.parametrize("dtype", FLOATS)
    @pytest.mark.parametrize("impulse,decay", [(1, 1.0), (16, 0.7),
                                               (127, 0.5)])
    def test_multistep_identity(self, shape, dtype, impulse, decay):
        rng = np.random.default_rng(19)
        spikes = rng.random((6,) + shape) < 0.4

        def run():
            values = np.zeros(shape, dtype=dtype)
            for s in spikes:
                kernels.trace_update(values, s, impulse, decay, 127)
            return (values,)

        _assert_backends_identical(run)

    def test_noncontiguous_state(self):
        rng = np.random.default_rng(23)
        v0 = rng.uniform(0, 100, (3, 10))

        def run():
            values = _noncontig(v0.copy())
            kernels.trace_update(values, v0 > 50, 16, 0.9, 127)
            return (np.ascontiguousarray(values),)

        _assert_backends_identical(run)


class TestDeltaW:
    @pytest.mark.parametrize("n_pre,n_post", [(0, 4), (4, 0), (1, 1),
                                              (31, 17)])
    @pytest.mark.parametrize("dtype", FLOATS)
    def test_eq7_identity(self, n_pre, n_post, dtype):
        rng = np.random.default_rng(29)
        h_hat = rng.random(n_post).astype(dtype)
        h = rng.random(n_post).astype(dtype)
        pre = rng.random(n_pre).astype(dtype)

        _assert_backends_identical(
            lambda: (kernels.delta_w(h_hat, h, pre, 0.1),))

    @pytest.mark.parametrize("B", [0, 1, 2, 16])
    @pytest.mark.parametrize("dtype", FLOATS)
    def test_eq7_batch_identity(self, B, dtype):
        rng = np.random.default_rng(31)
        h_hat = rng.random((B, 13)).astype(dtype)
        h = rng.random((B, 13)).astype(dtype)
        pre = rng.random((B, 9)).astype(dtype)

        _assert_backends_identical(
            lambda: (kernels.delta_w_batch(h_hat, h, pre, 0.1, mean=False),))
        if B > 0:
            _assert_backends_identical(
                lambda: (kernels.delta_w_batch(h_hat, h, pre, 0.1,
                                               mean=True),))

    def test_empty_batch_mean_raises_on_every_backend(self):
        empty = np.zeros((0, 5))
        for backend in AVAILABLE:
            with kernels.forced_backend(backend):
                with pytest.raises(ValueError, match="empty batch"):
                    kernels.delta_w_batch(empty, empty, np.zeros((0, 3)),
                                          0.1, mean=True)

    @pytest.mark.parametrize("n_pre,n_post", [(0, 4), (1, 1), (31, 17)])
    def test_eq12_identity(self, n_pre, n_post):
        rng = np.random.default_rng(37)
        h_hat = rng.random(n_post)
        z = rng.random(n_post) * 2
        pre = rng.random(n_pre)

        _assert_backends_identical(
            lambda: (kernels.delta_w_loihi(h_hat, z, pre, 0.25),))


class TestSumOfProducts:
    RULES = ["dt = y1",
             "dw = 2^-2 * y1 * x1 - 2^-3 * t * x1",
             "dw = 2^-4 * y1 * (x1 + 2) - 2^-6 * t * w + 3"]

    @pytest.mark.parametrize("rule_text", RULES)
    @pytest.mark.parametrize("R,S,D", [(None, 1, 1), (None, 12, 7),
                                       (1, 5, 4), (3, 12, 7)])
    def test_identity(self, rule_text, R, S, D):
        rng = np.random.default_rng(41)
        pre_shape = (S,) if R is None else (R, S)
        post_shape = (D,) if R is None else (R, D)
        syn_shape = (S, D) if R is None else (R, S, D)
        x0 = (rng.random(pre_shape) < 0.5).astype(np.int64)
        x1 = rng.integers(0, 128, pre_shape)
        y0 = (rng.random(post_shape) < 0.5).astype(np.int64)
        y1 = rng.integers(0, 128, post_shape)
        tag = rng.integers(-255, 256, syn_shape)
        w = rng.integers(-127, 128, syn_shape)
        rule = parse_rule(rule_text)

        _assert_backends_identical(
            lambda: (kernels.sum_of_products(rule, x0, x1, y0, y1, tag, w),))


# ----------------------------------------------------------------------
# Golden regression fixtures
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def golden():
    return np.load(GOLDEN)


@pytest.mark.parametrize("backend", AVAILABLE)
class TestGoldenFixtures:
    """Every backend must reproduce the recorded reference outputs exactly."""

    def test_eq7(self, golden, backend):
        with kernels.forced_backend(backend):
            dw = kernels.delta_w(golden["eq7_h_hat"], golden["eq7_h"],
                                 golden["eq7_pre"], float(golden["eq7_eta"]))
        assert np.array_equal(dw, golden["eq7_dw"])

    @pytest.mark.parametrize("reduction", ["sum", "mean"])
    def test_eq7_batch(self, golden, backend, reduction):
        with kernels.forced_backend(backend):
            dw = kernels.delta_w_batch(
                golden["eq7b_h_hat"], golden["eq7b_h"], golden["eq7b_pre"],
                float(golden["eq7b_eta"]), mean=(reduction == "mean"))
        assert np.array_equal(dw, golden[f"eq7b_dw_{reduction}"])

    def test_eq12(self, golden, backend):
        with kernels.forced_backend(backend):
            dw = kernels.delta_w_loihi(golden["eq12_h_hat"], golden["eq12_z"],
                                       golden["eq12_pre"],
                                       float(golden["eq12_eta"]))
        assert np.array_equal(dw, golden["eq12_dw"])

    @pytest.mark.parametrize("case", ["sop1", "sopR"])
    def test_microcode(self, golden, backend, case):
        rules = [parse_rule(str(t)) for t in golden["rules"]]
        with kernels.forced_backend(backend):
            for k, rule in enumerate(rules):
                dz = kernels.sum_of_products(
                    rule, golden[f"{case}_x0"], golden[f"{case}_x1"],
                    golden[f"{case}_y0"], golden[f"{case}_y1"],
                    golden[f"{case}_t"], golden[f"{case}_w"])
                assert np.array_equal(dz, golden[f"{case}_dz{k}"]), \
                    f"rule {k} drifted from the golden fixture"


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

@pytest.fixture
def restore_backend():
    # Restore the module state directly: this teardown runs before
    # monkeypatch undoes its loader patches, so select_backend() could
    # not re-import the previously active backend here.
    previous_name, previous_impl = kernels._active_name, kernels._active_impl
    yield
    kernels._active_name, kernels._active_impl = previous_name, previous_impl


class TestBackendSelection:
    def test_active_backend_is_known(self):
        assert kernels.backend_name() in kernels.BACKENDS
        assert "numpy" in AVAILABLE  # the fallback always loads

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.select_backend("fortran")

    def test_explicitly_requested_unavailable_backend_raises(
            self, monkeypatch, restore_backend):
        def boom():
            raise ImportError("numba is not installed")
        monkeypatch.setitem(kernels._LOADERS, "numba", boom)
        with pytest.raises(ImportError, match="requested explicitly"):
            kernels.select_backend("numba")

    def test_autodetect_degrades_to_numpy_with_single_warning(
            self, monkeypatch, restore_backend):
        def boom():
            raise ImportError("unavailable in this test")
        monkeypatch.setitem(kernels._LOADERS, "numba", boom)
        monkeypatch.setitem(kernels._LOADERS, "cext", boom)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            name = kernels.select_backend(None)
        assert name == "numpy"
        assert kernels.backend_name() == "numpy"
        relevant = [w for w in caught
                    if issubclass(w.category, RuntimeWarning)]
        assert len(relevant) == 1
        assert "falling back to pure-NumPy" in str(relevant[0].message)

    def test_forced_backend_restores_previous(self):
        before = kernels.backend_name()
        with kernels.forced_backend("numpy"):
            assert kernels.backend_name() == "numpy"
        assert kernels.backend_name() == before


class TestEnvOverride:
    """The REPRO_KERNEL_BACKEND variable is honored at import time."""

    def _import_with_env(self, value):
        env = dict(os.environ,
                   PYTHONPATH=str(REPO / "src"),
                   REPRO_KERNEL_BACKEND=value)
        return subprocess.run(
            [sys.executable, "-c",
             "from repro.core import kernels; print(kernels.backend_name())"],
            capture_output=True, text=True, env=env)

    def test_env_override_wins(self):
        proc = self._import_with_env("numpy")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "numpy"

    def test_unknown_env_value_fails_import_with_clear_error(self):
        proc = self._import_with_env("cuda")
        assert proc.returncode != 0
        assert "unknown kernel backend 'cuda'" in proc.stderr
        assert "REPRO_KERNEL_BACKEND" in proc.stderr

    @pytest.mark.parametrize("backend", COMPILED)
    def test_compiled_backends_selectable_via_env(self, backend):
        proc = self._import_with_env(backend)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == backend
