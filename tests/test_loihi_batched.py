"""Batch-parallel sharded Loihi runtime: the replica-equivalence contract.

The spine of the batched chip path: a replicated network stepped by the
vectorized runtime must be *bit-identical*, replica by replica — weights
and spike counts — to running each replica through the sequential
single-replica :class:`Runtime` with the same per-replica
stochastic-rounding stream.  Everything else (the trainer's batch API, the
scenario routing, serving) is layered on that guarantee.
"""

import numpy as np
import pytest

from repro.core import EMSTDPNetwork, loihi_default_config
from repro.loihi import (LoihiChip, Network, Runtime, ShardedRuntime,
                        if_prototype, parse_rule, shard_groups)
from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network

from conftest import make_blobs

RULES = {"end": [parse_rule("dt = y1"),
                 parse_rule("dw = 2^-6 * y1 * x1 - 2^-7 * t * x1")]}


def plastic_net(replicas):
    net = Network("t", replicas=replicas)
    proto = if_prototype()
    a = net.create_group(5, proto, "a")
    b = net.create_group(3, proto, "b")
    conn = net.connect(a, b, np.full((5, 3), 30), weight_scale=64,
                       plastic=True, learning_rule="r")
    return net, conn


def drive(rt, biases, steps=16, epochs=2):
    """A bias-driven schedule with interleaved learning epochs."""
    rt.register_rule("r", RULES)
    rt.set_bias("a", biases)
    for _ in range(epochs):
        rt.run(steps)
        rt.learning_epoch("end")
    return rt


class TestReplicaEquivalence:
    REPLICAS = 4
    SEEDS = [11, 12, 13, 14]

    def sequential_reference(self, biases):
        weights, counts = [], []
        for r in range(self.REPLICAS):
            net, conn = plastic_net(1)
            rt = drive(Runtime(net, rng=np.random.default_rng(self.SEEDS[r])),
                       biases[r])
            weights.append(conn.weight_mant.copy())
            counts.append((rt.spike_counts("a"), rt.spike_counts("b")))
        return weights, counts

    def test_batched_learning_bit_identical_per_replica(self):
        rng = np.random.default_rng(0)
        biases = rng.integers(0, 1 << 14, (self.REPLICAS, 5))
        seq_w, seq_counts = self.sequential_reference(biases)
        net, conn = plastic_net(self.REPLICAS)
        rt = drive(Runtime(net, rng=[np.random.default_rng(s)
                                     for s in self.SEEDS]), biases)
        for r in range(self.REPLICAS):
            assert np.array_equal(conn.weight_mant[r], seq_w[r])
            assert np.array_equal(rt.spike_counts("a")[r], seq_counts[r][0])
            assert np.array_equal(rt.spike_counts("b")[r], seq_counts[r][1])

    def test_sharded_runtime_bit_identical_and_merges_stats(self):
        rng = np.random.default_rng(0)
        biases = rng.integers(0, 1 << 14, (self.REPLICAS, 5))
        seq_w, _ = self.sequential_reference(biases)
        net, conn = plastic_net(self.REPLICAS)
        mapping = net.compile(LoihiChip())
        with ShardedRuntime(net, mapping,
                            rng=[np.random.default_rng(s)
                                 for s in self.SEEDS],
                            max_workers=2) as rt:
            assert len(rt.shards) > 1  # the mapping really is partitioned
            drive(rt, biases)
            for r in range(self.REPLICAS):
                assert np.array_equal(conn.weight_mant[r], seq_w[r])
            merged = rt.merged_shard_stats()
            assert merged.spikes == rt.stats.spikes > 0
            assert merged.syn_events == rt.stats.syn_events > 0
            assert merged.steps == rt.stats.steps == 32

    def test_sharded_matches_plain_runtime_single_replica(self):
        bias = np.random.default_rng(1).integers(0, 1 << 14, 5)
        net_a, conn_a = plastic_net(1)
        drive(Runtime(net_a, rng=np.random.default_rng(3)), bias)
        net_b, conn_b = plastic_net(1)
        mapping = net_b.compile(LoihiChip())
        rt = ShardedRuntime(net_b, mapping, rng=np.random.default_rng(3),
                            max_workers=2)
        drive(rt, bias)
        assert np.array_equal(conn_a.weight_mant, conn_b.weight_mant)
        rt.close()

    def test_shard_groups_partitions_by_core(self):
        net, _ = plastic_net(1)
        mapping = net.compile(LoihiChip())
        shards = shard_groups(mapping)
        assert sorted(n for shard in shards for n in shard) == ["a", "b"]
        # layer-at-a-time mapping puts a and b on different cores
        assert len(shards) == 2
        # an extra edge (e.g. a gate dependency) fuses them
        assert len(shard_groups(mapping, extra_edges=[("a", "b")])) == 1


class TestTrainerBatchedPath:
    DIMS = (8, 16, 3)
    T = 16

    def fresh(self, batch_replicas=None, seed=1, **kw):
        cfg = loihi_default_config(seed=seed, phase_length=self.T,
                                   feedback="dfa")
        ref = EMSTDPNetwork(self.DIMS, cfg)
        model = build_emstdp_network(
            self.DIMS, cfg,
            initial_weights=[w.copy() for w in ref.weights],
            feedback_weights=[b.copy() for b in ref.feedback_weights])
        return LoihiEMSTDPTrainer(model, batch_replicas=batch_replicas, **kw)

    def test_infer_batch_equals_sequential_infer(self):
        xs, _ = make_blobs(8, 3, 10, seed=0)
        trainer = self.fresh(batch_replicas=4)
        seq = np.stack([trainer.infer(x) for x in xs])
        np.testing.assert_array_equal(trainer.infer_batch(xs), seq)
        assert np.array_equal(trainer.predict_batch(xs),
                              np.argmax(seq, axis=-1))

    def test_fit_batch_minibatch_is_mean_of_sequential_replicas(self):
        """One chunk of R replicas == R pinned-stream sequential trainers."""
        R = 4
        xs, ys = make_blobs(8, 3, R, seed=0)
        batched = self.fresh(batch_replicas=R)
        cfg = batched.model.config
        w0 = [c.weight_mant.copy()
              for c in batched.model.plastic_connections]
        batched.fit_batch(xs, ys, update_mode="minibatch")
        deltas = [np.zeros_like(w) for w in w0]
        for r in range(R):
            seq = self.fresh(rng=np.random.default_rng((cfg.seed + 1, r)))
            seq.train_sample(xs[r], int(ys[r]))
            for i, conn in enumerate(seq.model.plastic_connections):
                deltas[i] += conn.weight_mant - w0[i]
        # Reproduce the host write-back: mean delta, stochastically rounded
        # on the documented host_reduce_rng stream, connection order.
        from repro.onchip.trainer import host_reduce_rng
        host = host_reduce_rng(cfg.seed)
        for i, conn in enumerate(batched.model.plastic_connections):
            mean = deltas[i] / R
            floor = np.floor(mean)
            add = floor + (host.random(mean.shape) < (mean - floor))
            expect = np.clip(w0[i] + add, -127, 127)
            assert np.array_equal(conn.weight_mant,
                                  expect.astype(np.int64)), f"connection {i}"

    def test_fit_batch_online_unchanged_by_batching(self):
        xs, ys = make_blobs(8, 3, 6, seed=2)
        a, b = self.fresh(batch_replicas=4), self.fresh()
        a.fit_batch(xs, ys, update_mode="online")
        for x, y in zip(xs, ys):
            b.train_sample(x, int(y))
        for ca, cb in zip(a.model.plastic_connections,
                          b.model.plastic_connections):
            assert np.array_equal(ca.weight_mant, cb.weight_mant)

    def test_minibatch_learns_blobs(self):
        # Mean-of-deltas averaging makes one update per chunk (classic
        # large-batch behavior), so a modest replica width and a few
        # epochs are the right budget for this task.
        xs, ys = make_blobs(8, 3, 240, seed=0)
        tx, ty = make_blobs(8, 3, 60, seed=1)
        trainer = self.fresh(batch_replicas=4)
        before = trainer.evaluate_batch(tx, ty)
        for _ in range(4):
            trainer.fit_batch(xs, ys, update_mode="minibatch")
        after = trainer.evaluate_batch(tx, ty)
        assert after > before
        assert after >= 0.8

    def test_batched_stats_fold_into_canonical_runtime(self):
        xs, ys = make_blobs(8, 3, 5, seed=3)
        trainer = self.fresh(batch_replicas=8)
        trainer.fit_batch(xs, ys, update_mode="minibatch")
        stats = trainer.runtime.stats
        assert stats.samples == 5
        assert stats.steps == 2 * self.T  # one batched 2T presentation
        assert stats.spikes > 0 and stats.syn_events > 0
        trainer.energy_report()  # enough accounting for a Table II row

    def test_masked_labels_rejected_and_class_mask_respected(self):
        xs, ys = make_blobs(8, 3, 6, seed=4)
        trainer = self.fresh(batch_replicas=4)
        trainer.set_class_mask([0, 2])
        with pytest.raises(ValueError, match="masked"):
            trainer.fit_batch(xs, np.ones(len(xs), dtype=int),
                              update_mode="minibatch")
        assert 1 not in set(trainer.predict_batch(xs).tolist())

    def test_trailing_chunk_of_one_sample(self):
        """Regression: B % batch_replicas == 1 routes a width-1 twin whose
        state layout is 1-D; programming it must not explode."""
        xs, ys = make_blobs(8, 3, 5, seed=7)
        trainer = self.fresh(batch_replicas=4)
        seq = np.stack([trainer.infer(x) for x in xs])
        np.testing.assert_array_equal(trainer.infer_batch(xs), seq)
        trainer.fit_batch(xs, ys, update_mode="minibatch")  # no raise
        # batch_replicas=1: minibatch processes one replica per chunk
        lone = self.fresh(batch_replicas=1)
        lone.fit_batch(xs[:2], ys[:2], update_mode="minibatch")
        assert lone.samples_trained == 2

    def test_close_releases_twins(self):
        xs, _ = make_blobs(8, 3, 4, seed=8)
        trainer = self.fresh(batch_replicas=4, batch_workers=2)
        trainer.infer_batch(xs)
        assert trainer._twins
        trainer.close()
        assert not trainer._twins

    def test_batch_workers_pool_gives_same_results(self):
        xs, _ = make_blobs(8, 3, 8, seed=5)
        a = self.fresh(batch_replicas=8)
        b = self.fresh(batch_replicas=8, batch_workers=4)
        np.testing.assert_array_equal(a.infer_batch(xs), b.infer_batch(xs))

    def test_inference_only_network_batches_too(self):
        cfg = loihi_default_config(seed=1, phase_length=self.T)
        model = build_emstdp_network(self.DIMS, cfg,
                                     include_error_path=False)
        trainer = LoihiEMSTDPTrainer(model, batch_replicas=4)
        xs, _ = make_blobs(8, 3, 6, seed=6)
        seq = np.stack([trainer.infer(x) for x in xs])
        np.testing.assert_array_equal(trainer.infer_batch(xs), seq)
        with pytest.raises(RuntimeError):
            trainer.fit_batch(xs, np.zeros(6, dtype=int),
                              update_mode="minibatch")


class TestChipScenarioRouting:
    def test_offline_accuracy_chip_backend_end_to_end(self, tmp_path):
        from repro.experiments import get_scenario

        scenario = get_scenario("offline_accuracy")
        spec = scenario.build_spec(tiny=True).replace(
            backends=("chip",), n_train=40, n_test=16,
            params={"chip_train_limit": 40, "chip_test_limit": 16,
                    "chip_batch_replicas": 8,
                    "chip_update_mode": "minibatch"})
        payload = scenario.run_seed(spec, 0, tmp_path)
        entry = payload["metrics"]["chip"]
        assert {"train_acc", "test_acc", "cores_used", "fps",
                "energy_per_sample_mj"} <= set(entry)
        assert 0.0 <= entry["test_acc"] <= 1.0
        assert (tmp_path / (payload["checkpoints"]["chip"]
                            + ".npz")).exists()

    def test_noise_and_timing_scenarios_accept_chip_backend(self):
        from repro.experiments import get_scenario

        noise = get_scenario("noise_robustness")
        spec = noise.build_spec(tiny=True).replace(
            backends=("chip:dfa",), n_train=24, n_test=12,
            params={"noise_level": 0.3, "noise_kind": "gaussian",
                    "chip_batch_replicas": 8})
        payload = noise.run_seed(spec, 0, None)
        entry = payload["metrics"]["chip:dfa"]
        assert {"noisy_acc", "degradation", "cores_used"} <= set(entry)

        timing = get_scenario("timing_precision")
        tspec = timing.build_spec(tiny=True).replace(
            backends=("chip",), n_train=24, n_test=12, phase_length=8,
            params={"chip_batch_replicas": 8})
        tpayload = timing.run_seed(tspec, 0, None)
        assert tpayload["metrics"]["chip"]["T"] == 8
        assert tpayload["metrics"]["chip"]["energy_mj_per_inference"] > 0

    def test_serve_registry_loads_chip_checkpoint_batched(self, tmp_path):
        from repro.persist import save_checkpoint
        from repro.serve import ModelRegistry

        cfg = loihi_default_config(seed=0, phase_length=8)
        trainer = LoihiEMSTDPTrainer(build_emstdp_network((6, 8, 3), cfg))
        xs, ys = make_blobs(6, 3, 4, seed=0)
        trainer.train_batch(xs, ys)
        save_checkpoint(trainer, tmp_path / "chip")
        registry = ModelRegistry()
        entry = registry.load(tmp_path / "chip")
        assert entry.model_class == "LoihiEMSTDPTrainer"
        # serving rides the batch-parallel runtime path
        assert entry.model.batch_replicas == 32
        np.testing.assert_array_equal(entry.model.predict_batch(xs),
                                      trainer.predict_batch(xs))
