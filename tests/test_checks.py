"""The static analyzer: fixtures per rule, suppressions, baseline,
reporters, CLI, and the self-check that the repo's own tree is clean."""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro import checks
from repro.checks import (
    Finding,
    check_source,
    get_rules,
    load_baseline,
    render_json,
    render_text,
    run_checks,
    save_baseline,
)
from repro.checks.engine import FileContext, apply_baseline, collect_files

FIXTURES = Path(__file__).parent / "checks_fixtures"
REPO = Path(__file__).resolve().parent.parent

#: rule id -> (fixture stem, path hint the snippet pretends to live at,
#:             expected finding count in the bad fixture)
CASES = {
    "REP000": ("rep000", "src/repro/analysis/example.py", 5),
    "REP001": ("rep001", "src/repro/core/example.py", 7),
    "REP002": ("rep002", "src/repro/serve/example.py", 5),
    "REP003": ("rep003", "src/repro/serve/example.py", 5),
    "REP005": ("rep005", "src/repro/serve/example.py", 7),
}


def _fixture(name: str) -> str:
    return (FIXTURES / f"{name}.py").read_text(encoding="utf-8")


# ---------------------------------------------------------------------------
# per-rule fixtures
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_fires_on_bad_fixture(rule_id):
    stem, hint, expected = CASES[rule_id]
    findings = check_source(_fixture(f"{stem}_bad"), hint,
                            rules=get_rules([rule_id]))
    assert len(findings) == expected
    assert {f.rule for f in findings} == {rule_id}
    assert all(f.severity in ("error", "warning") for f in findings)
    assert all(f.line > 0 for f in findings)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_silent_on_good_fixture(rule_id):
    stem, hint, _ = CASES[rule_id]
    findings = check_source(_fixture(f"{stem}_good"), hint,
                            rules=get_rules([rule_id]))
    assert findings == []


def _cluster_tree(tmp_path: Path, fixture: str) -> Path:
    """The repo's real protocol.py + a fixture worker, as a mini tree."""
    pkg = tmp_path / "src" / "repro" / "cluster"
    pkg.mkdir(parents=True)
    shutil.copy(REPO / "src" / "repro" / "cluster" / "protocol.py",
                pkg / "protocol.py")
    (pkg / "worker.py").write_text(_fixture(fixture), encoding="utf-8")
    return tmp_path


def test_rep004_fires_on_bad_fixture(tmp_path):
    root = _cluster_tree(tmp_path, "rep004_bad")
    result = run_checks([str(root)], rules=get_rules(["REP004"]), root=root)
    assert len(result.findings) == 5
    assert {f.rule for f in result.findings} == {"REP004"}
    messages = " | ".join(f.message for f in result.findings)
    assert "expected 3" in messages          # arity
    assert "predictt" in messages            # unknown literal kind
    assert "REBALANCE" in messages           # undeclared constant
    assert "missing required field 'ok'" in messages
    assert "undeclared field 'force'" in messages


def test_rep004_silent_on_good_fixture(tmp_path):
    root = _cluster_tree(tmp_path, "rep004_good")
    result = run_checks([str(root)], rules=get_rules(["REP004"]), root=root)
    assert result.findings == []


def test_rep004_checks_the_real_cluster_sources():
    """The real worker/frontend/supervisor conform to their own contract."""
    cluster = REPO / "src" / "repro" / "cluster"
    result = run_checks([str(cluster)], rules=get_rules(["REP004"]),
                        root=REPO)
    assert result.findings == []
    assert result.files_checked >= 4


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

BAD_LINE = ("import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng(){comment}\n")


def test_suppression_with_rule_id():
    src = BAD_LINE.format(comment="  # repro: ignore[REP001]")
    assert check_source(src, "src/repro/core/x.py") == []


def test_suppression_bare_silences_every_rule():
    src = BAD_LINE.format(comment="  # repro: ignore")
    assert check_source(src, "src/repro/core/x.py") == []


def test_suppression_for_other_rule_does_not_apply():
    src = BAD_LINE.format(comment="  # repro: ignore[REP005]")
    findings = check_source(src, "src/repro/core/x.py")
    assert [f.rule for f in findings] == ["REP001"]


def test_suppression_is_line_scoped():
    src = BAD_LINE.format(comment="") + "# repro: ignore[REP001]\n"
    findings = check_source(src, "src/repro/core/x.py")
    assert [f.rule for f in findings] == ["REP001"]


# ---------------------------------------------------------------------------
# rule scoping
# ---------------------------------------------------------------------------

def test_rep001_only_in_deterministic_zones():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert check_source(src, "src/repro/core/x.py") != []
    assert check_source(src, "src/repro/loihi/x.py") != []
    assert check_source(src, "benchmarks/bench_x.py") != []
    # The serving tier may draw entropy (jitter, sampling): out of scope.
    assert check_source(src, "src/repro/serve/x.py") == []
    # Tests are exempt everywhere.
    assert check_source(src, "tests/test_x.py") == []


def test_rep002_allowed_inside_kernels_package():
    src = "from repro.core.kernels import _numpy\n"
    assert check_source(src, "src/repro/core/kernels/dispatch.py") == []
    assert check_source(src, "src/repro/loihi/x.py") != []


def test_hidden_rule_not_in_default_set():
    default_ids = {r.id for r in checks.default_rules()}
    all_ids = {r.id for r in checks.all_rules()}
    assert "REP000" not in default_ids
    assert "REP000" in all_ids
    assert {"REP001", "REP002", "REP003", "REP004",
            "REP005"} <= default_ids


def test_unknown_rule_id_is_an_error():
    with pytest.raises(KeyError, match="REP999"):
        get_rules(["REP999"])


def test_module_name_derivation():
    ctx = FileContext("src/repro/core/kernels/__init__.py", "x = 1\n")
    assert ctx.module == "repro.core.kernels"
    assert FileContext("benchmarks/bench_kernels.py",
                       "x = 1\n").module == "bench_kernels"
    assert FileContext("tests/test_x.py", "x = 1\n").is_test


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def _finding(rule="REP001", path="src/repro/core/x.py", line=3,
             message="boom") -> Finding:
    return Finding(rule=rule, severity="error", path=path, line=line,
                   col=0, message=message)


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [_finding(), _finding(rule="REP003", message="race")]
    save_baseline(path, findings)
    entries = load_baseline(path)
    assert len(entries) == 2
    fresh, grandfathered, stale = apply_baseline(findings, entries)
    assert fresh == []
    assert len(grandfathered) == 2
    assert stale == []


def test_baseline_is_line_number_free(tmp_path):
    """An edit that shifts a grandfathered finding must not resurrect it."""
    path = tmp_path / "baseline.json"
    save_baseline(path, [_finding(line=3)])
    fresh, grandfathered, _ = apply_baseline([_finding(line=40)],
                                             load_baseline(path))
    assert fresh == []
    assert len(grandfathered) == 1


def test_baseline_multiset_semantics():
    """One entry absolves one finding; a new duplicate still fails."""
    entries = [_finding().to_dict()]
    fresh, grandfathered, _ = apply_baseline(
        [_finding(line=3), _finding(line=9)], entries)
    assert len(grandfathered) == 1
    assert len(fresh) == 1


def test_baseline_stale_entries_reported():
    entries = [_finding(message="fixed long ago").to_dict()]
    fresh, grandfathered, stale = apply_baseline([], entries)
    assert fresh == [] and grandfathered == []
    assert len(stale) == 1 and stale[0]["count"] == 1


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == []


def test_committed_baseline_is_empty():
    """The acceptance bar: the final tree carries zero grandfathered debt."""
    assert load_baseline(REPO / checks.BASELINE_NAME) == []


# ---------------------------------------------------------------------------
# engine plumbing
# ---------------------------------------------------------------------------

def test_collect_files_skips_fixture_and_cache_dirs(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
    (tmp_path / "checks_fixtures").mkdir()
    (tmp_path / "checks_fixtures" / "bad.py").write_text("x = 1\n")
    files = collect_files([str(tmp_path)], tmp_path)
    assert [f.name for f in files] == ["mod.py"]


def test_syntax_error_is_reported_not_raised(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    result = run_checks([str(tmp_path)], root=tmp_path)
    assert result.findings == []
    assert len(result.errors) == 1 and "broken.py" in result.errors[0]
    assert not result.ok


def test_reporters(tmp_path):
    root = _cluster_tree(tmp_path, "rep004_bad")
    result = run_checks([str(root)], rules=get_rules(["REP004"]), root=root)
    text = render_text(result)
    assert "REP004" in text and "finding(s)" in text
    payload = json.loads(render_json(result))
    assert payload["ok"] is False
    assert len(payload["findings"]) == 5
    assert payload["rules_run"] == ["REP004"]
    assert {"rule", "severity", "path", "line", "col",
            "message"} <= set(payload["findings"][0])


# ---------------------------------------------------------------------------
# the CLI, end to end
# ---------------------------------------------------------------------------

def _run_cli(*args, cwd=REPO):
    env_src = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "check", *args],
        capture_output=True, text=True, cwd=cwd,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin",
             "HOME": "/tmp"})


def test_cli_self_check_repo_is_clean():
    """``python -m repro check src`` exits 0 on the repo's own tree."""
    proc = _run_cli("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_cli_json_artifact_shape():
    proc = _run_cli("src", "--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["files_checked"] > 50
    assert payload["rules_run"] == [
        "REP001", "REP002", "REP003", "REP004", "REP005"]


def test_cli_single_rule_selection():
    proc = _run_cli("src", "--rule", "REP003", "--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert json.loads(proc.stdout)["rules_run"] == ["REP003"]


def test_cli_exit_one_on_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\n"
                   "rng = np.random.default_rng()\n")
    # The path hint comes from the real location, so scope the rule in by
    # placing the file under a directory named like a deterministic zone.
    zone = tmp_path / "src" / "repro" / "core"
    zone.mkdir(parents=True)
    shutil.move(str(bad), zone / "bad.py")
    proc = _run_cli(str(zone / "bad.py"))
    assert proc.returncode == 1
    assert "REP001" in proc.stdout


def test_cli_write_baseline_then_clean(tmp_path):
    zone = tmp_path / "src" / "repro" / "core"
    zone.mkdir(parents=True)
    (zone / "bad.py").write_text("import numpy as np\n"
                                 "rng = np.random.default_rng()\n")
    baseline = tmp_path / "baseline.json"
    wrote = _run_cli(str(zone), "--baseline", str(baseline),
                     "--write-baseline")
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr
    assert len(load_baseline(baseline)) == 1
    # Grandfathered: same tree now passes against the written baseline.
    clean = _run_cli(str(zone), "--baseline", str(baseline))
    assert clean.returncode == 0, clean.stdout + clean.stderr
    assert "1 baselined" in clean.stdout
