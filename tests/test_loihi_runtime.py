"""Integration tests for the SDK builder + runtime execution engine."""

import numpy as np
import pytest

from repro.loihi import (LoihiChip, Network, Runtime, emstdp_rules,
                         if_prototype, parse_rule)


def tiny_network():
    net = Network("t")
    proto = if_prototype()
    a = net.create_group(4, proto, "a")
    b = net.create_group(2, proto, "b")
    conn = net.connect(a, b, np.full((4, 2), 32), weight_scale=64,
                       plastic=True, learning_rule="r")
    return net, a, b, conn


class TestNetworkBuilder:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.create_group(2, if_prototype(), "g")
        with pytest.raises(ValueError):
            net.create_group(2, if_prototype(), "g")

    def test_foreign_groups_rejected(self):
        net1 = Network()
        net2 = Network()
        a = net1.create_group(2, if_prototype(), "a")
        b = net2.create_group(2, if_prototype(), "b")
        with pytest.raises(ValueError):
            net1.connect(a, b, np.zeros((2, 2)), 64)

    def test_fanin_fanout(self):
        net, a, b, _ = tiny_network()
        assert net.fanin(b) == 4
        assert net.fanout(a) == 2
        assert net.fanin(a) == 0

    def test_counts(self):
        net, *_ = tiny_network()
        assert net.n_compartments() == 6
        assert net.n_synapses() == 8
        assert net.n_plastic_synapses() == 8

    def test_compile_returns_mapping(self):
        net, *_ = tiny_network()
        mapping = net.compile(LoihiChip())
        assert mapping.cores_used >= 1


class TestRuntime:
    def test_bias_driven_rates(self):
        net, a, b, _ = tiny_network()
        rt = Runtime(net, rng=np.random.default_rng(0))
        rt.set_bias("a", np.full(4, a.proto.vth // 2))
        rt.run(64)
        assert (rt.spike_counts("a") == 32).all()
        assert rt.stats.steps == 64
        assert rt.stats.spikes > 0

    def test_one_step_conduction_delay(self):
        net, a, b, _ = tiny_network()
        rt = Runtime(net, rng=np.random.default_rng(0))
        rt.set_bias("a", np.full(4, a.proto.vth))
        rt.run(1)
        # a fires at step 0 but its spikes reach b only at step 1
        assert rt.spike_counts("a").sum() == 4
        assert rt.spike_counts("b").sum() == 0

    def test_disable_enable(self):
        net, a, b, _ = tiny_network()
        rt = Runtime(net, rng=np.random.default_rng(0))
        rt.set_bias("a", np.full(4, a.proto.vth))
        rt.disable(["a"])
        rt.run(5)
        assert rt.spike_counts("a").sum() == 0
        rt.enable(["a"])
        rt.run(5)
        assert rt.spike_counts("a").sum() == 4 * 5

    def test_learning_epoch_applies_rules(self):
        net, a, b, conn = tiny_network()
        rt = Runtime(net, rng=np.random.default_rng(0),
                     stochastic_rounding=False)
        rt.register_rule("r", {"end": [parse_rule("dw = 2^0 * y1 * x1")]})
        rt.set_bias("a", np.full(4, a.proto.vth))
        rt.run(8)
        before = conn.weight_mant.copy()
        rt.learning_epoch("end")
        assert (conn.weight_mant >= before).all()
        assert (conn.weight_mant > before).any()
        assert rt.stats.learning_epochs == 1

    def test_epoch_without_rules_is_noop(self):
        net, a, b, conn = tiny_network()
        rt = Runtime(net, rng=np.random.default_rng(0))
        before = conn.weight_mant.copy()
        rt.learning_epoch("unknown_epoch")
        assert np.array_equal(conn.weight_mant, before)

    def test_reset_state_and_membranes(self):
        net, a, b, _ = tiny_network()
        rt = Runtime(net, rng=np.random.default_rng(0))
        rt.set_bias("a", np.full(4, a.proto.vth // 3))
        rt.run(2)
        rt.reset_membranes(["a"])
        assert (net.group("a").v == 0).all()
        rt.reset_state()
        assert (rt.spike_counts("a") == 0).all()

    def test_syn_event_accounting(self):
        net, a, b, _ = tiny_network()
        rt = Runtime(net, rng=np.random.default_rng(0))
        rt.set_bias("a", np.full(4, a.proto.vth))
        rt.run(10)
        # 4 presyn spikes/step x fanout 2, delivered from step 1 on; the
        # final step's spikes are still in flight when the run ends
        assert rt.stats.syn_events == 9 * 4 * 2


class TestEndToEndChipLearning:
    def test_emstdp_rule_changes_weights_toward_target(self):
        """Minimal on-chip supervised step: strengthen the co-active pair."""
        net = Network()
        proto = if_prototype()
        pre = net.create_group(1, proto, "pre")
        post = net.create_group(2, proto, "post")
        conn = net.connect(pre, post, np.array([[20, 20]]), 64,
                           plastic=True, learning_rule="emstdp")
        rt = Runtime(net, rng=np.random.default_rng(0),
                     stochastic_rounding=False)
        rt.register_rule("emstdp", {"phase2_end": emstdp_rules(-6)})
        rt.set_bias("pre", np.array([proto.vth]))
        # phase 1 (h): run and stash tag manually via dt rule at -6 scale
        from repro.loihi import phase1_tag_rules
        rt.rulebook["emstdp"]["phase1_end"] = phase1_tag_rules()
        rt.run(16)
        rt.learning_epoch("phase1_end")
        rt.reset_traces()
        # phase 2 (h_hat): drive post neuron 0 harder via external current
        for _ in range(16):
            rt.network.group("post").step(np.array([proto.vth, 0]))
            rt.network.group("pre").step(np.zeros(1, dtype=np.int64))
            for c in net.connections:
                c.update_traces(c.src.spikes, c.dst.spikes)
        rt.learning_epoch("phase2_end")
        assert conn.weight_mant[0, 0] > conn.weight_mant[0, 1]
