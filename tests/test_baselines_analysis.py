"""Tests for the CPU/GPU cost models, backprop baseline and analysis kit."""

import numpy as np
import pytest

from repro.analysis import (accuracy, as_series, ascii_plot,
                            best_energy_point, confusion_matrix,
                            format_series, format_table, per_class_accuracy,
                            spike_sparsity, sweep_neurons_per_core)
from repro.baselines import (BackpropMLP, DeviceSpec, I7_8700, RTX_5000,
                             device_report, snn_macs_per_sample)
from repro.core import loihi_default_config

from conftest import make_blobs

DIMS = (256, 1024, 128, 100, 10)


class TestHardwareModel:
    def test_training_costs_more_than_testing(self):
        tr = snn_macs_per_sample(DIMS, 64, training=True)
        te = snn_macs_per_sample(DIMS, 64, training=False)
        assert tr > 2 * te

    def test_fa_feedback_costs_more_than_dfa(self):
        fa = snn_macs_per_sample(DIMS, 64, True, feedback="fa")
        dfa = snn_macs_per_sample(DIMS, 64, True, feedback="dfa")
        assert fa > dfa

    def test_report_identity(self):
        rep = device_report(I7_8700, DIMS, 64, training=True)
        assert rep.energy_per_sample_mj == pytest.approx(
            rep.power_w * rep.time_per_sample_ms)

    def test_gpu_faster_than_cpu(self):
        cpu = device_report(I7_8700, DIMS, 64, training=True)
        gpu = device_report(RTX_5000, DIMS, 64, training=True)
        assert gpu.fps > cpu.fps

    def test_device_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", effective_macs_per_s=0, power_w=10)


class TestBackpropMLP:
    def test_learns_blobs(self):
        xs, ys = make_blobs(8, 3, 300, seed=0)
        tx, ty = make_blobs(8, 3, 100, seed=1)
        mlp = BackpropMLP((8, 16, 3), seed=0)
        mlp.train_stream(xs, ys)
        assert mlp.evaluate(tx, ty) >= 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            BackpropMLP((4,))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy([1, 2, 3], [1, 2, 0]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            accuracy([], [])
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])

    def test_confusion_matrix(self):
        cm = confusion_matrix([0, 1, 1], [0, 1, 0], n_classes=2)
        assert cm.tolist() == [[1, 1], [0, 1]]
        pca = per_class_accuracy(cm)
        assert pca[0] == pytest.approx(0.5)
        assert pca[1] == pytest.approx(1.0)

    def test_spike_sparsity(self):
        assert spike_sparsity(np.array([0, 0, 0.5, 1.0])) == 0.5
        with pytest.raises(ValueError):
            spike_sparsity(np.array([]))


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.34567], [10, 0.5]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.346" in out

    def test_format_series_orders_x_first(self):
        out = format_series({"y": [1], "x": [2]}, x_key="x")
        header = out.splitlines()[0].split()
        assert header[0] == "x"

    def test_ascii_plot(self):
        out = ascii_plot([0, 1, 2], [0, 1, 4], width=20, height=5)
        assert out.count("*") == 3
        with pytest.raises(ValueError):
            ascii_plot([], [])


class TestTradeoffSweep:
    def test_fig3_shapes(self):
        cfg = loihi_default_config(seed=1)
        pts = sweep_neurons_per_core((64, 40, 10), cfg,
                                     packings=(5, 10, 20), n_samples=100)
        times = [p.time_s for p in pts]
        cores = [p.cores_used for p in pts]
        assert times == sorted(times)
        assert cores == sorted(cores, reverse=True)
        series = as_series(pts)
        assert series["neurons_per_core"] == [5, 10, 20]
        assert best_energy_point(pts) in pts
