"""Unit tests for FA/DFA feedback weight generation and resource counts."""

import numpy as np
import pytest

from repro.core import (feedback_neuron_count, feedback_synapse_count,
                        make_dfa_weights, make_fa_weights)

DIMS = (784, 100, 50, 10)


class TestShapes:
    def test_fa_shapes_follow_layer_chain(self):
        rng = np.random.default_rng(0)
        mats = make_fa_weights(DIMS, rng)
        assert [m.shape for m in mats] == [(50, 100), (10, 50)]

    def test_dfa_shapes_broadcast_from_output(self):
        rng = np.random.default_rng(0)
        mats = make_dfa_weights(DIMS, rng)
        assert [m.shape for m in mats] == [(10, 100), (10, 50)]

    def test_single_hidden_layer_fa_equals_dfa_shape(self):
        rng = np.random.default_rng(0)
        fa = make_fa_weights((20, 30, 10), rng)
        dfa = make_dfa_weights((20, 30, 10), rng)
        assert fa[0].shape == dfa[0].shape == (10, 30)

    def test_no_hidden_layers(self):
        rng = np.random.default_rng(0)
        assert make_fa_weights((20, 10), rng) == []
        assert make_dfa_weights((20, 10), rng) == []


class TestStatistics:
    def test_zero_mean_uniform(self):
        rng = np.random.default_rng(7)
        m = make_dfa_weights((10, 2000, 10), rng)[0]
        assert abs(m.mean()) < 0.01
        # uniform: bounded support
        assert np.abs(m).max() <= np.sqrt(3.0 / 10) + 1e-12

    def test_scale_parameter(self):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        m1 = make_fa_weights((5, 500, 10), rng1, scale=1.0)[0]
        m2 = make_fa_weights((5, 500, 10), rng2, scale=2.0)[0]
        assert np.allclose(m2, 2.0 * m1)

    def test_deterministic_given_seed(self):
        a = make_dfa_weights(DIMS, np.random.default_rng(5))
        b = make_dfa_weights(DIMS, np.random.default_rng(5))
        for ma, mb in zip(a, b):
            assert np.array_equal(ma, mb)


class TestResourceCounts:
    """DFA's raison d'etre (Section III-A): fewer neurons and synapses."""

    def test_dfa_fewer_synapses_than_fa(self):
        assert (feedback_synapse_count(DIMS, "dfa")
                < feedback_synapse_count(DIMS, "fa"))

    def test_dfa_fewer_error_neurons(self):
        assert (feedback_neuron_count(DIMS, "dfa")
                < feedback_neuron_count(DIMS, "fa"))

    def test_fa_neuron_count_pairs_every_forward_neuron(self):
        # 2 channels x (100 + 50 + 10)
        assert feedback_neuron_count(DIMS, "fa") == 2 * 160

    def test_dfa_neuron_count_output_only(self):
        assert feedback_neuron_count(DIMS, "dfa") == 2 * 10

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            feedback_synapse_count(DIMS, "bp")
        with pytest.raises(ValueError):
            feedback_neuron_count(DIMS, "bp")
