"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (DATASETS, Dataset, load_dataset, render_chip,
                        render_digit)
from repro.data.fashion_like import render_garment
from repro.data.cifar_like import render_object


class TestDatasetContainer:
    def test_flat_shapes(self):
        train, _ = load_dataset("mnist_like", 20, 5, side=16)
        assert train.flat().shape == (20, 256)
        assert train.image_shape == (16, 16)

    def test_stream_is_online(self):
        train, _ = load_dataset("mnist_like", 5, 5, side=16)
        items = list(train.stream())
        assert len(items) == 5
        assert isinstance(items[0][1], int)

    def test_subset_filters_classes(self):
        train, _ = load_dataset("mnist_like", 100, 5, side=16)
        sub = train.subset([3, 7])
        assert set(np.unique(sub.labels)) <= {3, 7}

    def test_take(self):
        train, _ = load_dataset("mnist_like", 50, 5, side=16)
        assert len(train.take(7)) == 7

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 4, 4)), np.zeros(2))


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_range_and_determinism(self, name):
        a, _ = load_dataset(name, 12, 4, side=16, seed=3)
        b, _ = load_dataset(name, 12, 4, side=16, seed=3)
        assert np.array_equal(a.images, b.images)
        assert a.images.min() >= 0.0 and a.images.max() <= 1.0
        assert set(np.unique(a.labels)) <= set(range(10))

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_train_test_disjoint_seeds(self, name):
        train, test = load_dataset(name, 10, 10, side=16, seed=0)
        assert not np.array_equal(train.images[:10], test.images[:10])

    def test_cifar_is_colour(self):
        train, _ = load_dataset("cifar_like", 4, 2, side=16)
        assert train.image_shape == (16, 16, 3)

    def test_class_restriction(self):
        train, _ = load_dataset("mnist_like", 40, 5, side=16, classes=[1, 2])
        assert set(np.unique(train.labels)) <= {1, 2}

    def test_paper_names_resolve(self):
        train, _ = load_dataset("MNIST", 4, 2, side=16)
        assert train.name == "mnist_like"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imagenet", 4, 2)

    @given(digit=st.integers(0, 9))
    @settings(max_examples=10, deadline=None)
    def test_digit_renderer_draws_something(self, digit):
        img = render_digit(digit, side=16, rng=np.random.default_rng(0))
        assert img.sum() > 2.0
        assert img.shape == (16, 16)

    def test_invalid_labels(self):
        for renderer in (render_digit, render_garment, render_chip,
                         render_object):
            with pytest.raises(ValueError):
                renderer(10)

    def test_classes_are_distinguishable(self):
        """Mean images of different digits must differ clearly."""
        rng = np.random.default_rng(0)
        means = []
        for d in (0, 1):
            imgs = [render_digit(d, side=16, rng=rng) for _ in range(20)]
            means.append(np.mean(imgs, axis=0))
        assert np.abs(means[0] - means[1]).mean() > 0.05

    def test_mstar_has_speckle(self):
        """SAR chips should be noisy everywhere (multiplicative clutter)."""
        img = render_chip(0, side=16, rng=np.random.default_rng(0))
        assert (img > 0).mean() > 0.5
        assert img.std() > 0.05
