"""Tests for the repro.exec work-queue executor.

Covers the TaskQueue verbs (atomic claim, leases, ownership guards,
requeue), the fleet-width policy (``default_workers`` /
``REPRO_MAX_WORKERS``), the worker's exactly-once-recording guards, and
the headline fault-tolerance contract: SIGKILL a pool worker mid-task
and the run still completes with no duplicate records.
"""

import os
import signal
import threading
import time

import pytest

from repro.exec import (DEFAULT_WORKERS_ENV, INJECT_DELAY_ENV,
                        QUEUE_DB_NAME, TaskQueue, WorkerPool,
                        default_workers, enqueue_seed, claim_loop)
from repro.experiments import Runner, get_scenario
from repro.experiments.store import RECORDS_NAME, append_jsonl, read_jsonl
from repro.obs import TRACE_FILE_NAME
from repro.obs.trace import read_trace, summarize_spans


def tiny_spec(**overrides):
    return get_scenario("offline_accuracy").build_spec(
        tiny=True).replace(**overrides)


# ---------------------------------------------------------------------------
# TaskQueue verbs
# ---------------------------------------------------------------------------

def test_enqueue_claim_fifo(tmp_path):
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    ids = [q.enqueue("k", {"i": i}) for i in range(3)]
    first = q.claim("w0", lease_s=30.0)
    assert first.task_id == ids[0]
    assert first.status == "leased"
    assert first.attempts == 1
    assert first.worker == "w0"
    assert first.payload == {"i": 0}
    assert first.queue_wait_s is not None and first.queue_wait_s >= 0.0
    second = q.claim("w1", lease_s=30.0)
    assert second.task_id == ids[1]  # FIFO by insert order
    assert q.counts() == {"leased": 2, "pending": 1}
    assert q.remaining() == 3
    assert q.claim("w2", lease_s=30.0).task_id == ids[2]
    assert q.claim("w3", lease_s=30.0) is None  # drained


def test_complete_is_ownership_guarded(tmp_path):
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    tid = q.enqueue("k", {})
    q.claim("w0", lease_s=30.0)
    assert not q.complete(tid, "w1", {"x": 1})  # not the owner
    assert q.complete(tid, "w0", {"x": 1})
    task = q.get(tid)
    assert task.status == "done"
    assert task.result == {"x": 1}
    assert task.finished_at is not None
    assert not q.complete(tid, "w0")  # already finished
    assert [t.task_id for t in q.finished()] == [tid]
    assert q.remaining() == 0


def test_fail_marks_failed_with_error(tmp_path):
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    tid = q.enqueue("k", {})
    q.claim("w0", lease_s=30.0)
    assert q.fail(tid, "w0", "boom")
    task = q.get(tid)
    assert task.status == "failed"
    assert task.result == {"error": "boom"}
    assert q.remaining() == 0
    assert [t.status for t in q.finished()] == ["failed"]


def test_lease_expiry_requeues_and_reclaims(tmp_path):
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    tid = q.enqueue("k", {})
    q.claim("w0", lease_s=0.05)
    assert q.requeue_expired() == []  # lease still fresh
    time.sleep(0.1)
    assert q.requeue_expired() == [tid]
    task = q.get(tid)
    assert task.status == "pending"
    assert task.worker is None
    # The original owner lost everything: heartbeat and complete refuse.
    assert not q.heartbeat(tid, "w0", 30.0)
    assert not q.complete(tid, "w0")
    reclaimed = q.claim("w1", lease_s=30.0)
    assert reclaimed.task_id == tid
    assert reclaimed.attempts == 2
    assert q.complete(tid, "w1")


def test_heartbeat_extends_lease(tmp_path):
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    tid = q.enqueue("k", {})
    q.claim("w0", lease_s=0.2)
    before = q.get(tid).lease_deadline
    assert q.heartbeat(tid, "w0", 30.0)
    assert q.get(tid).lease_deadline > before
    assert not q.heartbeat(tid, "w1", 30.0)  # wrong worker


def test_release_requeues_a_dead_workers_leases(tmp_path):
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    ids = [q.enqueue("k", {"i": i}) for i in range(2)]
    q.claim("w0", lease_s=30.0)
    q.claim("w0", lease_s=30.0)
    assert sorted(q.release("w0")) == sorted(ids)
    assert q.counts() == {"pending": 2}
    assert q.release("w0") == []


def test_worker_registry_and_ready_barrier(tmp_path):
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    assert not q.wait_for_workers(1, timeout_s=0.1)
    q.register_worker("w0", pid=1234)
    assert q.wait_for_workers(1, timeout_s=1.0)
    (entry,) = q.workers()
    assert entry["worker_id"] == "w0" and entry["pid"] == 1234
    time.sleep(0.01)
    q.worker_seen("w0")
    (entry,) = q.workers()
    assert entry["last_seen"] > entry["started_at"]


# ---------------------------------------------------------------------------
# default_workers policy
# ---------------------------------------------------------------------------

def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv(DEFAULT_WORKERS_ENV, "3")
    assert default_workers() == 3
    assert default_workers(cap=1) == 3  # explicit override beats the cap
    monkeypatch.setenv(DEFAULT_WORKERS_ENV, " 2 ")
    assert default_workers() == 2


def test_default_workers_fallback(monkeypatch):
    monkeypatch.delenv(DEFAULT_WORKERS_ENV, raising=False)
    cpus = os.cpu_count() or 1
    assert default_workers() == cpus
    assert default_workers(cap=1) == 1
    for bad in ("junk", "0", "-4", ""):
        monkeypatch.setenv(DEFAULT_WORKERS_ENV, bad)
        assert default_workers(cap=1) == 1  # invalid values are ignored


# ---------------------------------------------------------------------------
# claim loop + worker guards
# ---------------------------------------------------------------------------

def test_claim_loop_completes_unknown_kind_as_error(tmp_path):
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    tid = q.enqueue("no_such_kind", {})
    results = []
    claim_loop(q.path, "w0",
               on_result=lambda t, r: results.append((t.task_id, r)))
    assert results and results[0][0] == tid
    assert results[0][1]["status"] == "error"
    assert q.get(tid).status == "done"  # infrastructure stayed healthy


def test_worker_dedupes_already_recorded_seed(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    append_jsonl(run_dir / RECORDS_NAME,
                 {"seed": 0, "status": "ok", "metrics": {"acc": 1.0}})
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    enqueue_seed(q, experiment="offline_accuracy", run_id="r-test",
                 run_dir=str(run_dir), spec={}, seed=0)
    claim_loop(q.path, "w0")
    (task,) = q.finished()
    assert task.status == "done"
    assert task.result["deduped"] is True
    # No second record was appended: the pre-existing one is the record.
    assert len(read_jsonl(run_dir / RECORDS_NAME)) == 1


def test_pool_inline_streams_results_exactly_once(tmp_path):
    q = TaskQueue(tmp_path / QUEUE_DB_NAME)
    ids = [q.enqueue("no_such_kind", {"i": i}) for i in range(3)]
    done = []
    WorkerPool(q, workers=1).run(
        on_task_done=lambda t, r: done.append(t.task_id))
    assert done == ids  # once each, FIFO
    assert q.remaining() == 0


# ---------------------------------------------------------------------------
# fault tolerance: SIGKILL a pool worker mid-task
# ---------------------------------------------------------------------------

def test_sigkill_worker_mid_task_run_still_completes(tmp_path, monkeypatch):
    """Kill one spawned worker while it holds a lease: the pool must
    requeue the task, a replacement must finish it, and the run must end
    complete with exactly one ok record per seed."""
    monkeypatch.setenv(INJECT_DELAY_ENV, "3.0")
    spec = tiny_spec(seeds=(0, 1), backends=("rate",), n_train=40,
                     n_test=20)
    runner = Runner(out_root=tmp_path, max_workers=2)
    box = {}

    def target():
        try:
            box["result"] = runner.run(spec)
        except BaseException as exc:  # surfaced below
            box["error"] = exc

    th = threading.Thread(target=target)
    th.start()

    # Wait for a spawned worker to hold a lease (it is sleeping inside
    # the injected delay window), then SIGKILL it.
    victim_pid = victim_task = db = None
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline and victim_pid is None:
        for candidate in tmp_path.rglob(QUEUE_DB_NAME):
            q = TaskQueue(candidate)
            pids = {w["worker_id"]: w["pid"] for w in q.workers()}
            for task in q.leased():
                pid = pids.get(task.worker)
                if pid and pid != os.getpid():
                    victim_pid, victim_task, db = pid, task.task_id, \
                        candidate
                    break
        time.sleep(0.05)
    assert victim_pid is not None, "no spawned worker ever held a lease"
    os.kill(victim_pid, signal.SIGKILL)

    th.join(timeout=240.0)
    assert not th.is_alive(), "runner did not finish after worker kill"
    assert "error" not in box, box.get("error")
    result = box["result"]
    assert result.status == "complete"

    # Exactly one ok record per seed — at-least-once execution,
    # exactly-once recording.
    per_seed = {}
    for rec in read_jsonl(result.run_dir / RECORDS_NAME):
        per_seed.setdefault(rec["seed"], []).append(rec["status"])
    assert sorted(per_seed) == [0, 1]
    for statuses in per_seed.values():
        assert statuses.count("ok") == 1

    # The queue file persists post-run: the killed task was re-claimed.
    q = TaskQueue(db)
    killed = q.get(victim_task)
    assert killed.status == "done"
    assert killed.attempts >= 2

    # Executor spans made it into the trace with queue-wait attribution.
    records = read_trace(result.run_dir / TRACE_FILE_NAME)
    task_spans = [r for r in records
                  if r.get("kind") == "span" and r["name"] == "task"]
    assert task_spans
    assert all("queue_wait_ms" in s["attrs"] for s in task_spans)
    assert any(s["attrs"].get("attempt", 0) >= 2 for s in task_spans)
    events = {r["name"] for r in records if r.get("kind") == "event"}
    assert {"task_enqueue", "task_claim", "task_done"} <= events
    agg = {e["name"]: e for e in summarize_spans(records)}
    assert agg["task"]["queue_wait_ms"] is not None
