"""The serving subsystem: batching, caching, registry, service, HTTP, CLI.

The concurrency-sensitive pieces get explicit coverage: micro-batcher
flush-on-deadline vs. flush-on-full, cache invalidation on model hot-swap,
checkpoint round trips through the registry for all three model families,
and graceful service shutdown with requests still in flight.
"""

import http.client
import json
import os
import signal
import socket
import threading
import time
import urllib.request

import numpy as np
import pytest

import repro
from repro import cli
from repro.baselines import BackpropMLP
from repro.core import EMSTDPNetwork, full_precision_config, loihi_default_config
from repro.data.synth import make_blobs
from repro.onchip import LoihiEMSTDPTrainer, build_emstdp_network
from repro.persist import CheckpointError, save_checkpoint
from repro.serve import (InferenceHTTPServer, InferenceService, MicroBatcher,
                         ModelRegistry, Overloaded, PredictionCache,
                         estimate_request_energy_mj, http_predict_fn,
                         run_load, service_predict_fn)

DIMS = (12, 10, 4)


def _task(seed=3, n=40):
    return make_blobs(DIMS[0], DIMS[-1], n, seed=seed)


def _trained_net(seed=1, n_train=20):
    net = EMSTDPNetwork(DIMS, full_precision_config(
        seed=seed, phase_length=8))
    xs, ys = _task()
    net.train_stream(xs[:n_train], ys[:n_train])
    return net


# ---------------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------------

def _echo_runner(calls):
    """Runner returning each row's first element; records batch sizes."""
    def run(X):
        calls.append(len(X))
        return [float(row[0]) for row in X]
    return run


def test_batcher_flush_on_full_does_not_wait_for_deadline():
    calls = []
    batcher = MicroBatcher(_echo_runner(calls), max_batch=4,
                           max_wait_ms=10_000.0)
    try:
        t0 = time.monotonic()
        futures = [batcher.submit(np.full(3, i)) for i in range(4)]
        results = [f.result(timeout=5) for f in futures]
        elapsed = time.monotonic() - t0
        # Well under the 10 s deadline: the full batch flushed immediately.
        assert elapsed < 2.0
        assert [r.value for r in results] == [0.0, 1.0, 2.0, 3.0]
        assert {r.batch_size for r in results} == {4}
        assert calls == [4]
    finally:
        batcher.close()


def test_batcher_flush_on_deadline_with_partial_batch():
    calls = []
    batcher = MicroBatcher(_echo_runner(calls), max_batch=64,
                           max_wait_ms=30.0)
    try:
        futures = [batcher.submit(np.full(3, i)) for i in range(3)]
        results = [f.result(timeout=5) for f in futures]
        # The batch never filled; the 30 ms deadline flushed all three
        # together (not three batches of one).
        assert {r.batch_size for r in results} == {3}
        assert all(r.queue_ms >= 0.0 for r in results)
        assert calls == [3]
    finally:
        batcher.close()


def test_batcher_never_exceeds_max_batch():
    calls = []
    batcher = MicroBatcher(_echo_runner(calls), max_batch=4, max_wait_ms=20.0)
    try:
        futures = [batcher.submit(np.full(3, i)) for i in range(11)]
        values = [f.result(timeout=5).value for f in futures]
        assert values == [float(i) for i in range(11)]  # order preserved
        assert max(calls) <= 4 and sum(calls) == 11
    finally:
        batcher.close()


def test_batcher_runner_exception_propagates_to_every_request():
    def boom(X):
        raise ValueError("model fell over")
    batcher = MicroBatcher(boom, max_batch=2, max_wait_ms=5.0)
    try:
        futures = [batcher.submit(np.zeros(3)) for _ in range(2)]
        for f in futures:
            with pytest.raises(ValueError, match="fell over"):
                f.result(timeout=5)
    finally:
        batcher.close()


def test_batcher_close_reports_drained():
    calls = []
    batcher = MicroBatcher(_echo_runner(calls), max_batch=2, max_wait_ms=1.0)
    batcher.submit(np.zeros(3)).result(timeout=5)
    assert batcher.close() is True
    assert batcher.close() is True  # idempotent, still drained


def test_batcher_close_timeout_reports_not_drained():
    release = threading.Event()

    def stuck(X):
        release.wait(timeout=10)
        return [float(row[0]) for row in X]

    batcher = MicroBatcher(stuck, max_batch=1, max_wait_ms=0.0)
    future = batcher.submit(np.zeros(3))
    try:
        # The runner is blocked, so a bounded close must say "not drained"
        # instead of silently returning with the request still in flight.
        assert batcher.close(timeout=0.05) is False
    finally:
        release.set()
    assert batcher.close(timeout=5) is True
    assert future.result(timeout=5).value == 0.0


def test_batcher_shutdown_completes_in_flight_requests():
    release = threading.Event()
    calls = []

    def slow(X):
        release.wait(timeout=5)
        calls.append(len(X))
        return [float(row[0]) for row in X]

    batcher = MicroBatcher(slow, max_batch=2, max_wait_ms=1.0)
    futures = [batcher.submit(np.full(3, i)) for i in range(6)]
    while batcher.pending() and not calls:
        time.sleep(0.001)
    closer = threading.Thread(target=batcher.close, daemon=True)
    closer.start()
    release.set()
    closer.join(timeout=5)
    assert not closer.is_alive()
    # Graceful: every request submitted before close() got its answer.
    assert [f.result(timeout=1).value for f in futures] == \
        [float(i) for i in range(6)]
    with pytest.raises(RuntimeError, match="closed"):
        batcher.submit(np.zeros(3))


# ---------------------------------------------------------------------------
# PredictionCache
# ---------------------------------------------------------------------------

def test_cache_lru_eviction_and_stats():
    cache = PredictionCache(capacity=2)
    k = [PredictionCache.key(np.full(3, i), "m", "v1") for i in range(3)]
    cache.put(k[0], 0)
    cache.put(k[1], 1)
    assert cache.get(k[0]) == 0      # refreshes k0's recency
    cache.put(k[2], 2)               # evicts k1, the least recent
    assert cache.get(k[1]) is None
    assert cache.get(k[0]) == 0 and cache.get(k[2]) == 2
    stats = cache.stats()
    assert stats["evictions"] == 1 and stats["size"] == 2
    assert stats["hits"] == 3 and stats["misses"] == 1


def test_cache_key_separates_models_versions_and_inputs():
    x = np.arange(3, dtype=float)
    assert PredictionCache.key(x, "a", "v1") != PredictionCache.key(x, "b", "v1")
    assert PredictionCache.key(x, "a", "v1") != PredictionCache.key(x, "a", "v2")
    assert PredictionCache.key(x, "a", "v1") == PredictionCache.key(x.copy(), "a", "v1")
    assert PredictionCache.key(x, "a", "v1") != PredictionCache.key(x + 1, "a", "v1")


def test_cache_capacity_zero_disables_storage():
    cache = PredictionCache(capacity=0)
    key = PredictionCache.key(np.zeros(3), "m", "v1")
    cache.put(key, 7)
    assert cache.get(key) is None and len(cache) == 0


def test_cache_invalidate_by_model():
    cache = PredictionCache(capacity=8)
    ka = PredictionCache.key(np.zeros(3), "a", "v1")
    kb = PredictionCache.key(np.zeros(3), "b", "v1")
    cache.put(ka, 1)
    cache.put(kb, 2)
    assert cache.invalidate("a") == 1
    assert cache.get(ka) is None and cache.get(kb) == 2


# ---------------------------------------------------------------------------
# ModelRegistry: checkpoint round trips for all three families
# ---------------------------------------------------------------------------

def test_registry_round_trip_emstdp(tmp_path):
    net = _trained_net()
    save_checkpoint(net, tmp_path / "net")
    entry = ModelRegistry().load(tmp_path / "net")
    assert entry.model_class == "EMSTDPNetwork"
    assert entry.model.config.phase_length == 8  # config came from the ckpt
    xs, _ = _task(seed=9)
    np.testing.assert_array_equal(entry.model.predict_batch(xs),
                                  net.predict_batch(xs))


def test_registry_round_trip_backprop(tmp_path):
    model = BackpropMLP(DIMS, lr=0.1, seed=2)
    xs, ys = _task()
    model.train_stream(xs[:20], ys[:20])
    save_checkpoint(model, tmp_path / "mlp")
    entry = ModelRegistry().load(tmp_path / "mlp")
    assert entry.model_class == "BackpropMLP"
    assert entry.model.lr == 0.1
    np.testing.assert_array_equal(entry.model.predict_batch(xs),
                                  model.predict_batch(xs))


def test_registry_round_trip_loihi_trainer(tmp_path):
    cfg = loihi_default_config(seed=4, phase_length=8,
                               learning_rate=2.0 ** -4, error_gain=2.0)
    trainer = LoihiEMSTDPTrainer(build_emstdp_network(DIMS, cfg))
    xs, ys = _task()
    trainer.train_stream(xs[:8], ys[:8])
    save_checkpoint(trainer, tmp_path / "chip")
    entry = ModelRegistry().load(tmp_path / "chip")
    assert entry.model_class == "LoihiEMSTDPTrainer"
    assert entry.model.model.config.phase_length == 8
    np.testing.assert_array_equal(entry.model.predict_batch(xs[:6]),
                                  trainer.predict_batch(xs[:6]))


def test_registry_rejects_unserveable_checkpoint(tmp_path):
    class Odd:
        def state_dict(self):
            return {"dims": [2, 2]}
    save_checkpoint(Odd(), tmp_path / "odd")
    with pytest.raises(CheckpointError, match="Odd"):
        ModelRegistry().load(tmp_path / "odd")


def test_registry_load_source_directory_and_bad_source(tmp_path):
    save_checkpoint(_trained_net(seed=1), tmp_path / "a")
    save_checkpoint(_trained_net(seed=2), tmp_path / "b")
    registry = ModelRegistry()
    entries = registry.load_source(tmp_path)
    assert [e.name for e in entries] == ["a", "b"]
    assert registry.resolve().name == "a"  # first loaded is the default
    with pytest.raises(CheckpointError, match="neither"):
        ModelRegistry().load_source(tmp_path / "missing",
                                    store_root=tmp_path / "no-store")


def test_registry_versioning_and_explicit_resolve():
    registry = ModelRegistry()
    v1 = registry.register("net", _trained_net(seed=1))
    v2 = registry.register("net", _trained_net(seed=2))
    assert (v1.version, v2.version) == ("v1", "v2")
    assert registry.resolve("net").version == "v2"       # latest active
    assert registry.resolve("net", "v1") is v1           # pinned lookup
    with pytest.raises(KeyError, match="v9"):
        registry.resolve("net", "v9")
    with pytest.raises(ValueError, match="already has"):
        registry.register("net", _trained_net(), version="v1")


def test_energy_estimate_positive_for_all_families():
    net = EMSTDPNetwork(DIMS, full_precision_config(phase_length=8))
    mlp = BackpropMLP(DIMS)
    trainer = LoihiEMSTDPTrainer(build_emstdp_network(
        DIMS, loihi_default_config(phase_length=8)))
    e_net = estimate_request_energy_mj(net)
    e_mlp = estimate_request_energy_mj(mlp)
    e_chip = estimate_request_energy_mj(trainer)
    assert e_net > 0 and e_mlp > 0 and e_chip > 0
    # A T-step presentation must cost more than a single-step ANN pass.
    assert e_net > e_mlp


# ---------------------------------------------------------------------------
# InferenceService
# ---------------------------------------------------------------------------

def test_service_prediction_matches_model_and_caches():
    net = _trained_net()
    registry = ModelRegistry()
    registry.register("net", net)
    xs, _ = _task(seed=9)
    with InferenceService(registry, max_batch=4, max_wait_ms=2.0) as service:
        first = service.predict(xs[0])
        again = service.predict(xs[0])
        assert first["prediction"] == int(net.predict(xs[0]))
        assert not first["cached"] and first["batch_size"] >= 1
        assert first["energy_mj"] > 0.0
        assert again["cached"] and again["energy_mj"] == 0.0
        assert again["prediction"] == first["prediction"]


def test_service_cache_invalidated_on_hot_swap():
    registry = ModelRegistry()
    registry.register("net", _trained_net(seed=1))
    xs, _ = _task(seed=9)
    with InferenceService(registry, max_batch=2, max_wait_ms=1.0) as service:
        service.predict(xs[0])
        assert service.predict(xs[0])["cached"]
        # Hot-swap: v2 becomes active, v1's cached answers must not leak.
        registry.register("net", _trained_net(seed=2, n_train=40))
        swapped = service.predict(xs[0])
        assert swapped["version"] == "v2"
        assert not swapped["cached"]
        assert len(service.cache) == 1  # only the fresh v2 entry remains
        # Pinning the old version still works (served, not cached-stale).
        pinned = service.predict(xs[0], version="v1")
        assert pinned["version"] == "v1"


def test_service_shutdown_with_in_flight_requests():
    net = _trained_net()
    slow_calls = []
    real = net.predict_batch

    def slow_predict_batch(X):
        time.sleep(0.05)
        slow_calls.append(len(X))
        return real(X)

    net.predict_batch = slow_predict_batch
    registry = ModelRegistry()
    registry.register("net", net)
    service = InferenceService(registry, max_batch=4, max_wait_ms=2.0)
    xs, _ = _task(seed=9)
    results = []
    errors = []

    def client(i):
        try:
            results.append(service.predict(xs[i % len(xs)], use_cache=False))
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(8)]
    for t in threads:
        t.start()
    time.sleep(0.01)  # let requests enter the queue
    service.shutdown()
    for t in threads:
        t.join(timeout=5)
    # Every request that was accepted completed; none was dropped.
    assert len(results) + len(errors) == 8
    assert all(isinstance(r["prediction"], int) for r in results)
    assert results, "shutdown answered no in-flight request at all"
    with pytest.raises(RuntimeError, match="shut down"):
        service.predict(xs[0])


def test_service_metrics_shape_and_load_generator():
    registry = ModelRegistry()
    registry.register("net", _trained_net())
    xs, _ = _task(seed=9)
    with InferenceService(registry, max_batch=4, max_wait_ms=2.0,
                          cache_size=64) as service:
        report = run_load(service_predict_fn(service), xs[:6],
                          n_requests=60, n_clients=6)
        assert report.errors == 0 and report.requests == 60
        assert report.throughput_rps > 0
        assert report.cache_hits > 0  # repeats hit the cache
        metrics = service.metrics()
    assert metrics["requests"] == 60
    lat = metrics["latency_ms"]
    assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
    hist = metrics["batch_size_histogram"]
    assert sum(hist.values()) == metrics["dispatched_requests"]
    assert metrics["cache"]["hits"] == report.cache_hits
    assert 0.0 < metrics["cache"]["hit_rate"] < 1.0
    assert metrics["energy_mj_total"] > 0.0
    assert metrics["models"][0]["model_class"] == "EMSTDPNetwork"


def test_service_shutdown_surfaces_undrained_batcher():
    release = threading.Event()
    net = _trained_net()
    real = net.predict_batch

    def stuck_predict_batch(X):
        release.wait(timeout=10)
        return real(X)

    net.predict_batch = stuck_predict_batch
    registry = ModelRegistry()
    registry.register("net", net)
    service = InferenceService(registry, max_batch=1, max_wait_ms=0.0)
    xs, _ = _task(seed=9)
    client = threading.Thread(target=lambda: service.predict(xs[0]),
                              daemon=True)
    client.start()
    time.sleep(0.02)  # let the request reach the stuck batcher
    try:
        assert service.shutdown(timeout=0.05) is False
        # The undrained batcher must stay registered for the retry —
        # otherwise the next shutdown would vacuously report success.
        assert service.metrics()["batching"]["active_batchers"] == 1
    finally:
        release.set()
    client.join(timeout=5)
    # An unbounded retry after release performs the real drain.
    assert service.shutdown() is True
    assert service.metrics()["batching"]["active_batchers"] == 0


def test_service_metrics_concurrent_with_predict_load():
    registry = ModelRegistry()
    # Several names: each first prediction inserts a new batcher into the
    # dict that metrics() snapshots concurrently.
    for i in range(4):
        registry.register(f"net{i}", _trained_net(seed=i, n_train=8))
    service = InferenceService(registry, max_batch=4, max_wait_ms=1.0)
    xs, _ = _task(seed=9)
    errors = []
    stop = threading.Event()

    def scraper():
        while not stop.is_set():
            try:
                snap = service.metrics()
                assert snap["batching"]["active_batchers"] >= 0
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)
                return

    scrapers = [threading.Thread(target=scraper, daemon=True)
                for _ in range(3)]
    for t in scrapers:
        t.start()
    try:
        for j in range(12):
            service.predict(xs[j % len(xs)], model=f"net{j % 4}",
                            use_cache=False)
    finally:
        stop.set()
        for t in scrapers:
            t.join(timeout=5)
        service.shutdown()
    assert not errors
    assert service.metrics()["batching"]["active_batchers"] == 0


def test_service_unknown_model_raises_and_counts_error():
    registry = ModelRegistry()
    registry.register("net", _trained_net())
    with InferenceService(registry) as service:
        with pytest.raises(KeyError, match="nope"):
            service.predict(np.zeros(DIMS[0]), model="nope")
        assert service.metrics()["errors"] == 1


# ---------------------------------------------------------------------------
# HTTP endpoint
# ---------------------------------------------------------------------------

@pytest.fixture()
def http_server():
    registry = ModelRegistry()
    registry.register("net", _trained_net())
    service = InferenceService(registry, max_batch=4, max_wait_ms=2.0)
    server = InferenceHTTPServer(service, port=0).start()
    yield server
    server.stop()
    service.shutdown()


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def _post(url, body):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def test_http_predict_healthz_metrics(http_server):
    xs, _ = _task(seed=9)
    status, payload = _post(http_server.url + "/predict",
                            {"input": xs[0].tolist()})
    assert status == 200
    assert payload["model"] == "net" and isinstance(payload["prediction"], int)
    status, many = _post(http_server.url + "/predict",
                         {"inputs": [x.tolist() for x in xs[:3]]})
    assert status == 200 and len(many) == 3
    status, health = _get(http_server.url + "/healthz")
    assert status == 200 and health["status"] == "ok"
    status, metrics = _get(http_server.url + "/metrics")
    assert status == 200 and metrics["requests"] == 4
    assert "p99" in metrics["latency_ms"]


def test_http_use_cache_false_forces_inference(http_server):
    xs, _ = _task(seed=9)
    body = {"input": xs[0].tolist()}
    _post(http_server.url + "/predict", body)
    _, cached = _post(http_server.url + "/predict", body)
    assert cached["cached"]  # baseline: repeats hit the cache
    # use_cache=false must reach the model even for a cached input...
    _, fresh = _post(http_server.url + "/predict",
                     {**body, "use_cache": False})
    assert not fresh["cached"] and fresh["batch_size"] >= 1
    assert fresh["energy_mj"] > 0.0
    assert fresh["prediction"] == cached["prediction"]
    # ...for the batched "inputs" form too.
    _, many = _post(http_server.url + "/predict",
                    {"inputs": [xs[0].tolist()] * 2, "use_cache": False})
    assert all(not r["cached"] for r in many)
    # The JSON-string pitfall: bool("false") is True, so a non-boolean
    # use_cache must be rejected rather than silently inverted.
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(http_server.url + "/predict",
              {**body, "use_cache": "false"})
    assert err.value.code == 400


def test_http_keep_alive_survives_error_responses(http_server):
    """One connection: error responses must not desync later requests."""
    xs, _ = _task(seed=9)
    good = json.dumps({"input": xs[0].tolist()}).encode()
    host, port = http_server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        # 404 with an unread body: the server must drain it.
        conn.request("POST", "/nowhere", body=b'{"input": [1, 2, 3]}',
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 404
        resp.read()
        # 400 bad JSON, then a success on the same socket.
        conn.request("POST", "/predict", body=b'{"input": [0.1,',
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
        resp.read()
        conn.request("POST", "/predict", body=good,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 200
        payload = json.loads(resp.read())
        assert isinstance(payload["prediction"], int)
    finally:
        conn.close()


@pytest.mark.parametrize("path", ["/predict", "/nowhere"])
def test_http_oversized_body_closes_connection(http_server, path):
    """413 cannot drain (that would read the refused bytes): it closes.

    The limit must hold on *every* POST route — an unknown path must not
    fall through to the 404 drain and read an unbounded body.
    """
    from repro.serve.http import MAX_BODY_BYTES

    host, port = http_server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.putrequest("POST", path)
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
        conn.endheaders()
        # The server answers before the (never sent) body arrives.
        resp = conn.getresponse()
        assert resp.status == 413
        assert resp.getheader("Connection") == "close"
        resp.read()
    finally:
        conn.close()


def test_http_chunked_body_is_rejected_with_close(http_server):
    """No Content-Length means no framing: 411 + Connection: close."""
    host, port = http_server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.putrequest("POST", "/predict")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Transfer-Encoding", "chunked")
        conn.endheaders()
        resp = conn.getresponse()
        assert resp.status == 411
        assert resp.getheader("Connection") == "close"
        resp.read()
    finally:
        conn.close()


def test_registry_register_without_activate_stages_the_version():
    registry = ModelRegistry()
    staged = registry.register("canary", _trained_net(seed=1),
                               activate=False)
    # The staged version must not serve traffic yet...
    with pytest.raises(KeyError, match="no active version"):
        registry.resolve("canary")
    # ...until it is explicitly activated.
    registry.activate("canary", staged.version)
    assert registry.resolve("canary") is staged


def test_http_error_statuses(http_server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(http_server.url + "/predict", {"wrong": 1})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(http_server.url + "/predict",
              {"input": [0.0] * DIMS[0], "model": "nope"})
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(http_server.url + "/nothing")
    assert err.value.code == 404


def test_http_non_object_json_body_is_400(http_server):
    for body in ([0.1, 0.2], "hello", 5):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(http_server.url + "/predict", body)
        assert err.value.code == 400


def test_predict_many_coalesces_from_a_single_caller():
    registry = ModelRegistry()
    registry.register("net", _trained_net())
    xs, _ = _task(seed=9)
    with InferenceService(registry, max_batch=8, max_wait_ms=50.0,
                          cache_size=0) as service:
        results = service.predict_many(xs[:6], use_cache=False)
    # All six were submitted before any was awaited, so they dispatched
    # together instead of as six deadline-stalled batches of one.
    assert max(r["batch_size"] for r in results) >= 2


def test_http_predict_fn_round_trip(http_server):
    xs, _ = _task(seed=9)
    fn = http_predict_fn(http_server.url)
    response = fn(xs[0])
    assert isinstance(response["prediction"], int)


# ---------------------------------------------------------------------------
# CLI satellites: --version, help epilog, list ordering
# ---------------------------------------------------------------------------

def test_cli_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        cli.main(["--version"])
    assert exc.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_cli_help_epilog_mentions_serve(capsys):
    with pytest.raises(SystemExit) as exc:
        cli.main(["--help"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert "python -m repro serve" in out
    assert "python -m repro cluster" in out


def test_cli_list_renders_most_recent_first(tmp_path, capsys):
    from repro.experiments import ExperimentSpec, RunStore

    store = RunStore(tmp_path)
    for i, run_id in enumerate(["20260101-000000-aaaaaa",
                                "20260301-000000-cccccc",
                                "20260201-000000-bbbbbb"]):
        spec = ExperimentSpec(name="offline_accuracy", seeds=(0,))
        store.create_run(spec, run_id)
    assert cli.main(["list", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    rows = [line for line in out.splitlines() if "2026" in line]
    assert [r.split()[1][:8] for r in rows] == \
        ["20260301", "20260201", "20260101"]


def test_cli_serve_errors_on_missing_checkpoint(tmp_path, capsys):
    assert cli.main(["serve", str(tmp_path / "nope"),
                     "--out", str(tmp_path)]) == 2
    assert "neither" in capsys.readouterr().err


def test_cli_cluster_errors_on_missing_checkpoint(tmp_path, capsys):
    # The worker self-loads and reports the failure as a fatal message;
    # the CLI surfaces it as a clean exit-2 error, not a traceback.
    assert cli.main(["cluster", str(tmp_path / "nope"), "--workers", "1",
                     "--out", str(tmp_path)]) == 2
    assert "failed to start" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# HTTP satellites: socket options, signal-driven drain, 503 shedding,
# process-identifying metrics
# ---------------------------------------------------------------------------

def test_http_server_port0_exposes_distinct_bound_ports(http_server):
    assert http_server.port > 0  # the ephemeral port actually bound
    assert str(http_server.port) in http_server.url
    registry = ModelRegistry()
    registry.register("net", _trained_net())
    with InferenceService(registry, max_batch=4) as service:
        second = InferenceHTTPServer(service, port=0)
        try:
            assert second.port > 0
            assert second.port != http_server.port
        finally:
            second._httpd.server_close()


def test_http_server_reuse_port_allows_shared_bind():
    if not hasattr(socket, "SO_REUSEPORT"):
        pytest.skip("platform has no SO_REUSEPORT")
    registry = ModelRegistry()
    registry.register("net", _trained_net())
    with InferenceService(registry, max_batch=4) as service:
        first = InferenceHTTPServer(service, port=0, reuse_port=True)
        try:
            # A second listener on the *same* port only binds when both
            # sockets carry SO_REUSEPORT — which is the property claimed.
            second = InferenceHTTPServer(service, port=first.port,
                                         reuse_port=True)
            assert second.port == first.port
            second._httpd.server_close()
        finally:
            first._httpd.server_close()


def test_healthz_and_metrics_identify_the_serving_process(http_server):
    _, health = _get(http_server.url + "/healthz")
    assert health["pid"] == os.getpid()
    assert health["uptime_s"] >= 0.0
    _, metrics = _get(http_server.url + "/metrics")
    assert metrics["pid"] == os.getpid()
    assert metrics["uptime_s"] >= 0.0
    assert metrics["active_versions"] == {"net": "v1"}
    assert metrics["pending"] >= 0


def test_serve_until_signal_returns_signum_and_restores_handler():
    registry = ModelRegistry()
    registry.register("net", _trained_net())
    service = InferenceService(registry, max_batch=4, max_wait_ms=2.0)
    server = InferenceHTTPServer(service, port=0)
    previous = signal.getsignal(signal.SIGTERM)
    try:
        threading.Timer(0.3, os.kill,
                        args=(os.getpid(), signal.SIGTERM)).start()
        signum = server.serve_until_signal()
        assert signum == signal.SIGTERM
        assert signal.getsignal(signal.SIGTERM) is previous
        # The CLI's contract: after the signal the service drains cleanly.
        assert service.shutdown(timeout=10.0) is True
    finally:
        service.shutdown()


class _SheddingService:
    """Every predict is refused: the admission-control worst case."""

    def predict(self, *a, **k):
        raise Overloaded("tier is full", retry_after_s=2.5)

    predict_many = predict


def test_http_maps_overloaded_to_503_and_loadgen_counts_rejected():
    server = InferenceHTTPServer(_SheddingService(), port=0).start()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/predict", {"input": [0.0] * DIMS[0]})
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Retry-After"] == "3"  # ceil(2.5)
        excinfo.value.read()

        xs, _ = _task()
        report = run_load(http_predict_fn(server.url), xs[:4],
                          n_requests=12, n_clients=3)
        assert report.rejected == 12  # shed, not errored
        assert report.errors == 0
        assert report.requests == 12
    finally:
        server.stop()
