"""The sweep subsystem: spec expansion, runner, resume, aggregation, CLI.

Runner tests use the fast single-backend offline spec (as in
test_experiments.py) so multi-point sweeps stay quick; the sweep-native
scenarios (noise_robustness, timing_precision) get one direct run_seed
test each plus CLI coverage through the tiny t_sweep.
"""

import json

import numpy as np
import pytest

from repro import cli
from repro.analysis.aggregate import (axis_tables, best_point,
                                      default_objective, mean_metrics,
                                      sweep_table)
from repro.data import corrupt_dataset, corrupt_images, load_dataset
from repro.experiments import RunStore, get_scenario
from repro.sweeps import (SWEEPS, RandomAxis, SweepAxis, SweepRunner,
                          SweepSpec, SweepStore, apply_overrides, get_sweep)


def fast_base(**overrides):
    """The cheapest real spec: tiny offline_accuracy, backprop only."""
    spec = get_scenario("offline_accuracy").build_spec(tiny=True).replace(
        backends=("backprop",), n_train=40, n_test=20)
    return spec.replace(**overrides) if overrides else spec


def fast_sweep(**overrides):
    kwargs = dict(name="epochs_sweep", base=fast_base(),
                  grid=(SweepAxis("epochs", (1, 2)),),
                  objective="backprop.test_acc")
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


# ---------------------------------------------------------------------------
# spec expansion
# ---------------------------------------------------------------------------

def test_grid_expansion_crosses_axes_in_order():
    spec = fast_sweep(grid=(SweepAxis("epochs", (1, 2)),
                            SweepAxis("dataset", ("mnist_like",
                                                  "fashion_like"))))
    points = spec.expand()
    assert [p.point_id for p in points] == ["p000", "p001", "p002", "p003"]
    assert [p.overrides for p in points] == [
        {"epochs": 1, "dataset": "mnist_like"},
        {"epochs": 1, "dataset": "fashion_like"},
        {"epochs": 2, "dataset": "mnist_like"},
        {"epochs": 2, "dataset": "fashion_like"},
    ]
    assert points[3].spec.epochs == 2
    assert points[3].spec.dataset == "fashion_like"
    assert points[0].label == "epochs=1,dataset=mnist_like"


def test_params_axis_merges_into_base_params():
    base = fast_base(params={"keep": 7, "noise_level": 0.0})
    spec = apply_overrides(base, {"params.noise_level": 0.3})
    assert spec.params == {"keep": 7, "noise_level": 0.3}
    assert base.params["noise_level"] == 0.0  # base untouched


def test_scalar_values_for_tuple_fields_become_one_tuples():
    # An axis like --axis hidden=64,128 yields one *scalar* per point;
    # tuple-valued spec fields must wrap it, not iterate it (a bare
    # string backend would otherwise explode into characters).
    spec = apply_overrides(fast_base(), {"hidden": 64})
    assert spec.hidden == (64,)
    spec = apply_overrides(fast_base(), {"backends": "rate"})
    assert spec.backends == ("rate",)
    spec = apply_overrides(fast_base(), {"seeds": 3})
    assert spec.seeds == (3,)
    # A list value (JSON axis values) passes through untouched.
    spec = apply_overrides(fast_base(), {"hidden": [32, 16]})
    assert spec.hidden == (32, 16)


def test_unknown_axis_field_raises():
    with pytest.raises(ValueError, match="neither"):
        apply_overrides(fast_base(), {"bogus_field": 1})
    with pytest.raises(ValueError, match="params"):
        apply_overrides(fast_base(), {"params": {"a": 1}})


def test_axis_value_coercion_to_declared_types():
    from repro.sweeps import coerce_axis_value

    # int fields: strings and integral floats coerce, junk raises
    assert coerce_axis_value("phase_length", "16") == 16
    assert coerce_axis_value("epochs", 2.0) == 2
    assert coerce_axis_value("n_train", 40) == 40
    with pytest.raises(ValueError, match="int"):
        coerce_axis_value("epochs", "two")
    with pytest.raises(ValueError, match="int"):
        coerce_axis_value("epochs", 1.5)
    # bool field
    assert coerce_axis_value("tiny", "true") is True
    assert coerce_axis_value("tiny", "False") is False
    with pytest.raises(ValueError, match="bool"):
        coerce_axis_value("tiny", "maybe")
    # Optional[int]: none passes through, values coerce
    assert coerce_axis_value("phase_length", "none") is None
    assert coerce_axis_value("phase_length", None) is None
    # tuple fields coerce elementwise, scalars stay scalars
    assert coerce_axis_value("hidden", ["16", 8]) == [16, 8]
    assert coerce_axis_value("hidden", "24") == 24
    assert coerce_axis_value("backends", "rate") == "rate"
    # str field rejects non-strings
    with pytest.raises(ValueError, match="string"):
        coerce_axis_value("dataset", 3)
    # params.<key> paths are schemaless and untouched
    assert coerce_axis_value("params.T", "16") == "16"
    # unknown fields fail with the field listing
    with pytest.raises(ValueError, match="neither"):
        coerce_axis_value("bogus", 1)
    with pytest.raises(ValueError, match="params"):
        coerce_axis_value("params", {})


def test_cli_axis_values_reach_specs_with_declared_types(capsys, tmp_path):
    """Regression: `--axis phase_length=16,32` must not poison specs with
    strings (quoted values used to survive as str all the way into runs)."""
    from repro.cli import _parse_axes

    axes = _parse_axes(["phase_length=16,32", 'dataset="mnist_like"',
                        "params.T=8,12"])
    assert axes[0].values == (16, 32)
    assert all(isinstance(v, int) for v in axes[0].values)
    assert axes[1].values == ("mnist_like",)
    assert axes[2].values == (8, 12)  # params via JSON parsing
    # a typoed field fails at parse time with a clear error (the CLI
    # surfaces it as exit code 2 before any point runs)
    with pytest.raises(ValueError, match="neither"):
        _parse_axes(["phse_length=16"])
    assert cli.main(["sweep", "run", "offline_accuracy",
                     "--axis", "epochs=one,two",
                     "--out", str(tmp_path)]) == 2
    assert "wants an int" in capsys.readouterr().err


def test_random_axes_are_deterministic_and_bounded():
    spec = fast_sweep(
        grid=(), n_random=8, rng_seed=5,
        random=(RandomAxis("epochs", 1, 4, integer=True),
                RandomAxis("params.backprop_lr", 1e-3, 1e-1, log=True)))
    points = spec.expand()
    again = spec.expand()
    assert [p.overrides for p in points] == [p.overrides for p in again]
    assert len(points) == 8
    for p in points:
        assert 1 <= p.overrides["epochs"] <= 4
        assert isinstance(p.overrides["epochs"], int)
        assert 1e-3 <= p.overrides["params.backprop_lr"] <= 1e-1
    # A different seed draws different values.
    other = spec.replace(rng_seed=6).expand()
    assert [p.overrides for p in other] != [p.overrides for p in points]


def test_sweep_spec_validation():
    with pytest.raises(ValueError, match="at least one axis"):
        fast_sweep(grid=())
    with pytest.raises(ValueError, match="n_random"):
        fast_sweep(random=(RandomAxis("epochs", 1, 3),))
    with pytest.raises(ValueError, match="duplicate"):
        fast_sweep(grid=(SweepAxis("epochs", (1,)),
                         SweepAxis("epochs", (2,))))
    with pytest.raises(ValueError, match="mode"):
        fast_sweep(mode="sideways")
    with pytest.raises(ValueError, match="low > high"):
        RandomAxis("epochs", 5, 1)


def test_sweep_spec_json_round_trip():
    spec = fast_sweep(random=(RandomAxis("params.backprop_lr", 0.01, 0.1,
                                         log=True),), n_random=2)
    again = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec
    assert [p.overrides for p in again.expand()] == \
        [p.overrides for p in spec.expand()]


# ---------------------------------------------------------------------------
# sweep runner + store
# ---------------------------------------------------------------------------

def test_sweep_run_layout_links_child_runs(tmp_path):
    runner = SweepRunner(out_root=tmp_path, max_workers=1)
    result = runner.run(fast_sweep())

    assert result.status == "complete"
    assert result.sweep_dir.parent.name == "sweeps"
    manifest = json.loads((result.sweep_dir / "sweep.json").read_text())
    assert manifest["status"] == "complete"
    assert [p["status"] for p in manifest["points"]] == ["complete"] * 2

    # Every point links a real child run in the ordinary run store.
    store = RunStore(tmp_path)
    for point, entry in zip(result.points, manifest["points"]):
        run = store.find(entry["run_id"])
        assert run.experiment == "offline_accuracy"
        assert run.status == "complete"
        assert run.spec().epochs == point.point.overrides["epochs"]

    # summary.jsonl has one line per point with mean metrics.
    lines = [json.loads(ln) for ln in
             (result.sweep_dir / "summary.jsonl").read_text().splitlines()]
    assert [ln["point_id"] for ln in lines] == ["p000", "p001"]
    for line in lines:
        assert line["seeds_ok"] == 1
        assert 0.0 <= line["metrics"]["backprop.test_acc"] <= 1.0


def test_sweep_resume_skips_finished_points_and_reuses_runs(tmp_path):
    runner = SweepRunner(out_root=tmp_path, max_workers=1)
    result = runner.run(fast_sweep())
    sweep_dir = result.sweep_dir
    first_run_ids = [p.run_id for p in result.points]

    # Simulate a kill while p001 was mid-flight: sweep manifest says
    # running, p001's summary line is gone, its child run lost its record.
    manifest_path = sweep_dir / "sweep.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["status"] = "running"
    manifest["points"][1]["status"] = "running"
    manifest_path.write_text(json.dumps(manifest))
    summary_path = sweep_dir / "summary.jsonl"
    summary_path.write_text(summary_path.read_text().splitlines()[0] + "\n")
    child = RunStore(tmp_path).find(first_run_ids[1])
    (child.path / "records.jsonl").write_text("")
    child_manifest = dict(child.manifest)
    child_manifest["status"] = "running"
    (child.path / "manifest.json").write_text(json.dumps(child_manifest))

    resumed = SweepRunner(out_root=tmp_path, max_workers=1).run(
        resume=result.sweep_id)
    assert resumed.status == "complete"
    assert resumed.points[0].skipped and not resumed.points[1].skipped
    # The interrupted point resumed into its existing child run.
    assert [p.run_id for p in resumed.points] == first_run_ids
    assert len(summary_path.read_text().splitlines()) == 2


def test_sweep_resume_latest_and_unknown_ids(tmp_path):
    runner = SweepRunner(out_root=tmp_path, max_workers=1)
    with pytest.raises(KeyError, match="no sweep"):
        runner.store.find("nope")
    with pytest.raises(KeyError, match="unfinished"):
        runner.run(resume="latest")
    result = runner.run(fast_sweep())
    # A complete sweep is not resumable as "latest"...
    with pytest.raises(KeyError, match="unfinished"):
        runner.run(resume="latest")
    # ...but resuming it by id is a no-op walk over finished points.
    again = runner.run(resume=result.sweep_id)
    assert all(p.skipped for p in again.points)


def test_failed_point_marks_sweep_failed(tmp_path):
    # packings=[0] makes the energy_tradeoff seed raise.
    base = get_scenario("energy_tradeoff").build_spec(tiny=True)
    spec = SweepSpec(name="bad", base=base,
                     grid=(SweepAxis("params.packings", ([0], [5])),))
    result = SweepRunner(out_root=tmp_path, max_workers=1).run(spec)
    assert result.status == "failed"
    assert [p.status for p in result.points] == ["failed", "complete"]


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------

def _summaries():
    return {
        "p000": {"point_id": "p000", "overrides": {"T": 8}, "run_id": "a",
                 "status": "complete", "seeds_ok": 2, "seeds_total": 2,
                 "metrics": {"rate.test_acc": 0.5, "energy": 2.0}},
        "p001": {"point_id": "p001", "overrides": {"T": 16}, "run_id": "b",
                 "status": "complete", "seeds_ok": 2, "seeds_total": 2,
                 "metrics": {"rate.test_acc": 0.8, "energy": 4.0}},
        "p002": {"point_id": "p002", "overrides": {"T": 32}, "run_id": "c",
                 "status": "failed", "seeds_ok": 0, "seeds_total": 2,
                 "metrics": {}},
    }


def test_best_point_modes_and_failed_points_excluded():
    summaries = list(_summaries().values())
    assert best_point(summaries, "rate.test_acc")["point_id"] == "p001"
    assert best_point(summaries, "energy", mode="min")["point_id"] == "p000"
    assert best_point([], "rate.test_acc") is None
    assert best_point([_summaries()["p002"]], "rate.test_acc") is None


def test_default_objective_prefers_test_acc():
    assert default_objective(["energy", "rate.test_acc"]) == "rate.test_acc"
    assert default_objective(["zz", "final_acc"]) == "final_acc"
    assert default_objective(["b", "a"]) == "a"
    assert default_objective([]) == ""


def test_sweep_table_appends_best_row():
    summaries = _summaries()
    points = [{"point_id": pid, "overrides": s["overrides"],
               "status": s["status"]} for pid, s in summaries.items()]
    headers, rows = sweep_table(points, summaries, ["T"], "rate.test_acc")
    assert headers == ["point", "T", "status", "seeds", "rate.test_acc"]
    assert len(rows) == 4  # 3 points + best row
    assert rows[-1][0] == "best:p001" and rows[-1][1] == 16


def test_axis_tables_marginalize_one_axis():
    summaries = [
        {"status": "complete", "overrides": {"T": 8, "ds": "a"},
         "metrics": {"acc": 0.2}},
        {"status": "complete", "overrides": {"T": 8, "ds": "b"},
         "metrics": {"acc": 0.4}},
        {"status": "complete", "overrides": {"T": 16, "ds": "a"},
         "metrics": {"acc": 0.6}},
    ]
    tables = axis_tables(["T", "ds"], summaries, "acc")
    headers, rows = tables["T"]
    assert rows == [[8, 2, pytest.approx(0.3), 0.4],
                    [16, 1, pytest.approx(0.6), 0.6]]
    assert tables["ds"][1][0] == ["a", 2, pytest.approx(0.4), 0.6]


def test_axis_tables_handle_unhashable_axis_values():
    # List-valued axes (multi-element hidden points) must group by
    # content, not crash on dict hashing.
    summaries = [
        {"status": "complete", "overrides": {"hidden": [16]},
         "metrics": {"acc": 0.2}},
        {"status": "complete", "overrides": {"hidden": [16]},
         "metrics": {"acc": 0.4}},
        {"status": "complete", "overrides": {"hidden": [32, 16]},
         "metrics": {"acc": 0.6}},
    ]
    headers, rows = axis_tables(["hidden"], summaries, "acc")["hidden"]
    by_value = {json.dumps(r[0]): r for r in rows}
    assert by_value["[16]"][1:3] == [2, pytest.approx(0.3)]
    assert by_value["[32, 16]"][1] == 1


def test_mean_metrics_flattens_and_averages():
    records = [{"metrics": {"a": {"x": 1.0}, "b": 2.0, "s": "skip"}},
               {"metrics": {"a": {"x": 3.0}}}]
    means = mean_metrics(records)
    assert means == {"a.x": 2.0, "b": 2.0}


# ---------------------------------------------------------------------------
# corruption helpers
# ---------------------------------------------------------------------------

def test_corruption_level_zero_is_identity():
    train, _ = load_dataset("mnist_like", 6, 2, side=8, seed=0)
    out = corrupt_images(train.images, 0.0, rng=1, kind="gaussian")
    np.testing.assert_array_equal(out, train.images)
    assert out is not train.images  # a copy, not an alias


def test_corruption_kinds_shapes_and_ranges():
    rng_images = np.random.default_rng(0).random((5, 8, 8))
    for kind in ("gaussian", "salt_pepper", "occlusion"):
        out = corrupt_images(rng_images, 0.3, rng=2, kind=kind)
        assert out.shape == rng_images.shape
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert not np.array_equal(out, rng_images)
    # Deterministic in the seed.
    a = corrupt_images(rng_images, 0.3, rng=2, kind="salt_pepper")
    b = corrupt_images(rng_images, 0.3, rng=2, kind="salt_pepper")
    np.testing.assert_array_equal(a, b)


def test_corruption_salt_pepper_flips_about_level_fraction():
    images = np.full((4, 16, 16), 0.5)
    out = corrupt_images(images, 0.25, rng=3, kind="salt_pepper")
    flipped = (out != 0.5)
    assert 0.1 < flipped.mean() < 0.4
    assert set(np.unique(out[flipped])) <= {0.0, 1.0}


def test_corruption_occlusion_zeroes_a_patch_per_image():
    images = np.ones((3, 10, 10))
    out = corrupt_images(images, 0.25, rng=4, kind="occlusion")
    for img in out:
        zeros = int((img == 0).sum())
        assert zeros == 25  # sqrt(0.25) * 10 = 5 -> 5x5 patch


def test_corruption_rejects_bad_arguments():
    images = np.zeros((1, 4, 4))
    with pytest.raises(ValueError, match="level"):
        corrupt_images(images, 1.5)
    with pytest.raises(ValueError, match="unknown corruption"):
        corrupt_images(images, 0.1, kind="sharknado")


def test_corrupt_dataset_keeps_labels_and_name():
    train, _ = load_dataset("mnist_like", 6, 2, side=8, seed=0)
    noisy = corrupt_dataset(train, 0.2, seed=1)
    np.testing.assert_array_equal(noisy.labels, train.labels)
    assert noisy.name == train.name and len(noisy) == len(train)


def test_corruption_occlusion_accepts_flat_input():
    """Regression: flat (N, D) input used to crash on images.shape[2]."""
    spatial = np.ones((3, 8, 8))
    flat = spatial.reshape(3, -1)
    # Same rng -> same patches whether the input arrives flat or spatial.
    a = corrupt_images(spatial, 0.25, rng=7, kind="occlusion")
    b = corrupt_images(flat, 0.25, rng=7, kind="occlusion")
    assert b.shape == flat.shape  # output keeps the input's shape
    np.testing.assert_array_equal(a.reshape(3, -1), b)
    # Explicit non-square geometry via image_shape.
    rect = np.ones((2, 4 * 6))
    out = corrupt_images(rect, 0.25, rng=1, kind="occlusion",
                         image_shape=(4, 6))
    assert out.shape == rect.shape and (out == 0).any()


def test_corruption_occlusion_flat_input_error_cases():
    flat = np.ones((2, 12))  # 12 is not a perfect square
    with pytest.raises(ValueError, match="perfect square"):
        corrupt_images(flat, 0.25, rng=1, kind="occlusion")
    with pytest.raises(ValueError, match="pixels"):
        corrupt_images(flat, 0.25, rng=1, kind="occlusion",
                       image_shape=(5, 5))
    with pytest.raises(ValueError, match="image_shape"):
        corrupt_images(flat, 0.25, rng=1, kind="occlusion",
                       image_shape=(12,))


def test_corruption_occlusion_channels_last_covers_all_channels():
    images = np.ones((2, 8, 8, 3))
    out = corrupt_images(images, 0.25, rng=2, kind="occlusion")
    assert out.shape == images.shape
    for img in out:
        covered = np.argwhere((img == 0).any(axis=-1))
        assert len(covered) == 16  # 4x4 patch
        # every covered pixel is zeroed across *all* channels
        assert (img[(img == 0).any(axis=-1)] == 0).all()


def test_corrupt_dataset_flat_images_pass_through_pixelwise_kinds():
    from repro.data.synth import Dataset

    flat = Dataset(np.random.default_rng(0).random((4, 10)),
                   np.zeros(4, dtype=int))
    out = corrupt_dataset(flat, 0.2, seed=1, kind="gaussian")
    assert out.images.shape == flat.images.shape


# ---------------------------------------------------------------------------
# sweep-native scenarios
# ---------------------------------------------------------------------------

def test_noise_robustness_scenario_seed(tmp_path):
    spec = get_scenario("noise_robustness").build_spec(tiny=True).replace(
        n_train=30, n_test=16, params={"noise_level": 0.5,
                                       "noise_kind": "salt_pepper"})
    payload = get_scenario("noise_robustness").run_seed(spec, 0, tmp_path)
    entry = payload["metrics"]["rate"]
    assert {"test_acc", "noisy_acc", "degradation",
            "noise_level"} <= set(entry)
    assert entry["noise_level"] == 0.5
    assert entry["degradation"] == pytest.approx(
        entry["test_acc"] - entry["noisy_acc"])
    assert (tmp_path / payload["checkpoints"]["rate"]).with_suffix(
        ".npz").exists() or (tmp_path / (payload["checkpoints"]["rate"]
                                         + ".npz")).exists()


def test_timing_precision_scenario_energy_scales_with_T(tmp_path):
    scenario = get_scenario("timing_precision")
    spec = scenario.build_spec(tiny=True).replace(n_train=30, n_test=16)
    slow = scenario.run_seed(spec.replace(phase_length=32), 0, None)
    fast = scenario.run_seed(spec.replace(phase_length=8), 0, None)
    assert slow["metrics"]["rate"]["T"] == 32
    assert fast["metrics"]["rate"]["T"] == 8
    # A longer presentation must cost more modeled energy per inference.
    assert slow["metrics"]["rate"]["energy_mj_per_inference"] > \
        fast["metrics"]["rate"]["energy_mj_per_inference"]


def test_builtin_sweeps_registered_and_tiny_grids_are_2x2():
    assert {"noise_robustness", "t_sweep"} <= set(SWEEPS)
    for name in ("noise_robustness", "t_sweep"):
        tiny = get_sweep(name).build_sweep(tiny=True)
        assert len(tiny.expand()) == 4  # the <60s CI smoke grid
        assert len(get_sweep(name).build_sweep().expand()) > 4


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_sweep_run_show_list_compare(tmp_path, capsys):
    out = str(tmp_path)
    assert cli.main(["sweep", "run", "epochs", "--out", out]) == 2
    assert "unknown sweep" in capsys.readouterr().err

    assert cli.main(["sweep", "run", "offline_accuracy", "--out", out]) == 2
    assert "--axis" in capsys.readouterr().err

    assert cli.main(["sweep", "run", "t_sweep", "--tiny", "--workers", "1",
                     "--out", out]) == 0
    captured = capsys.readouterr().out
    assert "best:" in captured and "marginal over phase_length" in captured

    sweep_id = SweepStore(out).latest().sweep_id
    assert cli.main(["sweep", "show", sweep_id[:10], "--out", out]) == 0
    shown = capsys.readouterr().out
    assert "best:" in shown and "4/4" not in shown  # per-point rows, 1 seed

    assert cli.main(["sweep", "list", "--out", out]) == 0
    assert "4/4" in capsys.readouterr().out

    assert cli.main(["sweep", "compare", sweep_id, "--out", out]) == 0
    assert "best point" in capsys.readouterr().out


def test_cli_sweep_adhoc_axis_over_scenario(tmp_path, capsys):
    out = str(tmp_path)
    assert cli.main(["sweep", "run", "timing_precision", "--tiny",
                     "--axis", "phase_length=8,12", "--workers", "1",
                     "--out", out]) == 0
    captured = capsys.readouterr().out
    assert "p000" in captured and "p001" in captured
    manifest = json.loads(
        next((tmp_path / "sweeps").iterdir()).joinpath(
            "sweep.json").read_text())
    assert [p["overrides"]["phase_length"]
            for p in manifest["points"]] == [8, 12]


def test_cli_sweep_bad_axis_exits_cleanly(tmp_path, capsys):
    out = str(tmp_path)
    # Unknown axis field: clean error, not a traceback mid-run.
    assert cli.main(["sweep", "run", "t_sweep", "--tiny",
                     "--axis", "bogus=1,2", "--out", out]) == 2
    assert "neither" in capsys.readouterr().err
    # Invalid axis *value* (duplicate seeds) is caught at expansion too.
    assert cli.main(["sweep", "run", "t_sweep", "--tiny",
                     "--axis", "seeds=[0,0]", "--out", out]) == 2
    assert "duplicate" in capsys.readouterr().err


def test_cli_axis_json_list_values_survive_comma_split(tmp_path, capsys):
    out = str(tmp_path)
    assert cli.main(["sweep", "run", "offline_accuracy", "--tiny",
                     "--axis", "backends=backprop",
                     "--axis", "hidden=[12,8],[16]",
                     "--workers", "1", "--out", out]) == 0
    capsys.readouterr()
    manifest = json.loads(
        next((tmp_path / "sweeps").iterdir()).joinpath(
            "sweep.json").read_text())
    assert [p["overrides"]["hidden"] for p in manifest["points"]] == \
        [[12, 8], [16]]
    child = RunStore(tmp_path).find(manifest["points"][0]["run_id"])
    assert child.spec().hidden == (12, 8)


def test_cli_sweep_resume_without_naming_the_sweep(tmp_path, capsys):
    out = str(tmp_path)
    assert cli.main(["sweep", "run", "timing_precision", "--tiny",
                     "--axis", "phase_length=8,12", "--workers", "1",
                     "--out", out]) == 0
    capsys.readouterr()
    # Doctor the finished sweep back to "interrupted before p001".
    sweep_dir = next((tmp_path / "sweeps").iterdir())
    manifest = json.loads((sweep_dir / "sweep.json").read_text())
    manifest["status"] = "running"
    manifest["points"][1] = {"point_id": "p001",
                             "overrides": manifest["points"][1]["overrides"],
                             "run_id": None, "status": "pending"}
    (sweep_dir / "sweep.json").write_text(json.dumps(manifest))
    summary = (sweep_dir / "summary.jsonl")
    summary.write_text(summary.read_text().splitlines()[0] + "\n")

    # Bare --resume must find it even though the default family name
    # (t_sweep) does not match this ad hoc sweep...
    assert cli.main(["sweep", "run", "--resume", "--out", out]) == 0
    assert "already complete" in capsys.readouterr().out

    # ...and a named resume filters "latest" by that sweep name.
    assert cli.main(["sweep", "run", "t_sweep", "--resume",
                     "--out", out]) == 2
    assert "unfinished" in capsys.readouterr().err


def test_cli_seed_base_applies_without_seeds_count(tmp_path, capsys):
    out = str(tmp_path)
    assert cli.main(["sweep", "run", "timing_precision", "--tiny",
                     "--axis", "phase_length=8,12", "--seed-base", "7",
                     "--workers", "1", "--out", out]) == 0
    capsys.readouterr()
    manifest = json.loads(
        next((tmp_path / "sweeps").iterdir()).joinpath(
            "sweep.json").read_text())
    base_seeds = manifest["spec"]["base"]["seeds"]
    assert base_seeds == [7]  # shifted, same count as the spec default
    # The plain `run` command honors a bare --seed-base the same way.
    assert cli.main(["run", "offline_accuracy", "--tiny", "--seed-base",
                     "3", "--workers", "1", "--out", out]) == 0
    run_dir = next((tmp_path / "offline_accuracy").iterdir())
    run_manifest = json.loads((run_dir / "manifest.json").read_text())
    assert run_manifest["spec"]["seeds"] == [3]


def test_sweeps_subpackage_exported_from_repro():
    import repro

    assert repro.sweeps.SweepRunner is SweepRunner
    assert "sweeps" in repro.__all__


def test_cli_sweep_show_unknown_exits_2(tmp_path, capsys):
    assert cli.main(["sweep", "show", "nope", "--out", str(tmp_path)]) == 2
    assert "no sweep" in capsys.readouterr().err


def test_cli_sweep_help_epilog_mentions_sweep(capsys):
    with pytest.raises(SystemExit) as exc:
        cli.main(["--help"])
    assert exc.value.code == 0
    assert "python -m repro sweep run" in capsys.readouterr().out
