"""Unit tests for weight quantization (8-bit Loihi synapses)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (from_fixed_point, quant_step, quantization_snr_db,
                        quantize_weights, to_fixed_point)


class TestQuantStep:
    def test_8bit_step(self):
        assert quant_step(8, 1.27) == pytest.approx(0.01)

    def test_invalid(self):
        with pytest.raises(ValueError):
            quant_step(1, 1.0)
        with pytest.raises(ValueError):
            quant_step(8, 0.0)


class TestQuantizeWeights:
    def test_full_precision_passthrough(self):
        w = np.array([0.123456, -0.9])
        assert np.array_equal(quantize_weights(w, None, None), w)

    def test_clip_only(self):
        w = np.array([-5.0, 5.0])
        assert quantize_weights(w, None, 2.0).tolist() == [-2.0, 2.0]

    def test_deterministic_rounding(self):
        q = quantize_weights(np.array([0.26]), 3, 3.0)  # grid step 1.0
        assert q[0] == 0.0
        q = quantize_weights(np.array([0.74]), 3, 3.0)
        assert q[0] == 1.0

    def test_stochastic_rounding_unbiased(self):
        rng = np.random.default_rng(0)
        w = np.full(20000, 0.3)
        q = quantize_weights(w, 3, 3.0, rng=rng, stochastic=True)  # step 1.0
        assert set(np.unique(q)) <= {0.0, 1.0}
        assert abs(q.mean() - 0.3) < 0.02

    def test_stochastic_requires_rng(self):
        with pytest.raises(ValueError):
            quantize_weights(np.zeros(1), 8, 1.0, stochastic=True)

    def test_bits_require_clip(self):
        with pytest.raises(ValueError):
            quantize_weights(np.zeros(1), 8, None)

    @given(bits=st.integers(2, 12), clip=st.floats(0.1, 10),
           w=st.lists(st.floats(-20, 20), min_size=1, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_output_on_grid_within_range(self, bits, clip, w):
        q = quantize_weights(np.array(w), bits, clip)
        step = quant_step(bits, clip)
        levels = np.round(q / step)
        assert np.allclose(q, levels * step, atol=1e-9)
        assert (np.abs(q) <= clip + 1e-9).all()

    @given(bits=st.integers(2, 8), clip=st.floats(0.5, 4),
           w=st.lists(st.floats(-1, 1), min_size=1, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_fixed_point_roundtrip(self, bits, clip, w):
        w = np.array(w)
        mant = to_fixed_point(w, bits, clip)
        back = from_fixed_point(mant, bits, clip)
        assert np.max(np.abs(back - np.clip(w, -clip, clip))) <= quant_step(
            bits, clip) / 2 + 1e-9

    def test_int8_mantissa_range(self):
        mant = to_fixed_point(np.array([-100.0, 100.0]), 8, 1.0)
        assert mant.min() >= -127 and mant.max() <= 127


class TestSNR:
    def test_more_bits_higher_snr(self):
        rng = np.random.default_rng(1)
        w = rng.normal(0, 0.3, 1000)
        snrs = [quantization_snr_db(w, b, 1.0) for b in (4, 6, 8, 10)]
        assert snrs == sorted(snrs)

    def test_exactly_representable_is_infinite(self):
        w = np.array([0.0, 1.0, -1.0])
        assert quantization_snr_db(w, 8, 127.0 / 100) > 60  # near-exact grid
        assert quantization_snr_db(np.zeros(4), 8, 1.0) == float("-inf")
