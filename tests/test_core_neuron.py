"""Unit tests for the IF neuron primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IFLayer, SignedErrorLayer, quantize_rate, rate_activation


class TestIFLayer:
    def test_constant_drive_rate(self):
        """Constant drive r in [0,1] yields spike count floor-close to r*T."""
        layer = IFLayer(1)
        T = 100
        for _ in range(T):
            layer.step(np.array([0.3]))
        assert layer.spike_count[0] == 30

    def test_zero_drive_never_spikes(self):
        layer = IFLayer(4)
        for _ in range(50):
            spikes = layer.step(np.zeros(4))
            assert not spikes.any()
        assert (layer.spike_count == 0).all()

    def test_drive_of_one_spikes_every_step(self):
        layer = IFLayer(2)
        for _ in range(10):
            assert layer.step(np.ones(2)).all()
        assert (layer.spike_count == 10).all()

    def test_negative_drive_clipped_at_rest(self):
        """IF neurons do not integrate below the resting potential."""
        layer = IFLayer(1)
        for _ in range(100):
            layer.step(np.array([-1.0]))
        layer.step(np.array([1.0]))
        assert layer.spike_count[0] == 1  # fires immediately, no stored debt

    def test_soft_reset_preserves_residual(self):
        layer = IFLayer(1)
        layer.step(np.array([1.7]))
        assert layer.v[0] == pytest.approx(0.7)

    def test_hard_reset_discards_residual(self):
        layer = IFLayer(1, soft_reset=False)
        layer.step(np.array([1.7]))
        assert layer.v[0] == 0.0

    def test_refractory_blocks_integration(self):
        layer = IFLayer(1, refractory=2)
        counts = sum(layer.step(np.array([1.0]))[0] for _ in range(9))
        # fires at t=0 then every 3rd step: t=0,3,6 -> 3 spikes in 9 steps
        assert counts == 3

    def test_reset_counts_keeps_membrane(self):
        layer = IFLayer(1)
        layer.step(np.array([0.6]))
        layer.reset_counts()
        assert layer.spike_count[0] == 0
        assert layer.v[0] == pytest.approx(0.6)

    def test_shape_validation(self):
        layer = IFLayer(3)
        with pytest.raises(ValueError):
            layer.step(np.zeros(4))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            IFLayer(0)
        with pytest.raises(ValueError):
            IFLayer(1, threshold=0.0)
        with pytest.raises(ValueError):
            IFLayer(1, refractory=-1)

    @given(rate=st.floats(0.0, 1.0), T=st.integers(1, 128))
    @settings(max_examples=60, deadline=None)
    def test_count_matches_rate_activation(self, rate, T):
        """Spike count over T steps == closed-form floor(rate*T) (Eq. 2)."""
        layer = IFLayer(1)
        for _ in range(T):
            layer.step(np.array([rate]))
        expected = int(np.clip(np.floor(rate * T + 1e-9), 0, T))
        assert abs(int(layer.spike_count[0]) - expected) <= 1


class TestSignedErrorLayer:
    def test_positive_drive_fires_positive_channel(self):
        err = SignedErrorLayer(1)
        out = sum(err.step(np.array([0.5]))[0] for _ in range(10))
        assert out == 5
        assert err.signed_count[0] == 5

    def test_negative_drive_fires_negative_channel(self):
        err = SignedErrorLayer(1)
        out = sum(err.step(np.array([-0.5]))[0] for _ in range(10))
        assert out == -5
        assert err.signed_count[0] == -5

    def test_gate_blocks_output_and_counts(self):
        err = SignedErrorLayer(1)
        for _ in range(10):
            out = err.step(np.array([1.0]), gate=np.array([False]))
            assert out[0] == 0
        assert err.signed_count[0] == 0

    def test_disabled_phase_swallows_spikes(self):
        err = SignedErrorLayer(2)
        for _ in range(5):
            out = err.step(np.array([1.0, -1.0]), enabled=False)
            assert (out == 0).all()
        assert (err.signed_count == 0).all()


class TestRateActivation:
    def test_clip_range(self):
        out = rate_activation(np.array([-0.5, 0.0, 0.5, 1.5]), 10)
        assert out.tolist() == [0.0, 0.0, 0.5, 1.0]

    @given(p=st.floats(-2, 2), T=st.integers(1, 256))
    @settings(max_examples=80, deadline=None)
    def test_on_grid_and_bounded(self, p, T):
        r = rate_activation(np.array([p]), T)[0]
        assert 0.0 <= r <= 1.0
        assert abs(r * T - round(r * T)) < 1e-9

    @given(r=st.floats(0, 1), T=st.integers(1, 256))
    @settings(max_examples=60, deadline=None)
    def test_quantize_rate_idempotent(self, r, T):
        q1 = quantize_rate(np.array([r]), T)
        q2 = quantize_rate(q1, T)
        assert np.allclose(q1, q2)
