"""Unit tests for the sum-of-products microcode learning engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loihi import (ConnectionGroup, LearningEngine, emstdp_rules,
                         if_prototype, parse_rule, phase1_tag_rules)
from repro.loihi.compartment import CompartmentGroup


def make_conn(n_pre=3, n_post=2, w0=0):
    src = CompartmentGroup(n_pre, if_prototype(), name="src")
    dst = CompartmentGroup(n_post, if_prototype(), name="dst")
    w = np.full((n_pre, n_post), w0, dtype=np.int64)
    return ConnectionGroup(src, dst, w, weight_scale=64, plastic=True,
                           learning_rule="r")


class TestParser:
    def test_simple_rule(self):
        rule = parse_rule("dw = y1 * x1")
        assert rule.target == "w"
        assert len(rule.terms) == 1
        assert rule.terms[0].sign == 1
        assert [f.var for f in rule.terms[0].factors] == ["y1", "x1"]

    def test_scales_are_powers_of_two(self):
        rule = parse_rule("dw = 2^-3 * y1 * x1 - 2^2 * t * x1")
        assert rule.terms[0].scale_exp == -3
        assert rule.terms[1].scale_exp == 2
        assert rule.terms[1].sign == -1

    def test_negative_exponent_not_split(self):
        rule = parse_rule("dw = 2^-8 * y1 - 2^-9 * t")
        assert len(rule.terms) == 2

    def test_paren_constant_factor(self):
        rule = parse_rule("dt = (y1 - 2) * x1")
        f = rule.terms[0].factors[0]
        assert f.var == "y1" and f.const == -2

    def test_tag_rule(self):
        rule = parse_rule("dt = y1")
        assert rule.target == "t"

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_rule("dw = q9 * x1")
        with pytest.raises(ValueError):
            parse_rule("w = x1")
        with pytest.raises(ValueError):
            parse_rule("dw x1")
        with pytest.raises(ValueError):
            parse_rule("dw = ")
        with pytest.raises(ValueError):
            parse_rule("dw = (x1 + 1")

    def test_combined_scale_factors(self):
        rule = parse_rule("dw = 2^-2 * 2^-3 * x1")
        assert rule.terms[0].scale_exp == -5


class TestEngine:
    def test_tag_accumulates_post_trace(self):
        conn = make_conn()
        conn.post_trace.values[:] = [5, 7]
        eng = LearningEngine(stochastic_rounding=False)
        eng.apply(parse_rule("dt = y1"), conn)
        assert conn.tag[0].tolist() == [5, 7]

    def test_emstdp_rule_matches_eq7(self):
        """dt=y1 at T then [dt=y1, dw] at 2T realizes eta*(hhat-h)*pre."""
        conn = make_conn(n_pre=2, n_post=2)
        eng = LearningEngine(stochastic_rounding=False)
        # phase 1: h = [10, 20]
        conn.post_trace.values[:] = [10, 20]
        eng.apply_all(phase1_tag_rules(), conn)
        conn.reset_traces()
        # phase 2: hhat = [30, 10], pre = [16, 8]
        conn.post_trace.values[:] = [30, 10]
        conn.pre_trace.values[:] = [16, 8]
        eng.apply_all(emstdp_rules(-4), conn)
        # dw = 2^-4 * (hhat - h) (x) pre = (1/16) * [20, -10] (x) [16, 8]
        expected = np.round(np.outer([16, 8], [20, -10]) / 16.0)
        assert np.array_equal(conn.weight_mant, expected.astype(int))

    def test_weight_clamped_to_int8(self):
        conn = make_conn(w0=120)
        conn.post_trace.values[:] = 64
        conn.pre_trace.values[:] = 64
        eng = LearningEngine(stochastic_rounding=False)
        eng.apply(parse_rule("dw = y1 * x1"), conn)
        assert (conn.weight_mant == 127).all()

    def test_tag_clamped(self):
        conn = make_conn()
        eng = LearningEngine(stochastic_rounding=False)
        conn.post_trace.values[:] = 127
        for _ in range(5):
            eng.apply(parse_rule("dt = y1 * 4"), conn)
        assert (conn.tag <= 255).all()

    def test_weight_decay_term(self):
        """Eq. (9) admits w itself as a factor: weight decay is legal."""
        conn = make_conn(w0=64)
        eng = LearningEngine(stochastic_rounding=False)
        eng.apply(parse_rule("dw = -2^-2 * w"), conn)
        assert (conn.weight_mant == 48).all()

    def test_non_plastic_rejected(self):
        src = CompartmentGroup(1, if_prototype(), name="s")
        dst = CompartmentGroup(1, if_prototype(), name="d")
        conn = ConnectionGroup(src, dst, np.zeros((1, 1)), 64, plastic=False)
        eng = LearningEngine()
        with pytest.raises(ValueError):
            eng.apply(parse_rule("dw = x1"), conn)

    def test_stochastic_rounding_unbiased(self):
        rng = np.random.default_rng(0)
        eng = LearningEngine(rng=rng, stochastic_rounding=True)
        conn = make_conn(n_pre=100, n_post=100)
        conn.post_trace.values[:] = 1
        conn.pre_trace.values[:] = 1
        eng.apply(parse_rule("dw = 2^-2 * y1 * x1"), conn)  # dz = 0.25
        assert abs(conn.weight_mant.mean() - 0.25) < 0.02

    @given(h=st.integers(0, 64), hhat=st.integers(0, 64),
           pre=st.integers(0, 64))
    @settings(max_examples=40, deadline=None)
    def test_loihi_form_equals_reference_form(self, h, hhat, pre):
        """2*eta*hhat*pre - eta*(h+hhat)*pre == eta*(hhat-h)*pre, on chip."""
        conn = make_conn(n_pre=1, n_post=1)
        eng = LearningEngine(stochastic_rounding=False)
        conn.post_trace.values[:] = h
        eng.apply_all(phase1_tag_rules(), conn)
        conn.reset_traces()
        conn.post_trace.values[:] = hhat
        conn.pre_trace.values[:] = pre
        eng.apply_all(emstdp_rules(-6), conn)
        expected = int(np.round((hhat - h) * pre / 64.0))
        assert abs(int(conn.weight_mant[0, 0]) - expected) <= 1
