"""Equivalence suite promised by the ``repro.core.network`` docstring.

Two families of guarantees:

1. **rate vs spike** — the closed-form ``rate`` backend is a steady-state
   solution of the explicit ``spike`` simulation, so the two must agree up
   to limit-cycle transients (a few spikes out of ``T``).
2. **batched vs sequential** — the batched engine must be *exactly* the
   per-sample reference: ``forward_rates_batch`` row-for-row,
   ``predict_batch`` decision-for-decision, and ``fit_batch`` in online
   mode weight-for-weight (within 1e-9 over a 64-sample run, the
   acceptance gate).
"""

import numpy as np
import pytest

from repro.core import (EMSTDPConfig, EMSTDPNetwork, full_precision_config,
                        loihi_default_config)

from conftest import make_blobs


def small_cfg(**kw):
    base = dict(seed=1, phase_length=32)
    base.update(kw)
    return EMSTDPConfig(**base)


def clone_pair(dims, cfg):
    """Two networks with identical weights/feedback/rng state."""
    a = EMSTDPNetwork(dims, cfg)
    b = EMSTDPNetwork(dims, cfg)
    return a, b


# ----------------------------------------------------------------------
# rate backend vs spike backend
# ----------------------------------------------------------------------

class TestRateVsSpike:
    def test_phase1_rates_agree(self):
        """Closed-form phase-1 rates track the explicit IF simulation."""
        T = 64
        a = EMSTDPNetwork((8, 12, 3), small_cfg(phase_length=T))
        b = EMSTDPNetwork((8, 12, 3),
                          small_cfg(phase_length=T, dynamics="spike"))
        b.load_state_dict(a.state_dict())
        rng = np.random.default_rng(3)
        for _ in range(8):
            x = rng.uniform(0, 1, 8)
            # transients cost at most a few spikes out of T per neuron
            assert np.max(np.abs(a.output_rates(x) - b.output_rates(x))) \
                <= 8.0 / T

    @pytest.mark.parametrize("feedback", ["fa", "dfa"])
    def test_phase2_pulls_toward_target_in_both_backends(self, feedback):
        """Both backends' phase 2 raises the target class, not its rivals."""
        kw = dict(phase_length=64, feedback=feedback)
        a = EMSTDPNetwork((8, 12, 3), small_cfg(**kw))
        b = EMSTDPNetwork((8, 12, 3), small_cfg(dynamics="spike", **kw))
        b.load_state_dict(a.state_dict())
        x = np.full(8, 0.6)
        for net, two_phase in ((a, a._rate_two_phase), (b, b._spike_two_phase)):
            h, h_hat = two_phase(x, 0)
            assert h_hat[-1][0] >= h[-1][0] - 1e-9
            assert h_hat[-1][1] <= h[-1][1] + 2.0 / 64
            assert h_hat[-1][2] <= h[-1][2] + 2.0 / 64

    def test_both_backends_learn_the_same_task(self, blob_task):
        """Same task, same config: both backends end well above chance.

        The spike backend's limit-cycle noise makes it a slower learner
        than the closed-form rate solution, so this bounds the gap loosely
        rather than demanding equal accuracy.
        """
        xs, ys, tx, ty = blob_task
        accs = {}
        for dynamics in ("rate", "spike"):
            net = EMSTDPNetwork((8, 16, 3), small_cfg(dynamics=dynamics))
            net.train_stream(xs, ys)
            accs[dynamics] = net.evaluate(tx[:100], ty[:100])
        assert accs["rate"] >= 0.55 and accs["spike"] >= 0.55
        assert abs(accs["rate"] - accs["spike"]) <= 0.35


# ----------------------------------------------------------------------
# batched engine vs sequential reference
# ----------------------------------------------------------------------

class TestBatchedVsSequential:
    @pytest.mark.parametrize("dynamics", ["rate", "spike"])
    def test_forward_parity_rowwise(self, dynamics):
        cfg = small_cfg(phase_length=16, dynamics=dynamics)
        net = EMSTDPNetwork((8, 12, 3), cfg)
        X = np.random.default_rng(0).uniform(0, 1, (10, 8))
        batched = net.output_rates_batch(X)
        for b, x in enumerate(X):
            assert np.allclose(batched[b], net.output_rates(x), atol=1e-12)

    @pytest.mark.parametrize("dynamics", ["rate", "spike"])
    def test_predict_batch_identical(self, blob_task, dynamics):
        xs, ys, tx, ty = blob_task
        cfg = small_cfg(phase_length=16, dynamics=dynamics)
        net = EMSTDPNetwork((8, 16, 3), cfg)
        net.fit_batch(tx[:8], ty[:8], update_mode="minibatch")
        sub = tx[:40]
        assert np.array_equal(net.predict_batch(sub),
                              [net.predict(x) for x in sub])
        assert net.evaluate_batch(sub, ty[:40]) == net.evaluate(sub, ty[:40])

    def test_fit_batch_online_reproduces_sequential_64_samples(self):
        """Acceptance gate: 64-sample online run, weights within 1e-9."""
        xs, ys = make_blobs(8, 3, 64, seed=5)
        cfg = full_precision_config(seed=1)  # paper T = 64
        a, b = clone_pair((8, 16, 3), cfg)
        a.fit_batch(xs, ys, update_mode="online")
        for x, y in zip(xs, ys):
            b.train_sample(x, int(y))
        assert a.samples_seen == b.samples_seen == 64
        for wa, wb in zip(a.weights, b.weights):
            assert np.max(np.abs(wa - wb)) < 1e-9

    def test_fit_batch_online_exact_with_quantized_weights(self):
        """Same RNG consumption order => bit-identical stochastic rounding."""
        xs, ys = make_blobs(8, 3, 32, seed=5)
        cfg = loihi_default_config(seed=1, phase_length=32)
        a, b = clone_pair((8, 16, 3), cfg)
        a.fit_batch(xs, ys, update_mode="online")
        for x, y in zip(xs, ys):
            b.train_sample(x, int(y))
        for wa, wb in zip(a.weights, b.weights):
            assert np.array_equal(wa, wb)

    @pytest.mark.parametrize("feedback", ["fa", "dfa"])
    def test_spike_online_parity(self, feedback):
        xs, ys = make_blobs(8, 3, 24, seed=5)
        cfg = small_cfg(phase_length=16, dynamics="spike", feedback=feedback)
        a, b = clone_pair((8, 12, 3), cfg)
        a.fit_batch(xs, ys, update_mode="online")
        for x, y in zip(xs, ys):
            b.train_sample(x, int(y))
        for wa, wb in zip(a.weights, b.weights):
            assert np.max(np.abs(wa - wb)) < 1e-9

    def test_minibatch_equals_frozen_weight_mean_update(self):
        """Minibatch mode == mean of per-sample Eq. (7) deltas at frozen W."""
        xs, ys = make_blobs(8, 3, 16, seed=5)
        cfg = small_cfg(stochastic_rounding=False)
        a, b = clone_pair((8, 16, 3), cfg)
        a.fit_batch(xs, ys, update_mode="minibatch")
        deltas = [np.zeros_like(w) for w in b.weights]
        for x, y in zip(xs, ys):
            h, h_hat = b._rate_two_phase(x, int(y))
            for i in range(b.n_layers):
                deltas[i] += np.outer(b._augment(h[i]), h_hat[i + 1] - h[i + 1])
        for i, w in enumerate(b.weights):
            ref = b.updater.project(w + b.updater.eta * deltas[i] / len(xs))
            assert np.max(np.abs(ref - a.weights[i])) < 1e-9
