"""Unit tests for CUBA compartments and multi-compartment behaviours."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loihi import CompartmentGroup, CompartmentPrototype, if_prototype


class TestPrototype:
    def test_vth_mantissa_shift(self):
        proto = CompartmentPrototype(vth_mant=256)
        assert proto.vth == 256 << 6

    def test_validation(self):
        with pytest.raises(ValueError):
            CompartmentPrototype(vth_mant=0)
        with pytest.raises(ValueError):
            CompartmentPrototype(decay_u=5000)
        with pytest.raises(ValueError):
            CompartmentPrototype(decay_v=-1)
        with pytest.raises(ValueError):
            CompartmentPrototype(refractory=-1)

    def test_if_prototype_is_non_leaky(self):
        proto = if_prototype()
        assert proto.decay_v == 0
        assert proto.decay_u == 4096


class TestIFDynamics:
    def test_constant_bias_rate(self):
        proto = if_prototype(vth_mant=256)
        g = CompartmentGroup(4, proto)
        g.set_bias(np.full(4, proto.vth // 2))
        for _ in range(64):
            g.step(np.zeros(4, dtype=np.int64))
        assert (g.spike_count == 32).all()

    def test_full_bias_fires_every_step(self):
        proto = if_prototype()
        g = CompartmentGroup(2, proto)
        g.set_bias(np.full(2, proto.vth))
        for _ in range(10):
            assert g.step(np.zeros(2, dtype=np.int64)).all()

    def test_synaptic_input_integration(self):
        proto = if_prototype()
        g = CompartmentGroup(1, proto)
        for _ in range(4):
            g.step(np.array([proto.vth // 4]))
        assert g.spike_count[0] == 1

    def test_current_decay_instant_for_if(self):
        proto = if_prototype()
        g = CompartmentGroup(1, proto)
        g.step(np.array([proto.vth // 2]))
        g.step(np.array([0]))  # current must not persist
        assert g.v[0] == proto.vth // 2

    def test_leaky_membrane(self):
        proto = CompartmentPrototype(vth_mant=256, decay_u=4096, decay_v=2048)
        g = CompartmentGroup(1, proto)
        g.step(np.array([1000]))
        v1 = g.v[0]
        g.step(np.array([0]))
        assert g.v[0] == v1 // 2

    def test_soft_reset_keeps_residual(self):
        proto = if_prototype()
        g = CompartmentGroup(1, proto)
        g.step(np.array([proto.vth + 100]))
        assert g.v[0] == 100

    def test_hard_reset(self):
        proto = if_prototype(soft_reset=False)
        g = CompartmentGroup(1, proto)
        g.step(np.array([proto.vth + 100]))
        assert g.v[0] == 0

    def test_signed_membrane_vs_floor(self):
        signed = CompartmentGroup(1, if_prototype(floor_at_zero=False))
        floored = CompartmentGroup(1, if_prototype(floor_at_zero=True))
        for g in (signed, floored):
            g.step(np.array([-5000]))
        assert signed.v[0] == -5000
        assert floored.v[0] == 0

    def test_disabled_group_holds_state(self):
        proto = if_prototype()
        g = CompartmentGroup(1, proto)
        g.step(np.array([proto.vth // 2]))
        g.enabled = False
        for _ in range(5):
            spikes = g.step(np.array([proto.vth]))
            assert not spikes.any()
        assert g.v[0] == proto.vth // 2

    def test_mask_silences_compartments(self):
        proto = if_prototype()
        g = CompartmentGroup(3, proto)
        g.mask = np.array([True, False, True])
        g.set_bias(np.full(3, proto.vth))
        g.step(np.zeros(3, dtype=np.int64))
        assert g.spikes.tolist() == [True, False, True]

    @given(rate=st.integers(0, 64))
    @settings(max_examples=30, deadline=None)
    def test_bias_rate_proportionality(self, rate):
        """Spike count over T steps is proportional to the bias (Eq. in
        Section III-D: h_in = floor(i*T / theta))."""
        proto = if_prototype(vth_mant=256)
        g = CompartmentGroup(1, proto)
        T = 64
        g.set_bias(np.array([proto.vth * rate // T]))
        for _ in range(T):
            g.step(np.zeros(1, dtype=np.int64))
        expected = (proto.vth * rate // T) * T // proto.vth
        assert abs(int(g.spike_count[0]) - expected) <= 1


class TestMultiCompartment:
    def test_and_gate_blocks_until_aux_active(self):
        proto = if_prototype()
        aux = CompartmentGroup(1, CompartmentPrototype(
            vth_mant=256, non_spiking=True, decay_u=4096, decay_v=0))
        soma = CompartmentGroup(1, proto)
        soma.gate_group = aux
        soma.set_bias(np.array([proto.vth]))
        soma.step(np.zeros(1, dtype=np.int64))
        assert not soma.spikes.any()  # gate closed
        aux.step(np.array([100]))     # forward partner activity
        soma.step(np.zeros(1, dtype=np.int64))
        assert soma.spikes.all()      # gate open

    def test_or_merge_adds_spikes(self):
        proto = if_prototype()
        dend = CompartmentGroup(1, proto)
        soma = CompartmentGroup(1, proto)
        soma.merge_group = dend
        dend.step(np.array([proto.vth]))   # dendrite fires
        soma.step(np.zeros(1, dtype=np.int64))  # soma silent on its own
        assert soma.spikes.all()
        assert soma.spike_count[0] == 1

    def test_merge_respects_mask(self):
        proto = if_prototype()
        dend = CompartmentGroup(1, proto)
        soma = CompartmentGroup(1, proto)
        soma.merge_group = dend
        soma.mask = np.array([False])
        dend.step(np.array([proto.vth]))
        soma.step(np.zeros(1, dtype=np.int64))
        assert not soma.spikes.any()

    def test_aux_active_memory_survives_membrane_reset_of_soma(self):
        proto = if_prototype()
        aux = CompartmentGroup(1, CompartmentPrototype(
            vth_mant=256, non_spiking=True))
        aux.step(np.array([500]))
        assert aux.active().all()
        # phase-boundary reset clears soma but aux holds its charge
        assert aux.v[0] == 500


class TestStateManagement:
    def test_reset_state_keeps_counts(self):
        g = CompartmentGroup(1, if_prototype())
        g.set_bias(np.array([g.proto.vth]))
        for _ in range(5):
            g.step(np.zeros(1, dtype=np.int64))
        g.reset_state()
        assert g.v[0] == 0
        assert g.spike_count[0] == 5

    def test_reset_membrane_keeps_spike_flags(self):
        g = CompartmentGroup(1, if_prototype())
        g.set_bias(np.array([g.proto.vth]))
        g.step(np.zeros(1, dtype=np.int64))
        g.reset_membrane()
        assert g.v[0] == 0
        assert g.spikes.all()  # axonal output of last step not rewritten

    def test_bias_shape_check(self):
        g = CompartmentGroup(2, if_prototype())
        with pytest.raises(ValueError):
            g.set_bias(np.zeros(3))

    def test_min_size(self):
        with pytest.raises(ValueError):
            CompartmentGroup(0, if_prototype())
