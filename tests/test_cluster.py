"""The multi-process serving tier: routing, supervision, swap, drain.

These tests spawn real worker processes (``multiprocessing`` spawn
context), so they cover the actual failure modes the supervisor exists
for: SIGKILL mid-service (crash), SIGSTOP (wedged process whose pipe
stays open but whose heartbeats stop), and death during a rolling swap.
A module-scoped cluster keeps the spawn cost paid once; tests that kill
workers wait for recovery before handing the cluster to the next test.
"""

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.cluster import (ClusterError, ClusterService, Supervisor,
                           WorkerSpec, backoff_delay)
from repro.core import EMSTDPNetwork, full_precision_config
from repro.data.synth import make_blobs
from repro.persist import save_checkpoint
from repro.serve import (InferenceHTTPServer, Overloaded, http_predict_fn,
                         run_load)

DIMS = (12, 10, 4)


def _wait(predicate, timeout_s: float, interval_s: float = 0.02) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory):
    """Two checkpoint stems of the same model: v1 and a further-trained v2."""
    root = tmp_path_factory.mktemp("cluster-ckpt")
    xs, ys = make_blobs(DIMS[0], DIMS[-1], 40, seed=3)
    net = EMSTDPNetwork(DIMS, full_precision_config(seed=1, phase_length=8))
    net.train_stream(xs[:20], ys[:20])
    stem_a = root / "model_a"
    save_checkpoint(net, stem_a)
    net.train_stream(xs[20:30], ys[20:30])
    stem_b = root / "model_b"
    save_checkpoint(net, stem_b)
    return {"a": str(stem_a), "b": str(stem_b), "xs": xs}


@pytest.fixture(scope="module")
def cluster(checkpoints):
    """A live 2-worker cluster + front end + HTTP server, shared per module.

    Tests that kill workers must leave the cluster recovered (2 live
    workers) before returning it to the pool.
    """
    spec = WorkerSpec(source=checkpoints["a"], heartbeat_s=0.1)
    # heartbeat_timeout must tolerate scheduler starvation: on a 1-core
    # CI machine a busy worker's (or the parent reader's) heartbeat
    # path can silently stall for seconds under the load tests here,
    # and a trigger-happy timeout would "wedge-kill" healthy workers
    # mid-test.  Wedge *detection* gets its own isolated, idle cluster
    # with a tight timeout in its test below.
    supervisor = Supervisor(spec, n_workers=2, heartbeat_timeout_s=30.0,
                            backoff_base_s=0.1, backoff_cap_s=0.5)
    supervisor.start(wait=True)
    service = ClusterService(supervisor, max_inflight_per_worker=16)
    server = InferenceHTTPServer(service, port=0).start()
    yield {"supervisor": supervisor, "service": service, "server": server,
           "xs": checkpoints["xs"], "checkpoints": checkpoints}
    server.stop()
    supervisor.stop()


# ---------------------------------------------------------------------------
# backoff policy (pure function)
# ---------------------------------------------------------------------------

def test_backoff_doubles_per_failure_and_caps():
    assert backoff_delay(0, 0.5, 8.0) == 0.0
    assert backoff_delay(1, 0.5, 8.0) == 0.5
    assert backoff_delay(2, 0.5, 8.0) == 1.0
    assert backoff_delay(3, 0.5, 8.0) == 2.0
    assert backoff_delay(10, 0.5, 8.0) == 8.0  # capped
    assert backoff_delay(1000, 0.5, 8.0) == 8.0  # no overflow blowup


# ---------------------------------------------------------------------------
# routing + data plane
# ---------------------------------------------------------------------------

def test_predict_routes_to_workers_and_stamps_attribution(cluster):
    service, xs = cluster["service"], cluster["xs"]
    response = service.predict(xs[0])
    assert response["model"] == "model_a"
    assert response["prediction"] in range(DIMS[-1])
    worker_pids = {w["pid"] for w in cluster["supervisor"].describe()}
    assert response["worker"]["pid"] in worker_pids
    assert response["worker"]["pid"] != os.getpid()  # crossed a process

    many = service.predict_many(xs[:6])
    assert len(many) == 6
    # One list request stays on one worker so its items micro-batch there.
    assert len({item["worker"]["slot"] for item in many}) == 1


def test_http_round_trip_and_load_spread_over_workers(cluster):
    url = cluster["server"].url
    report = run_load(http_predict_fn(url), cluster["xs"][:10],
                      n_requests=60, n_clients=6)
    assert report.errors == 0 and report.rejected == 0
    assert report.requests == 60
    metrics = cluster["service"].metrics()
    per_worker = [w for w in metrics["workers"]
                  if w.get("metrics", {}).get("requests")]
    # Least-loaded routing under concurrency uses both workers.
    assert len(per_worker) == 2


def test_healthz_reports_quorum_and_metrics_aggregate(cluster):
    service = cluster["service"]
    health = service.healthz()
    assert health["status"] == "ok"
    assert health["workers"] == 2 and health["quorum"] == 2
    assert health["pid"] == os.getpid()

    metrics = cluster["service"].metrics()
    assert metrics["pid"] == os.getpid()
    assert metrics["supervisor"]["live_workers"] == 2
    assert "rejected_503" in metrics and "admission" in metrics
    for worker in metrics["workers"]:
        assert {"slot", "pid", "state", "restarts"} <= set(worker)
        if "metrics" in worker:
            assert "latency_ms" in worker["metrics"]  # per-worker p50/p95/p99
            assert worker["metrics"]["pid"] == worker["pid"]


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class _FullHandle:
    slot, pid, inflight = 0, 4242, 99

    def acquire(self, bound):
        return False


class _FullSupervisor:
    """A supervisor whose single worker is permanently at capacity."""

    n_workers, quorum = 1, 1

    def __init__(self):
        self.started_at = time.monotonic()
        self.spec = WorkerSpec(source="stub")

    def live_handles(self):
        return [_FullHandle()]

    def live_count(self):
        return 1

    def restarts_total(self):
        return 0

    def describe(self):
        return []


def test_admission_control_refuses_with_retry_after():
    service = ClusterService(_FullSupervisor(), max_inflight_per_worker=1)
    with pytest.raises(Overloaded) as excinfo:
        service.predict(np.zeros(DIMS[0]))
    assert excinfo.value.retry_after_s > 0
    assert service.metrics()["rejected_503"] == 1


def test_overload_maps_to_http_503_with_retry_after():
    server = InferenceHTTPServer(
        ClusterService(_FullSupervisor(), max_inflight_per_worker=1),
        port=0).start()
    try:
        body = json.dumps({"input": [0.0] * DIMS[0]}).encode()
        request = urllib.request.Request(
            server.url + "/predict", data=body,
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 503
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        excinfo.value.read()
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# supervision: crash, wedge, no silent drops
# ---------------------------------------------------------------------------

def test_killed_worker_restarts_within_backoff_budget(cluster):
    supervisor, service = cluster["supervisor"], cluster["service"]
    victim_pid = supervisor.describe()[0]["pid"]
    restarts_before = supervisor.restarts_total()
    os.kill(victim_pid, signal.SIGKILL)

    assert _wait(lambda: supervisor.live_count() < 2, timeout_s=5.0), \
        "worker death never detected"
    assert service.healthz()["status"] == "degraded"  # quorum=2, live=1

    # Budget: detection + backoff (0.1 s) + spawn + checkpoint self-load.
    assert _wait(lambda: supervisor.live_count() == 2, timeout_s=20.0), \
        "worker not restarted within the backoff budget"
    assert supervisor.restarts_total() == restarts_before + 1
    assert service.healthz()["status"] == "ok"
    replacement = service.predict(cluster["xs"][1], use_cache=False)
    assert replacement["worker"]["pid"] != victim_pid


def test_wedged_worker_is_detected_by_heartbeat_and_replaced(checkpoints):
    # Dedicated idle cluster: with no load running, a missing heartbeat
    # means wedged, so the timeout can be tight without false positives.
    spec = WorkerSpec(source=checkpoints["a"], heartbeat_s=0.1)
    with Supervisor(spec, n_workers=2, heartbeat_timeout_s=1.2,
                    backoff_base_s=0.1, backoff_cap_s=0.5) as supervisor:
        supervisor.start(wait=True)
        victim_pid = supervisor.describe()[1]["pid"]
        os.kill(victim_pid, signal.SIGSTOP)  # alive, pipe open, hb stops
        try:
            assert _wait(lambda: supervisor.live_count() < 2,
                         timeout_s=10.0), \
                "wedged worker never detected (heartbeat timeout 1.2 s)"
        finally:
            # The supervisor SIGKILLs it (SIGTERM cannot reach a stopped
            # process); SIGCONT here is only a safety net for the assert
            # path.
            try:
                os.kill(victim_pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
        assert _wait(lambda: supervisor.live_count() == 2, timeout_s=20.0)
        assert supervisor.restarts_total() == 1


def test_no_accepted_request_is_silently_dropped_on_worker_death(cluster):
    supervisor = cluster["supervisor"]
    url = cluster["server"].url
    n_requests = 80
    restarts_before = supervisor.restarts_total()
    report_box = {}

    def load():
        report_box["report"] = run_load(
            http_predict_fn(url, timeout=30.0), cluster["xs"][:10],
            n_requests=n_requests, n_clients=8)

    thread = threading.Thread(target=load, daemon=True)
    thread.start()
    time.sleep(0.15)  # let requests get in flight
    os.kill(supervisor.describe()[0]["pid"], signal.SIGKILL)
    thread.join(timeout=60)
    assert not thread.is_alive(), "load run hung: a request was dropped"

    report = report_box["report"]
    # Every accepted request was answered (success, 5xx, or 503) — the
    # accounting adds up; none vanished into a dead worker's pipe.
    assert report.requests == n_requests
    assert report.requests - report.errors - report.rejected > 0
    # Wait on the restart *counter*, not live_count(): the latter is
    # vacuously 2 in the window before the supervisor notices the death.
    assert _wait(lambda: supervisor.restarts_total() > restarts_before
                 and supervisor.live_count() == 2, timeout_s=20.0)


# ---------------------------------------------------------------------------
# rolling hot-swap
# ---------------------------------------------------------------------------

def test_rolling_swap_serves_continuously_and_bumps_version(cluster):
    service, supervisor = cluster["service"], cluster["supervisor"]
    url = cluster["server"].url
    before = service.predict(cluster["xs"][0], use_cache=False)
    report_box = {}

    def load():
        report_box["report"] = run_load(
            http_predict_fn(url), cluster["xs"][:10],
            n_requests=120, n_clients=6)

    thread = threading.Thread(target=load, daemon=True)
    thread.start()
    time.sleep(0.05)
    body = json.dumps(
        {"source": cluster["checkpoints"]["b"]}).encode()
    request = urllib.request.Request(
        url + "/admin/swap", data=body,
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=120) as response:
        result = json.loads(response.read())
    thread.join(timeout=120)
    assert not thread.is_alive()

    assert sorted(result["swapped"] + result["skipped"]) == [0, 1]
    assert result["failed"] == []
    report = report_box["report"]
    # Zero hard errors: the tier never refused a request *by absence* —
    # only admission-control 503s (counted as rejected) are permitted.
    assert report.errors == 0
    assert report.requests == 120

    after = service.predict(cluster["xs"][0], use_cache=False)
    assert after["model"] == before["model"]
    assert after["version"] != before["version"]
    # Every live worker now serves the new version.
    for worker in service.metrics()["workers"]:
        if worker.get("metrics"):
            assert worker["metrics"]["active_versions"] == {
                "model_a": after["version"]}
    # Future restarts self-load the new source.
    assert supervisor.spec.source == cluster["checkpoints"]["b"]


# ---------------------------------------------------------------------------
# drain + startup failure
# ---------------------------------------------------------------------------

def test_drain_answers_inflight_and_reports_drained(checkpoints):
    spec = WorkerSpec(source=checkpoints["a"], heartbeat_s=0.1,
                      max_wait_ms=50.0)
    with Supervisor(spec, n_workers=1, backoff_base_s=0.1) as supervisor:
        supervisor.start(wait=True)
        service = ClusterService(supervisor, max_inflight_per_worker=16)
        futures = []
        pool = [threading.Thread(
            target=lambda i=i: futures.append(
                service.predict(checkpoints["xs"][i], use_cache=False)),
            daemon=True) for i in range(4)]
        for t in pool:
            t.start()
        # All four must be *accepted* (in flight on the worker) before the
        # drain starts — that is the property under test: accepted
        # requests get answered, not dropped.
        assert _wait(lambda: service.pending() == 4, timeout_s=10.0)
        assert service.shutdown(timeout=30.0) is True
        for t in pool:
            t.join(timeout=30)
        assert len(futures) == 4  # queued requests answered, not dropped
        assert supervisor.live_count() == 0


def test_bad_checkpoint_fails_startup_with_worker_error(tmp_path):
    spec = WorkerSpec(source=str(tmp_path / "nope"), heartbeat_s=0.1)
    supervisor = Supervisor(spec, n_workers=1, start_timeout_s=60.0)
    with pytest.raises(ClusterError, match="worker 0 failed to start"):
        supervisor.start(wait=True)
    assert supervisor.live_count() == 0


def test_supervisor_rejects_bad_quorum(checkpoints):
    spec = WorkerSpec(source=checkpoints["a"])
    with pytest.raises(ValueError):
        Supervisor(spec, n_workers=2, quorum=3)
    with pytest.raises(ValueError):
        Supervisor(spec, n_workers=0)
