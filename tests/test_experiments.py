"""The experiment orchestration subsystem: runner, store, resume, CLI.

All runs here use CI-tiny specs, usually trimmed further (single backend,
one or two seeds) so the whole module stays fast.
"""

import json

import pytest

import repro
from repro.core import EMSTDPNetwork, full_precision_config
from repro.experiments import (ExperimentSpec, Runner, RunStore, SCENARIOS,
                               get_scenario)
from repro.persist import load_checkpoint
from repro import cli


def tiny_spec(name="offline_accuracy", **overrides):
    return get_scenario(name).build_spec(tiny=True).replace(**overrides)


FAST = dict(backends=("backprop",), n_train=40, n_test=20)


# ---------------------------------------------------------------------------
# spec
# ---------------------------------------------------------------------------

def test_spec_json_round_trip():
    spec = tiny_spec(seeds=(3, 4), params={"chip_train_limit": 5})
    again = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec


def test_spec_rejects_bad_seeds():
    with pytest.raises(ValueError, match="duplicate"):
        tiny_spec(seeds=(1, 1))
    with pytest.raises(ValueError, match="at least one seed"):
        tiny_spec(seeds=())


def test_spec_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown spec fields"):
        ExperimentSpec.from_dict({"name": "x", "bogus": 1})


def test_builtin_scenarios_registered():
    assert {"offline_accuracy", "incremental_iol",
            "energy_tradeoff"} <= set(SCENARIOS)


# ---------------------------------------------------------------------------
# runner + store
# ---------------------------------------------------------------------------

def test_run_store_layout_and_records(tmp_path):
    spec = tiny_spec(seeds=(0, 1), **FAST)
    result = Runner(out_root=tmp_path, max_workers=1).run(spec)

    assert result.status == "complete"
    run_dir = result.run_dir
    assert (run_dir / "manifest.json").is_file()
    assert (run_dir / "records.jsonl").is_file()
    assert (run_dir / "checkpoints").is_dir()
    assert run_dir.parent.name == "offline_accuracy"

    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["status"] == "complete"
    assert manifest["repro_version"] == repro.__version__
    assert ExperimentSpec.from_dict(manifest["spec"]) == spec

    records = result.ok_records()
    assert [r["seed"] for r in records] == [0, 1]
    for rec in records:
        assert rec["repro_version"] == repro.__version__
        assert rec["experiment"] == "offline_accuracy"
        assert set(rec["metrics"]) == {"backprop"}
        assert 0.0 <= rec["metrics"]["backprop"]["test_acc"] <= 1.0
        assert rec["duration_s"] >= 0


def test_runner_saves_loadable_checkpoints(tmp_path):
    spec = tiny_spec(seeds=(0,), backends=("rate",), n_train=40, n_test=20)
    result = Runner(out_root=tmp_path, max_workers=1).run(spec)
    rec = result.ok_records()[0]
    stem = result.run_dir / "checkpoints" / rec["checkpoints"]["rate"]
    state, manifest = load_checkpoint(stem)
    assert manifest["model_class"] == "EMSTDPNetwork"
    assert manifest["meta"]["seed"] == 0
    net = EMSTDPNetwork(tuple(state["dims"]),
                        full_precision_config(phase_length=16))
    load_checkpoint(stem, model=net)  # applies without error


def test_resume_skips_finished_seeds(tmp_path):
    spec = tiny_spec(seeds=(0, 1), **FAST)
    runner = Runner(out_root=tmp_path, max_workers=1)
    result = runner.run(spec)
    run_dir = result.run_dir

    # Simulate a kill after seed 0: drop seed 1's record, mark running.
    records_path = run_dir / "records.jsonl"
    lines = records_path.read_text().splitlines()
    kept = [ln for ln in lines if json.loads(ln)["seed"] == 0]
    records_path.write_text("\n".join(kept) + "\n")
    manifest_path = run_dir / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["status"] = "running"
    manifest_path.write_text(json.dumps(manifest))

    resumed = runner.run(resume=result.run_id)
    assert resumed.status == "complete"
    assert resumed.skipped_seeds == [0]
    final = records_path.read_text().splitlines()
    assert len(final) == 2
    assert final[0] == kept[0]  # finished seed's record untouched
    assert json.loads(final[1])["seed"] == 1


def test_resume_latest_ignores_complete_runs(tmp_path):
    spec = tiny_spec(seeds=(0,), **FAST)
    runner = Runner(out_root=tmp_path, max_workers=1)
    runner.run(spec)
    with pytest.raises(KeyError, match="unfinished"):
        runner.run(spec, resume="latest")


def test_torn_trailing_record_is_ignored(tmp_path):
    spec = tiny_spec(seeds=(0,), **FAST)
    result = Runner(out_root=tmp_path, max_workers=1).run(spec)
    records_path = result.run_dir / "records.jsonl"
    with records_path.open("a") as fh:
        fh.write('{"seed": 1, "status": "ok", "metr')  # torn mid-write
    store = RunStore(tmp_path)
    run = store.find(result.run_id)
    assert set(store.done_seeds(run)) == {0}


def test_failed_seed_marks_run_failed_and_is_retried_on_resume(tmp_path):
    spec = tiny_spec(name="energy_tradeoff", seeds=(0,),
                     params={"n_in": 64, "packings": [0],  # invalid packing
                             "n_samples": 10})
    runner = Runner(out_root=tmp_path, max_workers=1)
    result = runner.run(spec)
    assert result.status == "failed"
    rec = result.records[0]
    assert rec["status"] == "error" and "Traceback" in rec["error"]
    # errored seeds are not "done": a resume re-runs them
    run = RunStore(tmp_path).find(result.run_id)
    assert RunStore(tmp_path).done_seeds(run) == {}


def test_first_ok_raises_with_error_detail_when_all_seeds_fail(tmp_path):
    spec = tiny_spec(name="energy_tradeoff", seeds=(0,),
                     params={"n_in": 64, "packings": [0], "n_samples": 10})
    result = Runner(out_root=tmp_path, max_workers=1).run(spec)
    with pytest.raises(RuntimeError, match="no finished seeds"):
        result.first_ok()


def test_show_ignores_errors_resolved_by_resume(tmp_path, capsys):
    spec = tiny_spec(seeds=(0,), **FAST)
    result = Runner(out_root=tmp_path, max_workers=1).run(spec)
    # Simulate an earlier failed attempt of seed 0 that a resume fixed:
    # append-only records keep the stale error line *before* the ok line
    # chronologically, but show must not report the seed as failed.
    records_path = result.run_dir / "records.jsonl"
    error_line = json.dumps({"seed": 0, "status": "error", "error": "boom"})
    records_path.write_text(error_line + "\n" + records_path.read_text())
    assert cli.main(["show", result.run_id, "--out", str(tmp_path)]) == 0
    assert "failed" not in capsys.readouterr().out


def test_process_pool_fan_out(tmp_path):
    spec = tiny_spec(seeds=(0, 1), **FAST)
    result = Runner(out_root=tmp_path, max_workers=2).run(spec)
    assert result.status == "complete"
    assert sorted(r["seed"] for r in result.ok_records()) == [0, 1]


def test_store_find_prefix_and_ambiguity(tmp_path):
    spec = tiny_spec(seeds=(0,), **FAST)
    runner = Runner(out_root=tmp_path, max_workers=1)
    r1 = runner.run(spec)
    r2 = runner.run(spec)
    store = RunStore(tmp_path)
    assert store.find(r1.run_id).run_id == r1.run_id
    with pytest.raises(KeyError, match="no run"):
        store.find("zzz-does-not-exist")
    assert {r.run_id for r in store.list_runs("offline_accuracy")} == \
        {r1.run_id, r2.run_id}


# ---------------------------------------------------------------------------
# scenarios (tiny end-to-end)
# ---------------------------------------------------------------------------

def test_incremental_iol_scenario(tmp_path):
    spec = tiny_spec("incremental_iol", n_train=120, n_test=40)
    result = Runner(out_root=tmp_path, max_workers=1).run(spec)
    assert result.status == "complete"
    rec = result.ok_records()[0]
    assert rec["metrics"]["n_rounds"] > 0
    assert len(rec["series"]["after_step2"]) == rec["metrics"]["n_rounds"]
    assert "final" in rec["checkpoints"]


def test_energy_tradeoff_scenario(tmp_path):
    spec = tiny_spec("energy_tradeoff")
    result = Runner(out_root=tmp_path, max_workers=1).run(spec)
    rec = result.ok_records()[0]
    assert set(rec["metrics"]) == {"fa", "dfa"}
    for entry in rec["metrics"].values():
        assert entry["energy_per_sample_mj"] > 0
        assert entry["best_packing"] in spec.params["packings"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_run_list_show_compare(tmp_path, capsys):
    out = str(tmp_path)
    assert cli.main(["run", "offline_accuracy", "--tiny", "--seeds", "2",
                     "--workers", "1", "--out", out]) == 0
    run_id = RunStore(out).list_runs()[-1].run_id
    captured = capsys.readouterr().out
    assert "backend" in captured and run_id in captured

    assert cli.main(["list", "--out", out]) == 0
    assert "2/2" in capsys.readouterr().out

    assert cli.main(["show", run_id, "--out", out]) == 0
    shown = capsys.readouterr().out
    assert "test_acc" in shown and "means over 2 seed(s)" in shown

    assert cli.main(["compare", run_id, run_id, "--out", out]) == 0
    assert "rate.test_acc" in capsys.readouterr().out


def test_cli_show_unknown_run_exits_2(tmp_path, capsys):
    assert cli.main(["show", "nope", "--out", str(tmp_path)]) == 2
    assert "no run" in capsys.readouterr().err


def test_cli_list_empty_store(tmp_path, capsys):
    assert cli.main(["list", "--out", str(tmp_path)]) == 0
    assert "no runs" in capsys.readouterr().out
