"""Integration tests: EMSTDP on the chip simulator."""

import numpy as np
import pytest

from repro.core import EMSTDPNetwork, loihi_default_config
from repro.onchip import (LoihiEMSTDPTrainer, ScaleScheme,
                          build_emstdp_network, eta_exponent)

from conftest import make_blobs


def small_model(feedback="dfa", T=32, **cfg_overrides):
    cfg = loihi_default_config(seed=1, phase_length=T, feedback=feedback,
                               **cfg_overrides)
    ref = EMSTDPNetwork((8, 16, 3), cfg)
    model = build_emstdp_network(
        (8, 16, 3), cfg,
        initial_weights=[w.copy() for w in ref.weights],
        feedback_weights=[b.copy() for b in ref.feedback_weights])
    return ref, model


class TestScaleScheme:
    def test_roundtrip(self):
        s = ScaleScheme()
        w = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        back = s.from_mant(s.to_mant(w))
        assert np.max(np.abs(back - w)) <= s.step / 2 + 1e-9

    def test_unit_weight_delivers_threshold(self):
        s = ScaleScheme()
        mant = s.unit_weight_mant(1.0)
        assert abs(mant * s.weight_scale - s.vth) <= s.weight_scale

    def test_rate_to_bias_range(self):
        s = ScaleScheme()
        assert s.rate_to_bias(np.array([0.0]))[0] == 0
        assert s.rate_to_bias(np.array([1.0]))[0] == s.vth
        assert s.rate_to_bias(np.array([2.0]))[0] == s.vth  # clipped

    def test_eta_exponent_paper_settings(self):
        # eta=2^-3, clip=2, T=64 -> 0.125*127/(2*4096) ~= 2^-9
        assert eta_exponent(2.0 ** -3, 2.0, 64) == -9


class TestBuilder:
    def test_dfa_has_no_standalone_error_relays(self):
        _, model = small_model("dfa")
        names = [g.name for g in model.network.groups]
        # dendrites exist but colocate with their forward layer
        dend = model.network.group("dfa0_pos")
        assert dend.colocate == "fwd1"

    def test_fa_has_standalone_error_relays(self):
        _, model = small_model("fa")
        relay = model.network.group("err0_pos")
        assert relay.colocate is None

    def test_dfa_uses_fewer_cores_than_fa(self):
        _, mf = small_model("fa")
        _, md = small_model("dfa")
        tf = LoihiEMSTDPTrainer(mf, neurons_per_core=4)
        td = LoihiEMSTDPTrainer(md, neurons_per_core=4)
        assert td.mapping.cores_used < tf.mapping.cores_used

    def test_inference_only_network_smaller(self):
        cfg = loihi_default_config(seed=1, phase_length=32)
        full = build_emstdp_network((8, 16, 3), cfg)
        inf = build_emstdp_network((8, 16, 3), cfg, include_error_path=False)
        assert inf.network.n_compartments() < full.network.n_compartments()
        assert inf.label_name is None

    def test_weight_shape_validation(self):
        cfg = loihi_default_config(seed=1)
        with pytest.raises(ValueError):
            build_emstdp_network((8, 16, 3), cfg,
                                 initial_weights=[np.zeros((3, 3)),
                                                  np.zeros((17, 3))])

    def test_frontend_layers(self):
        cfg = loihi_default_config(seed=1, phase_length=16)
        mat = np.eye(8) * 0.5
        model = build_emstdp_network(
            (8, 6, 3), cfg, frontend_layers=[(mat, None)])
        assert model.input_name == "frontend0"
        assert model.network.group("frontend1").n == 8

    def test_frontend_dim_mismatch(self):
        cfg = loihi_default_config(seed=1)
        with pytest.raises(ValueError):
            build_emstdp_network((4, 6, 3), cfg,
                                 frontend_layers=[(np.eye(8), None)])


class TestTrainer:
    def test_learns_blobs(self):
        xs, ys = make_blobs(8, 3, 400, seed=0)
        tx, ty = make_blobs(8, 3, 80, seed=1)
        _, model = small_model("dfa")
        trainer = LoihiEMSTDPTrainer(model)
        before = trainer.evaluate(tx, ty)
        trainer.train_stream(xs, ys)
        trainer.train_stream(xs, ys)
        after = trainer.evaluate(tx, ty)
        assert after > before
        assert after >= 0.8

    def test_weights_stay_int8(self):
        xs, ys = make_blobs(8, 3, 50, seed=0)
        _, model = small_model("dfa")
        trainer = LoihiEMSTDPTrainer(model)
        trainer.train_stream(xs, ys)
        for conn in model.plastic_connections:
            assert np.abs(conn.weight_mant).max() <= 127
            assert conn.weight_mant.dtype.kind == "i"

    def test_inference_only_network_rejects_training(self):
        cfg = loihi_default_config(seed=1, phase_length=16)
        model = build_emstdp_network((8, 16, 3), cfg,
                                     include_error_path=False)
        trainer = LoihiEMSTDPTrainer(model)
        with pytest.raises(RuntimeError):
            trainer.train_sample(np.zeros(8), 0)

    def test_inference_matches_reference(self):
        """Phase-1 rates on chip track the FP reference's rate solution."""
        ref, model = small_model("dfa", T=64)
        trainer = LoihiEMSTDPTrainer(model)
        rng = np.random.default_rng(0)
        agree = 0
        for _ in range(10):
            x = rng.uniform(0, 1, 8)
            agree += int(trainer.predict(x) == ref.predict(x))
        assert agree >= 8

    def test_class_mask(self):
        xs, ys = make_blobs(8, 3, 10, seed=0)
        _, model = small_model("dfa")
        trainer = LoihiEMSTDPTrainer(model)
        trainer.set_class_mask([0, 2])
        with pytest.raises(ValueError):
            trainer.train_sample(xs[0], 1)
        preds = {trainer.predict(x) for x in xs}
        assert 1 not in preds
        trainer.clear_class_mask()
        trainer.train_sample(xs[0], 1)  # no raise

    def test_energy_report_requires_samples(self):
        _, model = small_model("dfa", T=16)
        trainer = LoihiEMSTDPTrainer(model)
        with pytest.raises(ValueError):
            trainer.energy_report()

    def test_energy_report_after_training(self):
        xs, ys = make_blobs(8, 3, 5, seed=0)
        _, model = small_model("dfa", T=16)
        trainer = LoihiEMSTDPTrainer(model, neurons_per_core=8)
        trainer.train_stream(xs, ys)
        rep = trainer.energy_report()
        assert rep.fps > 0
        assert rep.power_w > 0
        assert rep.cores_used == trainer.mapping.cores_used

    def test_io_is_one_bias_write_per_sample(self):
        """Section III-D: the host programs biases once per sample; no
        spike streaming is involved in the runtime loop."""
        _, model = small_model("dfa", T=16)
        trainer = LoihiEMSTDPTrainer(model)
        writes = []
        original = trainer.runtime.set_bias

        def counting(name, bias):
            writes.append(name)
            return original(name, bias)

        trainer.runtime.set_bias = counting
        trainer.train_sample(np.full(8, 0.5), 1)
        assert sorted(writes) == ["fwd0", "label"]
