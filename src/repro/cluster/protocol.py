"""Wire protocol between the cluster front end and its worker processes.

Everything crossing a worker pipe is a plain picklable tuple
``(kind, msg_id, payload)``:

parent -> worker
    ``("predict", id, body)`` / ``("predict_many", id, body)`` — one
    data-plane request (``body`` mirrors the HTTP request dict);
    ``("metrics", id, {})`` — the worker's full ``/metrics`` payload;
    ``("swap", id, {"source": ...})`` — load a new checkpoint and hot-swap
    the served version;
    ``("drain", id, {})`` — drain the micro-batchers, answer with the
    drained bool, and exit.

worker -> parent
    ``("ready", 0, stats)`` — sent once after the checkpoint loaded;
    ``("hb", 0, stats)`` — periodic heartbeat with light load stats;
    ``("fatal", 0, {"error": ...})`` — startup/teardown failure, sent just
    before exiting so the supervisor can surface the cause;
    ``("resp", id, {"ok": True, "value": ...})`` or
    ``("resp", id, {"ok": False, "status": ..., "error": ...})`` — the
    answer to any parent request, matched by ``msg_id``.

The :class:`WorkerSpec` is the complete, picklable recipe for one worker:
workers never receive live model objects — they *self-load* their models
from the checkpoint source, so a restarted worker is bitwise-equivalent to
its predecessor and the spawn start method needs nothing from the parent's
memory.
"""

from __future__ import annotations

import dataclasses

#: worker -> parent message kinds that are not responses.
READY, HEARTBEAT, FATAL, RESPONSE = "ready", "hb", "fatal", "resp"

#: parent -> worker request kinds.
PREDICT, PREDICT_MANY, METRICS, SWAP, DRAIN = (
    "predict", "predict_many", "metrics", "swap", "drain")

#: Declarative payload contract per message kind, checked statically by
#: ``repro.checks`` rule REP004 against every send site in worker.py /
#: frontend.py / supervisor.py.  Each value is either ``None`` (payload
#: is free-form, e.g. a stats snapshot) or a pair
#: ``(required_keys, allowed_keys)`` — every literal payload dict must
#: carry all required keys and nothing outside the allowed set.  Keep
#: this in lockstep with the prose contract in the module docstring.
MESSAGES = {
    PREDICT: (("input",), ("input", "model", "version", "use_cache")),
    PREDICT_MANY: (("inputs",),
                   ("inputs", "model", "version", "use_cache")),
    METRICS: ((), ()),
    SWAP: (("source",), ("source", "store_root")),
    DRAIN: ((), ()),
    READY: None,      # free-form worker stats snapshot
    HEARTBEAT: None,  # free-form worker stats snapshot
    FATAL: (("error",), ("error",)),
    RESPONSE: (("ok",), ("ok", "value", "status", "error")),
}


@dataclasses.dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to serve: picklable and complete.

    ``source`` is anything ``ModelRegistry.load_source`` accepts — a
    checkpoint stem, a directory of checkpoints, or a run id resolved
    against ``store_root``.  The serving knobs mirror
    :class:`~repro.serve.service.InferenceService`; ``handler_threads``
    bounds how many requests one worker decodes/answers concurrently
    (they still coalesce in the worker's micro-batcher).
    """

    source: str
    store_root: str = "runs"
    max_batch: int = 16
    max_wait_ms: float = 5.0
    cache_size: int = 1024
    batch_workers: int = 1
    handler_threads: int = 16
    heartbeat_s: float = 0.5

    def replace(self, **overrides) -> "WorkerSpec":
        return dataclasses.replace(self, **overrides)
