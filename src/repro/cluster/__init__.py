"""Supervised multi-process serving tier.

One front-end HTTP router process fans requests out over per-worker
request/response pipes to N model-worker processes.  Each worker owns its
own :class:`~repro.serve.registry.ModelRegistry`,
:class:`~repro.serve.batcher.MicroBatcher` pool, and
:class:`~repro.serve.cache.PredictionCache`, self-loaded from a checkpoint
source — workers share nothing, so one crashing cannot corrupt another.

The pieces:

* :class:`WorkerSpec` (:mod:`~repro.cluster.protocol`) — the picklable
  recipe a worker self-loads from; the wire protocol between front end
  and workers lives beside it;
* :mod:`~repro.cluster.worker` — the worker process: pipe receive loop,
  threaded handlers feeding the micro-batcher, heartbeats, in-place
  hot-swap, graceful drain;
* :class:`Supervisor` — spawns workers, watches heartbeats, restarts
  crashed or wedged workers with exponential backoff, and performs
  one-at-a-time rolling hot-swap;
* :class:`ClusterService` — the router: least-loaded dispatch, bounded
  per-worker in-flight admission control (``503`` + ``Retry-After`` on
  overload), quorum ``/healthz``, aggregated ``/metrics``, and the
  ``POST /admin/swap`` control plane.  It duck-types
  :class:`~repro.serve.service.InferenceService`, so the stdlib
  :class:`~repro.serve.http.InferenceHTTPServer` fronts it unchanged.

``python -m repro cluster <checkpoint|run-id> --workers N`` wires it to
the CLI; ``benchmarks/bench_serving_cluster.py`` gates the scaling claim
and ``examples/cluster_quickstart.py`` is the CI smoke driver.
"""

from .frontend import ClusterService
from .protocol import WorkerSpec
from .supervisor import ClusterError, Supervisor, WorkerHandle, backoff_delay

__all__ = [
    "ClusterError", "ClusterService", "Supervisor", "WorkerHandle",
    "WorkerSpec", "backoff_delay",
]
