"""The model-worker process: one registry + micro-batcher per process.

``worker_main`` is the spawn target.  It self-loads its models from the
:class:`~repro.cluster.protocol.WorkerSpec`'s checkpoint source (workers
never inherit live objects from the parent), builds a private
:class:`~repro.serve.service.InferenceService` — registry, micro-batcher,
prediction cache, telemetry — and then serves the duplex pipe:

* a receive loop dispatches data-plane requests onto a small thread pool
  (so concurrent requests coalesce in the micro-batcher exactly as they
  do in the single-process server);
* a heartbeat thread reports light load stats every ``heartbeat_s`` —
  the supervisor treats silence as a wedged worker and replaces it;
* ``swap`` loads a new checkpoint *into the running registry* and
  activates it (the PR 3 hot-swap), so a rolling swap never leaves the
  worker without a servable model;
* ``drain`` closes the micro-batchers gracefully (in-flight requests
  finish), answers with the drained bool, and exits.

SIGINT is ignored: a Ctrl-C in the terminal reaches the whole process
group, and the *front end* owns the shutdown choreography — workers only
exit on ``drain``, on a broken pipe (parent died), or on SIGTERM/SIGKILL
from the supervisor replacing them.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from .. import obs
from ..persist import checkpoint_paths
from ..serve import InferenceService, ModelRegistry
from . import protocol
from .protocol import WorkerSpec


class _Worker:
    def __init__(self, conn, spec: WorkerSpec):
        self.conn = conn
        self.spec = spec
        self.started = time.monotonic()
        self.registry = ModelRegistry()
        self.registry.load_source(spec.source, store_root=spec.store_root)
        self.service = InferenceService(
            self.registry, max_batch=spec.max_batch,
            max_wait_ms=spec.max_wait_ms, cache_size=spec.cache_size,
            workers=spec.batch_workers)
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._inflight = 0  # guarded-by: _inflight_lock
        self._inflight_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, spec.handler_threads),
            thread_name_prefix="cluster-handler")

    # -- plumbing --------------------------------------------------------

    def send(self, message) -> None:
        """Pipe writes come from handler threads and the heartbeat thread;
        ``Connection.send`` is not thread-safe, so serialize them."""
        with self._send_lock:
            try:
                self.conn.send(message)
            except (BrokenPipeError, OSError):
                # Parent is gone; the receive loop will see EOF and exit.
                self._stop.set()

    def stats(self) -> dict:
        with self._inflight_lock:
            inflight = self._inflight
        return {
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self.started, 3),
            "requests": self.service.telemetry.requests,
            "errors": self.service.telemetry.errors,
            "pending": self.service.pending(),
            "inflight": inflight,
            "versions": self.registry.active_versions(),
            # Metric shipping rides the heartbeat: the registry snapshot
            # is a plain dict, so the supervisor-side handle just keeps
            # the latest one and the front end merges across workers.
            "obs": obs.metrics.snapshot(),
        }

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.spec.heartbeat_s):
            self.send((protocol.HEARTBEAT, 0, self.stats()))

    # -- request handlers ------------------------------------------------

    def _handle_predict(self, kind: str, msg_id: int, body: dict) -> None:
        with self._inflight_lock:
            self._inflight += 1
        try:
            if kind == protocol.PREDICT:
                value = self.service.predict(
                    body["input"], model=body.get("model"),
                    version=body.get("version"),
                    use_cache=body.get("use_cache", True))
            else:
                value = self.service.predict_many(
                    body["inputs"], model=body.get("model"),
                    version=body.get("version"),
                    use_cache=body.get("use_cache", True))
        except KeyError as exc:  # unknown model/version
            self.send((protocol.RESPONSE, msg_id, {
                "ok": False, "status": 404, "error": str(exc.args[0])}))
        except Exception as exc:
            self.send((protocol.RESPONSE, msg_id, {
                "ok": False, "status": 500,
                "error": f"{type(exc).__name__}: {exc}"}))
        else:
            self.send((protocol.RESPONSE, msg_id,
                       {"ok": True, "value": value}))
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def _handle_swap(self, msg_id: int, body: dict) -> None:
        """Load ``body["source"]`` and hot-swap it into the registry.

        A single-stem source on a worker serving exactly one name becomes
        a *new version of that name* regardless of the stem's filename —
        that is the rolling-upgrade case, and pinning the name is what
        makes the registry's activate() a hot-swap instead of a second,
        never-resolved model.  Multi-model workers (or directory/run-id
        sources) go through ``load_source`` unchanged: matching names
        version-bump, new names appear alongside.
        """
        source = body["source"]
        try:
            names = set(self.registry.active_versions())
            npz_path, json_path = checkpoint_paths(Path(source))
            if len(names) == 1 and (npz_path.exists() or json_path.exists()):
                self.registry.load(source, name=next(iter(names)))
            else:
                self.registry.load_source(
                    source, store_root=body.get("store_root",
                                                self.spec.store_root))
        except Exception as exc:
            self.send((protocol.RESPONSE, msg_id, {
                "ok": False, "status": 500,
                "error": f"{type(exc).__name__}: {exc}"}))
        else:
            self.send((protocol.RESPONSE, msg_id, {
                "ok": True,
                "value": {"versions": self.registry.active_versions()}}))

    # -- main loop -------------------------------------------------------

    def run(self) -> None:
        self.send((protocol.READY, 0, self.stats()))
        heartbeat = threading.Thread(target=self._heartbeat_loop,
                                     name="cluster-heartbeat", daemon=True)
        heartbeat.start()
        drain_msg_id = None
        try:
            while not self._stop.is_set():
                try:
                    kind, msg_id, body = self.conn.recv()
                except (EOFError, OSError):
                    break  # parent died: nothing left to serve
                if kind in (protocol.PREDICT, protocol.PREDICT_MANY):
                    self._pool.submit(self._handle_predict, kind, msg_id,
                                      body)
                elif kind == protocol.METRICS:
                    self.send((protocol.RESPONSE, msg_id,
                               {"ok": True, "value": self.service.metrics()}))
                elif kind == protocol.SWAP:
                    self._handle_swap(msg_id, body)
                elif kind == protocol.DRAIN:
                    drain_msg_id = msg_id
                    break
                else:
                    self.send((protocol.RESPONSE, msg_id, {
                        "ok": False, "status": 400,
                        "error": f"unknown message kind {kind!r}"}))
        finally:
            self._stop.set()
            # Answer everything already accepted before reporting drained:
            # the pool join flushes handler threads into the batchers, the
            # service shutdown drains the batchers themselves.
            self._pool.shutdown(wait=True)
            drained = self.service.shutdown(timeout=30.0)
            if drain_msg_id is not None:
                self.send((protocol.RESPONSE, drain_msg_id,
                           {"ok": True, "value": {"drained": drained}}))
            heartbeat.join(timeout=2.0)
            try:
                self.conn.close()
            except OSError:
                pass


def worker_main(conn, spec: WorkerSpec) -> None:
    """Spawn target: build the worker, serve the pipe until drained."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        worker = _Worker(conn, spec)
    except Exception as exc:
        try:
            conn.send((protocol.FATAL, 0,
                       {"error": f"{type(exc).__name__}: {exc}"}))
            conn.close()
        except OSError:
            pass
        raise SystemExit(1)
    worker.run()
