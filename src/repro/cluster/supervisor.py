"""Worker lifecycle: spawn, watch, restart with backoff, rolling swap.

The :class:`Supervisor` owns N worker slots.  Each slot holds at most one
live :class:`WorkerHandle` — a spawned process plus the parent end of its
duplex pipe, a reader thread demultiplexing responses/heartbeats, and the
in-flight bookkeeping the front end routes on.  A monitor thread enforces
the supervision policy:

* a worker whose process died (crash, OOM-kill, SIGKILL in tests) is
  detected by the reader's EOF and by ``is_alive()``; every future still
  pending on its pipe fails with :class:`~repro.serve.errors.WorkerDied`
  — the request was accepted, so it must error loudly, never hang;
* a worker whose *heartbeats* stop while the process lives is wedged; it
  is killed and treated like a crash (the heartbeat thread is independent
  of the request handlers, so a stuck model call alone does not trip
  this — only a truly frozen or stopped process does);
* restarts are scheduled with exponential backoff
  (``base * 2**consecutive_failures``, capped), and the failure streak
  resets after a worker stays healthy for a while — a flapping checkpoint
  cannot hot-loop the spawn path;
* a restarted worker self-loads from the *current* spec, so a crash during
  a rolling swap comes back already on the new version.

``rolling_swap`` is the zero-downtime upgrade: one slot at a time is taken
out of routing (``draining``), its in-flight requests are allowed to
finish, the worker hot-swaps in place via its registry, and routing
resumes — at every instant N-1 workers accept traffic, so the only 503s a
client can see are admission-control ones, never absence of the tier.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

import multiprocessing

from .. import obs
from ..serve.errors import WorkerDied
from . import protocol
from .protocol import WorkerSpec
from .worker import worker_main


def backoff_delay(consecutive_failures: int, base_s: float,
                  cap_s: float) -> float:
    """Exponential restart backoff: ``base * 2**(failures-1)``, capped.

    The first restart after a healthy run waits only ``base_s``; each
    consecutive failure doubles the wait up to ``cap_s``.
    """
    if consecutive_failures <= 0:
        return 0.0
    return min(float(cap_s), float(base_s) * 2.0 ** (consecutive_failures - 1))


class ClusterError(RuntimeError):
    """The cluster could not reach a servable state."""


class WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, slot: int, spec: WorkerSpec, ctx):
        self.slot = slot
        self.spec = spec
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=worker_main, args=(child_conn, spec),
            name=f"cluster-worker-{slot}", daemon=True)
        self.process.start()
        # The parent's copy of the child end must close, or the reader
        # would never see EOF when the worker dies.
        child_conn.close()

        self.spawned_at = time.monotonic()
        self.ready_at: Optional[float] = None
        self.last_heartbeat: Optional[float] = None
        self.stats: dict = {}
        self.fatal_error: Optional[str] = None
        self.draining = False

        self._lock = threading.Lock()
        self._state = "starting"  # guarded-by: _lock ("starting" -> "ready" -> "dead")
        self._ready = threading.Event()
        self._exited = threading.Event()
        self._msg_ids = itertools.count(1)
        self._pending: Dict[int, Future] = {}  # guarded-by: _lock
        self._inflight = 0  # guarded-by: _lock
        self.dispatched = 0  # guarded-by: _lock
        self._reader = threading.Thread(
            target=self._read_loop, name=f"cluster-reader-{slot}",
            daemon=True)
        self._reader.start()

    # -- state -----------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def is_live(self) -> bool:
        with self._lock:
            return self._state == "ready"

    def routable(self) -> bool:
        with self._lock:
            return self._state == "ready" and not self.draining

    def wait_ready(self, timeout: Optional[float]) -> bool:
        return self._ready.wait(timeout)

    def wait_exited(self, timeout: Optional[float]) -> bool:
        """True once the worker is marked dead (reader saw EOF/error)."""
        return self._exited.wait(timeout)

    def heartbeat_age_s(self) -> Optional[float]:
        last = self.last_heartbeat or self.ready_at
        return None if last is None else time.monotonic() - last

    # -- requests --------------------------------------------------------

    def acquire(self, bound: int) -> bool:
        """Atomically claim one in-flight slot; False when full/not ready."""
        with self._lock:
            if self._state != "ready" or self.draining:
                return False
            if self._inflight >= bound:
                return False
            self._inflight += 1
            self.dispatched += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    def request(self, kind: str, payload: dict) -> "Future":
        """Send one request; the future resolves with the response payload.

        The caller owns in-flight accounting (``acquire``/``release``) for
        data-plane requests; control-plane requests (metrics, swap, drain)
        bypass it.
        """
        future: Future = Future()
        with self._lock:
            if self._state == "dead":
                raise WorkerDied(
                    f"worker {self.slot} (pid {self.pid}) is dead")
            msg_id = next(self._msg_ids)
            self._pending[msg_id] = future
        try:
            self.conn.send((kind, msg_id, payload))
        except (BrokenPipeError, OSError):
            with self._lock:
                self._pending.pop(msg_id, None)
            raise WorkerDied(
                f"worker {self.slot} (pid {self.pid}) pipe is closed")
        return future

    # -- reader thread ---------------------------------------------------

    def _read_loop(self) -> None:
        while True:
            try:
                kind, msg_id, payload = self.conn.recv()
            except (EOFError, OSError):
                break
            if kind == protocol.RESPONSE:
                with self._lock:
                    future = self._pending.pop(msg_id, None)
                if future is not None:
                    future.set_result(payload)
            elif kind in (protocol.HEARTBEAT, protocol.READY):
                self.last_heartbeat = time.monotonic()
                self.stats = payload
                if kind == protocol.READY:
                    with self._lock:
                        if self._state == "starting":
                            self._state = "ready"
                    self.ready_at = time.monotonic()
                    self._ready.set()
            elif kind == protocol.FATAL:
                self.fatal_error = payload.get("error", "unknown")
        self.mark_dead()

    def mark_dead(self) -> None:
        """Fail every pending request and flip to the terminal state."""
        with self._lock:
            if self._state == "dead":
                return
            self._state = "dead"
            pending = list(self._pending.values())
            self._pending.clear()
            self._inflight = 0
        self._ready.set()  # unblock waiters; they must re-check state
        self._exited.set()
        exc = WorkerDied(f"worker {self.slot} (pid {self.pid}) died with "
                         f"requests in flight")
        for future in pending:
            future.set_exception(exc)

    # -- teardown --------------------------------------------------------

    def kill(self, grace_s: float = 0.5) -> None:
        """Terminate the process (SIGTERM, then SIGKILL) and mark it dead.

        SIGKILL is the fallback because a *stopped* (SIGSTOP'd, i.e.
        wedged-looking) process never handles SIGTERM.
        """
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(grace_s)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(grace_s)
        try:
            self.conn.close()
        except OSError:
            pass
        self.mark_dead()

    def describe(self) -> dict:
        with self._lock:
            state = "draining" if (self._state == "ready" and self.draining) \
                else self._state
            inflight = self._inflight
            dispatched = self.dispatched
        age = self.heartbeat_age_s()
        return {
            "slot": self.slot,
            "pid": self.pid,
            "state": state,
            "inflight": inflight,
            "dispatched": dispatched,
            "last_heartbeat_age_s": None if age is None else round(age, 3),
            "fatal_error": self.fatal_error,
            **{k: self.stats.get(k) for k in
               ("uptime_s", "requests", "errors", "pending", "versions")},
            # Last heartbeat-shipped metrics snapshot (may trail the
            # worker's live registry by up to one heartbeat interval).
            "obs": self.stats.get("obs"),
        }


class _Slot:
    def __init__(self, index: int):
        self.index = index
        self.handle: Optional[WorkerHandle] = None
        self.restarts = 0
        self.consecutive_failures = 0
        self.next_restart_at: Optional[float] = None
        self.last_error: Optional[str] = None


class Supervisor:
    """Spawns and supervises ``n_workers`` model-worker processes.

    Parameters
    ----------
    spec:
        The worker recipe; mutated only through :meth:`rolling_swap`.
    n_workers:
        Number of worker slots.
    quorum:
        Live workers needed for ``/healthz`` to report ``ok``; defaults to
        a majority (``n_workers // 2 + 1``).
    heartbeat_timeout_s:
        Silence longer than this marks a live process as wedged.
    backoff_base_s / backoff_cap_s:
        Exponential restart backoff bounds.
    backoff_reset_s:
        A worker healthy for this long clears its failure streak.
    start_method:
        ``multiprocessing`` start method; ``spawn`` (the default) is safe
        with the parent's many threads, and workers self-load anyway.
    """

    def __init__(self, spec: WorkerSpec, n_workers: int,
                 quorum: Optional[int] = None,
                 heartbeat_timeout_s: float = 5.0,
                 backoff_base_s: float = 0.5, backoff_cap_s: float = 8.0,
                 backoff_reset_s: Optional[float] = None,
                 start_timeout_s: float = 120.0,
                 start_method: str = "spawn"):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.quorum = (int(quorum) if quorum is not None
                       else self.n_workers // 2 + 1)
        if not 1 <= self.quorum <= self.n_workers:
            raise ValueError(f"quorum {self.quorum} outside "
                             f"[1, {self.n_workers}]")
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.backoff_reset_s = (float(backoff_reset_s)
                                if backoff_reset_s is not None
                                else 10.0 * self.heartbeat_timeout_s)
        self.start_timeout_s = float(start_timeout_s)
        self.started_at = time.monotonic()
        self._ctx = multiprocessing.get_context(start_method)
        self._spec_lock = threading.Lock()
        self._spec = spec  # guarded-by: _spec_lock
        self._slots = [_Slot(i) for i in range(self.n_workers)]
        self._stopping = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._swap_lock = threading.Lock()

    @property
    def spec(self) -> WorkerSpec:
        with self._spec_lock:
            return self._spec

    # -- lifecycle -------------------------------------------------------

    def start(self, wait: bool = True) -> "Supervisor":
        for slot in self._slots:
            self._spawn(slot)
        if wait:
            deadline = time.monotonic() + self.start_timeout_s
            for slot in self._slots:
                handle = slot.handle
                assert handle is not None
                handle.wait_ready(max(0.0, deadline - time.monotonic()))
                if not handle.is_live():
                    error = handle.fatal_error or "did not become ready"
                    self.stop()
                    raise ClusterError(
                        f"worker {slot.index} failed to start: {error}")
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True)
        self._monitor.start()
        return self

    def _spawn(self, slot: _Slot) -> None:
        slot.handle = WorkerHandle(slot.index, self.spec, self._ctx)
        slot.next_restart_at = None

    def _monitor_loop(self) -> None:
        poll_s = max(0.02, min(0.25, self.spec.heartbeat_s / 2.0))
        while not self._stopping.wait(poll_s):
            now = time.monotonic()
            for slot in self._slots:
                handle = slot.handle
                if handle is None:
                    continue
                state = handle.state
                if state in ("starting", "ready") and handle.draining:
                    continue  # a drain/swap owns this slot right now
                if state == "ready":
                    age = handle.heartbeat_age_s()
                    if not handle.process.is_alive():
                        self._declare_failed(slot, "process exited")
                    elif age is not None and age > self.heartbeat_timeout_s:
                        self._declare_failed(
                            slot, f"no heartbeat for {age:.1f}s (wedged)")
                    elif (handle.ready_at is not None
                          and now - handle.ready_at > self.backoff_reset_s):
                        slot.consecutive_failures = 0
                elif state == "starting":
                    if not handle.process.is_alive():
                        self._declare_failed(
                            slot, handle.fatal_error or "died during start")
                    elif now - handle.spawned_at > self.start_timeout_s:
                        self._declare_failed(slot, "start timed out")
                elif state == "dead":
                    if slot.next_restart_at is None:
                        # Death noticed by the reader before the monitor:
                        # schedule the restart it would have scheduled.
                        self._declare_failed(
                            slot, handle.fatal_error or "pipe closed")
                    elif now >= slot.next_restart_at:
                        slot.restarts += 1
                        self._spawn(slot)

    def _declare_failed(self, slot: _Slot, reason: str) -> None:
        handle = slot.handle
        slot.last_error = reason
        slot.consecutive_failures += 1
        obs.counter("cluster_worker_failures", slot=slot.index)
        obs.event("worker_failed", slot=slot.index, reason=reason)
        delay = backoff_delay(slot.consecutive_failures,
                              self.backoff_base_s, self.backoff_cap_s)
        slot.next_restart_at = time.monotonic() + delay
        if handle is not None:
            handle.kill()

    # -- routing view ----------------------------------------------------

    def live_handles(self) -> List[WorkerHandle]:
        """Workers currently accepting routed traffic."""
        return [s.handle for s in self._slots
                if s.handle is not None and s.handle.routable()]

    def live_count(self) -> int:
        return sum(1 for s in self._slots
                   if s.handle is not None and s.handle.is_live())

    def has_quorum(self) -> bool:
        return self.live_count() >= self.quorum

    def restarts_total(self) -> int:
        return sum(s.restarts for s in self._slots)

    def describe(self) -> List[dict]:
        out = []
        for slot in self._slots:
            info = (slot.handle.describe() if slot.handle is not None
                    else {"slot": slot.index, "state": "empty"})
            info["restarts"] = slot.restarts
            if slot.last_error:
                info["last_error"] = slot.last_error
            out.append(info)
        return out

    # -- rolling hot-swap ------------------------------------------------

    def rolling_swap(self, source: str, store_root: Optional[str] = None,
                     drain_timeout_s: float = 30.0,
                     swap_timeout_s: float = 120.0) -> dict:
        """Hot-swap every worker to ``source``, one worker at a time.

        The spec is updated *first*: any worker that crashes mid-swap
        restarts straight onto the new version.  Then each live worker in
        turn is taken out of routing, allowed to finish its in-flight
        requests, told to swap in place, and put back.  Dead slots are
        skipped (their restart path already picks up the new spec).  A
        worker whose swap fails is killed so its supervised restart
        reloads the new checkpoint — the cluster never runs mixed
        versions longer than one restart.
        """
        with self._swap_lock:  # one rolling operation at a time
            with self._spec_lock:
                overrides = {"source": str(source)}
                if store_root is not None:
                    overrides["store_root"] = str(store_root)
                self._spec = self._spec.replace(**overrides)
            swapped, skipped, failed = [], [], []
            versions: Dict[int, dict] = {}
            for slot in self._slots:
                handle = slot.handle
                if handle is None or not handle.is_live():
                    skipped.append(slot.index)
                    continue
                handle.draining = True
                try:
                    deadline = time.monotonic() + drain_timeout_s
                    while handle.inflight > 0 and time.monotonic() < deadline:
                        time.sleep(0.005)
                    response = handle.request(
                        protocol.SWAP,
                        {"source": self.spec.source,
                         "store_root": self.spec.store_root}
                    ).result(timeout=swap_timeout_s)
                except Exception as exc:
                    slot.last_error = f"swap failed: {exc}"
                    failed.append(slot.index)
                    self._declare_failed(slot, slot.last_error)
                    continue
                finally:
                    handle.draining = False
                if response.get("ok"):
                    swapped.append(slot.index)
                    versions[slot.index] = response["value"]["versions"]
                else:
                    slot.last_error = f"swap failed: {response.get('error')}"
                    failed.append(slot.index)
                    self._declare_failed(slot, slot.last_error)
            return {"source": self.spec.source, "swapped": swapped,
                    "skipped": skipped, "failed": failed,
                    "versions": {str(k): v for k, v in versions.items()}}

    # -- shutdown --------------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful shutdown: every worker drains its batchers and exits.

        Returns ``True`` only when every live worker confirmed its drain;
        a ``False`` means at least one worker timed out or died undrained.
        The monitor is stopped first so exiting workers are not "restarted".
        """
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        deadline = time.monotonic() + timeout_s
        live = [slot.handle for slot in self._slots
                if slot.handle is not None and slot.handle.is_live()]
        # Two-phase: take every worker out of routing, then wait for the
        # accepted requests to be answered *before* sending DRAIN.  A
        # front end that passed acquire() may not have written its request
        # to the pipe yet — sending DRAIN immediately would race past it
        # and the worker would exit without answering.
        for handle in live:
            handle.draining = True
        while time.monotonic() < deadline:
            if all(h.inflight == 0 or not h.is_live() for h in live):
                break
            time.sleep(0.01)
        all_drained = True
        futures = []
        for handle in live:
            try:
                futures.append((handle, handle.request(protocol.DRAIN, {})))
            except WorkerDied:
                all_drained = False
        for handle, future in futures:
            try:
                remaining = max(0.1, deadline - time.monotonic())
                response = future.result(timeout=remaining)
                all_drained &= bool(response.get("value", {}).get("drained"))
            except Exception:
                all_drained = False
        for slot in self._slots:
            if slot.handle is not None:
                slot.handle.kill()
        return all_drained

    def stop(self) -> None:
        """Hard stop: kill every worker without draining."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        for slot in self._slots:
            if slot.handle is not None:
                slot.handle.kill()

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
