"""The cluster front end: routes HTTP requests onto worker processes.

:class:`ClusterService` duck-types :class:`~repro.serve.service.
InferenceService` — ``predict`` / ``predict_many`` / ``healthz`` /
``metrics`` / ``shutdown`` — so the stdlib HTTP layer
(:class:`~repro.serve.http.InferenceHTTPServer`) serves a whole cluster
with the same handler it uses for one in-process service.  What changes is
what happens behind those calls:

* **routing** — each request goes to the *least-loaded* live worker
  (fewest in-flight requests), claimed atomically so two front-end threads
  cannot both land on a "free" slot that only fits one;
* **admission control** — every worker has a bounded in-flight budget;
  when all budgets are full the request is refused with
  :class:`~repro.serve.errors.Overloaded`, which the HTTP layer turns into
  ``503`` + ``Retry-After``.  Shedding load at the door keeps worker
  queues (and therefore p99) bounded instead of letting them grow without
  limit;
* **failure propagation** — a worker dying mid-request fails that request
  loudly (HTTP 500), never silently: accepted requests are either
  answered or errored, a guarantee the supervision tests pin down;
* **aggregation** — ``/metrics`` merges the front end's own latency
  telemetry with every worker's full metrics payload, per-slot supervisor
  state, and restart counts; ``/healthz`` reflects worker *quorum*, not
  just front-end liveness;
* **control plane** — ``handle_admin`` exposes ``POST /admin/swap`` for
  rolling hot-swap, keeping single-process servers free of admin routes.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout
from typing import List, Optional, Sequence

import numpy as np

from .. import obs
from ..serve.errors import Overloaded, WorkerDied
from ..serve.telemetry import Telemetry, merge_batch_histograms
from . import protocol
from .supervisor import Supervisor, WorkerHandle


class ClusterService:
    """InferenceService-shaped facade over a supervised worker pool.

    Parameters
    ----------
    supervisor:
        A started :class:`~repro.cluster.supervisor.Supervisor`.
    max_inflight_per_worker:
        Admission-control bound: requests a single worker may hold
        (queued + executing) before the front end refuses new ones for it.
    request_timeout_s:
        Per-request worker deadline; a worker replaced mid-request fails
        the request well before this fires.
    """

    def __init__(self, supervisor: Supervisor,
                 max_inflight_per_worker: int = 32,
                 request_timeout_s: float = 60.0):
        if max_inflight_per_worker < 1:
            raise ValueError("max_inflight_per_worker must be >= 1")
        self.supervisor = supervisor
        self.max_inflight_per_worker = int(max_inflight_per_worker)
        self.request_timeout_s = float(request_timeout_s)
        self.telemetry = Telemetry()
        self._rejected = 0  # guarded-by: _count_lock
        self._count_lock = threading.Lock()

    # -- routing ---------------------------------------------------------

    def _acquire_worker(self) -> Optional[WorkerHandle]:
        """Claim an in-flight slot on the least-loaded routable worker.

        The inflight read used for ordering is a racy snapshot; the
        ``acquire`` that follows is the atomic admission check, so the
        worst a race costs is slightly suboptimal ordering, never an
        over-admitted worker.
        """
        handles = self.supervisor.live_handles()
        for handle in sorted(handles, key=lambda h: h.inflight):
            if handle.acquire(self.max_inflight_per_worker):
                return handle
        return None

    def _roundtrip(self, kind: str, body: dict) -> dict:
        # A worker can die between acquire() and the pipe write (crash not
        # yet noticed by the supervisor).  When the send itself fails the
        # request provably never reached the worker, so rerouting to
        # another worker is safe; once it is on the wire it must fail
        # loudly instead — it may have been half-handled.
        for _ in range(self.supervisor.n_workers + 1):
            handle = self._acquire_worker()
            if handle is None:
                with self._count_lock:
                    self._rejected += 1
                obs.counter("cluster_rejected")
                raise Overloaded(
                    f"all {len(self.supervisor.live_handles())} live "
                    f"workers at max in-flight "
                    f"({self.max_inflight_per_worker})",
                    retry_after_s=1.0)
            try:
                future = handle.request(kind, body)
            except WorkerDied:
                handle.release()
                continue  # never delivered: safe to try another worker
            break
        else:
            self.telemetry.record_error()
            raise RuntimeError(
                "every live worker died before the request could be "
                "dispatched")
        try:
            response = future.result(timeout=self.request_timeout_s)
        except WorkerDied:
            # The request was accepted; it must fail loudly, not vanish.
            self.telemetry.record_error()
            raise RuntimeError(
                f"worker {handle.slot} (pid {handle.pid}) died while "
                f"handling the request") from None
        except FutureTimeout:
            self.telemetry.record_error()
            raise RuntimeError(
                f"worker {handle.slot} (pid {handle.pid}) exceeded the "
                f"{self.request_timeout_s:.0f}s request deadline") from None
        finally:
            handle.release()
        if not response.get("ok"):
            error = response.get("error", "worker error")
            self.telemetry.record_error()
            if response.get("status") == 404:
                raise KeyError(error)
            raise RuntimeError(error)
        value = response["value"]
        self._stamp(value, handle)
        return value

    @staticmethod
    def _stamp(value, handle: WorkerHandle) -> None:
        """Mark which worker answered — load attribution for clients/tests."""
        items = value if isinstance(value, list) else [value]
        for item in items:
            if isinstance(item, dict):
                item["worker"] = {"slot": handle.slot, "pid": handle.pid}

    # -- data plane (InferenceService-shaped) ----------------------------

    def predict(self, x, model: Optional[str] = None,
                version: Optional[str] = None, use_cache: bool = True,
                ) -> dict:
        t0 = time.perf_counter()
        body = {"input": np.asarray(x, dtype=float),
                "model": model, "version": version, "use_cache": use_cache}
        value = self._roundtrip(protocol.PREDICT, body)
        self._record(value, (time.perf_counter() - t0) * 1e3)
        return value

    def predict_many(self, X: Sequence, model: Optional[str] = None,
                     version: Optional[str] = None,
                     use_cache: bool = True) -> list:
        """A list request stays on one worker: the items are submitted to
        that worker's micro-batcher together, which is the whole point of
        sending them as one request."""
        t0 = time.perf_counter()
        body = {"inputs": [np.asarray(x, dtype=float) for x in X],
                "model": model, "version": version, "use_cache": use_cache}
        values = self._roundtrip(protocol.PREDICT_MANY, body)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        for value in values:
            self._record(value, elapsed_ms / max(1, len(values)))
        return values

    def _record(self, value: dict, latency_ms: float) -> None:
        self.telemetry.record(
            latency_ms, float(value.get("queue_ms", 0.0)),
            int(value.get("batch_size", 0)),
            cached=bool(value.get("cached")),
            energy_mj=float(value.get("energy_mj", 0.0)))

    # -- control plane ---------------------------------------------------

    def handle_admin(self, path: str, request: dict) -> dict:
        """Admin routes; exposing this method is what turns on ``/admin/*``.

        ``POST /admin/swap`` body ``{"source": ..., "store_root": ...}``
        rolls every worker onto the new checkpoint, one at a time.
        """
        if path == "/admin/swap":
            source = request.get("source")
            if not source:
                raise ValueError('body needs "source" (checkpoint stem, '
                                 'directory, or run id)')
            return self.supervisor.rolling_swap(
                str(source), store_root=request.get("store_root"))
        raise KeyError(f"no admin route {path}")

    # -- introspection ---------------------------------------------------

    def healthz(self) -> dict:
        """Quorum-aware liveness: ``ok`` needs >= quorum live workers."""
        live = self.supervisor.live_count()
        if live >= self.supervisor.quorum:
            status = "ok"
        elif live > 0:
            status = "degraded"
        else:
            status = "down"
        snap = self.telemetry.snapshot()
        return {
            "status": status,
            "workers": self.supervisor.n_workers,
            "live_workers": live,
            "quorum": self.supervisor.quorum,
            "restarts": self.supervisor.restarts_total(),
            "requests": snap["requests"],
            "uptime_s": round(snap["uptime_s"], 3),
            "pid": os.getpid(),
        }

    def metrics(self) -> dict:
        """Front-end telemetry + per-worker metrics + supervisor state.

        Worker metrics are fetched over the control plane with a short
        deadline; a worker that cannot answer (dead, wedged, mid-restart)
        appears with its supervisor-side state only — a scrape never
        hangs on a sick worker.
        """
        payload = self.telemetry.snapshot()
        payload["pid"] = os.getpid()
        with self._count_lock:
            payload["rejected_503"] = self._rejected
        payload["admission"] = {
            "max_inflight_per_worker": self.max_inflight_per_worker,
            "capacity": (self.max_inflight_per_worker
                         * self.supervisor.n_workers),
        }
        payload["supervisor"] = {
            "workers": self.supervisor.n_workers,
            "live_workers": self.supervisor.live_count(),
            "quorum": self.supervisor.quorum,
            "restarts": self.supervisor.restarts_total(),
            "uptime_s": round(
                time.monotonic() - self.supervisor.started_at, 3),
            "source": self.supervisor.spec.source,
        }
        workers: List[dict] = []
        futures = []
        for info in self.supervisor.describe():
            handle = None
            for candidate in self.supervisor.live_handles():
                if candidate.slot == info["slot"]:
                    handle = candidate
                    break
            future = None
            if handle is not None:
                try:
                    future = handle.request(protocol.METRICS, {})
                except WorkerDied:
                    future = None
            futures.append((info, future))
        for info, future in futures:
            if future is not None:
                try:
                    response = future.result(timeout=5.0)
                    if response.get("ok"):
                        info["metrics"] = response["value"]
                except Exception:
                    pass  # supervisor-side state still describes the slot
            workers.append(info)
        payload["workers"] = workers
        # Fleet-wide registry view: each worker's obs snapshot (live from
        # the scrape above, else the last heartbeat-shipped one) merged
        # with per-worker labels, plus this front-end process's own.
        snaps, labels = [obs.metrics.snapshot()], [{"process": "frontend"}]
        for info in workers:
            snap = (info.get("metrics") or {}).get("obs") or info.get("obs")
            if snap:
                snaps.append(snap)
                labels.append({"worker": str(info["slot"])})
        payload["obs"] = obs.merge_snapshots(snaps, extra_labels=labels)
        payload["workers_batch_size_histogram"] = merge_batch_histograms(
            [(info.get("metrics") or {}).get("batch_size_histogram")
             for info in workers])
        return payload

    def pending(self) -> int:
        """Requests currently held by workers on behalf of this front end."""
        return sum(h.inflight for h in self.supervisor.live_handles())

    def final_snapshot(self) -> dict:
        """Shutdown-time summary from front-end state only.

        Safe to call after ``shutdown()``/``stop()``: it deliberately
        touches no worker control plane (the workers may already be
        gone), so the CLI can print what the cluster did — served,
        cached, errored, rejected, restarts — instead of discarding it
        with the processes.
        """
        snap = self.telemetry.snapshot()
        with self._count_lock:
            rejected = self._rejected
        return {
            "requests": snap["requests"],
            "cached_requests": snap["cached_requests"],
            "errors": snap["errors"],
            "rejected_503": rejected,
            "restarts": self.supervisor.restarts_total(),
            "uptime_s": round(snap["uptime_s"], 3),
            "latency_ms_p50": round(snap["latency_ms"]["p50"], 3),
            "latency_ms_p99": round(snap["latency_ms"]["p99"], 3),
            "energy_mj_total": round(snap["energy_mj_total"], 6),
        }

    # -- lifecycle -------------------------------------------------------

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Drain every worker's batchers; True only if all confirmed."""
        return self.supervisor.drain(
            timeout_s=timeout if timeout is not None else 30.0)

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc) -> None:
        self.supervisor.stop()
