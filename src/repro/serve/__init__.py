"""Micro-batching inference service over checkpointed models.

The serving layer puts any trained model family — ``EMSTDPNetwork``,
``BackpropMLP``, or the simulated-chip ``LoihiEMSTDPTrainer`` — behind a
request/response interface built from five pieces:

* :class:`ModelRegistry` — named, versioned model store with hot-swap,
  loading from ``repro.persist`` checkpoint stems or ``runs/`` directories;
* :class:`MicroBatcher` — coalesces concurrent single-sample requests into
  ``predict_batch`` calls (flush-on-full / flush-on-deadline);
* :class:`PredictionCache` — LRU keyed by input digest + model version;
* :class:`InferenceService` — the in-process facade tying them together
  with per-request telemetry (latency percentiles, batch-size histogram,
  cache hit rate, modeled Loihi energy per request);
* :class:`InferenceHTTPServer` — an optional stdlib JSON endpoint
  (``/predict``, ``/healthz``, ``/metrics``), no dependencies.

``python -m repro serve <checkpoint>`` wires it all to the CLI;
:mod:`repro.serve.loadgen` is the closed-loop load harness used by
``benchmarks/bench_serving_throughput.py`` and the CI smoke job.
"""

from .batcher import ItemResult, MicroBatcher
from .cache import PredictionCache, input_digest
from .errors import Overloaded, WorkerDied
from .http import InferenceHTTPServer
from .loadgen import LoadReport, http_predict_fn, run_load, service_predict_fn
from .registry import ModelEntry, ModelRegistry, model_from_checkpoint
from .service import InferenceService
from .telemetry import Telemetry, estimate_request_energy_mj

__all__ = [
    "InferenceHTTPServer", "InferenceService", "ItemResult", "LoadReport",
    "MicroBatcher", "ModelEntry", "ModelRegistry", "Overloaded",
    "PredictionCache", "Telemetry", "WorkerDied",
    "estimate_request_energy_mj", "http_predict_fn", "input_digest",
    "model_from_checkpoint", "run_load", "service_predict_fn",
]
