"""Stdlib JSON-over-HTTP front for the inference service.

No framework, no dependencies: a ``ThreadingHTTPServer`` whose handler
translates three routes onto :class:`~repro.serve.service.InferenceService`
calls —

``POST /predict``
    Body ``{"input": [...], "model": "...", "version": "...",
    "use_cache": true}`` (model, version and use_cache optional;
    ``"inputs": [[...], ...]`` answers a list in one request).
    ``"use_cache": false`` forces real inference past the prediction
    cache (the fresh result still refreshes the cache).  Response is the
    service's prediction dict (or a list of them).
``GET /healthz``
    Liveness: status, model count, request count, uptime.
``GET /metrics``
    The full telemetry payload: latency percentiles, batch-size histogram,
    cache hit rate, per-request energy, model listing.  With
    ``?format=prometheus`` (or ``Accept: text/plain``) the same payload is
    rendered in the Prometheus text exposition format instead.
``POST /admin/...``
    Control-plane routes, available only when the injected service exposes
    ``handle_admin(path, request)`` (the cluster front end does, for
    rolling hot-swap); plain services keep a pure data-plane surface.

The handler is duck-typed over the injected service: anything with
``predict`` / ``predict_many`` / ``healthz`` / ``metrics`` works, which is
how ``repro.cluster`` reuses this file unchanged for its front-end router.
A service may raise :class:`~repro.serve.errors.Overloaded` to refuse a
request under admission control; it maps to ``503`` + ``Retry-After``.

Each HTTP connection is handled on its own thread, so concurrent clients
land in the micro-batcher together — the HTTP layer adds no serialization
of its own.

Connections are HTTP/1.1 keep-alive, which makes body accounting part of
correctness: an error response sent with request bytes still unread would
leave those bytes in front of the next request on the same connection and
desync it.  Error paths therefore either drain the unread body first
(small bodies, wrong route) or send ``Connection: close`` (oversized or
unparseable-length requests, where draining is the wrong tool).
"""

from __future__ import annotations

import json
import math
import signal
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..obs import prom
from .errors import Overloaded

MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    service = None  # injected by the server factory (InferenceService-like)
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default
        pass

    def _send_json(self, payload, status: int = 200, close: bool = False,
                   extra_headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, close: bool = False,
                         extra_headers: Optional[Dict[str, str]] = None,
                         ) -> None:
        self._send_json({"error": message}, status=status, close=close,
                        extra_headers=extra_headers)

    def _send_overloaded(self, exc: Overloaded) -> None:
        """503 + Retry-After: admission control refused the request."""
        retry_after = max(1, math.ceil(exc.retry_after_s))
        self._send_error_json(503, str(exc),
                              extra_headers={"Retry-After": str(retry_after)})

    def _drain_body(self, remaining: int) -> None:
        """Discard unread request body so keep-alive framing stays aligned."""
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 64 * 1024))
            if not chunk:
                break
            remaining -= len(chunk)

    # -- routes ----------------------------------------------------------

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            self._send_json(self.service.healthz())
        elif path == "/metrics":
            # JSON stays the default; Prometheus text is selected by
            # ?format=prometheus or an Accept header preferring text/plain
            # (what a Prometheus scraper sends).
            accept = self.headers.get("Accept", "")
            wants_prom = ("format=prometheus" in query
                          or ("text/plain" in accept
                              and "application/json" not in accept))
            payload = self.service.metrics()
            if wants_prom:
                self._send_text(prom.render_metrics_payload(payload))
            else:
                self._send_json(payload)
        else:
            self._send_error_json(404, f"no route {self.path}")

    def do_POST(self) -> None:  # noqa: N802
        if self.headers.get("Transfer-Encoding"):
            # The stdlib handler does not decode chunked bodies, so the
            # request's end is unknowable; close to resync the connection.
            self._send_error_json(
                411, "chunked bodies unsupported; send Content-Length",
                close=True)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (ValueError, TypeError):
            length = -1
        if length < 0:
            # Without a parseable length this request's end is unknowable;
            # the only way to resync the connection is to drop it.
            self._send_error_json(400, "bad Content-Length", close=True)
            return
        if length > MAX_BODY_BYTES:
            # Checked before any route handling (including the 404 drain
            # below): draining would defeat the limit's point — reading
            # the very bytes it refuses — so resync by closing instead.
            self._send_error_json(413, "request body too large", close=True)
            return
        admin = getattr(self.service, "handle_admin", None)
        is_admin = self.path.startswith("/admin/") and admin is not None
        if self.path != "/predict" and not is_admin:
            self._drain_body(length)
            self._send_error_json(404, f"no route {self.path}")
            return
        # The body is fully read from here on: 400s below are keep-alive
        # safe.
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError) as exc:
            self._send_error_json(400, f"bad JSON body: {exc}")
            return
        if not isinstance(request, dict):
            self._send_error_json(
                400, f"body must be a JSON object, got "
                     f"{type(request).__name__}")
            return
        if is_admin:
            # Control-plane routes (e.g. the cluster's rolling hot-swap),
            # exposed only when the service opts in via handle_admin.
            try:
                payload = admin(self.path, request)
            except KeyError as exc:
                self._send_error_json(404, str(exc.args[0]))
            except ValueError as exc:
                self._send_error_json(400, str(exc))
            except Exception as exc:
                self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            else:
                self._send_json(payload)
            return
        model = request.get("model")
        version = request.get("version")
        use_cache = request.get("use_cache", True)
        if not isinstance(use_cache, bool):
            # bool("false") is True: a silently miscoerced string would
            # invert the caller's intent, so demand a real JSON boolean.
            self._send_error_json(
                400, f'"use_cache" must be a JSON boolean, got '
                     f'{use_cache!r}')
            return
        try:
            if "inputs" in request:
                payload = self.service.predict_many(
                    request["inputs"], model=model, version=version,
                    use_cache=use_cache)
            elif "input" in request:
                payload = self.service.predict(request["input"], model=model,
                                               version=version,
                                               use_cache=use_cache)
            else:
                self._send_error_json(
                    400, 'body needs "input" (one sample) or "inputs" '
                         '(a list of samples)')
                return
        except Overloaded as exc:  # admission control refused
            self._send_overloaded(exc)
            return
        except KeyError as exc:  # unknown model/version
            self._send_error_json(404, str(exc.args[0]))
            return
        except Exception as exc:  # model raised / shapes wrong / shut down
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        self._send_json(payload)


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer with explicit rebind semantics.

    ``SO_REUSEADDR`` is always set (``allow_reuse_address``), so a restart
    never trips over the previous instance's TIME_WAIT socket.
    ``SO_REUSEPORT`` is opt-in: several processes may then bind the same
    port and let the kernel spread accepted connections across them — the
    multi-process alternative to a userspace router, and what a
    ``repro.cluster`` front end can hide behind on platforms that have it.
    """

    allow_reuse_address = True
    reuse_port = False  # overridden per-instance before bind via subclassing
    # socketserver's default listen backlog is 5; clients that open a
    # connection per request (urllib, curl) overflow it under modest
    # concurrency, and every dropped SYN costs a full 1 s retransmit —
    # which shows up as a mysterious ~1000 ms p99 and occasional resets.
    request_queue_size = 128

    def server_bind(self):
        if self.reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise OSError("SO_REUSEPORT is not supported on this "
                              "platform")
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


class InferenceHTTPServer:
    """Owns the listening socket and its serve thread.

    ``port=0`` binds an ephemeral port — the actually bound one is in
    ``.port`` (and ``.url``) as soon as the constructor returns, which is
    what the tests, the cluster front end, and the load harness use so they
    never race on fixed port numbers.  ``reuse_port=True`` additionally
    sets ``SO_REUSEPORT`` before binding (Linux/BSD; raises ``OSError``
    where unsupported).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 8100,
                 reuse_port: bool = False):
        handler = type("BoundHandler", (_Handler,), {"service": service})
        server_cls = type("BoundServer", (_Server,),
                          {"reuse_port": bool(reuse_port)})
        self.service = service
        self._httpd = server_cls((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "InferenceHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting connections; the service itself is left running."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def serve_until_signal(self, signals: Tuple[int, ...] = (
            signal.SIGINT, signal.SIGTERM)) -> Optional[int]:
        """Foreground mode for the CLI: block until one of ``signals``.

        Installs handlers for the given signals (previous handlers are
        restored on exit), serves until one arrives, then stops accepting
        connections and returns the signal number received — so the caller
        can drain the service and report the drained bool instead of dying
        mid-batch on SIGTERM the way the default handler would.

        Must be called from the main thread (CPython delivers signals
        there).  The HTTP server itself runs on a background thread; the
        main thread only waits, so handlers fire promptly.
        """
        stop = threading.Event()
        received: Dict[str, int] = {}

        def on_signal(signum, frame):
            del frame
            received.setdefault("signum", signum)
            stop.set()

        previous = {s: signal.signal(s, on_signal) for s in signals}
        if self._thread is None:
            self.start()
        try:
            # wait() without a timeout blocks in C and can starve signal
            # delivery on some platforms; a coarse polling loop keeps the
            # main thread interruptible everywhere.
            while not stop.is_set():
                stop.wait(0.2)
        except KeyboardInterrupt:  # SIGINT not in `signals`
            received.setdefault("signum", int(signal.SIGINT))
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.stop()
        return received.get("signum")

    def serve_until_interrupt(self) -> None:
        """Backward-compatible foreground mode: Ctrl-C/SIGTERM stop cleanly."""
        self.serve_until_signal()
