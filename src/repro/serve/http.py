"""Stdlib JSON-over-HTTP front for the inference service.

No framework, no dependencies: a ``ThreadingHTTPServer`` whose handler
translates three routes onto :class:`~repro.serve.service.InferenceService`
calls —

``POST /predict``
    Body ``{"input": [...], "model": "...", "version": "...",
    "use_cache": true}`` (model, version and use_cache optional;
    ``"inputs": [[...], ...]`` answers a list in one request).
    ``"use_cache": false`` forces real inference past the prediction
    cache (the fresh result still refreshes the cache).  Response is the
    service's prediction dict (or a list of them).
``GET /healthz``
    Liveness: status, model count, request count, uptime.
``GET /metrics``
    The full telemetry payload: latency percentiles, batch-size histogram,
    cache hit rate, per-request energy, model listing.

Each HTTP connection is handled on its own thread, so concurrent clients
land in the micro-batcher together — the HTTP layer adds no serialization
of its own.

Connections are HTTP/1.1 keep-alive, which makes body accounting part of
correctness: an error response sent with request bytes still unread would
leave those bytes in front of the next request on the same connection and
desync it.  Error paths therefore either drain the unread body first
(small bodies, wrong route) or send ``Connection: close`` (oversized or
unparseable-length requests, where draining is the wrong tool).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .service import InferenceService

MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    service: InferenceService  # injected by the server factory
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default
        pass

    def _send_json(self, payload, status: int = 200,
                   close: bool = False) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str,
                         close: bool = False) -> None:
        self._send_json({"error": message}, status=status, close=close)

    def _drain_body(self, remaining: int) -> None:
        """Discard unread request body so keep-alive framing stays aligned."""
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 64 * 1024))
            if not chunk:
                break
            remaining -= len(chunk)

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/healthz":
            self._send_json(self.service.healthz())
        elif self.path == "/metrics":
            self._send_json(self.service.metrics())
        else:
            self._send_error_json(404, f"no route {self.path}")

    def do_POST(self) -> None:  # noqa: N802
        if self.headers.get("Transfer-Encoding"):
            # The stdlib handler does not decode chunked bodies, so the
            # request's end is unknowable; close to resync the connection.
            self._send_error_json(
                411, "chunked bodies unsupported; send Content-Length",
                close=True)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (ValueError, TypeError):
            length = -1
        if length < 0:
            # Without a parseable length this request's end is unknowable;
            # the only way to resync the connection is to drop it.
            self._send_error_json(400, "bad Content-Length", close=True)
            return
        if length > MAX_BODY_BYTES:
            # Checked before any route handling (including the 404 drain
            # below): draining would defeat the limit's point — reading
            # the very bytes it refuses — so resync by closing instead.
            self._send_error_json(413, "request body too large", close=True)
            return
        if self.path != "/predict":
            self._drain_body(length)
            self._send_error_json(404, f"no route {self.path}")
            return
        # The body is fully read from here on: 400s below are keep-alive
        # safe.
        try:
            request = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError) as exc:
            self._send_error_json(400, f"bad JSON body: {exc}")
            return
        if not isinstance(request, dict):
            self._send_error_json(
                400, f"body must be a JSON object, got "
                     f"{type(request).__name__}")
            return
        model = request.get("model")
        version = request.get("version")
        use_cache = request.get("use_cache", True)
        if not isinstance(use_cache, bool):
            # bool("false") is True: a silently miscoerced string would
            # invert the caller's intent, so demand a real JSON boolean.
            self._send_error_json(
                400, f'"use_cache" must be a JSON boolean, got '
                     f'{use_cache!r}')
            return
        try:
            if "inputs" in request:
                payload = self.service.predict_many(
                    request["inputs"], model=model, version=version,
                    use_cache=use_cache)
            elif "input" in request:
                payload = self.service.predict(request["input"], model=model,
                                               version=version,
                                               use_cache=use_cache)
            else:
                self._send_error_json(
                    400, 'body needs "input" (one sample) or "inputs" '
                         '(a list of samples)')
                return
        except KeyError as exc:  # unknown model/version
            self._send_error_json(404, str(exc.args[0]))
            return
        except Exception as exc:  # model raised / shapes wrong / shut down
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        self._send_json(payload)


class InferenceHTTPServer:
    """Owns the listening socket and its serve thread.

    ``port=0`` binds an ephemeral port (the real one is in ``.port`` after
    construction), which is what the tests and the load harness use.
    """

    def __init__(self, service: InferenceService, host: str = "127.0.0.1",
                 port: int = 8100):
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "InferenceHTTPServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting connections; the service itself is left running."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def serve_until_interrupt(self) -> None:
        """Foreground mode for the CLI: Ctrl-C stops cleanly."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self._httpd.server_close()
