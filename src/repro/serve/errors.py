"""Serving-layer error types shared by the HTTP front and the cluster tier.

Kept in their own module so the cluster front end (``repro.cluster``) can
raise them without importing the whole in-process service stack, and so the
HTTP handler can map them to status codes without caring which tier raised
them.
"""

from __future__ import annotations


class Overloaded(RuntimeError):
    """The serving tier refused a request under admission control.

    The HTTP layer maps this to ``503 Service Unavailable`` with a
    ``Retry-After`` header of ``retry_after_s`` (rounded up to whole
    seconds, minimum 1 — the header's unit).  Raised by the cluster front
    end when every live worker is at its in-flight bound, or when no live
    worker exists at all (e.g. mid-restart with quorum lost).
    """

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class WorkerDied(RuntimeError):
    """A cluster worker process exited with requests still in flight.

    Every pending future on the dead worker's pipe resolves to this; the
    front end surfaces it as a ``500`` (the request was accepted and then
    genuinely lost — admission control cannot retroactively refuse it).
    """
