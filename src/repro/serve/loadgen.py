"""Closed-loop load generator for the serving stack.

``n_clients`` threads each issue their share of requests back-to-back (a
*closed loop*: the next request starts when the previous answer arrives —
throughput is therefore limited by service latency, exactly the regime
micro-batching improves).  Works against either target kind:

* in-process — pass ``service_predict_fn(service)`` (or any callable
  taking one sample);
* over HTTP — pass ``http_predict_fn(url)``, which POSTs ``/predict`` with
  stdlib ``urllib`` only.

Returns a :class:`LoadReport` with throughput, client-side latency
percentiles, and error/cache counts — what the serving benchmark asserts
its >= 3x speedup on and what the CI smoke job prints.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .errors import Overloaded
from .telemetry import percentile


@dataclasses.dataclass
class LoadReport:
    """Aggregated result of one closed-loop load run.

    ``rejected`` counts admission-control refusals (``Overloaded`` /
    HTTP 503) separately from ``errors``: an overloaded tier shedding load
    is behaving correctly, a tier answering 500s is not — a benchmark or
    smoke test must be able to tell them apart.
    """

    requests: int
    errors: int
    duration_s: float
    throughput_rps: float
    latency_ms: Dict[str, float]
    cache_hits: int
    n_clients: int
    rejected: int = 0

    def row(self) -> dict:
        return {
            "clients": self.n_clients,
            "requests": self.requests,
            "rps": round(self.throughput_rps, 1),
            "p50 (ms)": round(self.latency_ms["p50"], 2),
            "p99 (ms)": round(self.latency_ms["p99"], 2),
            "errors": self.errors,
            "rejected": self.rejected,
        }


def service_predict_fn(service, model: Optional[str] = None,
                       version: Optional[str] = None) -> Callable:
    """In-process target: calls ``service.predict`` directly."""
    def fn(x):
        return service.predict(x, model=model, version=version)
    return fn


def http_predict_fn(url: str, model: Optional[str] = None,
                    version: Optional[str] = None,
                    timeout: float = 30.0) -> Callable:
    """HTTP target: POSTs each sample to ``<url>/predict``.

    A ``503`` answer is re-raised as :class:`Overloaded` (honoring the
    server's ``Retry-After``), so :func:`run_load` counts it as a
    *rejected* request rather than a hard error — the same taxonomy the
    in-process target gets for free.
    """
    def fn(x):
        body: dict = {"input": np.asarray(x, dtype=float).tolist()}
        if model is not None:
            body["model"] = model
        if version is not None:
            body["version"] = version
        request = urllib.request.Request(
            url.rstrip("/") + "/predict", data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            if exc.code == 503:
                try:
                    retry_after = float(exc.headers.get("Retry-After", 1))
                except (TypeError, ValueError):
                    retry_after = 1.0
                exc.read()
                raise Overloaded("server overloaded",
                                 retry_after_s=retry_after) from None
            raise
    return fn


def run_load(predict_fn: Callable, samples: Sequence,
             n_requests: int = 200, n_clients: int = 8) -> LoadReport:
    """Fire ``n_requests`` through ``predict_fn`` from ``n_clients`` threads.

    Requests cycle through ``samples`` round-robin (repeats are deliberate
    — they exercise the prediction cache).  Client threads start together
    on a barrier so the measured window only contains steady-state load.
    """
    samples = [np.asarray(s, dtype=float) for s in samples]
    if not samples:
        raise ValueError("need at least one sample to send")
    n_clients = max(1, min(int(n_clients), int(n_requests)))
    shares = [n_requests // n_clients] * n_clients
    for i in range(n_requests % n_clients):
        shares[i] += 1

    latencies: List[List[float]] = [[] for _ in range(n_clients)]
    errors = [0] * n_clients
    rejected = [0] * n_clients
    cache_hits = [0] * n_clients
    barrier = threading.Barrier(n_clients + 1)

    def client(idx: int, share: int) -> None:
        barrier.wait()
        for j in range(share):
            x = samples[(idx + j * n_clients) % len(samples)]
            t0 = time.perf_counter()
            try:
                response = predict_fn(x)
            except Overloaded:
                rejected[idx] += 1
                continue
            except Exception:
                errors[idx] += 1
                continue
            latencies[idx].append((time.perf_counter() - t0) * 1e3)
            if isinstance(response, dict) and response.get("cached"):
                cache_hits[idx] += 1

    threads = [threading.Thread(target=client, args=(i, share), daemon=True)
               for i, share in enumerate(shares)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t0

    flat = sorted(ms for client_ms in latencies for ms in client_ms)
    total_errors = sum(errors)
    total_rejected = sum(rejected)
    done = len(flat)
    return LoadReport(
        requests=done + total_errors + total_rejected,
        errors=total_errors,
        rejected=total_rejected,
        duration_s=duration,
        throughput_rps=done / duration if duration > 0 else 0.0,
        latency_ms={
            "mean": sum(flat) / done if done else 0.0,
            "p50": percentile(flat, 50),
            "p95": percentile(flat, 95),
            "p99": percentile(flat, 99),
        },
        cache_hits=sum(cache_hits),
        n_clients=n_clients,
    )
