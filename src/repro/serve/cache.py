"""LRU cache of predictions, keyed by input digest + model version.

Serving workloads repeat inputs (health probes, hot rows, retries); a
phase-1 inference pass is deterministic for a fixed set of weights, so the
(model name, model version, input digest) triple fully determines the
prediction and can be cached.  The version component is what keeps a
hot-swap correct: swapping in new weights under the same model name bumps
the version, so every cached prediction of the old weights simply stops
being addressable (and :meth:`PredictionCache.invalidate` reclaims the
space eagerly).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

CacheKey = Tuple[str, str, str]


def input_digest(x: np.ndarray) -> str:
    """Content digest of one input sample (dtype/shape canonicalized)."""
    arr = np.ascontiguousarray(np.asarray(x, dtype=np.float64))
    h = hashlib.sha1(arr.tobytes())
    h.update(str(arr.shape).encode())
    return h.hexdigest()


class PredictionCache:
    """Thread-safe LRU map ``(model, version, input digest) -> prediction``.

    ``capacity=0`` disables caching (every lookup misses, nothing is
    stored), which is how the service exposes a cache-off mode without a
    second code path.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, object]" = OrderedDict()  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    @staticmethod
    def key(x: np.ndarray, model: str, version: str) -> CacheKey:
        return (model, version, input_digest(x))

    def get(self, key: CacheKey) -> Optional[object]:
        """The cached prediction, or ``None`` (a miss); refreshes recency."""
        from .. import obs

        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                hit = True
                value = self._entries[key]
            else:
                self.misses += 1
                hit = False
                value = None
        obs.counter("serve_cache_lookups", outcome="hit" if hit else "miss")
        return value

    def put(self, key: CacheKey, value: object) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, model: Optional[str] = None) -> int:
        """Drop entries of ``model`` (all entries when ``None``); returns count."""
        with self._lock:
            if model is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            stale = [k for k in self._entries if k[0] == model]
            for k in stale:
                del self._entries[k]
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }
