"""Per-request serving telemetry and the Loihi energy-per-request model.

The service records one sample per answered request — end-to-end latency,
queue wait, dispatched batch size, whether the cache answered, and the
modeled chip energy the request would have cost — and aggregates them into
the ``/metrics`` payload: p50/p95/p99 latency, a batch-size histogram, and
energy totals.  Aggregation keeps a bounded reservoir of the most recent
samples (latency percentiles of a long-running service should describe the
recent past, not the cold start) plus exact running counters.

The energy figure extends the Table II story to request level: a request
served from cache costs no chip time, while a dispatched request costs one
phase-1 inference pass priced by :class:`repro.loihi.energy.EnergyModel`.
For a compiled on-chip trainer the real mapping is used; for the software
models a synthetic packing of ``neurons_per_core=10`` (the paper's
operating point) prices the same-sized network as if it were deployed.
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter, deque
from typing import Dict, List, Sequence

#: Assumed mean firing rate (spikes per neuron-step) when estimating the
#: synaptic event traffic of one inference pass.  Matches the mid-range
#: activity the Fig. 3 sweep measures on trained networks.
ACTIVITY_RATE = 0.25

#: The paper's operating point, used to price software models as-if mapped.
DEFAULT_NEURONS_PER_CORE = 10


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = (len(sorted_values) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return float(sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac)


def estimate_request_energy_mj(model) -> float:
    """Modeled chip energy (mJ) of one inference request against ``model``.

    Accepts any of the three served families:

    * ``LoihiEMSTDPTrainer`` with a compiled mapping — priced with its real
      core mapping and compartment counts;
    * ``EMSTDPNetwork`` — priced as if its ``dims`` were mapped at the
      paper's 10 neurons/core packing for ``T`` steps;
    * ``BackpropMLP`` — priced the same way for a single step (a rate ANN
      needs one pass, not a ``T``-step presentation).
    """
    from ..loihi.energy import EnergyModel, RunStats

    mapping = getattr(model, "mapping", None)
    if mapping is not None:  # compiled on-chip trainer
        network = model.model.network
        steps = model.model.config.T
        dims = tuple(model.model.dims)
        compartments = network.n_compartments()
        cores = mapping.cores_used
        max_per_core = mapping.max_compartments_sweep_cores
    else:
        dims = tuple(model.dims)
        config = getattr(model, "config", None)
        steps = config.T if config is not None else 1
        compartments = sum(dims)
        max_per_core = min(DEFAULT_NEURONS_PER_CORE, compartments)
        cores = math.ceil(compartments / max_per_core)
    synapses = sum(a * b for a, b in zip(dims[:-1], dims[1:]))
    stats = RunStats(
        steps=steps, samples=1,
        spikes=int(ACTIVITY_RATE * compartments * steps),
        syn_events=int(ACTIVITY_RATE * synapses * steps),
        learning_epochs=0, plastic_synapses=0,
    )
    report = EnergyModel().report(
        stats, cores_used=cores, max_compartments_per_core=max_per_core,
        compartments=compartments, learning=False)
    return float(report.energy_per_sample_mj)


class Telemetry:
    """Thread-safe aggregator of per-request serving samples."""

    def __init__(self, reservoir: int = 10_000):
        self._lock = threading.Lock()
        self._latency_ms: "deque[float]" = deque(maxlen=reservoir)  # guarded-by: _lock
        self._queue_ms: "deque[float]" = deque(maxlen=reservoir)  # guarded-by: _lock
        self._batch_sizes: Counter = Counter()  # guarded-by: _lock
        self.requests = 0  # guarded-by: _lock
        self.cached_requests = 0  # guarded-by: _lock
        self.errors = 0  # guarded-by: _lock
        self.energy_mj_total = 0.0  # guarded-by: _lock
        self.started_at = time.monotonic()

    def record(self, latency_ms: float, queue_ms: float, batch_size: int,
               cached: bool, energy_mj: float) -> None:
        with self._lock:
            self.requests += 1
            self._latency_ms.append(float(latency_ms))
            if cached:
                self.cached_requests += 1
            else:
                self._queue_ms.append(float(queue_ms))
                self._batch_sizes[int(batch_size)] += 1
            self.energy_mj_total += float(energy_mj)

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    @staticmethod
    def _dist(values: List[float]) -> Dict[str, float]:
        values = sorted(values)
        return {
            "mean": sum(values) / len(values) if values else 0.0,
            "p50": percentile(values, 50),
            "p95": percentile(values, 95),
            "p99": percentile(values, 99),
            "max": values[-1] if values else 0.0,
        }

    def snapshot(self) -> dict:
        with self._lock:
            dispatched = self.requests - self.cached_requests
            return {
                "requests": self.requests,
                "cached_requests": self.cached_requests,
                "dispatched_requests": dispatched,
                "errors": self.errors,
                "uptime_s": time.monotonic() - self.started_at,
                "latency_ms": self._dist(list(self._latency_ms)),
                "queue_ms": self._dist(list(self._queue_ms)),
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self._batch_sizes.items())},
                "mean_batch_size": (
                    sum(s * c for s, c in self._batch_sizes.items())
                    / max(sum(self._batch_sizes.values()), 1)),
                "energy_mj_total": self.energy_mj_total,
                "energy_mj_per_request": (
                    self.energy_mj_total / self.requests
                    if self.requests else 0.0),
            }


def merge_batch_histograms(histograms: Sequence[Dict[str, int]],
                           ) -> Dict[str, int]:
    """Sum per-process ``batch_size_histogram`` dicts (cluster totals).

    Batch-size counts are exact counters keyed by integer size, so unlike
    latency reservoirs they merge losslessly across workers.
    """
    merged: Counter = Counter()
    for hist in histograms:
        for size, count in (hist or {}).items():
            merged[str(size)] += int(count)
    return {size: merged[size]
            for size in sorted(merged, key=lambda s: int(s))}
