"""The in-process inference service facade.

Glues the serving pieces together behind one ``predict`` call:

1. resolve the request's (model, version) through the
   :class:`~repro.serve.registry.ModelRegistry` (hot-swap aware);
2. probe the :class:`~repro.serve.cache.PredictionCache` — a hit answers
   immediately with zero modeled chip energy;
3. on a miss, submit to that entry's
   :class:`~repro.serve.batcher.MicroBatcher` (one batcher per active
   (name, version), created lazily) and wait for the batched result;
4. record telemetry (latency, queue wait, batch size, cache outcome,
   energy) and fill the cache.

Model hot-swaps invalidate the swapped name's cache entries; requests
already in the old version's batcher finish on the weights they started
on, and the old batcher stays alive for explicitly version-pinned
requests until ``shutdown()`` closes every batcher (in-flight requests
complete; new ones are refused).  One batcher per served (name, version)
is the steady state — a collector thread plus the worker pool each —
bounded by the number of registered versions.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from .batcher import MicroBatcher
from .cache import PredictionCache
from .registry import ModelEntry, ModelRegistry
from .telemetry import Telemetry


class InferenceService:
    """Request/response predictions over a registry of batched models.

    Parameters
    ----------
    registry:
        The model registry to serve from (may keep gaining models and
        versions while the service runs).
    max_batch / max_wait_ms / workers:
        Micro-batching knobs, applied to every per-model batcher: flush
        when ``max_batch`` requests accumulated or ``max_wait_ms`` after
        the first queued request, executed on ``workers`` threads.
    cache_size:
        LRU prediction-cache capacity (``0`` disables caching).
    """

    def __init__(self, registry: ModelRegistry, max_batch: int = 32,
                 max_wait_ms: float = 5.0, cache_size: int = 1024,
                 workers: int = 1):
        self.registry = registry
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.workers = int(workers)
        self.cache = PredictionCache(cache_size)
        self.telemetry = Telemetry()
        self._batchers: Dict[Tuple[str, str], MicroBatcher] = {}  # guarded-by: _lock
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        registry.subscribe(self._on_swap)

    # -- hot-swap plumbing ----------------------------------------------

    def _on_swap(self, name: str, old_version: Optional[str],
                 new_version: str) -> None:
        """Registry activated a new version: drop the name's stale cache.

        The old version's batcher is deliberately left running: a request
        that resolved the old entry moments before the swap must still be
        servable (closing it here would race ``predict`` between
        ``_batcher()`` and ``submit()``), and explicitly version-pinned
        requests keep using it.  ``shutdown()`` closes it with the rest.
        """
        del old_version, new_version
        self.cache.invalidate(name)

    def _batcher(self, entry: ModelEntry) -> MicroBatcher:
        key = (entry.name, entry.version)
        with self._lock:
            if self._closed:
                raise RuntimeError("InferenceService is shut down")
            batcher = self._batchers.get(key)
            if batcher is None:
                batcher = MicroBatcher(
                    entry.model.predict_batch, max_batch=self.max_batch,
                    max_wait_ms=self.max_wait_ms, workers=self.workers)
                self._batchers[key] = batcher
            return batcher

    # -- request path ----------------------------------------------------

    def predict(self, x: np.ndarray, model: Optional[str] = None,
                version: Optional[str] = None, use_cache: bool = True,
                ) -> dict:
        """Answer one single-sample prediction request.

        Returns a JSON-ready dict: ``prediction``, the serving ``model`` /
        ``version``, ``cached``, ``batch_size`` (0 for cache hits),
        ``queue_ms``, ``latency_ms``, and the modeled ``energy_mj``.
        """
        return self._gather(self._begin(x, model, version, use_cache))

    def _begin(self, x, model: Optional[str], version: Optional[str],
               use_cache: bool) -> dict:
        """Resolve + cache-probe + batcher-submit one request (non-blocking)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("InferenceService is shut down")
        t0 = time.perf_counter()
        x = np.asarray(x, dtype=float)
        try:
            entry = self.registry.resolve(model, version)
            key = self.cache.key(x, entry.name, entry.version)
            if use_cache:
                hit = self.cache.get(key)
                if hit is not None:
                    return {"t0": t0, "entry": entry, "hit": hit}
            future = self._batcher(entry).submit(x)
        except Exception:
            self.telemetry.record_error()
            raise
        return {"t0": t0, "entry": entry, "key": key, "future": future}

    def _gather(self, state: dict) -> dict:
        """Wait for a begun request and record its telemetry."""
        entry = state["entry"]
        if "hit" in state:
            latency_ms = (time.perf_counter() - state["t0"]) * 1e3
            self.telemetry.record(latency_ms, 0.0, 0, cached=True,
                                  energy_mj=0.0)
            obs.counter("serve_requests", model=entry.name, outcome="hit")
            obs.observe("serve_latency_ms", latency_ms, outcome="hit")
            return self._response(state["hit"], entry, cached=True,
                                  batch_size=0, queue_ms=0.0,
                                  latency_ms=latency_ms, energy_mj=0.0)
        try:
            item = state["future"].result()
        except Exception:
            self.telemetry.record_error()
            obs.counter("serve_requests", model=entry.name, outcome="error")
            raise
        value = int(item.value)
        self.cache.put(state["key"], value)
        latency_ms = (time.perf_counter() - state["t0"]) * 1e3
        self.telemetry.record(latency_ms, item.queue_ms, item.batch_size,
                              cached=False,
                              energy_mj=entry.energy_mj_per_request)
        obs.counter("serve_requests", model=entry.name, outcome="miss")
        obs.observe("serve_latency_ms", latency_ms, outcome="miss")
        return self._response(value, entry, cached=False,
                              batch_size=item.batch_size,
                              queue_ms=item.queue_ms, latency_ms=latency_ms,
                              energy_mj=entry.energy_mj_per_request)

    @staticmethod
    def _response(value, entry: ModelEntry, cached: bool, batch_size: int,
                  queue_ms: float, latency_ms: float,
                  energy_mj: float) -> dict:
        return {
            "prediction": int(value),
            "model": entry.name,
            "version": entry.version,
            "cached": cached,
            "batch_size": batch_size,
            "queue_ms": round(queue_ms, 3),
            "latency_ms": round(latency_ms, 3),
            "energy_mj": energy_mj if not cached else 0.0,
        }

    def predict_many(self, X: Sequence, model: Optional[str] = None,
                     version: Optional[str] = None,
                     use_cache: bool = True) -> list:
        """Predict a whole list: all requests are submitted *before* any is
        awaited, so they coalesce into micro-batches even from a single
        caller thread (a sequential ``predict`` loop would dispatch each
        sample alone after a full ``max_wait_ms`` stall)."""
        started = [self._begin(x, model, version, use_cache) for x in X]
        return [self._gather(state) for state in started]

    # -- introspection ---------------------------------------------------

    def pending(self) -> int:
        """Requests queued in batchers but not yet dispatched."""
        with self._lock:
            batchers = list(self._batchers.values())
        return sum(b.pending() for b in batchers)

    def healthz(self) -> dict:
        snap = self.telemetry.snapshot()
        with self._lock:
            closed = self._closed
        return {
            "status": "down" if closed else "ok",
            "models": len(self.registry),
            "requests": snap["requests"],
            "uptime_s": round(snap["uptime_s"], 3),
            "pid": os.getpid(),
        }

    def metrics(self) -> dict:
        """The ``/metrics`` payload: telemetry + cache + model listing.

        Besides the aggregate telemetry, the payload identifies *which*
        process and *which* model versions produced it (``pid``,
        ``uptime_s``, ``active_versions``) — in a cluster, the aggregated
        view needs to attribute load to individual workers, and a bare
        latency histogram cannot.
        """
        payload = self.telemetry.snapshot()
        payload["pid"] = os.getpid()
        payload["cache"] = self.cache.stats()
        payload["models"] = self.registry.models()
        payload["active_versions"] = self.registry.active_versions()
        payload["pending"] = self.pending()
        # Snapshot under the lock: _batcher() inserts and shutdown()'s
        # clear() mutate the dict concurrently with /metrics scrapes.
        with self._lock:
            active_batchers = len(self._batchers)
        payload["batching"] = {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "workers": self.workers,
            "active_batchers": active_batchers,
        }
        payload["obs"] = obs.metrics.snapshot()
        return payload

    # -- lifecycle -------------------------------------------------------

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Drain every batcher (in-flight requests finish) and stop.

        Returns ``True`` when every batcher drained — with a ``timeout``,
        ``False`` means at least one close timed out with requests still
        in flight.  The timeout applies per batcher.  Undrained batchers
        stay registered so a later ``shutdown()`` call re-joins them
        instead of vacuously succeeding; only a ``True`` return means the
        drain actually happened.
        """
        with self._lock:
            self._closed = True  # _batcher() refuses new entries from here
            batchers = dict(self._batchers)
        drained = True
        for key, batcher in batchers.items():
            if batcher.close(timeout):
                with self._lock:
                    self._batchers.pop(key, None)
            else:
                drained = False
        return drained

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "InferenceService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
