"""Micro-batching request scheduler.

Single-sample prediction requests arrive concurrently from many client
threads; dispatching each one alone through ``predict_batch`` wastes the
batched engine (the whole point of PR 1 is that a ``(B, n_in)`` block costs
barely more than one sample).  The :class:`MicroBatcher` closes the gap: a
collector thread accumulates queued requests into one batch and flushes it

* **on full** — the batch reached ``max_batch``, or
* **on deadline** — ``max_wait_ms`` elapsed since the *first* request of
  the forming batch entered the queue (so a lone request never waits more
  than one deadline, and a trickle of requests still coalesces).

After a deadline expires the collector also greedily drains whatever is
already queued (non-blocking, up to ``max_batch``), so a backlog produces
full batches instead of degenerating into batch-of-one flushes.

Flushed batches are handed to a worker pool (``workers`` threads) that
stacks the samples, calls the runner once, and resolves each request's
future with its own row plus scheduling telemetry (batch size, queue wait).
``close()`` is graceful: no new requests are accepted, everything already
queued is still batched and answered, and the workers are joined.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

import numpy as np

from .. import obs


@dataclasses.dataclass(frozen=True)
class ItemResult:
    """What a request's future resolves to."""

    value: object
    batch_size: int
    queue_ms: float


@dataclasses.dataclass
class _Pending:
    x: np.ndarray
    future: Future
    enqueued: float


class MicroBatcher:
    """Accumulates concurrent single-sample requests into batches.

    Parameters
    ----------
    runner:
        ``(B, n_in) array -> length-B sequence`` — typically a model's
        ``predict_batch``.  Called from worker threads; must be thread-safe
        for read-only inference (NumPy forward passes are).
    max_batch:
        Flush as soon as this many requests have accumulated.
    max_wait_ms:
        Flush at the latest this long after the first queued request of the
        batch, even if the batch is not full.
    workers:
        Worker threads executing flushed batches (batches run concurrently
        when > 1; request order within a batch is always preserved).
    """

    def __init__(self, runner: Callable[[np.ndarray], Sequence],
                 max_batch: int = 32, max_wait_ms: float = 5.0,
                 workers: int = 1):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.runner = runner
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self._queue: "queue.Queue[_Pending]" = queue.Queue()
        self._closing = threading.Event()
        # Serializes the closing-flag check against the enqueue: without
        # it, a submit() racing close() could land its request after the
        # collector drained the queue, leaving the future unresolved.
        self._submit_lock = threading.Lock()
        self._lock = threading.Lock()
        self.batches_dispatched = 0  # guarded-by: _lock
        self.requests_done = 0  # guarded-by: _lock
        self._pool = ThreadPoolExecutor(
            max_workers=max(int(workers), 1),
            thread_name_prefix="microbatch-worker")
        self._collector = threading.Thread(
            target=self._collect, name="microbatch-collector", daemon=True)
        self._collector.start()

    # -- client side -----------------------------------------------------

    def submit(self, x: np.ndarray) -> "Future[ItemResult]":
        """Enqueue one sample; resolves to an :class:`ItemResult`."""
        pending = _Pending(np.asarray(x, dtype=float), Future(),
                           time.monotonic())
        with self._submit_lock:
            if self._closing.is_set():
                raise RuntimeError("MicroBatcher is closed")
            self._queue.put(pending)
        return pending.future

    def pending(self) -> int:
        """Requests queued but not yet dispatched."""
        return self._queue.qsize()

    # -- collector thread ------------------------------------------------

    def _collect(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.02)
            except queue.Empty:
                if not self._closing.is_set():
                    continue
                # Closing: no further enqueues are possible (submit and
                # close share a lock), so one final non-blocking check
                # completes the drain even if a request landed between the
                # timed-out get above and the flag becoming visible.
                try:
                    first = self._queue.get_nowait()
                except queue.Empty:
                    break
            batch = [first]
            deadline = first.enqueued + self.max_wait_s
            while len(batch) < self.max_batch and not self._closing.is_set():
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=timeout))
                except queue.Empty:
                    break
            # Deadline passed (or closing): top the batch up from whatever
            # is already queued so a backlog still flushes full batches.
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            with self._lock:
                self.batches_dispatched += 1
            obs.counter("serve_batches_dispatched")
            obs.observe("serve_batch_size", len(batch),
                        buckets=(1, 2, 4, 8, 16, 32, 64, 128))
            self._pool.submit(self._run_batch, batch)
        self._pool.shutdown(wait=True)

    # -- worker side -----------------------------------------------------

    def _run_batch(self, batch: List[_Pending]) -> None:
        dispatched = time.monotonic()
        try:
            values = self.runner(np.stack([p.x for p in batch]))
        except Exception as exc:  # propagate to every caller in the batch
            for p in batch:
                p.future.set_exception(exc)
            return
        if len(values) != len(batch):
            exc = RuntimeError(
                f"runner returned {len(values)} results for a batch of "
                f"{len(batch)}")
            for p in batch:
                p.future.set_exception(exc)
            return
        for p, value in zip(batch, values):
            p.future.set_result(ItemResult(
                value=value, batch_size=len(batch),
                queue_ms=(dispatched - p.enqueued) * 1e3))
        with self._lock:
            self.requests_done += len(batch)

    # -- shutdown --------------------------------------------------------

    def close(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: drain queued requests, then join the workers.

        Requests already submitted are still batched and answered; new
        ``submit`` calls raise.  Safe to call more than once.

        Returns ``True`` when the collector drained and exited within
        ``timeout`` (every accepted request has its answer), ``False``
        when the join timed out with requests still in flight — callers
        that pass a timeout must check, not assume the drain happened.
        """
        with self._submit_lock:
            # Once the flag is set under the lock no further enqueue can
            # happen, so everything in the queue predates it and the
            # collector is guaranteed to drain it before exiting.
            self._closing.set()
        self._collector.join(timeout)
        return not self._collector.is_alive()

    @property
    def closed(self) -> bool:
        return self._closing.is_set()
