"""Named, versioned registry of servable models with hot-swap.

The registry maps ``name -> {version -> model}`` plus one *active* version
per name and one default name for the whole registry.  Serving always goes
through :meth:`ModelRegistry.resolve`, so activating a different version
(hot-swap) atomically redirects every subsequent request; subscribers —
the :class:`~repro.serve.service.InferenceService` cache, chiefly — are
notified with ``(name, old_version, new_version)`` so version-keyed state
can be invalidated.

Models come from three sources:

* :meth:`register` — an already-constructed object (anything with
  ``predict_batch``);
* :meth:`load` — a ``repro.persist`` checkpoint stem.  Checkpoints are
  self-describing (the state dict carries ``dims`` and, since this PR, the
  ``EMSTDPConfig``), so the registry rebuilds the exact model family the
  checkpoint was written from: ``EMSTDPNetwork``, ``BackpropMLP``, or
  ``LoihiEMSTDPTrainer`` (rebuilt on a fresh simulated chip, then the
  8-bit mantissas are restored);
* :meth:`load_source` — a stem, a directory of checkpoints, or a run id
  in a ``runs/`` store (loads every checkpoint of that run).
"""

from __future__ import annotations

import dataclasses
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from .. import obs
from ..persist import CheckpointError, checkpoint_paths, load_checkpoint
from .telemetry import estimate_request_energy_mj

SwapListener = Callable[[str, Optional[str], str], None]


@dataclasses.dataclass(frozen=True)
class ModelEntry:
    """One resolvable (name, version) pair."""

    name: str
    version: str
    model: object
    model_class: str
    dims: Tuple[int, ...]
    source: str
    energy_mj_per_request: float

    @property
    def n_classes(self) -> int:
        return self.dims[-1]


def model_from_checkpoint(stem: Union[str, Path]):
    """Reconstruct the checkpointed model object from its stem.

    Returns ``(model, manifest)``.  The model class comes from the
    manifest; its construction parameters come from the state dict
    (``dims``, ``config``/``lr``).  Checkpoints written before configs were
    stamped into the state fall back to the family's default config, with
    the bias neuron inferred from the stored weight shapes.
    """
    state, manifest = load_checkpoint(stem)
    cls = manifest.get("model_class")
    dims = tuple(int(d) for d in state["dims"])

    if cls == "EMSTDPNetwork":
        from ..core.config import EMSTDPConfig, full_precision_config
        from ..core.network import EMSTDPNetwork

        cfg_dict = state.get("config")
        if cfg_dict is not None:
            config = EMSTDPConfig(**cfg_dict)
        else:  # legacy checkpoint: infer what the weight shapes reveal
            has_bias = state["weights"][0].shape[0] == dims[0] + 1
            config = full_precision_config(use_bias_neuron=has_bias)
        model = EMSTDPNetwork(dims, config)
    elif cls == "BackpropMLP":
        from ..baselines.rate_ann import BackpropMLP

        model = BackpropMLP(dims, lr=float(state.get("lr", 0.05)))
    elif cls == "LoihiEMSTDPTrainer":
        from ..core.config import EMSTDPConfig, loihi_default_config
        from ..onchip import LoihiEMSTDPTrainer, build_emstdp_network

        cfg_dict = state.get("config")
        config = (EMSTDPConfig(**cfg_dict) if cfg_dict is not None
                  else loihi_default_config())
        # Serve through the batch-parallel replicated runtime: the
        # micro-batcher flushes up to its max batch in one predict_batch
        # call, so the replica width matches the default serving batch.
        model = LoihiEMSTDPTrainer(build_emstdp_network(dims, config),
                                   batch_replicas=32)
    else:
        raise CheckpointError(
            f"cannot serve a {cls!r} checkpoint (supported: EMSTDPNetwork, "
            f"BackpropMLP, LoihiEMSTDPTrainer)")
    model.load_state_dict(state)
    return model, manifest


class ModelRegistry:
    """Thread-safe name/version store behind the inference service."""

    def __init__(self):
        self._lock = threading.RLock()
        self._entries: Dict[str, Dict[str, ModelEntry]] = {}
        self._active: Dict[str, str] = {}
        self._default_name: Optional[str] = None
        self._listeners: List[SwapListener] = []

    # -- registration ----------------------------------------------------

    def register(self, name: str, model, version: Optional[str] = None,
                 source: str = "<object>", activate: bool = True) -> ModelEntry:
        """Add ``model`` under ``name``; returns its entry.

        ``version`` defaults to the next ``v<N>`` for that name.  With
        ``activate`` (the default) the new version immediately becomes the
        one ``resolve(name)`` hands out — a hot-swap when the name already
        serves an older version.
        """
        if not hasattr(model, "predict_batch"):
            raise TypeError(
                f"model {type(model).__name__} has no predict_batch; "
                "every served model must expose the batched inference API")
        dims = tuple(int(d) for d in
                     (model.model.dims if hasattr(model, "model")
                      else model.dims))
        with self._lock:
            versions = self._entries.setdefault(name, {})
            if version is None:
                version = f"v{len(versions) + 1}"
            if version in versions:
                raise ValueError(
                    f"model {name!r} already has a version {version!r}")
            entry = ModelEntry(
                name=name, version=version, model=model,
                model_class=type(model).__name__, dims=dims, source=source,
                energy_mj_per_request=estimate_request_energy_mj(model))
            versions[version] = entry
            if self._default_name is None:
                self._default_name = name
            if activate:
                self.activate(name, version)
        return entry

    def load(self, stem: Union[str, Path], name: Optional[str] = None,
             version: Optional[str] = None, activate: bool = True,
             ) -> ModelEntry:
        """Load one checkpoint stem and register it (name defaults to the stem)."""
        with obs.span("model_load", stem=str(stem)):
            model, _ = model_from_checkpoint(stem)
        obs.counter("serve_model_loads")
        npz_path, _ = checkpoint_paths(stem)
        if name is None:
            name = npz_path.name[:-len(".npz")]
        return self.register(name, model, version=version,
                             source=str(npz_path.parent / name),
                             activate=activate)

    def load_source(self, source: Union[str, Path],
                    store_root: Union[str, Path] = "runs",
                    ) -> List[ModelEntry]:
        """Load a checkpoint stem, a directory of checkpoints, or a run id.

        * a stem (with or without ``.npz``/``.json``) loads that checkpoint;
        * a directory loads every ``.npz``/``.json`` pair inside it;
        * anything else is treated as a run id (or unique prefix) in the
          ``store_root`` run store, loading that run's ``checkpoints/``.
        """
        path = Path(source)
        npz_path, json_path = checkpoint_paths(path)
        if npz_path.exists() or json_path.exists():
            return [self.load(path)]
        if path.is_dir():
            entries = self._load_dir(path)
            if not entries:
                raise CheckpointError(f"no checkpoint pairs under {path}")
            return entries
        from ..experiments.store import CHECKPOINT_DIR_NAME, RunStore

        try:
            run = RunStore(store_root).find(str(source))
        except KeyError:
            raise CheckpointError(
                f"{source!r} is neither a checkpoint stem, a directory, nor "
                f"a run id under {store_root}/") from None
        entries = self._load_dir(run.path / CHECKPOINT_DIR_NAME)
        if not entries:
            raise CheckpointError(
                f"run {run.run_id} has no checkpoints to serve")
        return entries

    def _load_dir(self, directory: Path) -> List[ModelEntry]:
        stems = sorted(p.with_suffix("") for p in directory.glob("*.json")
                       if checkpoint_paths(p)[0].exists())
        return [self.load(stem) for stem in stems]

    # -- hot-swap --------------------------------------------------------

    def activate(self, name: str, version: str) -> ModelEntry:
        """Make ``version`` the one ``resolve(name)`` serves (hot-swap)."""
        with self._lock:
            entry = self._entry(name, version)
            old = self._active.get(name)
            self._active[name] = version
            listeners = list(self._listeners)
        if old != version:
            obs.counter("serve_model_swaps", model=name)
            obs.event("model_swap", model=name, old_version=old,
                      new_version=version)
            for listener in listeners:
                listener(name, old, version)
        return entry

    def subscribe(self, listener: SwapListener) -> None:
        """Call ``listener(name, old_version, new_version)`` on every swap."""
        with self._lock:
            self._listeners.append(listener)

    def set_default(self, name: str) -> None:
        with self._lock:
            if name not in self._entries:
                raise KeyError(f"no model named {name!r}")
            self._default_name = name

    # -- resolution ------------------------------------------------------

    def _entry(self, name: str, version: str) -> ModelEntry:
        versions = self._entries.get(name)
        if not versions:
            raise KeyError(f"no model named {name!r} "
                           f"(registered: {sorted(self._entries)})")
        if version not in versions:
            raise KeyError(f"model {name!r} has no version {version!r} "
                           f"(available: {sorted(versions)})")
        return versions[version]

    def resolve(self, name: Optional[str] = None,
                version: Optional[str] = None) -> ModelEntry:
        """The entry serving ``name`` (default model, active version)."""
        with self._lock:
            if name is None:
                if self._default_name is None:
                    raise KeyError("registry is empty")
                name = self._default_name
            if version is None:
                version = self._active.get(name)
                if version is None:
                    raise KeyError(f"model {name!r} has no active version")
            return self._entry(name, version)

    def active_versions(self) -> Dict[str, str]:
        """``{name: active version}`` for every name that has one."""
        with self._lock:
            return dict(self._active)

    def models(self) -> List[dict]:
        """JSON-ready listing of every registered (name, version)."""
        with self._lock:
            out = []
            for name in sorted(self._entries):
                for version in sorted(self._entries[name]):
                    entry = self._entries[name][version]
                    out.append({
                        "name": name,
                        "version": version,
                        "active": self._active.get(name) == version,
                        "default": name == self._default_name,
                        "model_class": entry.model_class,
                        "dims": list(entry.dims),
                        "source": entry.source,
                        "energy_mj_per_request":
                            entry.energy_mj_per_request,
                    })
            return out

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._entries.values())
