"""Input corruption for robustness sweeps.

The paper's deployment story is edge sensing — inputs arrive noisy, and an
on-chip learner's accuracy under input corruption is part of the
accuracy/energy surface the sweeps map out.  Three corruption families,
each parameterized by one ``level`` knob in ``[0, 1]`` (0 = identity):

``gaussian``
    Additive pixel noise with standard deviation ``level`` (clipped back
    to ``[0, 1]``) — sensor read noise.
``salt_pepper``
    A ``level`` fraction of pixels forced to 0 or 1 — dead/hot pixels and
    transmission bit flips.
``occlusion``
    A square patch covering a ``level`` fraction of the image area zeroed
    at a random position — partial obstruction of the sensor.

All corruptions are deterministic in ``(images, level, seed)`` so sweep
points are reproducible per seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..seeding import as_rng
from .synth import Dataset

CORRUPTIONS = ("gaussian", "salt_pepper", "occlusion")


def _spatial_view(images: np.ndarray,
                  image_shape: Optional[tuple]) -> np.ndarray:
    """A ``(N, H, W[, C])`` view of ``images`` for spatial corruptions.

    Flat ``(N, D)`` batches are reshaped through ``image_shape`` (e.g. a
    dataset's ``image_shape`` property); without one, a square ``(s, s)``
    geometry is inferred when ``D`` is a perfect square, otherwise the
    caller gets a clear error instead of a bogus occlusion.
    """
    if images.ndim >= 3:
        return images
    if images.ndim != 2:
        raise ValueError(
            f"images must be (N, H, W[, C]) or flat (N, D), "
            f"got shape {images.shape}")
    n, d = images.shape
    if image_shape is None:
        side = int(round(np.sqrt(d)))
        if side * side != d:
            raise ValueError(
                f"cannot infer the image geometry of flat ({n}, {d}) input: "
                f"{d} is not a perfect square; pass image_shape=(H, W[, C]) "
                "(e.g. the dataset's image_shape)")
        image_shape = (side, side)
    image_shape = tuple(int(s) for s in image_shape)
    if len(image_shape) not in (2, 3):
        raise ValueError(
            f"image_shape must be (H, W) or (H, W, C), got {image_shape}")
    if int(np.prod(image_shape)) != d:
        raise ValueError(
            f"image_shape {image_shape} has {int(np.prod(image_shape))} "
            f"pixels but flat input has {d}")
    return images.reshape((n,) + image_shape)


def corrupt_images(images: np.ndarray, level: float,
                   rng: Optional[Union[int, np.random.Generator]] = None,
                   kind: str = "gaussian",
                   image_shape: Optional[tuple] = None) -> np.ndarray:
    """Corrupted copy of ``images`` at ``level``.

    Accepted input shapes (leading batch dim in all cases):

    * ``(N, H, W)`` — grayscale images;
    * ``(N, H, W, C)`` — channels-last images (an occlusion patch zeroes
      *all* channels of the covered pixels);
    * ``(N, D)`` — flat vectors.  ``gaussian`` and ``salt_pepper`` are
      pixelwise and work directly; ``occlusion`` is spatial, so flat input
      is reshaped through ``image_shape`` (pass the dataset's
      ``image_shape``), falling back to a square ``(sqrt(D), sqrt(D))``
      geometry when ``D`` is a perfect square.

    The returned array always has the same shape as the input.
    """
    if not 0.0 <= level <= 1.0:
        raise ValueError(f"corruption level must be in [0, 1], got {level}")
    if kind not in CORRUPTIONS:
        raise ValueError(f"unknown corruption {kind!r}; "
                         f"available: {sorted(CORRUPTIONS)}")
    images = np.asarray(images, dtype=float)
    if level == 0.0:
        return images.copy()
    rng = as_rng(rng)
    if kind == "gaussian":
        return np.clip(images + rng.normal(0.0, level, images.shape),
                       0.0, 1.0)
    if kind == "salt_pepper":
        flip = rng.random(images.shape) < level
        salt = rng.random(images.shape) < 0.5
        out = images.copy()
        out[flip & salt] = 1.0
        out[flip & ~salt] = 0.0
        return out
    # occlusion: one square patch per image, area fraction = level
    out = images.copy()
    spatial = _spatial_view(out, image_shape)  # a view: writes land in out
    side_r, side_c = spatial.shape[1], spatial.shape[2]
    patch_r = max(1, int(round(side_r * np.sqrt(level))))
    patch_c = max(1, int(round(side_c * np.sqrt(level))))
    for img in spatial:
        r0 = int(rng.integers(0, side_r - patch_r + 1))
        c0 = int(rng.integers(0, side_c - patch_c + 1))
        img[r0:r0 + patch_r, c0:c0 + patch_c] = 0.0
    return out


def corrupt_dataset(ds: Dataset, level: float, seed: int = 0,
                    kind: str = "gaussian") -> Dataset:
    """A corrupted copy of ``ds`` (labels untouched)."""
    shape = ds.image_shape if len(ds.image_shape) >= 2 else None
    return Dataset(corrupt_images(ds.images, level, rng=seed, kind=kind,
                                  image_shape=shape),
                   ds.labels, name=ds.name, n_classes=ds.n_classes)
