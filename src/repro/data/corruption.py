"""Input corruption for robustness sweeps.

The paper's deployment story is edge sensing — inputs arrive noisy, and an
on-chip learner's accuracy under input corruption is part of the
accuracy/energy surface the sweeps map out.  Three corruption families,
each parameterized by one ``level`` knob in ``[0, 1]`` (0 = identity):

``gaussian``
    Additive pixel noise with standard deviation ``level`` (clipped back
    to ``[0, 1]``) — sensor read noise.
``salt_pepper``
    A ``level`` fraction of pixels forced to 0 or 1 — dead/hot pixels and
    transmission bit flips.
``occlusion``
    A square patch covering a ``level`` fraction of the image area zeroed
    at a random position — partial obstruction of the sensor.

All corruptions are deterministic in ``(images, level, seed)`` so sweep
points are reproducible per seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..seeding import as_rng
from .synth import Dataset

CORRUPTIONS = ("gaussian", "salt_pepper", "occlusion")


def corrupt_images(images: np.ndarray, level: float,
                   rng: Optional[Union[int, np.random.Generator]] = None,
                   kind: str = "gaussian") -> np.ndarray:
    """Corrupted copy of ``images`` (leading batch dim) at ``level``."""
    if not 0.0 <= level <= 1.0:
        raise ValueError(f"corruption level must be in [0, 1], got {level}")
    if kind not in CORRUPTIONS:
        raise ValueError(f"unknown corruption {kind!r}; "
                         f"available: {sorted(CORRUPTIONS)}")
    images = np.asarray(images, dtype=float)
    if level == 0.0:
        return images.copy()
    rng = as_rng(rng)
    if kind == "gaussian":
        return np.clip(images + rng.normal(0.0, level, images.shape),
                       0.0, 1.0)
    if kind == "salt_pepper":
        flip = rng.random(images.shape) < level
        salt = rng.random(images.shape) < 0.5
        out = images.copy()
        out[flip & salt] = 1.0
        out[flip & ~salt] = 0.0
        return out
    # occlusion: one square patch per image, area fraction = level
    out = images.copy()
    side_r, side_c = images.shape[1], images.shape[2]
    patch_r = max(1, int(round(side_r * np.sqrt(level))))
    patch_c = max(1, int(round(side_c * np.sqrt(level))))
    for img in out:
        r0 = int(rng.integers(0, side_r - patch_r + 1))
        c0 = int(rng.integers(0, side_c - patch_c + 1))
        img[r0:r0 + patch_r, c0:c0 + patch_c] = 0.0
    return out


def corrupt_dataset(ds: Dataset, level: float, seed: int = 0,
                    kind: str = "gaussian") -> Dataset:
    """A corrupted copy of ``ds`` (labels untouched)."""
    return Dataset(corrupt_images(ds.images, level, rng=seed, kind=kind),
                   ds.labels, name=ds.name, n_classes=ds.n_classes)
