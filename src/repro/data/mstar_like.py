"""MSTAR-like synthetic SAR target chips.

MSTAR is a collection of Synthetic Aperture Radar image chips of military
vehicles (10 classes in the paper's subset).  SAR imagery has three
signatures this generator reproduces:

* multiplicative speckle noise (gamma-distributed) over low-reflectivity
  clutter;
* a bright target return whose footprint shape/aspect depends on the
  vehicle class and its random azimuth;
* a radar *shadow* cast behind the target (opposite the illumination
  direction).

The paper center-crops 128x128 chips to 64x64 and resizes to 32x32; this
generator renders the target chip at the requested side directly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..seeding import as_rng
from .synth import Dataset, blank_canvas, fill_polygon

#: (length, width, n_scatterers, turret, reflectivity) per vehicle class.
#: Real vehicle classes differ in radar cross-section as well as footprint;
#: the reflectivity band is the strongest pose-invariant cue, as it is for
#: CNNs on real MSTAR chips.
_VEHICLES = [
    (0.55, 0.20, 2, False, 0.30), (0.40, 0.32, 5, True, 0.55),
    (0.70, 0.16, 3, False, 0.80), (0.32, 0.32, 8, True, 0.40),
    (0.55, 0.28, 5, True, 0.90), (0.45, 0.18, 2, False, 0.65),
    (0.62, 0.34, 8, True, 0.30), (0.34, 0.22, 4, False, 0.85),
    (0.50, 0.38, 10, True, 0.70), (0.62, 0.24, 6, False, 0.45),
]


def render_chip(label: int, side: int = 16,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """One SAR target chip in [0, 1] of shape ``(side, side)``."""
    if not 0 <= label <= 9:
        raise ValueError(f"label must be 0..9, got {label}")
    rng = as_rng(rng)
    length, width, n_scatter, turret, reflect = _VEHICLES[label]
    s = side - 1
    # clutter floor with multiplicative speckle (gamma, shape 1 = exponential
    # intensity, the single-look SAR speckle model)
    clutter = 0.12 * rng.gamma(shape=1.0, scale=1.0, size=(side, side))

    # Vehicles in MSTAR chips appear at arbitrary azimuth; a moderate spread
    # keeps the task solvable by the paper's small networks while retaining
    # pose variation.
    azimuth = rng.uniform(0, 2 * np.pi) if side >= 24 else rng.uniform(
        -0.5, 0.5)
    cr = rng.uniform(0.42, 0.58) * s
    cc = rng.uniform(0.42, 0.58) * s
    d = np.array([np.sin(azimuth), np.cos(azimuth)])
    p = np.array([-d[1], d[0]])
    half_l = length * s / 2
    half_w = width * s / 2
    corners = np.array([cr, cc]) + np.array([
        +half_l * d + half_w * p, +half_l * d - half_w * p,
        -half_l * d - half_w * p, -half_l * d + half_w * p])

    body = blank_canvas(side)
    fill_polygon(body, corners, value=1.0)
    # radar shadow: the body footprint displaced away from the illumination
    shadow_dir = np.array([1.0, 0.35])
    shadow_dir /= np.linalg.norm(shadow_dir)
    shadow = blank_canvas(side)
    fill_polygon(shadow, corners + shadow_dir * side * 0.18, value=1.0)

    img = clutter * (1 - 0.85 * shadow)
    # bright target return: class-banded reflectivity plus point scatterers
    img += body * (reflect + rng.uniform(-0.08, 0.08))
    for _ in range(n_scatter):
        t = rng.uniform(-0.8, 0.8)
        u = rng.uniform(-0.8, 0.8)
        pos = np.array([cr, cc]) + t * half_l * d + u * half_w * p
        r0, c0 = int(round(pos[0])), int(round(pos[1]))
        if 0 <= r0 < side and 0 <= c0 < side:
            img[r0, c0] += rng.uniform(0.8, 1.3)
    if turret:
        rr, cc2 = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        tr = cr + 0.12 * s * d[0]
        tc = cc + 0.12 * s * d[1]
        img[((rr - tr) ** 2 + (cc2 - tc) ** 2) <= (0.08 * s) ** 2] += 0.4
    # speckle multiplies the full return (multi-look averaged: milder than
    # the single-look clutter speckle)
    img *= rng.gamma(shape=8.0, scale=0.125, size=(side, side))
    return np.clip(img, 0.0, 1.0)


def generate(n_samples: int, side: int = 16, seed: int = 0,
             classes=None) -> Dataset:
    """A deterministic MSTAR-like SAR dataset (10 vehicle classes)."""
    rng = np.random.default_rng(seed)
    classes = list(range(10)) if classes is None else list(classes)
    labels = rng.choice(classes, size=n_samples)
    images = np.stack([render_chip(int(d), side=side, rng=rng)
                       for d in labels])
    return Dataset(images, labels.astype(np.int64), name="mstar_like")
