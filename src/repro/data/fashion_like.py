"""Fashion-MNIST-like synthetic garments: filled silhouettes of 10 classes.

Classes mirror Fashion-MNIST's: t-shirt, trouser, pullover, dress, coat,
sandal, shirt, sneaker, bag, ankle boot.  Several silhouettes deliberately
overlap (t-shirt vs shirt vs coat; sneaker vs sandal), reproducing the
harder-than-MNIST confusion structure of the real dataset.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..seeding import as_rng
from .synth import Dataset, add_noise, blank_canvas, fill_polygon, warp

CLASS_NAMES = ("tshirt", "trouser", "pullover", "dress", "coat", "sandal",
               "shirt", "sneaker", "bag", "boot")


def _poly(points):
    return np.array(points, dtype=float)


def _silhouette(label: int) -> list:
    """Polygons (normalized coords) composing a garment silhouette."""
    body = {
        0: [_poly([(0.25, 0.3), (0.25, 0.7), (0.8, 0.65), (0.8, 0.35)]),   # tshirt
            _poly([(0.25, 0.12), (0.25, 0.88), (0.42, 0.8), (0.42, 0.2)])],
        1: [_poly([(0.15, 0.35), (0.15, 0.48), (0.85, 0.44), (0.85, 0.34)]),  # trouser
            _poly([(0.15, 0.52), (0.15, 0.65), (0.85, 0.66), (0.85, 0.56)])],
        2: [_poly([(0.25, 0.28), (0.25, 0.72), (0.85, 0.68), (0.85, 0.32)]),  # pullover
            _poly([(0.25, 0.05), (0.25, 0.95), (0.75, 0.85), (0.75, 0.15)])],
        3: [_poly([(0.15, 0.42), (0.15, 0.58), (0.9, 0.78), (0.9, 0.22)])],   # dress
        4: [_poly([(0.18, 0.25), (0.18, 0.75), (0.92, 0.72), (0.92, 0.28)]),  # coat
            _poly([(0.18, 0.05), (0.18, 0.95), (0.85, 0.88), (0.85, 0.12)])],
        5: [_poly([(0.62, 0.1), (0.55, 0.75), (0.72, 0.75), (0.72, 0.1)]),    # sandal
            _poly([(0.45, 0.1), (0.52, 0.3), (0.62, 0.3), (0.55, 0.1)])],
        6: [_poly([(0.2, 0.3), (0.2, 0.7), (0.88, 0.66), (0.88, 0.34)]),      # shirt
            _poly([(0.2, 0.1), (0.2, 0.9), (0.5, 0.82), (0.5, 0.18)]),
            _poly([(0.2, 0.46), (0.2, 0.54), (0.45, 0.54), (0.45, 0.46)])],
        7: [_poly([(0.58, 0.05), (0.5, 0.6), (0.78, 0.95), (0.8, 0.15)])],    # sneaker
        8: [_poly([(0.35, 0.2), (0.3, 0.8), (0.85, 0.8), (0.85, 0.2)]),       # bag
            _poly([(0.18, 0.4), (0.3, 0.62), (0.38, 0.62), (0.25, 0.4)])],
        9: [_poly([(0.3, 0.45), (0.25, 0.68), (0.85, 0.68), (0.85, 0.45)]),   # boot
            _poly([(0.6, 0.1), (0.55, 0.5), (0.85, 0.5), (0.85, 0.1)])],
    }
    return body[label]


def render_garment(label: int, side: int = 16,
                   rng: Optional[np.random.Generator] = None,
                   distort: bool = True) -> np.ndarray:
    if not 0 <= label <= 9:
        raise ValueError(f"label must be 0..9, got {label}")
    img = blank_canvas(side)
    s = side - 1
    for poly in _silhouette(label):
        fill_polygon(img, poly * s, value=0.85)
    if distort:
        rng = as_rng(rng)
        # garment fabric texture + shape variation
        img = img * rng.uniform(0.75, 1.0)
        img = warp(img, rng, max_shift=side / 12.0, max_rot=0.12,
                   max_scale=0.15)
        img = add_noise(img, rng, sigma=0.08)
    return img


def generate(n_samples: int, side: int = 16, seed: int = 0,
             classes=None) -> Dataset:
    """A deterministic Fashion-MNIST-like dataset."""
    rng = np.random.default_rng(seed)
    classes = list(range(10)) if classes is None else list(classes)
    labels = rng.choice(classes, size=n_samples)
    images = np.stack([render_garment(int(d), side=side, rng=rng)
                       for d in labels])
    return Dataset(images, labels.astype(np.int64), name="fashion_like")
