"""CIFAR-10-like synthetic colour images: textured objects on clutter.

Each class pairs a characteristic object shape with a colour prior, drawn
over a random textured background with heavy jitter — the hardest of the
four tasks, as CIFAR-10 is in the paper (61-64% accuracy in Table I versus
94-99% on MNIST).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..seeding import as_rng
from .synth import Dataset, blank_canvas, draw_arc, fill_polygon

#: (hue RGB weights, shape id) per class.
_CLASS_SPEC = [
    ((0.9, 0.2, 0.2), "disc"),      # 0
    ((0.2, 0.8, 0.3), "square"),    # 1
    ((0.25, 0.35, 0.9), "triangle"),  # 2
    ((0.85, 0.8, 0.2), "disc"),     # 3
    ((0.8, 0.3, 0.8), "square"),    # 4
    ((0.25, 0.85, 0.85), "triangle"),  # 5
    ((0.95, 0.55, 0.15), "ring"),   # 6
    ((0.55, 0.35, 0.2), "bar"),     # 7
    ((0.6, 0.65, 0.7), "ring"),     # 8
    ((0.35, 0.6, 0.35), "bar"),     # 9
]


def _draw_shape(mask: np.ndarray, shape: str, rng: np.random.Generator) -> None:
    side = mask.shape[0]
    s = side - 1
    cr = rng.uniform(0.35, 0.65) * s
    cc = rng.uniform(0.35, 0.65) * s
    size = rng.uniform(0.22, 0.34) * s
    if shape == "disc":
        rr, cc2 = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        mask[((rr - cr) ** 2 + (cc2 - cc) ** 2) <= size ** 2] = 1.0
    elif shape == "square":
        v = np.array([(cr - size, cc - size), (cr - size, cc + size),
                      (cr + size, cc + size), (cr + size, cc - size)])
        fill_polygon(mask, v)
    elif shape == "triangle":
        v = np.array([(cr - size, cc), (cr + size, cc + size),
                      (cr + size, cc - size)])
        fill_polygon(mask, v)
    elif shape == "ring":
        draw_arc(mask, cr, cc, size, 0, 2 * np.pi,
                 thickness=max(side / 8.0, 1.5))
    elif shape == "bar":
        v = np.array([(cr - size, cc - size * 0.35), (cr - size, cc + size * 0.35),
                      (cr + size, cc + size * 0.35), (cr + size, cc - size * 0.35)])
        fill_polygon(mask, v)
    else:  # pragma: no cover - template table is fixed
        raise ValueError(f"unknown shape {shape!r}")


def render_object(label: int, side: int = 16,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """One ``(side, side, 3)`` colour image in [0, 1]."""
    if not 0 <= label <= 9:
        raise ValueError(f"label must be 0..9, got {label}")
    rng = as_rng(rng)
    hue, shape = _CLASS_SPEC[label]
    # textured background with a random colour cast (heavy clutter: natural
    # image backgrounds are the reason CIFAR is the hardest of the four)
    base = rng.uniform(0.1, 0.65, size=3)
    texture = rng.normal(0, 0.16, size=(side, side, 3))
    img = np.clip(base[None, None, :] + texture, 0, 1)
    # object mask, partially transparent against the clutter
    mask = blank_canvas(side)
    _draw_shape(mask, shape, rng)
    colour = np.clip(np.array(hue) + rng.normal(0, 0.22, 3), 0, 1)
    alpha = rng.uniform(0.55, 0.8)
    img = img * (1 - mask[..., None] * alpha) + (mask[..., None] * alpha
                                                 * colour[None, None, :])
    img = np.clip(img + rng.normal(0, 0.1, img.shape), 0, 1)
    return img


def generate(n_samples: int, side: int = 16, seed: int = 0,
             classes=None) -> Dataset:
    """A deterministic CIFAR-10-like colour dataset."""
    rng = np.random.default_rng(seed)
    classes = list(range(10)) if classes is None else list(classes)
    labels = rng.choice(classes, size=n_samples)
    images = np.stack([render_object(int(d), side=side, rng=rng)
                       for d in labels])
    return Dataset(images, labels.astype(np.int64), name="cifar_like")
