"""Shared machinery for the synthetic dataset generators.

The paper evaluates on MNIST, Fashion-MNIST, CIFAR-10 and MSTAR.  None of
those datasets can be downloaded in this environment, so :mod:`repro.data`
provides deterministic *parametric generators* producing 10-class image
tasks with the same roles: graded difficulty (digits easiest, CIFAR-like
hardest), intra-class variation, and streaming (batch-1) access.  See
DESIGN.md's substitution table.

All generators return images in ``[0, 1]`` with shape ``(H, W)`` or
``(H, W, C)`` and integer labels; every sample is a pure function of
``(seed, index)`` so train/test splits are reproducible and disjoint.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

import numpy as np


def make_blobs(n_features: int, n_classes: int, n_samples: int, seed: int,
               noise: float = 0.08, task_seed: int = 77):
    """Clipped Gaussian blobs in ``[0, 1]^d`` with one mean per class.

    ``task_seed`` fixes the class means so different ``seed`` values draw
    train/test splits from the *same* underlying task.  The single shared
    generator behind the unit-test fixtures and the throughput benchmarks —
    one definition of "the blob task", not one copy per harness.
    """
    means = np.random.default_rng(task_seed).uniform(
        0.2, 0.8, size=(n_classes, n_features))
    rng = np.random.default_rng(seed)
    ys = rng.integers(0, n_classes, n_samples)
    xs = np.clip(means[ys] + rng.normal(0, noise, (n_samples, n_features)),
                 0, 1)
    return xs, ys


@dataclasses.dataclass
class Dataset:
    """An in-memory image classification dataset."""

    images: np.ndarray
    labels: np.ndarray
    name: str = ""
    n_classes: int = 10

    def __post_init__(self):
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must have equal length")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def image_shape(self) -> Tuple[int, ...]:
        return self.images.shape[1:]

    def flat(self) -> np.ndarray:
        """Images flattened to vectors (dense-network input)."""
        return self.images.reshape(len(self.images), -1)

    def stream(self) -> Iterator[Tuple[np.ndarray, int]]:
        """Online-learning view: one (image, label) at a time."""
        for img, lab in zip(self.images, self.labels):
            yield img, int(lab)

    def subset(self, class_ids) -> "Dataset":
        """Samples whose label is in ``class_ids`` (incremental learning)."""
        mask = np.isin(self.labels, list(class_ids))
        return Dataset(self.images[mask], self.labels[mask],
                       name=self.name, n_classes=self.n_classes)

    def take(self, n: int) -> "Dataset":
        return Dataset(self.images[:n], self.labels[:n], name=self.name,
                       n_classes=self.n_classes)


def blank_canvas(side: int) -> np.ndarray:
    return np.zeros((side, side), dtype=float)


def draw_line(img: np.ndarray, r0: float, c0: float, r1: float, c1: float,
              value: float = 1.0, thickness: float = 1.2) -> None:
    """Anti-aliased thick line segment drawn in place."""
    side = img.shape[0]
    n = max(int(4 * side), 2)
    rs = np.linspace(r0, r1, n)
    cs = np.linspace(c0, c1, n)
    rr, cc = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    for r, c in zip(rs[:: max(n // (2 * side), 1)], cs[:: max(n // (2 * side), 1)]):
        d2 = (rr - r) ** 2 + (cc - c) ** 2
        img += value * np.exp(-d2 / (2 * (thickness / 2.2) ** 2))
    np.clip(img, 0.0, 1.0, out=img)


def draw_arc(img: np.ndarray, cr: float, cc_: float, radius: float,
             a0: float, a1: float, value: float = 1.0,
             thickness: float = 1.2) -> None:
    """Anti-aliased arc from angle ``a0`` to ``a1`` (radians)."""
    side = img.shape[0]
    angles = np.linspace(a0, a1, max(int(6 * radius), 8))
    rr, cc = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    for a in angles:
        r = cr + radius * np.sin(a)
        c = cc_ + radius * np.cos(a)
        d2 = (rr - r) ** 2 + (cc - c) ** 2
        img += value * np.exp(-d2 / (2 * (thickness / 2.2) ** 2))
    np.clip(img, 0.0, 1.0, out=img)


def fill_polygon(img: np.ndarray, vertices: np.ndarray,
                 value: float = 1.0) -> None:
    """Fill a convex polygon given ``(row, col)`` vertices, in place."""
    side = img.shape[0]
    rr, cc = np.meshgrid(np.arange(side) + 0.5, np.arange(side) + 0.5,
                         indexing="ij")
    inside = np.ones((side, side), dtype=bool)
    n = len(vertices)
    for i in range(n):
        r0, c0 = vertices[i]
        r1, c1 = vertices[(i + 1) % n]
        cross = (r1 - r0) * (cc - c0) - (c1 - c0) * (rr - r0)
        inside &= cross <= 0
    img[inside] = np.maximum(img[inside], value)


def warp(img: np.ndarray, rng: np.random.Generator, max_shift: float = 1.5,
         max_rot: float = 0.18, max_scale: float = 0.12) -> np.ndarray:
    """Random affine distortion (rotation, scale, translation).

    Uses inverse-mapped nearest-neighbour sampling — crude but dependency
    free, and at 16-28 px it matches the roughness of handwritten strokes.
    """
    side = img.shape[0]
    angle = rng.uniform(-max_rot, max_rot)
    scale = 1.0 + rng.uniform(-max_scale, max_scale)
    dr = rng.uniform(-max_shift, max_shift)
    dc = rng.uniform(-max_shift, max_shift)
    centre = (side - 1) / 2.0
    rr, cc = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    rrel = (rr - centre - dr) / scale
    crel = (cc - centre - dc) / scale
    cos_a, sin_a = np.cos(-angle), np.sin(-angle)
    src_r = np.round(centre + cos_a * rrel - sin_a * crel).astype(int)
    src_c = np.round(centre + sin_a * rrel + cos_a * crel).astype(int)
    valid = ((src_r >= 0) & (src_r < side) & (src_c >= 0) & (src_c < side))
    out = np.zeros_like(img)
    out[valid] = img[src_r[valid], src_c[valid]]
    return out


def add_noise(img: np.ndarray, rng: np.random.Generator,
              sigma: float = 0.05) -> np.ndarray:
    return np.clip(img + rng.normal(0, sigma, img.shape), 0.0, 1.0)
