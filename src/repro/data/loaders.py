"""Dataset registry and train/test loading helpers."""

from __future__ import annotations

from typing import Dict, Tuple

from . import cifar_like, fashion_like, mnist_like, mstar_like
from .synth import Dataset

#: name -> generator module (each exposes ``generate``).
DATASETS: Dict[str, object] = {
    "mnist_like": mnist_like,
    "fashion_like": fashion_like,
    "cifar_like": cifar_like,
    "mstar_like": mstar_like,
}

#: Paper dataset name -> synthetic stand-in.
PAPER_MAPPING = {
    "MNIST": "mnist_like",
    "Fashion-MNIST": "fashion_like",
    "CIFAR10": "cifar_like",
    "MSTAR (10 class)": "mstar_like",
}


def load_dataset(name: str, n_train: int, n_test: int, side: int = 16,
                 seed: int = 0, classes=None) -> Tuple[Dataset, Dataset]:
    """Disjoint train/test splits of a named synthetic dataset.

    The test split uses a derived seed so the two splits never share
    samples while remaining reproducible.
    """
    from .. import obs

    if name in PAPER_MAPPING:
        name = PAPER_MAPPING[name]
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    module = DATASETS[name]
    with obs.span("load_dataset", dataset=name, n_train=n_train,
                  n_test=n_test, side=side):
        train = module.generate(n_train, side=side, seed=seed,
                                classes=classes)
        test = module.generate(n_test, side=side, seed=seed + 10_000,
                               classes=classes)
    return train, test
