"""Synthetic stand-ins for the paper's four datasets.

MNIST / Fashion-MNIST / CIFAR-10 / MSTAR cannot be downloaded in this
offline environment; these deterministic parametric generators reproduce
their roles and difficulty ordering (see DESIGN.md).
"""

from .cifar_like import generate as generate_cifar_like
from .corruption import CORRUPTIONS, corrupt_dataset, corrupt_images
from .fashion_like import generate as generate_fashion_like
from .loaders import DATASETS, PAPER_MAPPING, load_dataset
from .mnist_like import generate as generate_mnist_like, render_digit
from .mstar_like import generate as generate_mstar_like, render_chip
from .synth import Dataset, make_blobs

__all__ = ["CORRUPTIONS", "DATASETS", "Dataset", "PAPER_MAPPING",
           "corrupt_dataset", "corrupt_images", "generate_cifar_like",
           "generate_fashion_like", "generate_mnist_like",
           "generate_mstar_like", "load_dataset", "make_blobs",
           "render_chip", "render_digit"]
