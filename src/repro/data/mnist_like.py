"""MNIST-like synthetic digits: stroke-rendered 0-9 with affine distortions.

Each digit class is a fixed template of line/arc strokes in normalized
coordinates; every sample renders the template and applies a random affine
warp plus pixel noise, giving the intra-class variability of handwriting at
a difficulty calibrated to play MNIST's role (the easiest of the four
benchmarks).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..seeding import as_rng
from .synth import Dataset, add_noise, blank_canvas, draw_arc, draw_line, warp

# Templates in normalized (r, c) in [0, 1]; "line": (r0, c0, r1, c1);
# "arc": (cr, cc, radius, a0, a1) with angles in units of pi.
_TEMPLATES = {
    0: [("arc", 0.5, 0.5, 0.32, 0.0, 2.0)],
    1: [("line", 0.15, 0.55, 0.85, 0.5), ("line", 0.3, 0.4, 0.15, 0.55)],
    2: [("arc", 0.3, 0.5, 0.2, 1.0, 2.2), ("line", 0.42, 0.68, 0.85, 0.25),
        ("line", 0.85, 0.25, 0.85, 0.75)],
    3: [("arc", 0.3, 0.45, 0.18, 0.8, 2.3), ("arc", 0.68, 0.45, 0.2, 0.75, 2.25)],
    4: [("line", 0.15, 0.6, 0.6, 0.25), ("line", 0.6, 0.25, 0.6, 0.8),
        ("line", 0.15, 0.68, 0.85, 0.68)],
    5: [("line", 0.15, 0.7, 0.15, 0.3), ("line", 0.15, 0.3, 0.45, 0.3),
        ("arc", 0.62, 0.45, 0.22, 1.25, 2.6)],
    6: [("line", 0.15, 0.6, 0.55, 0.32), ("arc", 0.65, 0.5, 0.2, 0.0, 2.0)],
    7: [("line", 0.15, 0.25, 0.15, 0.75), ("line", 0.15, 0.75, 0.85, 0.35)],
    8: [("arc", 0.32, 0.5, 0.17, 0.0, 2.0), ("arc", 0.68, 0.5, 0.21, 0.0, 2.0)],
    9: [("arc", 0.35, 0.5, 0.2, 0.0, 2.0), ("line", 0.35, 0.7, 0.85, 0.6)],
}


def render_digit(digit: int, side: int = 16,
                 rng: Optional[np.random.Generator] = None,
                 distort: bool = True) -> np.ndarray:
    """Render one digit image in [0, 1] of shape ``(side, side)``."""
    if digit not in _TEMPLATES:
        raise ValueError(f"digit must be 0..9, got {digit}")
    img = blank_canvas(side)
    s = side - 1
    thickness = max(side / 14.0, 1.0)
    for prim in _TEMPLATES[digit]:
        if prim[0] == "line":
            _, r0, c0, r1, c1 = prim
            draw_line(img, r0 * s, c0 * s, r1 * s, c1 * s,
                      thickness=thickness)
        else:
            _, cr, cc, radius, a0, a1 = prim
            draw_arc(img, cr * s, cc * s, radius * s,
                     a0 * np.pi, a1 * np.pi, thickness=thickness)
    if distort:
        rng = as_rng(rng)
        img = warp(img, rng, max_shift=side / 12.0)
        img = add_noise(img, rng, sigma=0.04)
    return img


def generate(n_samples: int, side: int = 16, seed: int = 0,
             classes=None) -> Dataset:
    """A deterministic MNIST-like dataset of ``n_samples`` images."""
    rng = np.random.default_rng(seed)
    classes = list(range(10)) if classes is None else list(classes)
    labels = rng.choice(classes, size=n_samples)
    images = np.stack([render_digit(int(d), side=side, rng=rng)
                       for d in labels])
    return Dataset(images, labels.astype(np.int64), name="mnist_like")
