"""EMSTDP mapped onto the chip simulator under hardware constraints."""

from .builder import OnChipEMSTDP, ScaleScheme, build_emstdp_network
from .trainer import LoihiEMSTDPTrainer, eta_exponent

__all__ = ["LoihiEMSTDPTrainer", "OnChipEMSTDP", "ScaleScheme",
           "build_emstdp_network", "eta_exponent"]
