"""Operation Flow 1: in-hardware learning on the (simulated) chip.

Per training sample:

1. quantize the input to ``T`` bins and program it as the *bias* of the
   input-layer neurons (one host->chip transaction, Section III-D); program
   the label bias likewise;
2. **Phase 1** (``T`` steps): forward path only — the error-path soma
   groups are held disabled, but the auxiliary gate compartments integrate
   forward spikes so the ``h'`` gates know who was active;
3. learning epoch at ``T``: microcode ``dt = y1`` stashes the phase-1
   spike count ``h`` in each synapse's tag; traces reset;
4. **Phase 2** (``T`` steps): error path enabled; error spikes flow and
   pull the forward rates toward the targets ``h_hat``;
5. learning epoch at ``2T``: ``dt = y1`` completes the tag
   (``Z = h + h_hat``), then the Eq. (12) weight rule
   ``dw = 2^(e+1)*y1*x1 - 2^e*t*x1`` fires with stochastic rounding;
6. all state (membrane potentials, traces, tags) resets.

Inference runs phase 1 only and reads the output spike counters.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.encoding import as_sample_batch, quantize_to_bins
from ..loihi.chip import LoihiChip
from ..loihi.energy import EnergyModel, EnergyReport, RunStats
from ..loihi.mapping import Mapping
from ..loihi.microcode import emstdp_rules, phase1_tag_rules
from ..loihi.runtime import Runtime, ShardedRuntime
from ..loihi.synapse import WEIGHT_MANT_MAX
from .builder import OnChipEMSTDP, sync_networks

#: Default replica width of the batched runtime path (``fit_batch`` /
#: ``predict_batch``); chosen so the vectorized step amortizes Python
#: dispatch without replicating more state than a batch typically needs.
DEFAULT_BATCH_REPLICAS = 16


def replica_rngs(seed: int, replicas: int) -> List[np.random.Generator]:
    """The batched twin's per-replica stochastic-rounding streams.

    Replica ``r`` rounds with ``np.random.default_rng((seed + 1, r))``.
    The derivation is part of the public equivalence contract: a
    single-replica trainer built with that same generator and fed replica
    ``r``'s sample reproduces the replica's weights bit for bit (see
    ``tests/test_loihi_batched.py``).
    """
    return [np.random.default_rng((seed + 1, r)) for r in range(replicas)]


def host_reduce_rng(seed: int) -> np.random.Generator:
    """The host-side stream stochastically rounding minibatch write-backs.

    ``np.random.default_rng((seed + 2, 0))`` — disjoint from every replica
    stream, and documented (like :func:`replica_rngs`) so tests can
    reproduce the write-back exactly.  One ``(src.n, dst.n)`` draw is
    consumed per plastic connection per chunk, in connection order.
    """
    return np.random.default_rng((seed + 2, 0))


def eta_exponent(eta: float, weight_clip: float, T: int) -> int:
    """Microcode scale exponent realizing learning rate ``eta``.

    The reference rule operates on normalized rates (``h/T``) and weights
    (step ``clip/127``); the chip rule multiplies raw counts, so the per-
    mantissa scale is ``eta * 127 / (clip * T^2)``, rounded to the nearest
    power of two as the hardware requires.
    """
    scale = eta * WEIGHT_MANT_MAX / (weight_clip * T * T)
    return round(math.log2(scale))


class LoihiEMSTDPTrainer:
    """Drives an :class:`~repro.onchip.builder.OnChipEMSTDP` network."""

    def __init__(self, model: OnChipEMSTDP,
                 rng: Optional[np.random.Generator] = None,
                 chip: Optional[LoihiChip] = None,
                 neurons_per_core: Optional[int] = None,
                 compile_now: bool = True,
                 batch_replicas: Optional[int] = None,
                 batch_workers: int = 1):
        """``batch_replicas`` caps the replica width of the batched runtime
        path (``None`` = :data:`DEFAULT_BATCH_REPLICAS`; ``1`` routes
        inference through the sequential single-replica loop and makes
        minibatch training process one replica per chunk).
        ``batch_workers`` sizes the :class:`ShardedRuntime` worker pool
        the batched path steps with (1 = step the shards inline); call
        :meth:`close` when done with a ``batch_workers > 1`` trainer to
        release the pools."""
        self.model = model
        cfg = model.config
        self.runtime = Runtime(
            model.network,
            rng=rng if rng is not None else np.random.default_rng(cfg.seed + 1),
            stochastic_rounding=cfg.stochastic_rounding)
        clip = cfg.weight_clip if cfg.weight_clip is not None else 2.0
        self.eta_exp = eta_exponent(cfg.learning_rate, clip, cfg.T)
        self.runtime.register_rule("emstdp", {
            "phase1_end": phase1_tag_rules(),
            "phase2_end": emstdp_rules(self.eta_exp),
        })
        #: Error-path groups that only run in phase 2 (soma channels and the
        #: label group).  The auxiliary gate compartments stay enabled in
        #: phase 1 so they can record forward activity.
        self._phase2_names = [n for n in model.error_path_names
                              if "aux" not in n]
        self.mapping: Optional[Mapping] = None
        self._neurons_per_core = neurons_per_core
        if compile_now:
            self.compile(chip, neurons_per_core)
        self._class_mask = np.ones(model.dims[-1], dtype=bool)
        self.samples_trained = 0
        self.batch_replicas = batch_replicas
        self.batch_workers = int(batch_workers)
        self._reduce_rng = host_reduce_rng(cfg.seed)
        #: Replica-width -> (replicated model, sharded runtime) twins of
        #: the canonical network, built lazily by the batched path.
        self._twins: Dict[int, tuple] = {}

    # -- deployment -----------------------------------------------------------

    def compile(self, chip: Optional[LoihiChip] = None,
                neurons_per_core: Optional[int] = None) -> Mapping:
        """Map the network onto chip cores (Operation Flow 1's deploy step)."""
        self.mapping = self.model.network.compile(chip, neurons_per_core)
        return self.mapping

    # -- class masking (incremental learning) -----------------------------------

    def set_class_mask(self, active_classes: Sequence[int]) -> None:
        """Disable the classifier (and error) neurons of inactive classes."""
        mask = np.zeros(self.model.dims[-1], dtype=bool)
        mask[list(active_classes)] = True
        if not mask.any():
            raise ValueError("at least one class must stay active")
        self._class_mask = mask
        net = self.model.network
        net.group(self.model.output_name).mask = mask.copy()
        if self.model.label_name is not None:
            net.group(self.model.label_name).mask = mask.copy()
            net.group("err_out_pos").mask = mask.copy()
            net.group("err_out_neg").mask = mask.copy()

    def clear_class_mask(self) -> None:
        self.set_class_mask(range(self.model.dims[-1]))

    # -- sample-level operations ---------------------------------------------------

    def _program_input(self, x: np.ndarray) -> None:
        cfg = self.model.config
        rate = quantize_to_bins(np.asarray(x, dtype=float), cfg.T)
        self.runtime.set_bias(self.model.input_name,
                              self.model.scales.rate_to_bias(rate))

    def _program_label(self, label: int) -> None:
        target = np.zeros(self.model.dims[-1])
        target[label] = 1.0
        self.runtime.set_bias(self.model.label_name,
                              self.model.scales.rate_to_bias(target))

    def train_sample(self, x: np.ndarray, label: int) -> Dict[str, object]:
        """One 2T-step training presentation (Operation Flow 1 inner loop)."""
        if self.model.label_name is None:
            raise RuntimeError(
                "this network was built without an error path "
                "(include_error_path=False); it can only run inference")
        if not self._class_mask[label]:
            raise ValueError(f"label {label} is masked out")
        rt = self.runtime
        T = self.model.config.T
        rt.reset_state(counts=True)
        rt.reset_traces()
        rt.reset_tags()
        self._program_input(x)
        self._program_label(label)
        rt.disable(self._phase2_names)
        rt.run(T)
        h_out = rt.spike_counts(self.model.output_name).astype(float) / T
        rt.learning_epoch("phase1_end")
        rt.reset_traces()
        # Phase-boundary membrane reset: phase-2 counts must not inherit the
        # phase-1 residual potential (a systematic +0.5-spike bias).  The
        # auxiliary gate compartments are deliberately *not* reset — their
        # membrane is the memory of phase-1 forward activity.
        rt.reset_membranes(self.model.forward_names)
        rt.enable(self._phase2_names)
        rt.run(T)
        rt.learning_epoch("phase2_end")
        rt.reset_tags()
        rt.reset_traces()
        rt.mark_sample()
        self.samples_trained += 1
        pred = int(np.argmax(h_out))
        return {"h_out": h_out, "prediction": pred, "correct": pred == label}

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Phase-1-only inference; returns output rates."""
        rt = self.runtime
        T = self.model.config.T
        rt.reset_state(counts=True)
        self._program_input(x)
        if self.model.label_name is not None:
            rt.disable(self._phase2_names)
        rt.run(T)
        rt.mark_sample()
        return rt.spike_counts(self.model.output_name).astype(float) / T

    def predict(self, x: np.ndarray) -> int:
        return int(np.argmax(self.infer(x)))

    # -- batch API (batch-parallel replicated runtime) ---------------------------------
    #
    # The chip itself time-multiplexes samples over one network copy
    # (Operation Flow 1), but nothing stops a deployment from mapping R
    # *independent replicas* of the network onto spare cores and presenting
    # R samples simultaneously — replication trades cores for wall-clock.
    # The batch methods below do exactly that: a lazily built replicated
    # twin (``build_emstdp_network(..., replicas=R)`` + ShardedRuntime)
    # advances all replicas in one vectorized pass, each replica
    # bit-identical to a sequential single-replica run (the equivalence
    # contract of ``tests/test_loihi_batched.py``).  The canonical
    # single-replica network stays the source of truth for weights; twins
    # are re-programmed from it before every chunk.

    def _as_batch(self, X) -> np.ndarray:
        """Coerce input to a ``(B, n_in)`` float block (1-D becomes B=1)."""
        return as_sample_batch(X, self.model.dims[0])

    def _target_replicas(self, batch: int) -> int:
        cap = self.batch_replicas if self.batch_replicas is not None \
            else DEFAULT_BATCH_REPLICAS
        return max(1, min(int(cap), batch))

    def _twin(self, replicas: int):
        """The cached ``replicas``-wide twin: (model, sharded runtime)."""
        entry = self._twins.get(replicas)
        if entry is None:
            model = self.model.replicate(replicas)
            mapping = model.network.compile(
                neurons_per_core=self._neurons_per_core)
            rt = ShardedRuntime(
                model.network, mapping,
                rng=replica_rngs(self.model.config.seed, replicas),
                stochastic_rounding=self.model.config.stochastic_rounding,
                max_workers=self.batch_workers)
            rt.register_rule("emstdp", dict(self.runtime.rulebook["emstdp"]))
            entry = (model, rt)
            self._twins[replicas] = entry
        return entry

    def close(self) -> None:
        """Release the twin runtimes' worker pools and drop the twins."""
        for _, rt in self._twins.values():
            rt.close()
        self._twins.clear()

    def _fresh_chunk(self, replicas: int):
        """A twin re-programmed with the canonical weights and fresh stats."""
        model_b, rt = self._twin(replicas)
        sync_networks(self.model, model_b)
        rt.stats = RunStats(
            plastic_synapses=model_b.network.n_plastic_synapses())
        rt.reset_state(counts=True)
        return model_b, rt

    def _round_host(self, delta: np.ndarray) -> np.ndarray:
        """Integerize a host-side mean-of-deltas write-back."""
        if not self.model.config.stochastic_rounding:
            return np.round(delta).astype(np.int64)
        floor = np.floor(delta)
        frac = delta - floor
        draw = self._reduce_rng.random(delta.shape)
        return (floor + (draw < frac)).astype(np.int64)

    def _program_batch(self, rt, model_b, X,
                       labels: Optional[np.ndarray] = None) -> None:
        cfg = self.model.config
        rate = quantize_to_bins(np.asarray(X, dtype=float), cfg.T)
        bias = model_b.scales.rate_to_bias(rate)
        if model_b.network.replicas == 1:
            bias = bias[0]  # a width-1 twin keeps the 1-D state layout
        rt.set_bias(model_b.input_name, bias)
        if labels is not None:
            target = np.zeros((len(labels), self.model.dims[-1]))
            target[np.arange(len(labels)), labels] = 1.0
            label_bias = model_b.scales.rate_to_bias(target)
            if model_b.network.replicas == 1:
                label_bias = label_bias[0]
            rt.set_bias(model_b.label_name, label_bias)

    def fit_batch(self, X, labels,
                  update_mode: str = "online") -> Dict[str, object]:
        """Drop-in for :meth:`EMSTDPNetwork.fit_batch` on the chip.

        ``update_mode="online"`` keeps the paper's strict semantics: each
        2T-step presentation sees the weights updated by every earlier
        sample — bit-identical to looping :meth:`train_sample`.

        ``update_mode="minibatch"`` is the batch-parallel path: up to
        ``batch_replicas`` replicas are programmed with the *same frozen*
        weights and one sample each, every replica runs the full two-phase
        presentation with its own stochastic-rounding stream (bit-identical
        to a sequential run of that replica), and the host then writes back
        ``w0 + round(mean_r(w_r - w0))`` — the chip analogue of the
        reference engine's mean-of-deltas minibatch mode, with the same
        documented break of the online dependency chain.  The fractional
        mean is resolved by stochastic rounding on the
        :func:`host_reduce_rng` stream (round-to-nearest when the config
        disables stochastic rounding): averaged 8-bit deltas are often
        sub-integer, and deterministic rounding would silently discard
        them — the same argument that puts stochastic rounding in the
        chip's own learning engine.
        """
        if update_mode == "online":
            return self.train_batch(X, labels)
        if update_mode != "minibatch":
            raise ValueError(
                "update_mode must be 'online' or 'minibatch', "
                f"got {update_mode!r}")
        if self.model.label_name is None:
            raise RuntimeError(
                "this network was built without an error path "
                "(include_error_path=False); it can only run inference")
        X = self._as_batch(X)
        y = np.asarray(labels, dtype=np.int64).reshape(-1)
        if len(X) != len(y):
            raise ValueError("samples and labels must have equal length")
        if len(X) == 0:
            empty = np.zeros(0, dtype=np.int64)
            return {"predictions": empty, "correct": empty.astype(bool),
                    "accuracy": 0.0}
        if not self._class_mask[y].all():
            bad = sorted(set(int(v) for v in y[~self._class_mask[y]]))
            raise ValueError(f"labels {bad} are masked out")
        T = self.model.config.T
        width = self._target_replicas(len(X))
        preds = np.empty(len(X), dtype=np.int64)
        for lo in range(0, len(X), width):
            xb, yb = X[lo:lo + width], y[lo:lo + width]
            k = len(xb)
            model_b, rt = self._fresh_chunk(k)
            w0 = [c.weight_mant.copy()
                  for c in self.model.plastic_connections]
            rt.reset_traces()
            rt.reset_tags()
            self._program_batch(rt, model_b, xb, labels=yb)
            rt.disable(self._phase2_names)
            rt.run(T)
            counts = np.atleast_2d(rt.spike_counts(model_b.output_name))
            rt.learning_epoch("phase1_end")
            rt.reset_traces()
            rt.reset_membranes(model_b.forward_names)
            rt.enable(self._phase2_names)
            rt.run(T)
            rt.learning_epoch("phase2_end")
            rt.reset_tags()
            rt.reset_traces()
            rt.mark_sample(k)
            for conn_c, conn_b, w_start in zip(
                    self.model.plastic_connections,
                    model_b.plastic_connections, w0):
                wb = conn_b.weight_mant
                if wb.ndim == 3:
                    delta = (wb - w_start[None]).mean(axis=0)
                else:
                    delta = (wb - w_start).astype(float)
                conn_c.set_weights(w_start + self._round_host(delta))
            preds[lo:lo + k] = np.argmax(counts, axis=-1)
            self.runtime.stats.merge(rt.stats)
            self.samples_trained += k
        correct = preds == y
        return {
            "predictions": preds,
            "correct": correct,
            "accuracy": float(np.mean(correct)),
        }

    def train_batch(self, X, labels) -> Dict[str, object]:
        """Online-mode batch training; same contract as ``fit_batch``.

        Each sample's 2T-step presentation sees the weights updated by every
        earlier sample — bit-identical to looping :meth:`train_sample`.
        """
        X = self._as_batch(X)
        y = np.asarray(labels, dtype=np.int64).reshape(-1)
        if len(X) != len(y):
            raise ValueError("samples and labels must have equal length")
        preds = np.empty(len(X), dtype=np.int64)
        for b in range(len(X)):
            preds[b] = self.train_sample(X[b], int(y[b]))["prediction"]
        correct = preds == y
        return {
            "predictions": preds,
            "correct": correct,
            "accuracy": float(np.mean(correct)) if len(X) else 0.0,
        }

    def infer_batch(self, X) -> np.ndarray:
        """Phase-1-only inference for a batch; returns ``(B, n_out)`` rates.

        Runs through the replicated runtime in chunks of up to
        ``batch_replicas`` samples (inference is deterministic, so the
        results equal a sequential :meth:`infer` loop exactly).
        """
        X = self._as_batch(X)
        if len(X) == 0:
            return np.zeros((0, self.model.dims[-1]))
        width = self._target_replicas(len(X))
        if width <= 1:
            return np.stack([self.infer(x) for x in X])
        T = self.model.config.T
        out = np.empty((len(X), self.model.dims[-1]))
        for lo in range(0, len(X), width):
            xb = X[lo:lo + width]
            model_b, rt = self._fresh_chunk(len(xb))
            self._program_batch(rt, model_b, xb)
            if model_b.label_name is not None:
                rt.disable(self._phase2_names)
            rt.run(T)
            rt.mark_sample(len(xb))
            counts = np.atleast_2d(rt.spike_counts(model_b.output_name))
            out[lo:lo + len(xb)] = counts.astype(float) / T
            self.runtime.stats.merge(rt.stats)
        return out

    def predict_batch(self, X) -> np.ndarray:
        """Class decisions for a batch of samples."""
        rates = self.infer_batch(X)
        return np.argmax(rates, axis=-1).astype(np.int64)

    def evaluate_batch(self, samples, labels, batch_size: int = 256) -> float:
        """Accuracy over a sample block, inferring through the batched
        runtime ``batch_size`` samples at a time."""
        X = self._as_batch(samples)
        y = np.asarray(labels, dtype=np.int64).reshape(-1)
        if len(X) != len(y):
            raise ValueError("samples and labels must have equal length")
        correct = 0
        for lo in range(0, len(X), batch_size):
            preds = self.predict_batch(X[lo:lo + batch_size])
            correct += int(np.sum(preds == y[lo:lo + batch_size]))
        return correct / max(len(X), 1)

    # -- loops -------------------------------------------------------------------------

    def train_stream(self, samples, labels,
                     progress: Optional[callable] = None) -> float:
        """Online single-pass training; returns running accuracy."""
        correct = 0
        total = 0
        for x, y in zip(samples, labels):
            out = self.train_sample(x, int(y))
            correct += int(out["correct"])
            total += 1
            if progress is not None:
                progress(total, correct / max(total, 1))
        return correct / max(total, 1)

    def evaluate(self, samples, labels) -> float:
        correct = 0
        total = 0
        for x, y in zip(samples, labels):
            correct += int(self.predict(x) == int(y))
            total += 1
        return correct / max(total, 1)

    # -- checkpointing ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """Snapshot of the chip-resident trainable state.

        The learned parameters live in the plastic connections' 8-bit
        mantissas; everything else about the network (wiring, static
        frontend weights, scale scheme) is reconstructed from the config by
        :func:`repro.onchip.build_emstdp_network`, so a checkpoint restores
        onto a freshly built trainer of the same ``dims``.
        """
        return {
            "dims": tuple(self.model.dims),
            "config": dataclasses.asdict(self.model.config),
            "weight_mant": [c.weight_mant.copy()
                            for c in self.model.plastic_connections],
            "class_mask": self._class_mask.copy(),
            "samples_trained": self.samples_trained,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        if tuple(int(d) for d in state["dims"]) != tuple(self.model.dims):
            raise ValueError(
                f"checkpoint dims {tuple(state['dims'])} != network dims "
                f"{tuple(self.model.dims)}")
        mants = state["weight_mant"]
        conns = self.model.plastic_connections
        if len(mants) != len(conns):
            raise ValueError(
                f"checkpoint has {len(mants)} plastic connections, "
                f"network has {len(conns)}")
        for conn, mant in zip(conns, mants):
            conn.set_weights(np.asarray(mant, dtype=np.int64))
        mask = np.asarray(state["class_mask"], dtype=bool)
        if mask.shape != (self.model.dims[-1],):
            raise ValueError("class_mask shape does not match output layer")
        self.set_class_mask(list(np.flatnonzero(mask)))
        self.samples_trained = int(state["samples_trained"])

    # -- reporting ----------------------------------------------------------------------

    def energy_report(self, model: Optional[EnergyModel] = None,
                      learning: bool = True) -> EnergyReport:
        """Table II row for the run so far (requires a compiled mapping)."""
        if self.mapping is None:
            raise RuntimeError("compile() the network before asking for energy")
        if model is None:
            model = EnergyModel()
        return model.report(
            self.runtime.stats,
            cores_used=self.mapping.cores_used,
            max_compartments_per_core=self.mapping.max_compartments_sweep_cores,
            compartments=self.model.network.n_compartments(),
            learning=learning,
        )
