"""Builds the EMSTDP forward + error networks on the chip (Fig. 1b).

Wiring summary (Section III-A):

* **Forward path** — IF groups per layer (``decay_v = 0``, instant current
  decay) with plastic 8-bit connections; a shared always-on *bias* neuron
  provides trainable biases through ordinary plastic synapses.
* **Loss layer** — a bias-driven *label* group and two output error
  channels (positive/negative) integrating ``+w_L * target - w_L * predicted``
  (Eq. 6).  Error spikes feed back one-to-one into the output forward
  neurons with a full threshold's worth of charge.
* **FA** — per-hidden-layer two-channel error groups, cross-connected with
  ``+B``/``-B`` between channels (Eq. 10), each gated by an auxiliary
  compartment that accumulates its forward partner's spikes (the
  multi-compartment AND gate realizing ``h'``).
* **DFA** — no hidden error neurons: the output error channels broadcast
  through fixed random ``+D``/``-D`` blocks straight into the hidden
  forward neurons' membranes.

All weights are signed 8-bit mantissas; the translation between the
algorithm's normalized units (threshold = 1.0, rates in [0, 1]) and chip
integer units is captured by :class:`ScaleScheme`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..core.config import EMSTDPConfig, validate_dims
from ..core.feedback import make_dfa_weights, make_fa_weights
from ..loihi.compartment import CompartmentPrototype, if_prototype
from ..loihi.sdk import Network
from ..loihi.synapse import WEIGHT_MANT_MAX


@dataclasses.dataclass(frozen=True)
class ScaleScheme:
    """Fixed-point translation between normalized and chip units.

    A normalized weight ``w`` (clip ``weight_clip``) maps to mantissa
    ``round(w / step)`` with ``step = weight_clip / 127``; one mantissa unit
    delivers ``weight_scale`` integer membrane units per spike, chosen so a
    full-scale weight contributes ``weight_clip * vth``.
    """

    vth_mant: int = 256
    weight_clip: float = 2.0

    @property
    def vth(self) -> int:
        return self.vth_mant << 6

    @property
    def step(self) -> float:
        return self.weight_clip / WEIGHT_MANT_MAX

    @property
    def weight_scale(self) -> int:
        return max(1, round(self.step * self.vth))

    def to_mant(self, w_norm: np.ndarray) -> np.ndarray:
        """Quantize normalized weights to 8-bit mantissas."""
        mant = np.round(np.asarray(w_norm, dtype=float) / self.step)
        return np.clip(mant, -WEIGHT_MANT_MAX, WEIGHT_MANT_MAX).astype(np.int64)

    def from_mant(self, mant: np.ndarray) -> np.ndarray:
        return np.asarray(mant, dtype=float) * self.step

    def rate_to_bias(self, rate: np.ndarray) -> np.ndarray:
        """Bias integer producing spike rate ``rate`` in an IF compartment."""
        return np.round(np.clip(np.asarray(rate, dtype=float), 0.0, 1.0)
                        * self.vth).astype(np.int64)

    def unit_weight_mant(self, gain: float = 1.0) -> int:
        """Mantissa whose contribution is ``gain`` thresholds per spike."""
        mant = round(gain * self.vth / self.weight_scale)
        if not 1 <= abs(mant) <= WEIGHT_MANT_MAX:
            raise ValueError(f"gain {gain} not representable in 8 bits")
        return mant


@dataclasses.dataclass
class OnChipEMSTDP:
    """Handle to a built on-chip EMSTDP network: groups by role."""

    network: Network
    config: EMSTDPConfig
    scales: ScaleScheme
    dims: tuple
    forward_names: List[str]
    plastic_connections: List[object]
    error_path_names: List[str]
    label_name: Optional[str]
    bias_name: Optional[str]
    #: Builder arguments recorded so :meth:`replicate` can rebuild the same
    #: topology (weights/biases are then copied from the live network, so
    #: the replica is exact regardless of how this network was initialized).
    frontend_layers: Optional[List] = None
    frontend_packing: Optional[int] = None
    replicas: int = 1

    @property
    def input_name(self) -> str:
        return self.forward_names[0]

    @property
    def output_name(self) -> str:
        return self.forward_names[-1]

    def forward_weight_norms(self) -> List[np.ndarray]:
        """Current forward weights in normalized units (for inspection)."""
        return [self.scales.from_mant(c.weight_mant)
                for c in self.plastic_connections]

    def replicate(self, replicas: int) -> "OnChipEMSTDP":
        """A batch-parallel copy: same wiring, ``replicas`` state copies.

        The twin is rebuilt through the same builder path (identical group
        and connection order), then every connection's mantissas, every
        group's bias and every per-compartment mask are copied from this
        network's *current* state — plastic weights broadcast to all
        replicas — so the copy is exact however this network was
        initialized or trained.
        """
        twin = build_emstdp_network(
            self.dims, self.config, scales=self.scales,
            include_error_path=self.label_name is not None,
            frontend_layers=self.frontend_layers,
            frontend_packing=self.frontend_packing,
            replicas=replicas)
        sync_networks(self, twin)
        for mine, theirs in zip(self.network.groups, twin.network.groups):
            theirs.set_bias(mine.bias)
            theirs.enabled = mine.enabled
        return twin


def sync_networks(src: OnChipEMSTDP, dst: OnChipEMSTDP) -> None:
    """Copy ``src``'s learned state onto ``dst`` (a replica twin).

    Connection mantissas are copied pairwise in build order (plastic blocks
    broadcast across ``dst``'s replicas) and per-compartment masks follow —
    the host-side "program the chip" step before each batched chunk.
    """
    if len(src.network.connections) != len(dst.network.connections):
        raise ValueError("networks have different topology")
    for mine, theirs in zip(src.network.connections,
                            dst.network.connections):
        if mine.name != theirs.name:
            raise ValueError(
                f"connection order mismatch: {mine.name!r} vs {theirs.name!r}")
        theirs.set_weights(mine.weight_mant)
    for g_mine, g_theirs in zip(src.network.groups, dst.network.groups):
        g_theirs.mask = g_mine.mask.copy()


def build_emstdp_network(dims: Sequence[int], config: EMSTDPConfig,
                         rng: Optional[np.random.Generator] = None,
                         initial_weights: Optional[List[np.ndarray]] = None,
                         feedback_weights: Optional[List[np.ndarray]] = None,
                         include_error_path: bool = True,
                         scales: Optional[ScaleScheme] = None,
                         frontend_packing: Optional[int] = None,
                         frontend_layers: Optional[List] = None,
                         replicas: int = 1,
                         ) -> OnChipEMSTDP:
    """Construct the full Fig. 1b network on the chip.

    ``initial_weights`` / ``feedback_weights`` accept the normalized-unit
    matrices of an :class:`~repro.core.EMSTDPNetwork` (including the bias
    row when ``config.use_bias_neuron``), enabling like-for-like comparisons
    between the chip and the FP reference.  ``include_error_path=False``
    builds the inference-only network used for the Table II "Testing"
    columns.

    ``frontend_layers`` is an optional list of ``(matrix, bias)`` pairs in
    normalized units — the offline-pretrained conv layers unrolled by
    :func:`repro.models.convert.frontend_matrices` — mapped as fixed
    (non-plastic) spiking layers in front of the trainable part; the first
    frontend group becomes the bias-programmed input layer.

    ``replicas > 1`` builds the *batch-parallel* network: ``replicas``
    independent copies of the whole Fig. 1b wiring sharing one declaration,
    stepped together by the vectorized runtime (each copy carries its own
    membrane/trace/tag/plastic-weight state).  The trainer uses such a twin
    for ``fit_batch``/``predict_batch``.
    """
    dims = validate_dims(dims)
    cfg = config
    if scales is None:
        clip = cfg.weight_clip if cfg.weight_clip is not None else 2.0
        scales = ScaleScheme(weight_clip=clip)
    if rng is None:
        rng = np.random.default_rng(cfg.seed)
    n_layers = len(dims) - 1
    n_out = dims[-1]
    net = Network("emstdp", replicas=replicas)
    # Forward-path compartments use a *signed* membrane (no zero floor):
    # phase-2 correction spikes must add and subtract charge symmetrically,
    # otherwise inhibitory corrections are partially lost to the clamp and
    # every hidden neuron picks up a systematic positive rate bias that
    # compounds into weight growth.  The error channels keep the floor —
    # their rectification is exactly what the +/- channel pair implements.
    proto = if_prototype(vth_mant=scales.vth_mant, floor_at_zero=False)
    err_proto = if_prototype(vth_mant=scales.vth_mant, floor_at_zero=True)
    aux_proto = CompartmentPrototype(vth_mant=scales.vth_mant, decay_u=4096,
                                     decay_v=0, non_spiking=True)

    # ---- fixed frontend (offline-pretrained conv layers) -------------------
    frontend_names: List[str] = []
    prev_frontend = None
    if frontend_layers:
        first_mat = np.asarray(frontend_layers[0][0], dtype=float)
        prev_frontend = net.create_group(first_mat.shape[0], proto,
                                         "frontend0", packing=frontend_packing)
        frontend_names.append("frontend0")
        for k, (mat, bias) in enumerate(frontend_layers):
            mat = np.asarray(mat, dtype=float)
            nxt = net.create_group(mat.shape[1], proto, f"frontend{k + 1}",
                                   packing=frontend_packing)
            frontend_names.append(f"frontend{k + 1}")
            net.connect(prev_frontend, nxt, scales.to_mant(mat),
                        scales.weight_scale, name=f"conv{k}")
            if bias is not None:
                nxt.set_bias(scales.rate_to_bias(np.zeros(mat.shape[1]))
                             + np.round(np.asarray(bias, dtype=float)
                                        * scales.vth).astype(np.int64))
            prev_frontend = nxt
        if prev_frontend.n != dims[0]:
            raise ValueError(
                f"frontend output ({prev_frontend.n}) must match dims[0] "
                f"({dims[0]})")

    # ---- forward path ----------------------------------------------------
    if prev_frontend is not None:
        forward = [prev_frontend]
    else:
        forward = [net.create_group(dims[0], proto, "fwd0", packing=None)]
    for i in range(1, len(dims)):
        forward.append(net.create_group(
            dims[i], proto, f"fwd{i}",
            packing="sweep" if i >= 1 else None))

    if initial_weights is None:
        initial_weights = []
        for i in range(n_layers):
            fan_in = dims[i] + (1 if cfg.use_bias_neuron else 0)
            limit = cfg.init_scale * np.sqrt(6.0 / fan_in)
            initial_weights.append(
                rng.uniform(-limit, limit,
                            size=(fan_in, dims[i + 1])))

    bias_group = None
    if cfg.use_bias_neuron:
        bias_group = net.create_group(1, proto, "bias")
        bias_group.set_bias(np.array([scales.vth]))  # fires every step

    plastic = []
    for i in range(n_layers):
        w = np.asarray(initial_weights[i], dtype=float)
        expected_rows = dims[i] + (1 if cfg.use_bias_neuron else 0)
        if w.shape != (expected_rows, dims[i + 1]):
            raise ValueError(
                f"layer {i} weights must be {(expected_rows, dims[i + 1])}, "
                f"got {w.shape}")
        main = scales.to_mant(w[:dims[i]])
        conn = net.connect(forward[i], forward[i + 1], main,
                           scales.weight_scale, plastic=True,
                           learning_rule="emstdp",
                           name=f"W{i}")
        plastic.append(conn)
        if cfg.use_bias_neuron:
            brow = scales.to_mant(w[dims[i]:dims[i] + 1])
            bconn = net.connect(bias_group, forward[i + 1], brow,
                                scales.weight_scale, plastic=True,
                                learning_rule="emstdp",
                                name=f"Wb{i}")
            plastic.append(bconn)

    error_names: List[str] = []
    label_name = None
    if include_error_path:
        # ---- loss layer ----------------------------------------------------
        label = net.create_group(n_out, err_proto, "label")
        label_name = "label"
        err_pos = net.create_group(n_out, err_proto, "err_out_pos")
        err_neg = net.create_group(n_out, err_proto, "err_out_neg")
        error_names += ["label", "err_out_pos", "err_out_neg"]
        wl = scales.unit_weight_mant(cfg.error_gain)
        eye = np.eye(n_out, dtype=np.int64)
        net.connect(label, err_pos, wl * eye, scales.weight_scale, name="L+")
        net.connect(forward[-1], err_pos, -wl * eye, scales.weight_scale,
                    name="O-")
        net.connect(label, err_neg, -wl * eye, scales.weight_scale, name="L-")
        net.connect(forward[-1], err_neg, wl * eye, scales.weight_scale,
                    name="O+")
        if cfg.gate_output:
            aux = net.create_group(n_out, aux_proto, "err_out_aux",
                                   colocate=forward[-1].name)
            error_names.append("err_out_aux")
            one = scales.unit_weight_mant(1.0)
            net.connect(forward[-1], aux, one * eye, scales.weight_scale,
                        name="gate_out")
            err_pos.gate_group = aux
            err_neg.gate_group = aux
        # One-to-one corrections into the output layer.  Positive errors
        # must *add spikes* (h_hat = h + e), so they drive a dendritic
        # OR-merge compartment that fires once per error spike; a membrane
        # injection would be cancelled by negative forward drive.  Negative
        # errors subtract a threshold's charge from the (firing) soma.
        unit = scales.unit_weight_mant(1.0)
        corr_out = net.create_group(n_out, err_proto, "corr_out",
                                    colocate=forward[-1].name)
        error_names.append("corr_out")
        net.connect(err_pos, corr_out, unit * eye, scales.weight_scale,
                    name="corr_out+")
        forward[-1].merge_group = corr_out
        net.connect(err_neg, forward[-1], -unit * eye, scales.weight_scale,
                    name="corr_out-")

        # ---- feedback path -------------------------------------------------
        if feedback_weights is None:
            maker = make_fa_weights if cfg.feedback == "fa" else make_dfa_weights
            feedback_weights = maker(dims, rng, cfg.feedback_scale)
        if cfg.feedback == "dfa":
            # The output error broadcasts through fixed random D into
            # per-neuron correction *dendrites* of the hidden forward
            # neurons (no separate error neurons, preserving DFA's resource
            # savings).  The dendrites are IF compartments: broadcast charge
            # below one threshold never surfaces, filtering the noise that a
            # raw membrane injection would integrate into weight drift.
            # Positive dendrites OR-merge extra spikes into the soma's
            # axon; negative dendrites subtract a threshold's charge.
            for i in range(n_layers - 1):
                n_hid = dims[i + 1]
                d = np.asarray(feedback_weights[i], dtype=float)
                dm = scales.to_mant(cfg.hidden_error_gain * d)
                dend_pos = net.create_group(n_hid, err_proto, f"dfa{i}_pos",
                                            colocate=forward[i + 1].name)
                dend_neg = net.create_group(n_hid, err_proto, f"dfa{i}_neg",
                                            colocate=forward[i + 1].name)
                error_names += [f"dfa{i}_pos", f"dfa{i}_neg"]
                net.connect(err_pos, dend_pos, dm, scales.weight_scale,
                            name=f"D{i}++")
                net.connect(err_neg, dend_pos, -dm, scales.weight_scale,
                            name=f"D{i}-+")
                net.connect(err_pos, dend_neg, -dm, scales.weight_scale,
                            name=f"D{i}+-")
                net.connect(err_neg, dend_neg, dm, scales.weight_scale,
                            name=f"D{i}--")
                eye_h = np.eye(n_hid, dtype=np.int64)
                one = scales.unit_weight_mant(1.0)
                if cfg.gate_hidden:
                    aux = net.create_group(n_hid, aux_proto, f"dfa{i}_aux",
                                           colocate=forward[i + 1].name)
                    error_names.append(f"dfa{i}_aux")
                    net.connect(forward[i + 1], aux, one * eye_h,
                                scales.weight_scale, name=f"dfa_gate{i}")
                    dend_pos.gate_group = aux
                    dend_neg.gate_group = aux
                forward[i + 1].merge_group = dend_pos
                net.connect(dend_neg, forward[i + 1], -one * eye_h,
                            scales.weight_scale, name=f"dfa_corr{i}-")
        else:
            above_pos, above_neg = err_pos, err_neg
            for i in range(n_layers - 2, -1, -1):
                n_hid = dims[i + 1]
                aux = net.create_group(n_hid, aux_proto, f"err{i}_aux",
                                       colocate=forward[i + 1].name)
                hp = net.create_group(n_hid, err_proto, f"err{i}_pos",
                                      packing="sweep")
                hn = net.create_group(n_hid, err_proto, f"err{i}_neg",
                                      packing="sweep")
                error_names += [f"err{i}_aux", f"err{i}_pos", f"err{i}_neg"]
                b = np.asarray(feedback_weights[i], dtype=float)
                bm = scales.to_mant(cfg.hidden_error_gain * b)
                # Eq. (10): cross-connected +/- blocks between channels.
                net.connect(above_pos, hp, bm, scales.weight_scale,
                            name=f"B{i}++")
                net.connect(above_neg, hp, -bm, scales.weight_scale,
                            name=f"B{i}-+")
                net.connect(above_pos, hn, -bm, scales.weight_scale,
                            name=f"B{i}+-")
                net.connect(above_neg, hn, bm, scales.weight_scale,
                            name=f"B{i}--")
                eye_h = np.eye(n_hid, dtype=np.int64)
                one = scales.unit_weight_mant(1.0)
                if cfg.gate_hidden:
                    net.connect(forward[i + 1], aux, one * eye_h,
                                scales.weight_scale, name=f"gate{i}")
                    hp.gate_group = aux
                    hn.gate_group = aux
                corr_h = net.create_group(n_hid, err_proto, f"corr{i}",
                                          colocate=forward[i + 1].name)
                error_names.append(f"corr{i}")
                net.connect(hp, corr_h, one * eye_h,
                            scales.weight_scale, name=f"corr{i}+")
                forward[i + 1].merge_group = corr_h
                net.connect(hn, forward[i + 1], -one * eye_h,
                            scales.weight_scale, name=f"corr{i}-")
                above_pos, above_neg = hp, hn

    if frontend_packing is not None and not frontend_layers:
        forward[0].packing = frontend_packing

    return OnChipEMSTDP(
        network=net,
        config=cfg,
        scales=scales,
        dims=dims,
        forward_names=frontend_names[:-1] + [g.name for g in forward],
        plastic_connections=plastic,
        error_path_names=error_names,
        label_name=label_name,
        bias_name="bias" if cfg.use_bias_neuron else None,
        frontend_layers=list(frontend_layers) if frontend_layers else None,
        frontend_packing=frontend_packing,
        replicas=replicas,
    )
