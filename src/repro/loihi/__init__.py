"""A Loihi-like digital neuromorphic chip simulator.

The substrate the paper runs on: CUBA LIF compartments (configurable into
the IF neurons EMSTDP needs), multi-compartment AND gating, 8-bit synapses
with tags and trace counters, a sum-of-products microcode learning engine,
a 128-core resource model with layer-at-a-time mapping, and a calibrated
timing/power/energy model.
"""

from .chip import ChipSpec, LoihiChip
from .compartment import (CompartmentGroup, CompartmentPrototype, MANT_SHIFT,
                          if_prototype)
from .core import CoreResourceError, CoreSpec, NeuroCore
from .energy import (EnergyModel, EnergyModelParams, EnergyReport, RunStats)
from .mapping import (GroupPlacement, Mapper, Mapping,
                      optimal_neurons_per_core, shard_groups)
from .microcode import (Factor, LearningEngine, ProductTerm, SumOfProducts,
                        emstdp_rules, parse_rule, phase1_tag_rules)
from .runtime import Runtime, ShardedRuntime
from .sdk import Network
from .synapse import ConnectionGroup, TAG_MAX, WEIGHT_MANT_MAX
from .traces import TraceConfig, TraceState, counter_trace

__all__ = [
    "ChipSpec", "CompartmentGroup", "CompartmentPrototype", "ConnectionGroup",
    "CoreResourceError", "CoreSpec", "EnergyModel", "EnergyModelParams",
    "EnergyReport", "Factor", "GroupPlacement", "LearningEngine", "LoihiChip",
    "MANT_SHIFT", "Mapper", "Mapping", "Network", "NeuroCore", "ProductTerm",
    "RunStats", "Runtime", "ShardedRuntime", "SumOfProducts", "TAG_MAX",
    "TraceConfig", "TraceState", "WEIGHT_MANT_MAX", "counter_trace",
    "emstdp_rules", "if_prototype", "optimal_neurons_per_core", "parse_rule",
    "phase1_tag_rules", "shard_groups",
]
