"""Microcode learning engine: sum-of-products synaptic plasticity.

Loihi's programmable learning engine constrains every adaptation rule to the
functional form of Eq. (9):

    z := z + sum_i  S_i * prod_j (V_ij + C_ij)

where ``z`` is a synaptic variable (weight ``w``, tag ``t``, delay), the
``V_ij`` are locally available quantities (spike traces, synaptic
variables) and ``S_i``/``C_ij`` are microcode constants — with scale factors
restricted to signed powers of two.

This module provides a tiny rule language mirroring that form, e.g.::

    dw = 2^-8 * y1 * x1 - 2^-9 * t * x1     # Eq. (12) of the paper
    dt = y1                                  # tag accumulates spike counts

Available variables:

====== =====================================================
``x0``  presynaptic spike indicator at the learning epoch
``x1``  presynaptic trace counter (phase spike count)
``y0``  postsynaptic spike indicator
``y1``  postsynaptic trace counter
``t``   per-synapse tag
``w``   current weight mantissa
====== =====================================================

Scale factors must be written as ``2^k`` (signed integer ``k``), matching
the hardware's shift-based arithmetic.  Fractional results are resolved by
stochastic rounding (Loihi supports rounding modes on the learning engine);
deterministic round-to-nearest is available for reproducible unit tests.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Optional, Sequence

import numpy as np

from ..core import kernels
from ..seeding import as_rng
from .synapse import ConnectionGroup, TAG_MAX, WEIGHT_MANT_MAX

_VARIABLES = ("x0", "x1", "y0", "y1", "t", "w")


@dataclasses.dataclass(frozen=True)
class Factor:
    """One ``(V + C)`` factor; ``var is None`` means a bare constant."""

    var: Optional[str]
    const: int = 0

    def __post_init__(self):
        if self.var is not None and self.var not in _VARIABLES:
            raise ValueError(f"unknown learning variable {self.var!r}")


@dataclasses.dataclass(frozen=True)
class ProductTerm:
    """One ``S * prod(V + C)`` term; ``scale_exp`` encodes ``S = sign * 2^k``."""

    sign: int
    scale_exp: int
    factors: tuple

    def __post_init__(self):
        if self.sign not in (-1, 1):
            raise ValueError("sign must be +1 or -1")


@dataclasses.dataclass(frozen=True)
class SumOfProducts:
    """A complete rule: the target variable and its product terms."""

    target: str  # "w" or "t"
    terms: tuple
    text: str = ""

    def __post_init__(self):
        if self.target not in ("w", "t"):
            raise ValueError("rule target must be 'w' (dw) or 't' (dt)")


_SCALE_RE = re.compile(r"^2\^(-?\d+)$")
_PAREN_RE = re.compile(r"^\((x0|x1|y0|y1|t|w)\s*([+-])\s*(\d+)\)$")
_INT_RE = re.compile(r"^-?\d+$")


def _split_top_level(text: str, separators: str) -> List[str]:
    """Split on separators occurring outside parentheses, keeping them."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced parentheses in {text!r}")
        if depth == 0 and ch in separators and not current.endswith("^"):
            parts.append(current)
            parts.append(ch)
            current = ""
        else:
            current += ch
    if depth != 0:
        raise ValueError(f"unbalanced parentheses in {text!r}")
    parts.append(current)
    return parts


def parse_rule(text: str) -> SumOfProducts:
    """Parse a rule string like ``"dw = 2^-8 * y1 * x1 - 2^-9 * t * x1"``."""
    if "=" not in text:
        raise ValueError(f"rule must contain '=': {text!r}")
    lhs, rhs = text.split("=", 1)
    lhs = lhs.strip()
    if lhs not in ("dw", "dt"):
        raise ValueError(f"rule target must be 'dw' or 'dt', got {lhs!r}")
    target = lhs[1]

    pieces = _split_top_level(rhs.replace(" ", ""), "+-")
    terms: List[ProductTerm] = []
    sign = 1
    for piece in pieces:
        if piece == "+":
            sign = 1
            continue
        if piece == "-":
            sign = -1
            continue
        if not piece:
            continue
        scale_exp = 0
        factors: List[Factor] = []
        for factor_text in piece.split("*"):
            m = _SCALE_RE.match(factor_text)
            if m:
                scale_exp += int(m.group(1))
                continue
            if factor_text in _VARIABLES:
                factors.append(Factor(factor_text))
                continue
            m = _PAREN_RE.match(factor_text)
            if m:
                var, op, const = m.groups()
                factors.append(Factor(var, int(const) if op == "+" else -int(const)))
                continue
            if _INT_RE.match(factor_text):
                value = int(factor_text)
                if value < 0:
                    sign = -sign
                    value = -value
                # Fold bare integer constants into a (None + C) factor.
                factors.append(Factor(None, value))
                continue
            raise ValueError(f"cannot parse factor {factor_text!r} in {text!r}")
        terms.append(ProductTerm(sign, scale_exp, tuple(factors)))
        sign = 1
    if not terms:
        raise ValueError(f"rule has no terms: {text!r}")
    return SumOfProducts(target, tuple(terms), text=text)


class LearningEngine:
    """Evaluates sum-of-products rules on plastic connections.

    The engine is invoked at *learning epochs* — in EMSTDP, at the end of
    each phase (Operation Flow 1) — never inside the per-timestep loop,
    mirroring how the hardware batches plasticity processing.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 stochastic_rounding: bool = True,
                 rngs: Optional[Sequence[np.random.Generator]] = None):
        if rngs is not None:
            #: Per-replica stochastic-rounding streams for batched
            #: (replicated) connections.  Replica ``r`` always rounds with
            #: ``rngs[r]`` drawing a ``(src.n, dst.n)`` block — exactly the
            #: draw a single-replica engine built on ``rngs[r]`` would make,
            #: which is what keeps batched learning bit-identical to
            #: sequential per-replica execution.
            self.rngs = list(rngs)
            self.rng = self.rngs[0]
        else:
            self.rngs = None
            self.rng = as_rng(rng)
        self.stochastic_rounding = bool(stochastic_rounding)

    def evaluate(self, rule: SumOfProducts, conn: ConnectionGroup) -> np.ndarray:
        """The raw (float) ``dz`` block for a rule on a connection.

        Shape ``(src.n, dst.n)``, with a leading replica axis when the
        connection is replicated.  The sum-of-products itself runs in the
        selected kernel backend.
        """
        if not conn.plastic:
            raise ValueError(f"connection {conn.name!r} is not plastic")
        return kernels.sum_of_products(
            rule,
            conn.src.spikes.astype(np.int64), conn.pre_trace.read(),
            conn.dst.spikes.astype(np.int64), conn.post_trace.read(),
            conn.tag, conn.weight_mant)

    def _round(self, dz: np.ndarray) -> np.ndarray:
        if self.stochastic_rounding:
            floor = np.floor(dz)
            frac = dz - floor
            if dz.ndim == 3 and self.rngs is not None:
                if len(self.rngs) != dz.shape[0]:
                    raise ValueError(
                        f"engine has {len(self.rngs)} replica rng streams, "
                        f"connection has {dz.shape[0]} replicas")
                draw = np.stack([rng.random(dz.shape[1:])
                                 for rng in self.rngs])
            else:
                draw = self.rng.random(dz.shape)
            return (floor + (draw < frac)).astype(np.int64)
        return np.round(dz).astype(np.int64)

    def apply(self, rule: SumOfProducts, conn: ConnectionGroup) -> None:
        """Evaluate ``rule`` and commit the change with hardware clamping."""
        dz = self._round(self.evaluate(rule, conn))
        if rule.target == "w":
            conn.weight_mant = np.clip(conn.weight_mant + dz,
                                       -WEIGHT_MANT_MAX, WEIGHT_MANT_MAX)
        else:
            conn.tag = np.clip(conn.tag + dz, -TAG_MAX, TAG_MAX)

    def apply_all(self, rules: Sequence[SumOfProducts],
                  conn: ConnectionGroup) -> None:
        """Apply an ordered rule list (Loihi evaluates dt before dw usage
        only in program order; EMSTDP relies on updating the tag first)."""
        for rule in rules:
            self.apply(rule, conn)


def emstdp_rules(eta_exp: int) -> List[SumOfProducts]:
    """The paper's Eq. (12) as microcode, parameterized by ``eta = 2^eta_exp``.

    Applied at the end of phase 2, *after* the tag rule below has folded the
    phase-1 count into ``t`` (making ``t = Z = h + h_hat``)::

        dt = y1                      (t: h -> h + h_hat = Z)
        dw = 2^(eta_exp+1) * y1 * x1 - 2^eta_exp * t * x1
    """
    return [
        parse_rule("dt = y1"),
        parse_rule(f"dw = 2^{eta_exp + 1} * y1 * x1 - 2^{eta_exp} * t * x1"),
    ]


def phase1_tag_rules() -> List[SumOfProducts]:
    """Applied at the end of phase 1: stash ``h`` in the tag (``dt = y1``)."""
    return [parse_rule("dt = y1")]
