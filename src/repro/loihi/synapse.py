"""Synaptic connections with 8-bit integer weights and per-synapse tags.

A :class:`ConnectionGroup` is a dense weight block between two compartment
groups.  Weights are stored as signed 8-bit mantissas; the integer potential
delivered to the destination per presynaptic spike is
``mant * weight_scale`` where ``weight_scale`` translates one mantissa step
into membrane units.  Plastic connections additionally carry a per-synapse
*tag* — the third synaptic variable of Loihi's learning engine, which
EMSTDP uses to hold ``Z = h + h_hat`` (Eq. 12) — and pre/post trace
counters.
"""

from __future__ import annotations


import numpy as np

from .compartment import CompartmentGroup
from .traces import counter_trace

#: Signed 8-bit mantissa range of a synaptic weight.
WEIGHT_MANT_MAX = 127

#: Range of the 8-bit tag variable (stored unsigned in EMSTDP's usage).
TAG_MAX = 255


class ConnectionGroup:
    """Dense synaptic block ``src -> dst``.

    Parameters
    ----------
    src, dst:
        Compartment groups; the weight matrix has shape ``(src.n, dst.n)``.
    weight_mant:
        Integer mantissas in ``[-127, 127]``.
    weight_scale:
        Membrane units delivered per mantissa unit per spike.  The builder
        chooses it so that a full-scale weight equals the intended fraction
        of the destination threshold.
    plastic:
        Allocate tags and trace counters and register with the learning
        engine.
    learning_rule:
        Name of the microcode rule set to apply (resolved by the runtime).
    """

    def __init__(self, src: CompartmentGroup, dst: CompartmentGroup,
                 weight_mant: np.ndarray, weight_scale: int,
                 plastic: bool = False, learning_rule: str = "",
                 name: str = ""):
        weight_mant = np.asarray(weight_mant)
        if weight_mant.shape != (src.n, dst.n):
            raise ValueError(
                f"weight matrix must be ({src.n}, {dst.n}), got {weight_mant.shape}")
        if np.abs(weight_mant).max(initial=0) > WEIGHT_MANT_MAX:
            raise ValueError("weight mantissas exceed the 8-bit range")
        if weight_scale < 1:
            raise ValueError("weight_scale must be a positive integer")
        if src.replicas != dst.replicas:
            raise ValueError(
                f"connection {name or src.name + '->' + dst.name!r}: "
                f"src has {src.replicas} replicas, dst has {dst.replicas}")
        self.src = src
        self.dst = dst
        #: Replica count inherited from the endpoint groups.  Static
        #: connections share one ``(src.n, dst.n)`` weight block across all
        #: replicas (the values never diverge); plastic connections with
        #: ``replicas > 1`` carry an independent ``(replicas, src.n, dst.n)``
        #: weight/tag copy per replica so batched learning matches
        #: sequential per-replica execution bit for bit.
        self.replicas = src.replicas
        weight_mant = weight_mant.astype(np.int64)
        if plastic and self.replicas > 1:
            weight_mant = np.broadcast_to(
                weight_mant, (self.replicas,) + weight_mant.shape).copy()
        self.weight_mant = weight_mant
        self.weight_scale = int(weight_scale)
        self.plastic = bool(plastic)
        self.learning_rule = learning_rule
        self.name = name or f"{src.name}->{dst.name}"
        tag_shape = self.weight_mant.shape
        self.tag = np.zeros(tag_shape, dtype=np.int64) if plastic else None
        self.pre_trace = counter_trace(src.n, self.replicas) if plastic \
            else None
        self.post_trace = counter_trace(dst.n, self.replicas) if plastic \
            else None
        #: Cumulative number of synaptic events (spike x fan-out), for the
        #: energy model; batched replicas accumulate into the same counter.
        self.syn_events = 0

    @property
    def n_synapses(self) -> int:
        """Logical synapse count (replica copies are the same synapses)."""
        return self.src.n * self.dst.n

    def propagate(self, spikes: np.ndarray) -> np.ndarray:
        """Integer current delivered to ``dst`` for presynaptic ``spikes``.

        ``spikes`` has the source group's state shape: ``(src.n,)`` single
        replica, ``(replicas, src.n)`` batched; the returned current matches
        the destination's state shape.
        """
        spikes = np.asarray(spikes, dtype=bool)
        if not spikes.any():
            return np.zeros(self.dst.state_shape, dtype=np.int64)
        self.syn_events += int(spikes.sum()) * self.dst.n
        pre = spikes.astype(np.int64)
        if self.weight_mant.ndim == 3:  # per-replica plastic weights
            contrib = np.einsum("rs,rsd->rd", pre, self.weight_mant)
        else:
            contrib = pre @ self.weight_mant
        return contrib * self.weight_scale

    def update_traces(self, pre_spikes: np.ndarray,
                      post_spikes: np.ndarray) -> None:
        if not self.plastic:
            return
        self.pre_trace.update(pre_spikes)
        self.post_trace.update(post_spikes)

    def reset_traces(self) -> None:
        if self.plastic:
            self.pre_trace.reset()
            self.post_trace.reset()

    def reset_tag(self) -> None:
        if self.tag is not None:
            self.tag.fill(0)

    def set_weights(self, weight_mant: np.ndarray) -> None:
        """Overwrite mantissas (host reprogramming), with range check.

        A replicated plastic connection also accepts one ``(src.n, dst.n)``
        block, broadcast to every replica — how the batched trainer seeds
        each chunk with the canonical weights.
        """
        weight_mant = np.asarray(weight_mant)
        if weight_mant.shape == (self.src.n, self.dst.n) \
                and self.weight_mant.ndim == 3:
            weight_mant = np.broadcast_to(
                weight_mant, self.weight_mant.shape)
        if weight_mant.shape != self.weight_mant.shape:
            raise ValueError("shape mismatch")
        self.weight_mant = np.clip(weight_mant, -WEIGHT_MANT_MAX,
                                   WEIGHT_MANT_MAX).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "plastic" if self.plastic else "static"
        return f"<ConnectionGroup {self.name!r} {kind} {self.weight_mant.shape}>"
