"""Pre- and post-synaptic trace counters.

Loihi's learning engine exposes exponentially filtered spike traces (``x1``,
``x2`` on the presynaptic side, ``y1``..``y3`` on the postsynaptic side).
EMSTDP configures them as *counters* — impulse 1, no decay — so that at the
end of a phase the trace equals the spike count of that phase (the paper's
"built in post-synaptic trace counter" approximation, contribution 2 in the
introduction).

Traces saturate at 7 bits (127) like the hardware's trace registers.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core import kernels

#: Saturation value of a hardware trace register.
TRACE_MAX = 127


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """Impulse/decay configuration of one trace register.

    ``decay`` is the per-step multiplicative factor in [0, 1]: a counter
    uses ``impulse=1, decay=1.0``; a classic STDP trace would use e.g.
    ``impulse=16, decay=exp(-1/tau)``.
    """

    impulse: int = 1
    decay: float = 1.0

    def __post_init__(self):
        if self.impulse < 0 or self.impulse > TRACE_MAX:
            raise ValueError("impulse must be in [0, 127]")
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")


class TraceState:
    """Vector of trace registers for one compartment group.

    With ``replicas > 1`` the register file gains a leading replica axis
    (``(replicas, n)``): each network replica keeps its own independent
    trace values, updated by one vectorized call.
    """

    def __init__(self, n: int, config: TraceConfig = TraceConfig(),
                 replicas: int = 1):
        self.n = int(n)
        self.config = config
        self.replicas = int(replicas)
        self.shape = (self.n,) if self.replicas == 1 \
            else (self.replicas, self.n)
        self.values = np.zeros(self.shape, dtype=np.float64)

    def update(self, spikes: np.ndarray) -> None:
        """One timestep: decay, then add the impulse where spikes occurred."""
        spikes = np.asarray(spikes, dtype=bool)
        if spikes.shape != self.shape:
            raise ValueError(f"spikes must have shape {self.shape}")
        kernels.trace_update(self.values, spikes, self.config.impulse,
                             self.config.decay, TRACE_MAX)

    def read(self) -> np.ndarray:
        """Integer trace values as the learning engine sees them."""
        return np.floor(self.values).astype(np.int64)

    def reset(self) -> None:
        self.values.fill(0.0)


def counter_trace(n: int, replicas: int = 1) -> TraceState:
    """A spike-count trace (impulse 1, no decay) — EMSTDP's configuration."""
    return TraceState(n, TraceConfig(impulse=1, decay=1.0),
                      replicas=replicas)
