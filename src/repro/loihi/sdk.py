"""NxSDK-like network builder.

The paper's Operation Flow 1 starts with "Create Network N in Intel Loihi's
SDK"; this module is our equivalent: declare compartment groups and
connections, then :meth:`Network.compile` maps them onto a chip and returns
the :class:`~repro.loihi.mapping.Mapping` used by the runtime and the
energy model.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .chip import ChipSpec, LoihiChip
from .compartment import CompartmentGroup, CompartmentPrototype
from .mapping import Mapper, Mapping
from .synapse import ConnectionGroup


class Network:
    """A declared (not yet placed) network of groups and connections."""

    def __init__(self, name: str = "network", replicas: int = 1):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.name = name
        #: Independent network copies stepped in one vectorized pass; every
        #: group and connection created through this network inherits it.
        self.replicas = int(replicas)
        self.groups: List[CompartmentGroup] = []
        self.connections: List[ConnectionGroup] = []
        self._group_names: Dict[str, CompartmentGroup] = {}

    # -- declaration --------------------------------------------------------

    def create_group(self, n: int, proto: CompartmentPrototype, name: str,
                     packing: Optional[object] = None,
                     colocate: Optional[str] = None) -> CompartmentGroup:
        """Add a compartment group.

        ``packing`` is the mapping hint: ``None`` (resource-derived),
        an int (fixed neurons/core) or ``"sweep"`` (participates in the
        Fig. 3 neurons-per-core sweep).  ``colocate`` names a same-sized
        host group whose cores this group shares — the auxiliary/dendrite
        compartments of multi-compartment neurons.
        """
        if name in self._group_names:
            raise ValueError(f"duplicate group name {name!r}")
        if colocate is not None and colocate not in self._group_names:
            raise ValueError(f"colocate target {colocate!r} does not exist")
        group = CompartmentGroup(n, proto, name=name,
                                 replicas=self.replicas)
        group.packing = packing
        group.colocate = colocate
        self.groups.append(group)
        self._group_names[name] = group
        return group

    def connect(self, src: CompartmentGroup, dst: CompartmentGroup,
                weight_mant: np.ndarray, weight_scale: int,
                plastic: bool = False, learning_rule: str = "",
                name: str = "") -> ConnectionGroup:
        """Add a dense synaptic block from ``src`` to ``dst``."""
        if src.name not in self._group_names or dst.name not in self._group_names:
            raise ValueError("both endpoints must belong to this network")
        conn = ConnectionGroup(src, dst, weight_mant, weight_scale,
                               plastic=plastic, learning_rule=learning_rule,
                               name=name or f"{src.name}->{dst.name}")
        self.connections.append(conn)
        return conn

    def group(self, name: str) -> CompartmentGroup:
        return self._group_names[name]

    # -- resource queries ----------------------------------------------------

    def fanin(self, group: CompartmentGroup) -> int:
        """Max synaptic fan-in of any neuron in ``group``."""
        total = 0
        for conn in self.connections:
            if conn.dst is group:
                total += int(np.max(np.count_nonzero(conn.weight_mant, axis=0),
                                    initial=0))
        return total

    def fanout(self, group: CompartmentGroup) -> int:
        """Max synaptic fan-out of any neuron in ``group``."""
        total = 0
        for conn in self.connections:
            if conn.src is group:
                total += int(np.max(np.count_nonzero(conn.weight_mant, axis=1),
                                    initial=0))
        return total

    def n_compartments(self) -> int:
        return sum(g.n for g in self.groups)

    def n_synapses(self) -> int:
        return sum(c.n_synapses for c in self.connections)

    def n_plastic_synapses(self) -> int:
        return sum(c.n_synapses for c in self.connections if c.plastic)

    # -- compilation -----------------------------------------------------------

    def compile(self, chip: Optional[LoihiChip] = None,
                neurons_per_core: Optional[int] = None) -> Mapping:
        """Place every group onto chip cores (Operation Flow 1's mapping).

        Builds each layer's adjacency (fan-in/fan-out per neuron), derives
        the neurons-per-core budget and assigns neurons to cores a layer at
        a time.
        """
        if chip is None:
            chip = LoihiChip(ChipSpec())
        mapper = Mapper(neurons_per_core=neurons_per_core)
        requests = [
            (g.name, g.n, self.fanin(g), self.fanout(g),
             getattr(g, "packing", None), getattr(g, "colocate", None))
            for g in self.groups
        ]
        return mapper.map_groups(chip, requests)
