"""Neuromorphic core resource model.

A Loihi chip has 128 neuromorphic cores; each core owns a fixed budget of
compartments, synaptic memory and axon routes (Section II-B).  The mapper
assigns slices of compartment groups to cores against these budgets; the
runtime charges time and energy per core.  Exceeding any budget raises
:class:`CoreResourceError` at compile time, which is exactly the constraint
that forces the paper's neurons-per-core trade-off (Fig. 3).
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple


class CoreResourceError(Exception):
    """A mapping request exceeded a core's hardware budget."""


@dataclasses.dataclass(frozen=True)
class CoreSpec:
    """Per-core hardware budgets.

    Defaults approximate Loihi: 1024 compartments per core, on the order of
    10^5 synapses of memory, and bounded fan-in/fan-out axon tables.
    """

    max_compartments: int = 1024
    max_synapses: int = 131072
    max_fanin_axons: int = 4096
    max_fanout_axons: int = 4096


@dataclasses.dataclass
class CoreAllocation:
    """One slice of a compartment group placed on a core."""

    group_name: str
    start: int
    stop: int
    fanin_per_neuron: int
    fanout_per_neuron: int

    @property
    def n(self) -> int:
        return self.stop - self.start


class NeuroCore:
    """Tracks the resources consumed on one physical core."""

    def __init__(self, core_id: int, spec: CoreSpec):
        self.core_id = int(core_id)
        self.spec = spec
        self.allocations: List[CoreAllocation] = []
        self.n_compartments = 0
        self.n_synapses = 0
        self.n_fanin = 0
        self.n_fanout = 0

    @property
    def occupied(self) -> bool:
        return self.n_compartments > 0

    def can_fit(self, n: int, fanin: int, fanout: int) -> bool:
        return (self.n_compartments + n <= self.spec.max_compartments
                and self.n_synapses + n * fanin <= self.spec.max_synapses
                and self.n_fanin + n * fanin <= self.spec.max_fanin_axons * 64
                and self.n_fanout + n * fanout <= self.spec.max_fanout_axons * 64)

    def allocate(self, group_name: str, start: int, stop: int,
                 fanin: int, fanout: int) -> CoreAllocation:
        n = stop - start
        if n <= 0:
            raise ValueError("empty allocation")
        if not self.can_fit(n, fanin, fanout):
            raise CoreResourceError(
                f"core {self.core_id}: cannot fit {n} compartments of "
                f"{group_name!r} (fanin {fanin}, fanout {fanout})")
        alloc = CoreAllocation(group_name, start, stop, fanin, fanout)
        self.allocations.append(alloc)
        self.n_compartments += n
        self.n_synapses += n * fanin
        self.n_fanin += n * fanin
        self.n_fanout += n * fanout
        return alloc

    def utilization(self) -> Tuple[float, float]:
        """(compartment, synapse-memory) utilization fractions."""
        return (self.n_compartments / self.spec.max_compartments,
                self.n_synapses / self.spec.max_synapses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<NeuroCore {self.core_id}: {self.n_compartments} cpts, "
                f"{self.n_synapses} syns>")
