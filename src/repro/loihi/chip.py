"""Chip-level container: 128 cores plus global bookkeeping."""

from __future__ import annotations

import dataclasses
from typing import List

from .core import CoreSpec, NeuroCore


@dataclasses.dataclass(frozen=True)
class ChipSpec:
    """Whole-chip parameters.

    ``timestep_us`` is the *minimum* duration of one algorithmic timestep —
    Loihi's maximum operating frequency is 10 kHz (Section IV-A2), i.e.
    100 microseconds per step; the realised step time grows with the number
    of compartments sharing a core (see :mod:`repro.loihi.energy`).
    """

    n_cores: int = 128
    core: CoreSpec = dataclasses.field(default_factory=CoreSpec)
    timestep_us: float = 100.0

    def __post_init__(self):
        if self.n_cores < 1:
            raise ValueError("chip must have at least one core")
        if self.timestep_us <= 0:
            raise ValueError("timestep_us must be positive")


class LoihiChip:
    """A chip instance: the target of compilation and the energy model."""

    def __init__(self, spec: ChipSpec = None):
        self.spec = spec if spec is not None else ChipSpec()
        self.cores: List[NeuroCore] = [
            NeuroCore(i, self.spec.core) for i in range(self.spec.n_cores)]

    @property
    def cores_used(self) -> int:
        """Occupied cores; unoccupied cores are power-gated (Section IV-A2)."""
        return sum(core.occupied for core in self.cores)

    @property
    def max_compartments_per_core(self) -> int:
        """The busiest core's compartment count — sets the step latency."""
        return max((core.n_compartments for core in self.cores), default=0)

    def total_compartments(self) -> int:
        return sum(core.n_compartments for core in self.cores)

    def total_synapses(self) -> int:
        return sum(core.n_synapses for core in self.cores)

    def reset(self) -> None:
        """Release all allocations (e.g. before re-compiling)."""
        self.cores = [NeuroCore(i, self.spec.core)
                      for i in range(self.spec.n_cores)]
