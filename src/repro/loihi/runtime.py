"""Timestep execution engine for a declared network.

Semantics (matching a digital neuromorphic chip's barrier-synchronized
update):

1. every connection delivers the spikes its source emitted on the
   *previous* step (one-step conduction delay);
2. every compartment group integrates and fires, in declaration order —
   so an auxiliary gate compartment declared before its soma gates the
   same step's output;
3. plastic connections update their trace counters;
4. the learning engine runs only at host-triggered *learning epochs*
   (the phase boundaries of Operation Flow 1), never inside the loop.

The runtime also owns the counters (:class:`~repro.loihi.energy.RunStats`)
that the energy model turns into Table II / Fig. 3 rows.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .compartment import CompartmentGroup
from .energy import RunStats
from .microcode import LearningEngine, SumOfProducts
from .sdk import Network


class Runtime:
    """Steps a network and orchestrates learning epochs."""

    def __init__(self, network: Network,
                 rng: Optional[np.random.Generator] = None,
                 stochastic_rounding: bool = True):
        self.network = network
        self.engine = LearningEngine(
            rng=rng if rng is not None else np.random.default_rng(),
            stochastic_rounding=stochastic_rounding)
        #: rule book: learning_rule name -> {epoch name -> [rules]}
        self.rulebook: Dict[str, Dict[str, List[SumOfProducts]]] = {}
        self.stats = RunStats()
        self.stats.plastic_synapses = network.n_plastic_synapses()
        self._syn_events_seen = 0

    # -- learning-rule registry ---------------------------------------------

    def register_rule(self, name: str,
                      epochs: Dict[str, List[SumOfProducts]]) -> None:
        """Associate microcode rule lists with named learning epochs."""
        self.rulebook[name] = epochs

    # -- host controls ---------------------------------------------------------

    def set_bias(self, group_name: str, bias: np.ndarray) -> None:
        """Host->chip write programming per-compartment biases."""
        self.network.group(group_name).set_bias(bias)

    def enable(self, group_names: Iterable[str]) -> None:
        for name in group_names:
            self.network.group(name).enabled = True

    def disable(self, group_names: Iterable[str]) -> None:
        for name in group_names:
            self.network.group(name).enabled = False

    # -- execution ---------------------------------------------------------------

    def step(self) -> None:
        """One barrier-synchronized timestep."""
        currents: Dict[str, np.ndarray] = {
            g.name: np.zeros(g.n, dtype=np.int64) for g in self.network.groups}
        for conn in self.network.connections:
            if conn.src.spikes.any():
                currents[conn.dst.name] += conn.propagate(conn.src.spikes)
        n_spikes = 0
        for group in self.network.groups:
            fired = group.step(currents[group.name])
            n_spikes += int(fired.sum())
        for conn in self.network.connections:
            if conn.plastic:
                conn.update_traces(conn.src.spikes, conn.dst.spikes)
        self.stats.steps += 1
        self.stats.spikes += n_spikes

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()
        self._collect_syn_events()

    def _collect_syn_events(self) -> None:
        total = sum(c.syn_events for c in self.network.connections)
        self.stats.syn_events += total - self._syn_events_seen
        self._syn_events_seen = total

    def learning_epoch(self, epoch: str) -> None:
        """Run the learning engine for one named epoch on all plastic
        connections that registered rules for it."""
        for conn in self.network.connections:
            if not conn.plastic or not conn.learning_rule:
                continue
            rules = self.rulebook.get(conn.learning_rule, {}).get(epoch)
            if rules:
                self.engine.apply_all(rules, conn)
        self.stats.learning_epochs += 1

    # -- state management ----------------------------------------------------------

    def reset_traces(self) -> None:
        for conn in self.network.connections:
            conn.reset_traces()

    def reset_tags(self) -> None:
        for conn in self.network.connections:
            conn.reset_tag()

    def reset_membranes(self, group_names: Iterable[str]) -> None:
        """Phase-boundary reset of selected groups' integrator state."""
        for name in group_names:
            self.network.group(name).reset_membrane()

    def reset_state(self, counts: bool = True) -> None:
        """Reset network state between samples (Operation Flow 1)."""
        for group in self.network.groups:
            group.reset_state()
            if counts:
                group.reset_counts()

    def spike_counts(self, group_name: str) -> np.ndarray:
        return self.network.group(group_name).spike_count.copy()

    def mark_sample(self) -> None:
        self.stats.samples += 1
