"""Timestep execution engine for a declared network.

Semantics (matching a digital neuromorphic chip's barrier-synchronized
update):

1. every connection delivers the spikes its source emitted on the
   *previous* step (one-step conduction delay);
2. every compartment group integrates and fires, in declaration order —
   so an auxiliary gate compartment declared before its soma gates the
   same step's output;
3. plastic connections update their trace counters;
4. the learning engine runs only at host-triggered *learning epochs*
   (the phase boundaries of Operation Flow 1), never inside the loop.

The runtime also owns the counters (:class:`~repro.loihi.energy.RunStats`)
that the energy model turns into Table II / Fig. 3 rows.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..seeding import as_rng
from .compartment import CompartmentGroup
from .energy import RunStats
from .mapping import Mapping, shard_groups
from .microcode import LearningEngine, SumOfProducts
from .sdk import Network


def _replica_engine(network: Network, rng, stochastic_rounding: bool,
                    ) -> LearningEngine:
    """Build the learning engine, spawning per-replica rounding streams.

    For a replicated network, ``rng`` may be a sequence of generators (one
    per replica — the form the equivalence tests use to pin each replica's
    stream) or a single generator, from which per-replica child streams are
    derived deterministically.
    """
    replicas = getattr(network, "replicas", 1)
    if isinstance(rng, (list, tuple)):
        if len(rng) != replicas:
            raise ValueError(
                f"got {len(rng)} rng streams for {replicas} replicas")
        if replicas == 1:
            return LearningEngine(rng=rng[0],
                                  stochastic_rounding=stochastic_rounding)
        return LearningEngine(rngs=list(rng),
                              stochastic_rounding=stochastic_rounding)
    rng = as_rng(rng)
    if replicas == 1:
        return LearningEngine(rng=rng,
                              stochastic_rounding=stochastic_rounding)
    children = [np.random.default_rng(int(rng.integers(0, 2 ** 63)))
                for _ in range(replicas)]
    return LearningEngine(rngs=children,
                          stochastic_rounding=stochastic_rounding)


class Runtime:
    """Steps a network and orchestrates learning epochs.

    Works unchanged for replicated networks (``Network(replicas=R)``): all
    state carries a leading replica axis and one :meth:`step` advances every
    replica.  ``rng`` then accepts a sequence of ``R`` generators pinning
    each replica's stochastic-rounding stream.
    """

    def __init__(self, network: Network,
                 rng: Optional[np.random.Generator] = None,
                 stochastic_rounding: bool = True):
        self.network = network
        self.engine = _replica_engine(network, rng, stochastic_rounding)
        #: rule book: learning_rule name -> {epoch name -> [rules]}
        self.rulebook: Dict[str, Dict[str, List[SumOfProducts]]] = {}
        self.stats = RunStats()
        self.stats.plastic_synapses = network.n_plastic_synapses()
        self._syn_events_seen = 0

    # -- learning-rule registry ---------------------------------------------

    def register_rule(self, name: str,
                      epochs: Dict[str, List[SumOfProducts]]) -> None:
        """Associate microcode rule lists with named learning epochs."""
        self.rulebook[name] = epochs

    # -- host controls ---------------------------------------------------------

    def set_bias(self, group_name: str, bias: np.ndarray) -> None:
        """Host->chip write programming per-compartment biases."""
        self.network.group(group_name).set_bias(bias)

    def enable(self, group_names: Iterable[str]) -> None:
        for name in group_names:
            self.network.group(name).enabled = True

    def disable(self, group_names: Iterable[str]) -> None:
        for name in group_names:
            self.network.group(name).enabled = False

    # -- execution ---------------------------------------------------------------

    def step(self) -> None:
        """One barrier-synchronized timestep."""
        currents: Dict[str, np.ndarray] = {
            g.name: np.zeros(g.state_shape, dtype=np.int64)
            for g in self.network.groups}
        for conn in self.network.connections:
            if conn.src.spikes.any():
                currents[conn.dst.name] += conn.propagate(conn.src.spikes)
        n_spikes = 0
        for group in self.network.groups:
            fired = group.step(currents[group.name])
            n_spikes += int(fired.sum())
        for conn in self.network.connections:
            if conn.plastic:
                conn.update_traces(conn.src.spikes, conn.dst.spikes)
        self.stats.steps += 1
        self.stats.spikes += n_spikes

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()
        self._collect_syn_events()

    def _collect_syn_events(self) -> None:
        total = sum(c.syn_events for c in self.network.connections)
        self.stats.syn_events += total - self._syn_events_seen
        self._syn_events_seen = total

    def learning_epoch(self, epoch: str) -> None:
        """Run the learning engine for one named epoch on all plastic
        connections that registered rules for it."""
        for conn in self.network.connections:
            if not conn.plastic or not conn.learning_rule:
                continue
            rules = self.rulebook.get(conn.learning_rule, {}).get(epoch)
            if rules:
                self.engine.apply_all(rules, conn)
        self.stats.learning_epochs += 1

    # -- state management ----------------------------------------------------------

    def reset_traces(self) -> None:
        for conn in self.network.connections:
            conn.reset_traces()

    def reset_tags(self) -> None:
        for conn in self.network.connections:
            conn.reset_tag()

    def reset_membranes(self, group_names: Iterable[str]) -> None:
        """Phase-boundary reset of selected groups' integrator state."""
        for name in group_names:
            self.network.group(name).reset_membrane()

    def reset_state(self, counts: bool = True) -> None:
        """Reset network state between samples (Operation Flow 1)."""
        for group in self.network.groups:
            group.reset_state()
            if counts:
                group.reset_counts()

    def spike_counts(self, group_name: str) -> np.ndarray:
        return self.network.group(group_name).spike_count.copy()

    def mark_sample(self, n: int = 1) -> None:
        self.stats.samples += n


class _Shard:
    """One concurrently-steppable partition of the network.

    ``groups`` preserve network declaration order (gate/merge reads between
    groups of one shard rely on it); ``conns_in`` are the connections whose
    destination lives in this shard — current delivery and trace updates
    happen where the synapses physically are.
    """

    def __init__(self, groups: List[CompartmentGroup],
                 conns_in: List) -> None:
        self.groups = groups
        self.conns_in = conns_in
        self.stats = RunStats()
        self._syn_events_seen = 0

    def gather_currents(self) -> Dict[str, np.ndarray]:
        currents = {g.name: np.zeros(g.state_shape, dtype=np.int64)
                    for g in self.groups}
        for conn in self.conns_in:
            if conn.src.spikes.any():
                currents[conn.dst.name] += conn.propagate(conn.src.spikes)
        return currents

    def step_groups(self, currents: Dict[str, np.ndarray]) -> int:
        n_spikes = 0
        for group in self.groups:
            fired = group.step(currents[group.name])
            n_spikes += int(fired.sum())
        self.stats.spikes += n_spikes
        return n_spikes

    def update_traces(self) -> None:
        for conn in self.conns_in:
            if conn.plastic:
                conn.update_traces(conn.src.spikes, conn.dst.spikes)

    def collect_syn_events(self) -> None:
        total = sum(c.syn_events for c in self.conns_in)
        self.stats.syn_events += total - self._syn_events_seen
        self._syn_events_seen = total


class ShardedRuntime(Runtime):
    """A :class:`Runtime` that executes the chip's cores as shards.

    The compiled :class:`~repro.loihi.mapping.Mapping` says which groups
    share physical cores; :func:`~repro.loihi.mapping.shard_groups`
    partitions the groups into core-disjoint shards (gate/merge-coupled
    groups — always colocated on hardware — are kept together).  Each
    barrier-synchronized timestep then runs in three phases over a worker
    pool, mirroring how the chip's cores compute concurrently between
    barriers:

    1. **deliver** — every shard accumulates the currents of its inbound
       connections from the *previous* step's spikes (read-only, parallel);
    2. **integrate** — every shard steps its groups in declaration order
       (writes stay inside the shard, parallel);
    3. **trace** — every shard updates its inbound plastic traces from the
       freshly written spikes (parallel).

    Learning epochs stay sequential over connections: the engine's
    stochastic-rounding streams are consumed in connection order, and that
    order is part of the bit-identical contract with the plain runtime.

    Per-shard counters live in ``shard.stats`` and are merged into the
    global :class:`RunStats` (see :meth:`merged_shard_stats`).
    """

    def __init__(self, network: Network, mapping: Mapping,
                 rng: Optional[np.random.Generator] = None,
                 stochastic_rounding: bool = True,
                 max_workers: Optional[int] = None):
        super().__init__(network, rng=rng,
                         stochastic_rounding=stochastic_rounding)
        edges = []
        for g in network.groups:
            if g.gate_group is not None:
                edges.append((g.name, g.gate_group.name))
            if g.merge_group is not None:
                edges.append((g.name, g.merge_group.name))
        order = {g.name: i for i, g in enumerate(network.groups)}
        mapped = set(mapping.placements)
        name_shards = shard_groups(mapping, extra_edges=edges)
        unmapped = [g.name for g in network.groups if g.name not in mapped]
        if unmapped:  # defensive: groups added after compile get own shard
            name_shards.append(unmapped)
        self.shards: List[_Shard] = []
        shard_of: Dict[str, int] = {}
        for names in name_shards:
            groups = sorted((network.group(n) for n in names),
                            key=lambda g: order[g.name])
            for g in groups:
                shard_of[g.name] = len(self.shards)
            self.shards.append(_Shard(groups, []))
        for conn in network.connections:
            self.shards[shard_of[conn.dst.name]].conns_in.append(conn)
        if max_workers is None:
            from ..exec import default_workers

            max_workers = default_workers(cap=min(len(self.shards), 4))
        self.max_workers = max(1, int(max_workers))
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers) \
            if self.max_workers > 1 and len(self.shards) > 1 else None

    # -- worker pool -------------------------------------------------------

    def _each_shard(self, fn, *arglists):
        """Run ``fn(shard, ...)`` for every shard; barrier on completion."""
        if self._pool is None:
            return [fn(shard, *(a[i] for a in arglists))
                    for i, shard in enumerate(self.shards)]
        futures = [self._pool.submit(fn, shard, *(a[i] for a in arglists))
                   for i, shard in enumerate(self.shards)]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self.max_workers = 1

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        currents = self._each_shard(_Shard.gather_currents)
        spike_counts = self._each_shard(_Shard.step_groups, currents)
        self._each_shard(_Shard.update_traces)
        for shard in self.shards:
            shard.stats.steps += 1
        self.stats.steps += 1
        self.stats.spikes += sum(spike_counts)

    def _collect_syn_events(self) -> None:
        self._each_shard(_Shard.collect_syn_events)
        super()._collect_syn_events()

    def merged_shard_stats(self) -> RunStats:
        """Per-shard counters folded into one :class:`RunStats`.

        Spikes and synaptic events are genuinely partitioned across shards,
        so their merge must reproduce the global counters; steps are a
        whole-chip barrier count and samples/epochs are host-side events,
        so those are taken from the global stats.
        """
        merged = RunStats()
        for shard in self.shards:
            merged.spikes += shard.stats.spikes
            merged.syn_events += shard.stats.syn_events
        merged.steps = self.stats.steps
        merged.samples = self.stats.samples
        merged.learning_epochs = self.stats.learning_epochs
        merged.plastic_synapses = self.stats.plastic_synapses
        return merged
