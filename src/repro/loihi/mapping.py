"""Layer-to-core mapping (Section III-C, Operation Flow 1).

Loihi's core-based architecture bounds fan-in, fan-out, compartments and
synaptic memory per core, so a network must be partitioned across cores.
The paper uses a simple incremental mapper: for each layer, build the
adjacency with its neighbours to obtain per-neuron fan-in/fan-out, derive
the number of neurons each core can host, then assign the layer's neurons
to consecutive cores.

The *neurons-per-core* packing of the trainable layers is the knob behind
Fig. 3: more neurons per core → fewer occupied cores → less active power,
but a longer timestep (compartments on a core are processed sequentially)
→ lower throughput.  :class:`Mapper` exposes that knob directly.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Tuple

from .chip import LoihiChip
from .core import CoreResourceError


@dataclasses.dataclass
class GroupPlacement:
    """Where one compartment group landed: ``[(core_id, start, stop), ...]``."""

    group_name: str
    n: int
    neurons_per_core: int
    slices: List[Tuple[int, int, int]]
    packing_hint: object = None

    @property
    def cores(self) -> List[int]:
        return [core_id for core_id, _, _ in self.slices]


@dataclasses.dataclass
class Mapping:
    """Result of mapping a network onto a chip."""

    placements: Dict[str, GroupPlacement]
    chip: LoihiChip

    @property
    def cores_used(self) -> int:
        return self.chip.cores_used

    @property
    def max_compartments_per_core(self) -> int:
        return self.chip.max_compartments_per_core

    @property
    def max_compartments_sweep_cores(self) -> int:
        """Busiest core among those hosting the trainable (swept) layers.

        The neurons-per-core sweep of Fig. 3 controls the service time of
        the cores doing plasticity; densely packed static frontend cores
        are handled by dedicated pipeline stages and do not set the
        training-loop step time.
        """
        sweep_cores = set()
        for placement in self.placements.values():
            if placement.packing_hint == "sweep":
                sweep_cores.update(placement.cores)
        if not sweep_cores:
            return self.max_compartments_per_core
        return max(self.chip.cores[c].n_compartments for c in sweep_cores)

    def cores_of(self, group_name: str) -> List[int]:
        return self.placements[group_name].cores

    def summary(self) -> Dict[str, object]:
        return {
            "cores_used": self.cores_used,
            "max_compartments_per_core": self.max_compartments_per_core,
            "total_compartments": self.chip.total_compartments(),
            "total_synapses": self.chip.total_synapses(),
            "per_group": {
                name: {
                    "n": p.n,
                    "neurons_per_core": p.neurons_per_core,
                    "cores": len(p.slices),
                }
                for name, p in self.placements.items()
            },
        }


class Mapper:
    """Incremental layer-at-a-time mapper.

    Parameters
    ----------
    neurons_per_core:
        Packing applied to groups whose ``packing`` hint is ``"sweep"`` (the
        trainable dense layers).  ``None`` lets the resource-derived optimum
        be used everywhere.
    share_cores:
        If ``False`` (default, matching the paper's layer-at-a-time flow),
        every group starts on a fresh core; cores are never shared between
        layers.
    """

    def __init__(self, neurons_per_core: Optional[int] = None,
                 share_cores: bool = False):
        if neurons_per_core is not None and neurons_per_core < 1:
            raise ValueError("neurons_per_core must be >= 1")
        self.neurons_per_core = neurons_per_core
        self.share_cores = bool(share_cores)

    def _auto_packing(self, chip: LoihiChip, fanin: int, fanout: int) -> int:
        spec = chip.spec.core
        by_cpt = spec.max_compartments
        by_syn = spec.max_synapses // max(fanin, 1)
        by_axon_in = (spec.max_fanin_axons * 64) // max(fanin, 1)
        by_axon_out = (spec.max_fanout_axons * 64) // max(fanout, 1)
        packing = min(by_cpt, by_syn, by_axon_in, by_axon_out)
        if packing < 1:
            raise CoreResourceError(
                f"a single neuron with fan-in {fanin} exceeds core resources")
        return packing

    def map_groups(self, chip: LoihiChip,
                   groups: List[Tuple[str, int, int, int, Optional[object],
                                      Optional[str]]],
                   ) -> Mapping:
        """Map ``(name, n, fanin, fanout, packing_hint, colocate)`` tuples.

        ``packing_hint`` is ``None`` (auto), an int (fixed neurons/core) or
        the string ``"sweep"`` (use the mapper's ``neurons_per_core``).
        ``colocate`` names an already-placed host group: the group's
        compartments are placed on the *same cores*, index-aligned — the
        mapping of a multi-compartment neuron's auxiliary/dendrite
        compartments, which consume core capacity but no extra cores.
        """
        placements: Dict[str, GroupPlacement] = {}
        next_core = 0
        for name, n, fanin, fanout, hint, colocate in groups:
            if colocate is not None:
                host = placements.get(colocate)
                if host is None:
                    raise ValueError(
                        f"{name!r} colocates with unplaced group {colocate!r}")
                if host.n != n:
                    raise ValueError(
                        f"colocated group {name!r} must match host size")
                slices = []
                for core_id, start, stop in host.slices:
                    chip.cores[core_id].allocate(name, start, stop,
                                                 fanin, fanout)
                    slices.append((core_id, start, stop))
                placements[name] = GroupPlacement(
                    name, n, host.neurons_per_core, slices,
                    packing_hint=host.packing_hint)
                continue
            auto = self._auto_packing(chip, fanin, fanout)
            if hint == "sweep" and self.neurons_per_core is not None:
                packing = min(auto, self.neurons_per_core)
            elif isinstance(hint, int):
                packing = min(auto, hint)
            else:
                packing = auto
            slices: List[Tuple[int, int, int]] = []
            placed = 0
            while placed < n:
                if next_core >= chip.spec.n_cores:
                    raise CoreResourceError(
                        f"network does not fit: ran out of cores placing {name!r}")
                core = chip.cores[next_core]
                room = packing - (core.n_compartments if self.share_cores else 0)
                take = min(room, n - placed)
                if take < 1 or not core.can_fit(take, fanin, fanout):
                    next_core += 1
                    continue
                core.allocate(name, placed, placed + take, fanin, fanout)
                slices.append((next_core, placed, placed + take))
                placed += take
                if take == room or not self.share_cores:
                    # This core is full for our packing target (or cores are
                    # not shared between layers): move on.
                    if placed < n:
                        next_core += 1
            # Layer-at-a-time: the next group starts on a fresh core.
            if not self.share_cores and chip.cores[min(
                    next_core, chip.spec.n_cores - 1)].occupied:
                next_core += 1
            placements[name] = GroupPlacement(name, n, packing, slices,
                                              packing_hint=hint)
        return Mapping(placements, chip)


def shard_groups(mapping: Mapping,
                 extra_edges: Iterable[Tuple[str, str]] = (),
                 ) -> List[List[str]]:
    """Partition the mapped groups into core-disjoint shards.

    Two groups land in the same shard when they share a physical core
    (colocated auxiliary/dendrite compartments always do) or when an
    ``extra_edges`` pair links them — the runtime passes its gate/merge
    dependencies here so every same-step read stays inside one shard and
    shards can be stepped concurrently with only per-phase barriers.

    Returns shards as lists of group names; both the shard list and each
    shard's members preserve the mapping's placement order, so stepping a
    shard's groups in network declaration order stays well-defined.
    """
    names = list(mapping.placements)
    parent: Dict[str, str] = {name: name for name in names}

    def find(a: str) -> str:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    by_core: Dict[int, str] = {}
    for name in names:
        for core_id in mapping.placements[name].cores:
            if core_id in by_core:
                union(by_core[core_id], name)
            else:
                by_core[core_id] = name
    for a, b in extra_edges:
        if a in parent and b in parent:
            union(a, b)
    shards: Dict[str, List[str]] = {}
    for name in names:
        shards.setdefault(find(name), []).append(name)
    return list(shards.values())


def optimal_neurons_per_core(candidates, evaluate) -> Tuple[int, float]:
    """Pick the packing that minimizes ``evaluate(packing)`` (energy/sample).

    The paper selects 10 neurons/core for Table II based on the Fig. 3
    sweep; this helper automates that choice.
    """
    best = None
    best_cost = math.inf
    for c in candidates:
        cost = evaluate(c)
        if cost < best_cost:
            best, best_cost = c, cost
    return best, best_cost
