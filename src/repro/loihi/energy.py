"""Timing, power and energy model of the chip.

The model reproduces the structure behind Table II and Fig. 3:

* **Step time.**  Compartments sharing a core are processed sequentially,
  so one algorithmic timestep takes the 10 kHz barrier period plus a
  per-compartment service time on the *busiest* core:
  ``t_step = t_barrier + t_cpt * max_compartments_per_core``.
  Packing more neurons per core therefore slows every step — the rising
  "Time" curve of Fig. 3.

* **Active power.**  Unoccupied cores are power gated (Section IV-A2), so
  active power is a baseline plus a per-occupied-core term plus a dynamic
  term proportional to synaptic event rate — the falling "Active Power"
  curve of Fig. 3.

* **Energy per sample** is their product, which is why it has an interior
  minimum over the packing sweep.

Constants are calibrated so the paper's operating point (10 neurons/core,
the Section IV-A network) lands near Table II's 50 FPS / 0.42 W / 8.4 mJ
training and 97 FPS / 0.24 W / 2.47 mJ testing rows.  Absolute numbers are
modeled — the real chip was not available — but every *trend* the paper
reports emerges from the same mechanisms.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class EnergyModelParams:
    """Calibration constants of the chip timing/power model."""

    #: 10 kHz synchronization barrier (Loihi's max operating frequency).
    t_barrier_us: float = 100.0
    #: Sequential service time per compartment on the busiest core.
    t_compartment_us: float = 1.4
    #: Extra per-step time while plasticity is enabled (trace bookkeeping).
    t_learning_us: float = 8.0
    #: Always-on chip overhead while running.
    p_base_mw: float = 30.0
    #: Active power per occupied (non-power-gated) core.
    p_core_mw: float = 10.0
    #: Dynamic energy per synaptic event (spike x fan-out).
    e_syn_event_nj: float = 24e-3
    #: Dynamic energy per neuron update per step.
    e_neuron_step_nj: float = 52e-3
    #: Energy per synapse visited by the learning engine at an epoch.
    e_weight_update_nj: float = 0.9


@dataclasses.dataclass
class RunStats:
    """Counters collected by the runtime over a run."""

    steps: int = 0
    samples: int = 0
    spikes: int = 0
    syn_events: int = 0
    learning_epochs: int = 0
    plastic_synapses: int = 0

    def merge(self, other: "RunStats") -> None:
        self.steps += other.steps
        self.samples += other.samples
        self.spikes += other.spikes
        self.syn_events += other.syn_events
        self.learning_epochs += other.learning_epochs
        self.plastic_synapses = max(self.plastic_synapses,
                                    other.plastic_synapses)


@dataclasses.dataclass
class EnergyReport:
    """What the benchmark tables print for one platform configuration."""

    fps: float
    power_w: float
    energy_per_sample_mj: float
    time_per_sample_ms: float
    cores_used: int
    total_time_s: float

    def row(self) -> dict:
        return {
            "FPS": round(self.fps, 1),
            "Power (W)": round(self.power_w, 3),
            "Energy (mJ/img)": round(self.energy_per_sample_mj, 2),
            "Cores": self.cores_used,
        }


class EnergyModel:
    """Evaluates timing/power/energy for a mapped network run."""

    def __init__(self, params: EnergyModelParams = None):
        self.params = params if params is not None else EnergyModelParams()

    # -- timing ------------------------------------------------------------

    def step_time_us(self, max_compartments_per_core: int,
                     learning: bool = False) -> float:
        p = self.params
        t = p.t_barrier_us + p.t_compartment_us * max_compartments_per_core
        if learning:
            t += p.t_learning_us
        return t

    # -- power -------------------------------------------------------------

    def active_power_w(self, cores_used: int, syn_events_per_s: float,
                       neuron_updates_per_s: float) -> float:
        p = self.params
        static_mw = p.p_base_mw + p.p_core_mw * cores_used
        dynamic_mw = (syn_events_per_s * p.e_syn_event_nj
                      + neuron_updates_per_s * p.e_neuron_step_nj) * 1e-6
        return (static_mw + dynamic_mw) * 1e-3

    # -- full report ---------------------------------------------------------

    def report(self, stats: RunStats, cores_used: int,
               max_compartments_per_core: int, compartments: int,
               learning: bool) -> EnergyReport:
        """Aggregate a run's counters into the Table II quantities."""
        if stats.samples < 1 or stats.steps < 1:
            raise ValueError("report requires at least one sample and step")
        p = self.params
        t_step_s = self.step_time_us(max_compartments_per_core, learning) * 1e-6
        total_time_s = stats.steps * t_step_s
        # Learning epochs add a weight-update pass over plastic synapses.
        update_energy_j = (stats.learning_epochs * stats.plastic_synapses
                           * p.e_weight_update_nj * 1e-9)
        total_time_s += update_energy_j * 0  # epochs overlap the barrier
        syn_events_per_s = stats.syn_events / total_time_s
        neuron_updates_per_s = compartments * stats.steps / total_time_s
        power_w = self.active_power_w(cores_used, syn_events_per_s,
                                      neuron_updates_per_s)
        energy_j = power_w * total_time_s + update_energy_j
        time_per_sample_s = total_time_s / stats.samples
        return EnergyReport(
            fps=1.0 / time_per_sample_s,
            power_w=power_w,
            energy_per_sample_mj=energy_j / stats.samples * 1e3,
            time_per_sample_ms=time_per_sample_s * 1e3,
            cores_used=cores_used,
            total_time_s=total_time_s,
        )
