"""CUBA leaky-integrate-and-fire compartments (Loihi neuron model).

Loihi's compartments keep two integer state variables (Section II-B of the
paper): the synaptic response current ``u`` (a decaying sum of weighted
incoming spikes) and the membrane potential ``v`` (Eq. 8).  Decays are
specified as 12-bit factors: the state is multiplied by
``(4096 - decay) / 4096`` every step, so ``decay = 0`` holds the value
forever and ``decay = 4096`` clears it each step.

EMSTDP configures the forward-path neurons as pure integrate-and-fire by
using the maximum membrane time constant (``decay_v = 0``) and an instantly
decaying current (``decay_u = 4096``), Section III-A.

All state is kept in integer arrays; thresholds and biases use Loihi's
mantissa-times-64 convention (``vth = vth_mant << 6``).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..core import kernels

#: Fixed-point shift of mantissa parameters (Loihi uses ``mant << 6``).
MANT_SHIFT = 6

#: Full-scale decay constant: ``decay / 4096`` of the state leaks per step.
DECAY_SCALE = 4096


@dataclasses.dataclass(frozen=True)
class CompartmentPrototype:
    """Static configuration shared by a group of compartments.

    Attributes
    ----------
    vth_mant:
        Threshold mantissa; the firing threshold is ``vth_mant << 6``.
    decay_u:
        Synaptic current decay in ``[0, 4096]``; 4096 means the current
        vanishes every step (the IF configuration used by EMSTDP).
    decay_v:
        Membrane potential decay in ``[0, 4096]``; 0 means no leak.
    bias_mant:
        Constant bias added to the membrane every step (``bias_mant << 6``).
        Runtime-writable per compartment — this is how inputs and labels are
        injected (Section III-D).
    soft_reset:
        Subtract the threshold on spike instead of zeroing the membrane;
        realises the ``floor(u/theta)`` rate code of Eq. (2).
    refractory:
        Steps of silence after a spike.
    non_spiking:
        A compare-only compartment (used as the auxiliary compartment of a
        multi-compartment neuron): it integrates but never emits spikes.
    floor_at_zero:
        Clamp the membrane at the resting potential from below.
    """

    vth_mant: int = 256
    decay_u: int = DECAY_SCALE
    decay_v: int = 0
    bias_mant: int = 0
    soft_reset: bool = True
    refractory: int = 0
    non_spiking: bool = False
    floor_at_zero: bool = True

    def __post_init__(self):
        if not 1 <= self.vth_mant <= (1 << 17):
            raise ValueError("vth_mant out of range")
        if not 0 <= self.decay_u <= DECAY_SCALE:
            raise ValueError("decay_u must be in [0, 4096]")
        if not 0 <= self.decay_v <= DECAY_SCALE:
            raise ValueError("decay_v must be in [0, 4096]")
        if self.refractory < 0:
            raise ValueError("refractory must be >= 0")

    @property
    def vth(self) -> int:
        """Integer firing threshold."""
        return self.vth_mant << MANT_SHIFT


def if_prototype(vth_mant: int = 256, **overrides) -> CompartmentPrototype:
    """The paper's IF configuration: no membrane leak, instant current decay."""
    params = dict(vth_mant=vth_mant, decay_u=DECAY_SCALE, decay_v=0)
    params.update(overrides)
    return CompartmentPrototype(**params)


class CompartmentGroup:
    """A vectorized group of compartments sharing one prototype.

    Groups are the unit the compiler maps onto cores and the runtime steps.
    A group may be designated as the *auxiliary* gate of another group to
    form two-compartment neurons: the soma group's spikes are ANDed with
    ``aux.active()`` (Section III-A's multi-compartment error neurons).
    """

    def __init__(self, n: int, proto: CompartmentPrototype, name: str = "",
                 replicas: int = 1):
        if n < 1:
            raise ValueError("group must contain at least one compartment")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.n = int(n)
        self.proto = proto
        self.name = name or f"group{id(self):x}"
        #: Number of independent network replicas sharing this declaration.
        #: ``replicas == 1`` keeps the historical 1-D state layout; with
        #: ``replicas > 1`` every state array gains a leading replica axis,
        #: so one vectorized step advances all replicas at once.
        self.replicas = int(replicas)
        shape = self.state_shape
        self.u = np.zeros(shape, dtype=np.int64)
        self.v = np.zeros(shape, dtype=np.int64)
        self.bias = np.full(shape, proto.bias_mant << MANT_SHIFT,
                            dtype=np.int64)
        self.spikes = np.zeros(shape, dtype=bool)
        self.spike_count = np.zeros(shape, dtype=np.int64)
        self._refrac = np.zeros(shape, dtype=np.int64)
        #: Optional gate: a group whose ``active()`` mask ANDs our spikes.
        self.gate_group: Optional["CompartmentGroup"] = None
        #: Host-controlled enable flag (the phase gate used by the trainer).
        self.enabled = True
        #: Per-compartment enable mask (host-configurable; used to disable
        #: old-class classifier neurons in incremental learning).
        self.mask = np.ones(self.n, dtype=bool)
        #: Optional OR-merge companion: a same-sized compartment group whose
        #: spikes are unioned into this group's axon output.  EMSTDP uses it
        #: to inject positive error corrections as *additional spikes*
        #: (h_hat = h + e) rather than membrane charge, which negative
        #: forward drive would cancel.  The companion's spikes are taken
        #: from its most recent step, so a companion stepped after its soma
        #: contributes with a one-step delay.
        self.merge_group: Optional["CompartmentGroup"] = None

    @property
    def state_shape(self):
        """Shape of every state array: ``(n,)`` or ``(replicas, n)``."""
        return (self.n,) if self.replicas == 1 else (self.replicas, self.n)

    # -- state management -------------------------------------------------

    def set_bias(self, bias: np.ndarray) -> None:
        """Program per-compartment biases (integer potential units).

        A ``(n,)`` vector is broadcast to every replica; a replicated group
        also accepts a ``(replicas, n)`` block programming each replica
        independently (how the batched trainer injects one sample per
        replica).
        """
        bias = np.asarray(bias)
        if bias.shape == (self.n,) and self.replicas > 1:
            bias = np.broadcast_to(bias, self.state_shape)
        if bias.shape != self.state_shape:
            raise ValueError(
                f"bias must have shape {self.state_shape} (or ({self.n},)), "
                f"got {bias.shape}")
        self.bias = bias.astype(np.int64)

    def set_bias_mant(self, bias_mant: np.ndarray) -> None:
        """Program biases via Loihi's mantissa convention."""
        self.set_bias(np.asarray(bias_mant, dtype=np.int64) << MANT_SHIFT)

    def reset_state(self) -> None:
        """Zero membrane, current, refractory and spike flags (not counts)."""
        self.u.fill(0)
        self.v.fill(0)
        self._refrac.fill(0)
        self.spikes.fill(False)

    def reset_membrane(self) -> None:
        """Zero only the integrator state (phase-boundary reset).

        Phase 2's spike count must be comparable to phase 1's: carrying the
        phase-1 residual potential into phase 2 hands every neuron an
        average half-threshold head start, a systematic +0.5 spike bias in
        ``h_hat - h`` that compounds into weight drift.
        """
        self.u.fill(0)
        self.v.fill(0)
        self._refrac.fill(0)

    def reset_counts(self) -> None:
        self.spike_count.fill(0)

    def active(self) -> np.ndarray:
        """Gate mask derived from this group when used as an aux compartment.

        A forward neuron "has output activities" once it spiked at least
        once within the current sample window; the aux compartment
        integrates those spikes without decay, so activity is simply a
        positive membrane.
        """
        return self.v > 0

    # -- dynamics ----------------------------------------------------------

    def step(self, syn_input: np.ndarray) -> np.ndarray:
        """Advance one timestep given integer synaptic input.

        Disabled groups hold their state and stay silent (the host-side
        phase gate of the two-phase EMSTDP schedule).
        """
        if not self.enabled:
            self.spikes = np.zeros(self.state_shape, dtype=bool)
            return self.spikes
        syn_input = np.asarray(syn_input, dtype=np.int64)
        p = self.proto
        # Current decay/accumulation (Eq. 8, forward-Euler, integer), leak,
        # threshold, reset and refractory bookkeeping all run in the
        # selected kernel backend, mutating u, v and the refractory
        # counters in place.
        fired = kernels.cuba_step(self.u, self.v, self._refrac, self.bias,
                                  syn_input, p.decay_u, p.decay_v, p.vth,
                                  soft_reset=p.soft_reset,
                                  refractory=p.refractory,
                                  floor_at_zero=p.floor_at_zero,
                                  non_spiking=p.non_spiking)
        if p.non_spiking:
            self.spikes = np.zeros(self.state_shape, dtype=bool)
            return self.spikes
        if self.gate_group is not None:
            fired = fired & self.gate_group.active()
        if self.merge_group is not None:
            fired = fired | self.merge_group.spikes
        fired = fired & self.mask
        self.spikes = fired
        self.spike_count += fired
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompartmentGroup {self.name!r} n={self.n}>"
