"""Planner-side helpers: build protocol-conformant task payloads.

This is the only module that calls ``queue.enqueue`` — keeping every
enqueue site here means REP004 has one small file to statically verify
against :data:`repro.exec.protocol.MESSAGES`.
"""

from __future__ import annotations

from typing import Optional

from .. import obs
from .protocol import RUN_SEED
from .queue import TaskQueue


def enqueue_seed(queue: TaskQueue, *, experiment: str, run_id: str,
                 run_dir: str, spec: dict, seed: int,
                 repro_version: Optional[str] = None,
                 point_id: Optional[str] = None,
                 queue_parent: Optional[str] = None) -> str:
    """Enqueue one ``run_seed`` task; returns its task id."""
    payload = {
        "experiment": experiment,
        "run_id": run_id,
        "run_dir": str(run_dir),
        "spec": spec,
        "seed": int(seed),
        "repro_version": repro_version,
        "point_id": point_id,
        "queue_parent": queue_parent,
    }
    task_id = queue.enqueue(RUN_SEED, payload)
    obs.event("task_enqueue", task_id=task_id, seed=int(seed),
              run_id=run_id, point_id=point_id)
    return task_id
