"""Task wire format for the work-queue executor.

Everything crossing the queue is one row ``(kind, payload)``: ``kind``
names the task type, ``payload`` is a JSON object a worker in *another
process* (today) or on *another host* (the shape this is built for) can
execute from alone — no live objects, no references into the enqueuer's
memory.

kinds
    ``("run_seed", payload)`` — execute one seed of one experiment spec
    and append its record to the owning run's ``records.jsonl``.  The
    payload is the complete recipe:

    ``experiment``
        scenario name (the record envelope's ``experiment`` field);
    ``run_id`` / ``run_dir``
        the owning run — workers append records to
        ``<run_dir>/records.jsonl`` and write checkpoints under it;
    ``spec``
        the full :class:`~repro.experiments.spec.ExperimentSpec` as a
        dict (``ExperimentSpec.from_dict`` round-trip);
    ``seed``
        the one seed to execute;
    ``repro_version``
        stamped into the record envelope;
    ``point_id``
        the sweep point this task belongs to (``None`` for plain runs);
    ``queue_parent``
        the enqueuer's root span id — the worker's ``task`` and ``seed``
        spans link to it, stitching per-process trace fragments into one
        tree across the queue boundary.

results (worker -> queue, free-form by design)
    A small JSON status dict: ``{"seed", "status", "duration_s"}`` plus
    ``"deduped": true`` when the worker found the seed's ``ok`` record
    already on disk (a requeued task whose first owner finished before
    dying) and therefore did not re-run it.

The ``MESSAGES`` dict below is the machine-readable half of this
contract; ``repro.checks`` rule REP004 verifies every
``queue.enqueue(kind, payload)`` site in ``planner.py`` against it, the
same discipline ``cluster/protocol.py`` applies to the serving tier's
pipe messages.
"""

from __future__ import annotations

#: The one task kind the executor runs today.
RUN_SEED = "run_seed"

#: Declarative payload contract per task kind, checked statically by
#: ``repro.checks`` rule REP004 against every enqueue site.  Each value
#: is either ``None`` (free-form payload) or a pair
#: ``(required_keys, allowed_keys)`` — every literal payload dict must
#: carry all required keys and nothing outside the allowed set.  Keep
#: this in lockstep with the prose contract in the module docstring.
MESSAGES = {
    RUN_SEED: (
        ("experiment", "run_id", "run_dir", "spec", "seed"),
        ("experiment", "run_id", "run_dir", "spec", "seed",
         "repro_version", "point_id", "queue_parent"),
    ),
}
