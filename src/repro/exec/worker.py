"""Queue worker: claim ``run_seed`` tasks, execute, record, repeat.

:func:`worker_main` is the spawn entry point used by
:class:`~repro.exec.pool.WorkerPool`; :func:`claim_loop` is the same
loop callable inline (``workers=1`` and pool-degradation paths).  Every
task executes under a :class:`LeaseKeeper` heartbeat thread, and the
durable effect — the seed's record line in the owning run's
``records.jsonl`` — is guarded twice against requeue races:

* before executing, the worker checks the run directory for an existing
  ``ok`` record of the seed (a requeued task whose first owner finished
  before dying) and returns a ``deduped`` result instead of re-running;
* before appending, it re-asserts lease ownership with a synchronous
  heartbeat, so a worker that lost its lease (and whose task another
  worker now owns) drops its record on the floor.

Together with crash-stop failures (SIGKILL never appends half-work,
appends themselves are single ``O_APPEND`` writes) this gives
at-least-once *execution* but exactly-once *recording* per seed.

Imports from ``repro.experiments`` are deliberately lazy (inside
functions): ``repro.experiments.runner`` imports ``repro.exec``, and
this module completes the cycle if it imports experiments at module
scope.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from pathlib import Path
from typing import Callable, Optional, Union

from .. import obs
from .protocol import RUN_SEED
from .queue import Task, TaskQueue

#: Test hook: seconds to sleep inside the task span on a task's *first*
#: attempt, giving kill/preemption tests a deterministic window in which
#: the worker holds a lease but has produced no durable record yet.
INJECT_DELAY_ENV = "REPRO_EXEC_INJECT_DELAY_S"


class LeaseKeeper(threading.Thread):
    """Background heartbeat for one leased task.

    Renews the lease every ``lease_s / 3`` seconds; a failed renewal
    (the lease expired and was re-claimed, or the queue marked the task
    elsewhere) sets :attr:`lost` and stops renewing.
    """

    def __init__(self, queue: TaskQueue, task_id: str, worker: str,
                 lease_s: float):
        super().__init__(daemon=True, name=f"lease-{task_id}")
        self.queue = queue
        self.task_id = task_id
        self.worker = worker
        self.lease_s = float(lease_s)
        self.lost = threading.Event()
        self._stop = threading.Event()

    def run(self) -> None:
        interval = max(0.05, self.lease_s / 3.0)
        while not self._stop.wait(interval):
            try:
                ok = self.queue.heartbeat(self.task_id, self.worker,
                                          self.lease_s)
            except Exception:
                continue  # transient DB contention; retry next tick
            if not ok:
                self.lost.set()
                return

    def stop(self) -> None:
        self._stop.set()


def _inject_delay(attempts: int) -> None:
    raw = os.environ.get(INJECT_DELAY_ENV)
    if not raw or attempts > 1:
        return
    try:
        delay = float(raw)
    except ValueError:
        return
    if delay > 0:
        time.sleep(delay)


def _has_ok_record(run_dir: Path, seed: int) -> bool:
    from ..experiments.store import RECORDS_NAME, read_jsonl

    for rec in read_jsonl(run_dir / RECORDS_NAME):
        if rec.get("seed") == seed and rec.get("status") == "ok":
            return True
    return False


def _run_seed(queue: TaskQueue, task: Task, worker_id: str,
              keeper: Optional[LeaseKeeper]) -> dict:
    """Execute one ``run_seed`` task and append its record.

    Returns the small status dict that goes back onto the queue row
    (see ``protocol`` — results are free-form by design).
    """
    from ..experiments.spec import ExperimentSpec
    from ..experiments.store import (CHECKPOINT_DIR_NAME, RECORDS_NAME,
                                     append_jsonl)

    p = task.payload
    seed = int(p["seed"])
    run_dir = Path(p["run_dir"])
    queue_parent = p.get("queue_parent")
    wait_ms = round((task.queue_wait_s or 0.0) * 1000.0, 3)

    with obs.trace_bound(obs.trace_path_for(queue.path.parent)):
        with obs.span("task", parent_id=queue_parent, seed=seed,
                      point_id=p.get("point_id"), worker=worker_id,
                      attempt=task.attempts,
                      queue_wait_ms=wait_ms) as tsp:
            obs.event("task_claim", task_id=task.task_id, seed=seed,
                      worker=worker_id, attempt=task.attempts,
                      queue_wait_ms=wait_ms)
            if _has_ok_record(run_dir, seed):
                result = {"seed": seed, "status": "ok", "deduped": True,
                          "duration_s": 0.0}
                if tsp is not None:
                    tsp.set(status="ok", deduped=True)
                obs.event("task_done", task_id=task.task_id, seed=seed,
                          status="ok", deduped=True)
                return result
            _inject_delay(task.attempts)

            t0 = time.perf_counter()
            kernel_baseline = obs.kernel_profiler.snapshot()
            with obs.trace_bound(obs.trace_path_for(run_dir)):
                with obs.span("seed", parent_id=queue_parent, seed=seed,
                              experiment=p["experiment"]) as sp:
                    try:
                        from ..experiments.scenarios import get_scenario

                        spec = ExperimentSpec.from_dict(p["spec"])
                        scenario = get_scenario(spec.name)
                        payload = dict(scenario.run_seed(
                            spec, seed, run_dir / CHECKPOINT_DIR_NAME))
                        payload.setdefault("series", {})
                        payload.setdefault("checkpoints", {})
                        payload["seed"] = seed
                        payload["duration_s"] = round(
                            time.perf_counter() - t0, 3)
                        if sp is not None:
                            sp.set(duration_s=payload["duration_s"],
                                   metrics=payload.get("metrics", {}))
                    except Exception:
                        payload = {
                            "seed": seed,
                            "status": "error",
                            "error": traceback.format_exc(limit=20),
                            "metrics": {}, "series": {}, "checkpoints": {},
                        }
                        if sp is not None:
                            sp.set(status="error")
                obs.emit_kernel_stats(kernel_baseline)

            record = {
                "experiment": p["experiment"],
                "run_id": p["run_id"],
                "repro_version": p.get("repro_version"),
                **payload,
            }
            record.setdefault("status", "ok")
            status = record["status"]

            # Final ownership check: if the lease is gone, another worker
            # owns (or finished) this task — do not write a duplicate.
            lost = keeper is not None and keeper.lost.is_set()
            if not lost and not queue.heartbeat(
                    task.task_id, worker_id, queue.busy_timeout_s):
                lost = True
            if lost:
                if tsp is not None:
                    tsp.set(status="stale")
                obs.event("task_done", task_id=task.task_id, seed=seed,
                          status="stale")
                return {"seed": seed, "status": "stale",
                        "duration_s": record.get("duration_s", 0.0)}

            append_jsonl(run_dir / RECORDS_NAME, record)
            result = {"seed": seed, "status": status,
                      "duration_s": record.get("duration_s", 0.0)}
            if tsp is not None:
                tsp.set(status=status)
            obs.event("task_done", task_id=task.task_id, seed=seed,
                      status=status,
                      duration_s=record.get("duration_s", 0.0))
    return result


def execute_task(queue: TaskQueue, task: Task, worker_id: str,
                 keeper: Optional[LeaseKeeper]) -> dict:
    if task.kind == RUN_SEED:
        return _run_seed(queue, task, worker_id, keeper)
    return {"status": "error",
            "error": f"unknown task kind {task.kind!r}"}


def claim_loop(db_path: Union[str, "Path"], worker_id: str,
               lease_s: float = 30.0, poll_s: float = 0.05,
               expected_workers: Optional[int] = None,
               on_result: Optional[Callable[[Task, dict], None]] = None,
               ) -> None:
    """Pull tasks until the queue is drained.

    ``expected_workers`` arms the ready barrier (see
    :meth:`TaskQueue.wait_for_workers`); ``on_result`` fires after each
    successful ``complete`` — the inline (single-process) execution path
    uses it to stream progress without polling the DB.
    """
    queue = TaskQueue(db_path)
    queue.register_worker(worker_id, os.getpid())
    if expected_workers is not None and expected_workers > 1:
        queue.wait_for_workers(expected_workers)
    while True:
        task = queue.claim(worker_id, lease_s)
        if task is None:
            if queue.remaining() == 0:
                return
            queue.worker_seen(worker_id)
            time.sleep(poll_s)
            continue
        keeper = LeaseKeeper(queue, task.task_id, worker_id, lease_s)
        keeper.start()
        try:
            result = execute_task(queue, task, worker_id, keeper)
        finally:
            keeper.stop()
        if keeper.lost.is_set() or result.get("status") == "stale":
            continue
        if queue.complete(task.task_id, worker_id, result):
            if on_result is not None:
                on_result(task, result)
        queue.worker_seen(worker_id)


def worker_main(db_path: str, worker_id: str, lease_s: float,
                poll_s: float, expected_workers: Optional[int]) -> None:
    """Spawn entry point: one process, one :func:`claim_loop`."""
    claim_loop(db_path, worker_id, lease_s=lease_s, poll_s=poll_s,
               expected_workers=expected_workers)
