r"""A file/SQLite-backed task queue with atomic claim, leases, heartbeats.

One ``queue.db`` file holds two tables: ``tasks`` (the work) and
``workers`` (who is pulling it).  Every operation opens a fresh
connection and runs one short transaction — claims use ``BEGIN
IMMEDIATE`` so exactly one worker wins a pending row even when several
processes race on the file.  That makes the queue multi-process today
and multi-host-shaped: any process that can open the file (or, later, a
network endpoint speaking the same five verbs) can pull work.

Task lifecycle::

    pending --claim--> leased --complete--> done
       ^                 |   \--fail-----> failed
       |                 |
       +--requeue_expired/release (lease ran out, or owner died)

A lease is a deadline, not a lock: the owning worker extends it with
:meth:`heartbeat` while executing, and a worker that is SIGKILLed simply
stops heartbeating — :meth:`requeue_expired` (driven by the pool's
supervision loop) flips its tasks back to ``pending`` so another worker
re-claims them.  :meth:`complete` and :meth:`heartbeat` are guarded by
``worker AND status='leased'``, so a worker that lost its lease cannot
finish somebody else's re-claimed task; durable effects (the run
record) are deduplicated by the worker against ``records.jsonl`` before
it re-executes.

The queue is *ephemeral per invocation*: runners recreate it from the
durable resume state (``records.jsonl`` / ``sweep.json``) on every
start, so a stale file never resurrects finished work.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

QUEUE_DB_NAME = "queue.db"

#: Task states, in lifecycle order.
PENDING, LEASED, DONE, FAILED = "pending", "leased", "done", "failed"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    task_id        TEXT PRIMARY KEY,
    kind           TEXT NOT NULL,
    payload        TEXT NOT NULL,
    status         TEXT NOT NULL DEFAULT 'pending',
    attempts       INTEGER NOT NULL DEFAULT 0,
    worker         TEXT,
    enqueued_at    REAL NOT NULL,
    claimed_at     REAL,
    lease_deadline REAL,
    finished_at    REAL,
    result         TEXT
);
CREATE INDEX IF NOT EXISTS idx_tasks_status ON tasks (status);
CREATE TABLE IF NOT EXISTS workers (
    worker_id  TEXT PRIMARY KEY,
    pid        INTEGER,
    started_at REAL NOT NULL,
    last_seen  REAL NOT NULL
);
"""

_TASK_COLUMNS = ("task_id", "kind", "payload", "status", "attempts",
                 "worker", "enqueued_at", "claimed_at", "lease_deadline",
                 "finished_at", "result")


@dataclass(frozen=True)
class Task:
    """One row of the queue, payload and result decoded."""

    task_id: str
    kind: str
    payload: dict
    status: str
    attempts: int
    worker: Optional[str]
    enqueued_at: float
    claimed_at: Optional[float]
    lease_deadline: Optional[float]
    finished_at: Optional[float]
    result: Optional[dict]

    @property
    def queue_wait_s(self) -> Optional[float]:
        """Enqueue-to-claim latency of the *latest* claim, if claimed."""
        if self.claimed_at is None:
            return None
        return max(0.0, self.claimed_at - self.enqueued_at)


def _decode(row) -> Task:
    data = dict(zip(_TASK_COLUMNS, row))
    data["payload"] = json.loads(data["payload"])
    if data["result"] is not None:
        try:
            data["result"] = json.loads(data["result"])
        except ValueError:
            data["result"] = None
    return Task(**data)


class TaskQueue:
    """The five verbs (enqueue/claim/heartbeat/complete/fail) plus
    supervision helpers, over one SQLite file."""

    def __init__(self, path: Union[str, Path],
                 busy_timeout_s: float = 30.0):
        self.path = Path(path)
        self.busy_timeout_s = float(busy_timeout_s)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._txn() as cur:
            cur.executescript(_SCHEMA)

    # -- plumbing --------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path),
                               timeout=self.busy_timeout_s)
        conn.isolation_level = None  # explicit transactions only
        return conn

    @contextlib.contextmanager
    def _txn(self, immediate: bool = False):
        conn = self._connect()
        try:
            cur = conn.cursor()
            cur.execute("BEGIN IMMEDIATE" if immediate else "BEGIN")
            try:
                yield cur
                conn.commit()
            except BaseException:
                conn.rollback()
                raise
        finally:
            conn.close()

    # -- producing -------------------------------------------------------

    def enqueue(self, kind: str, payload: dict,
                task_id: Optional[str] = None) -> str:
        """Add one pending task; returns its id (FIFO by insert order)."""
        task_id = task_id or uuid.uuid4().hex[:12]
        with self._txn() as cur:
            cur.execute(
                "INSERT INTO tasks (task_id, kind, payload, status, "
                "enqueued_at) VALUES (?, ?, ?, ?, ?)",
                (task_id, str(kind),
                 json.dumps(payload, sort_keys=True), PENDING,
                 time.time()))
        return task_id

    # -- consuming -------------------------------------------------------

    def claim(self, worker: str, lease_s: float) -> Optional[Task]:
        """Atomically lease the oldest pending task, or ``None``.

        ``BEGIN IMMEDIATE`` takes the write lock before the select, so
        two racing workers serialize and each claims a different row.
        """
        now = time.time()
        with self._txn(immediate=True) as cur:
            row = cur.execute(
                "SELECT task_id FROM tasks WHERE status = ? "
                "ORDER BY rowid LIMIT 1", (PENDING,)).fetchone()
            if row is None:
                return None
            cur.execute(
                "UPDATE tasks SET status = ?, worker = ?, "
                "attempts = attempts + 1, claimed_at = ?, "
                "lease_deadline = ? WHERE task_id = ?",
                (LEASED, worker, now, now + float(lease_s), row[0]))
            full = cur.execute(
                f"SELECT {', '.join(_TASK_COLUMNS)} FROM tasks "
                "WHERE task_id = ?", (row[0],)).fetchone()
        return _decode(full)

    def heartbeat(self, task_id: str, worker: str,
                  lease_s: float) -> bool:
        """Extend the lease; ``False`` means the lease was lost."""
        with self._txn() as cur:
            cur.execute(
                "UPDATE tasks SET lease_deadline = ? WHERE task_id = ? "
                "AND worker = ? AND status = ?",
                (time.time() + float(lease_s), task_id, worker, LEASED))
            return cur.rowcount == 1

    def complete(self, task_id: str, worker: str,
                 result: Optional[dict] = None) -> bool:
        """Mark done; ``False`` if this worker no longer owns the task."""
        return self._finish(task_id, worker, DONE, result)

    def fail(self, task_id: str, worker: str,
             error: Optional[str] = None) -> bool:
        """Mark failed (infrastructure error, not a task-level error —
        scenario failures are recorded in the result and ``complete``)."""
        return self._finish(task_id, worker, FAILED,
                            {"error": error} if error else None)

    def _finish(self, task_id: str, worker: str, status: str,
                result: Optional[dict]) -> bool:
        with self._txn() as cur:
            cur.execute(
                "UPDATE tasks SET status = ?, finished_at = ?, "
                "result = ? WHERE task_id = ? AND worker = ? "
                "AND status = ?",
                (status, time.time(),
                 json.dumps(result, sort_keys=True)
                 if result is not None else None,
                 task_id, worker, LEASED))
            return cur.rowcount == 1

    # -- supervision -----------------------------------------------------

    def requeue_expired(self, now: Optional[float] = None) -> List[str]:
        """Flip leases past their deadline back to pending; returns ids."""
        now = time.time() if now is None else now
        with self._txn(immediate=True) as cur:
            rows = cur.execute(
                "SELECT task_id FROM tasks WHERE status = ? "
                "AND lease_deadline < ?", (LEASED, now)).fetchall()
            ids = [r[0] for r in rows]
            if ids:
                cur.execute(
                    "UPDATE tasks SET status = ?, worker = NULL, "
                    "lease_deadline = NULL WHERE status = ? "
                    f"AND lease_deadline < ?", (PENDING, LEASED, now))
        return ids

    def release(self, worker: str) -> List[str]:
        """Requeue every task leased by ``worker`` (it is known dead)."""
        with self._txn(immediate=True) as cur:
            rows = cur.execute(
                "SELECT task_id FROM tasks WHERE status = ? "
                "AND worker = ?", (LEASED, worker)).fetchall()
            ids = [r[0] for r in rows]
            if ids:
                cur.execute(
                    "UPDATE tasks SET status = ?, worker = NULL, "
                    "lease_deadline = NULL WHERE status = ? "
                    "AND worker = ?", (PENDING, LEASED, worker))
        return ids

    # -- reading ---------------------------------------------------------

    def get(self, task_id: str) -> Optional[Task]:
        with self._txn() as cur:
            row = cur.execute(
                f"SELECT {', '.join(_TASK_COLUMNS)} FROM tasks "
                "WHERE task_id = ?", (task_id,)).fetchone()
        return _decode(row) if row is not None else None

    def counts(self) -> Dict[str, int]:
        """status -> row count (absent statuses omitted)."""
        with self._txn() as cur:
            rows = cur.execute(
                "SELECT status, COUNT(*) FROM tasks "
                "GROUP BY status").fetchall()
        return {status: n for status, n in rows}

    def remaining(self) -> int:
        """Tasks not yet finished (pending + leased)."""
        counts = self.counts()
        return counts.get(PENDING, 0) + counts.get(LEASED, 0)

    def finished(self) -> List[Task]:
        """Every done/failed task, in finish order."""
        with self._txn() as cur:
            rows = cur.execute(
                f"SELECT {', '.join(_TASK_COLUMNS)} FROM tasks "
                "WHERE status IN (?, ?) ORDER BY finished_at, rowid",
                (DONE, FAILED)).fetchall()
        return [_decode(r) for r in rows]

    def leased(self) -> List[Task]:
        with self._txn() as cur:
            rows = cur.execute(
                f"SELECT {', '.join(_TASK_COLUMNS)} FROM tasks "
                "WHERE status = ? ORDER BY rowid", (LEASED,)).fetchall()
        return [_decode(r) for r in rows]

    # -- worker registry -------------------------------------------------

    def register_worker(self, worker: str, pid: int) -> None:
        now = time.time()
        with self._txn() as cur:
            cur.execute(
                "INSERT OR REPLACE INTO workers "
                "(worker_id, pid, started_at, last_seen) "
                "VALUES (?, ?, ?, ?)", (worker, int(pid), now, now))

    def worker_seen(self, worker: str) -> None:
        with self._txn() as cur:
            cur.execute(
                "UPDATE workers SET last_seen = ? WHERE worker_id = ?",
                (time.time(), worker))

    def workers(self) -> List[dict]:
        with self._txn() as cur:
            rows = cur.execute(
                "SELECT worker_id, pid, started_at, last_seen "
                "FROM workers ORDER BY started_at").fetchall()
        return [{"worker_id": w, "pid": p, "started_at": s,
                 "last_seen": l} for w, p, s, l in rows]

    def wait_for_workers(self, n: int, timeout_s: float = 10.0,
                         poll_s: float = 0.02) -> bool:
        """Ready barrier: block until ``n`` workers registered.

        Workers call this after registering so a fast starter does not
        drain the whole queue while its peers are still importing numpy
        — which matters for fair benchmarks and for tests that want the
        tasks spread across processes.  Returns ``False`` on timeout
        (the caller proceeds anyway; the barrier is best-effort).
        """
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if len(self.workers()) >= n:
                return True
            time.sleep(poll_s)
        return False
