"""``repro.exec`` — the shared work-queue executor.

One substrate under both :class:`~repro.experiments.runner.Runner` and
:class:`~repro.sweeps.runner.SweepRunner`: planners enqueue ``(point,
seed)`` tasks onto a file/SQLite-backed :class:`TaskQueue`, a
spawn-based :class:`WorkerPool` supervises workers that pull, lease,
heartbeat and execute them through the existing scenario machinery, and
results land in the existing ``runs/`` store byte-compatibly.  The
queue file is ephemeral per invocation (rebuilt from the durable resume
state each start) but left on disk afterwards for inspection.

See :mod:`repro.exec.protocol` for the task wire format (REP004-checked)
and :mod:`repro.exec.queue` for the lease/requeue lifecycle that makes
preemption (SIGKILL a worker mid-task) safe.
"""

from .planner import enqueue_seed
from .pool import DEFAULT_WORKERS_ENV, WorkerPool, default_workers
from .protocol import MESSAGES, RUN_SEED
from .queue import QUEUE_DB_NAME, Task, TaskQueue
from .worker import INJECT_DELAY_ENV, claim_loop, worker_main

__all__ = [
    "TaskQueue", "Task", "QUEUE_DB_NAME",
    "WorkerPool", "default_workers", "DEFAULT_WORKERS_ENV",
    "enqueue_seed", "claim_loop", "worker_main",
    "RUN_SEED", "MESSAGES", "INJECT_DELAY_ENV",
]
