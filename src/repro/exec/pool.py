"""Spawn-based worker pool over a :class:`~repro.exec.queue.TaskQueue`.

The pool is a supervisor, not an executor: workers pull their own work
from the queue (:func:`~repro.exec.worker.claim_loop`), so the parent
only watches — draining finished results to a callback, requeuing
expired leases, replacing dead workers, and publishing queue-depth /
lease-expiry metrics.  Killing a worker (or the whole process tree)
therefore loses at most the leases it held, never the queue.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from .. import obs
from .queue import Task, TaskQueue
from .worker import claim_loop, worker_main

#: Env var: hard override of the worker fleet width, fleet-wide (the
#: WorkerPool, ``ShardedRuntime`` and ``python -m repro cluster`` all
#: resolve their defaults through :func:`default_workers`).
DEFAULT_WORKERS_ENV = "REPRO_MAX_WORKERS"


def default_workers(cap: Optional[int] = None) -> int:
    """The one worker-count policy for the whole repo.

    ``REPRO_MAX_WORKERS`` (when set to an integer >= 1) wins outright —
    it is an explicit operator override, so ``cap`` does not apply.
    Otherwise: ``min(os.cpu_count(), cap)``, floor 1.
    """
    raw = os.environ.get(DEFAULT_WORKERS_ENV)
    if raw is not None:
        try:
            value = int(raw.strip())
        except ValueError:
            value = 0
        if value >= 1:
            return value
    workers = os.cpu_count() or 1
    if cap is not None:
        workers = min(workers, int(cap))
    return max(1, workers)


class WorkerPool:
    """Run a queue to empty across ``workers`` spawned processes.

    Parameters
    ----------
    queue:
        The :class:`TaskQueue` to drain (already populated).
    workers:
        Fleet width; ``None`` resolves via :func:`default_workers`
        capped at the queue's remaining task count.  ``<= 1`` runs the
        claim loop inline in this process.
    lease_s / poll_s:
        Task lease length and supervision/claim poll interval.
    max_restarts:
        Dead workers are replaced up to this many times pool-wide
        (default ``2 * workers``); after that, remaining work drains
        inline so the run still completes.
    """

    def __init__(self, queue: TaskQueue, workers: Optional[int] = None,
                 lease_s: float = 30.0, poll_s: float = 0.05,
                 max_restarts: Optional[int] = None):
        if workers is None:
            workers = min(default_workers(), max(1, queue.remaining()))
        self.queue = queue
        self.workers = max(1, int(workers))
        self.lease_s = float(lease_s)
        self.poll_s = float(poll_s)
        self.max_restarts = (2 * self.workers if max_restarts is None
                             else int(max_restarts))
        self._procs = {}  # worker_id -> Process

    # -- public ----------------------------------------------------------

    def run(self, on_task_done: Optional[Callable[[Task, dict], None]] = None,
            progress: Optional[Callable[[str], None]] = None) -> None:
        """Block until the queue is drained; stream results via callback.

        ``on_task_done(task, result)`` fires exactly once per finished
        task (done or failed), in finish order.
        """
        seen = set()
        if self.workers <= 1 or self.queue.remaining() <= 1:
            claim_loop(self.queue.path, "w0", lease_s=self.lease_s,
                       poll_s=self.poll_s,
                       on_result=self._eager(on_task_done, seen))
            self._drain_finished(on_task_done, seen)
            return
        try:
            self._spawn_all()
        except OSError as exc:
            # Sandboxes without spawn support: degrade to inline.
            if progress is not None:
                progress(f"worker spawn unavailable ({exc}); "
                         "running tasks inline")
            claim_loop(self.queue.path, "w0", lease_s=self.lease_s,
                       poll_s=self.poll_s,
                       on_result=self._eager(on_task_done, seen))
            self._drain_finished(on_task_done, seen)
            return
        self._supervise(on_task_done, progress, seen)

    def worker_pids(self):
        return {wid: proc.pid for wid, proc in self._procs.items()}

    # -- internals -------------------------------------------------------

    @staticmethod
    def _eager(on_task_done, seen):
        if on_task_done is None:
            return None

        def cb(task: Task, result: dict) -> None:
            seen.add(task.task_id)
            on_task_done(task, result)
        return cb

    def _spawn_all(self) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        for i in range(self.workers):
            wid = f"w{i}"
            proc = ctx.Process(
                target=worker_main,
                args=(str(self.queue.path), wid, self.lease_s,
                      self.poll_s, self.workers),
                daemon=False)
            proc.start()
            self._procs[wid] = proc

    def _supervise(self, on_task_done, progress, seen) -> None:
        restarts = 0
        generation = 0
        while True:
            self._drain_finished(on_task_done, seen)
            remaining = self.queue.remaining()
            obs.gauge("exec_queue_depth", float(remaining))
            if remaining == 0:
                break
            requeued = self.queue.requeue_expired()
            for _ in requeued:
                obs.counter("exec_lease_requeues")
            if requeued and progress is not None:
                progress(f"requeued {len(requeued)} expired lease(s)")
            dead = [(wid, proc) for wid, proc in self._procs.items()
                    if not proc.is_alive()]
            for wid, proc in dead:
                del self._procs[wid]
                released = self.queue.release(wid)
                obs.counter("exec_worker_deaths")
                for _ in released:
                    obs.counter("exec_lease_requeues")
                if progress is not None:
                    progress(f"worker {wid} died (exit {proc.exitcode}); "
                             f"requeued {len(released)} task(s)")
                if restarts < self.max_restarts:
                    restarts += 1
                    generation += 1
                    self._respawn(wid, generation)
                    obs.counter("exec_worker_restarts")
            if not self._procs:
                # Fleet exhausted its restart budget: finish inline so
                # the run completes rather than hanging.
                if progress is not None:
                    progress("all workers dead; draining queue inline")
                self.queue.requeue_expired(now=float("inf"))
                claim_loop(self.queue.path, "w-inline",
                           lease_s=self.lease_s, poll_s=self.poll_s,
                           on_result=self._eager(on_task_done, seen))
            time.sleep(self.poll_s)
        self._drain_finished(on_task_done, seen)
        obs.gauge("exec_queue_depth", 0.0)
        for proc in self._procs.values():
            proc.join(timeout=max(5.0, 2 * self.lease_s))
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        self._procs.clear()

    def _respawn(self, died_wid: str, generation: int) -> None:
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        wid = f"{died_wid.split('.')[0]}.{generation}"
        try:
            proc = ctx.Process(
                target=worker_main,
                args=(str(self.queue.path), wid, self.lease_s,
                      self.poll_s, None),
                daemon=False)
            proc.start()
        except OSError:
            return
        self._procs[wid] = proc

    def _drain_finished(self, on_task_done, seen) -> None:
        if on_task_done is None:
            return
        for task in self.queue.finished():
            if task.task_id in seen:
                continue
            seen.add(task.task_id)
            on_task_done(task, task.result or {})
