"""Analytic CPU/GPU cost models for the Table II comparison.

The paper measures an i7-8700 CPU and an RTX 5000 GPU running the same
batch-1 SNN training/inference in software.  Neither device is available
here, so Table II's conventional-hardware rows come from a roofline-style
model: operation counts derived from the actual network topology and phase
length, divided by a device's *effective* batch-1 throughput, at the
device's sustained power.

Effective throughputs are calibrated so the Section IV-A network lands near
the paper's published FPS (422/1536 train/test on CPU, 625/2857 on GPU);
the point of the table — Loihi trades an order of magnitude of throughput
for 1-2 orders of magnitude of energy per image — is a property of the
model's *structure* (batch-1 utilisation, constant device power), not of
fine calibration.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..loihi.energy import EnergyReport


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """A conventional device running the SNN in software."""

    name: str
    #: Sustained MAC/s at batch size 1 (far below peak: memory bound).
    effective_macs_per_s: float
    #: Sustained board/package power while running (W).
    power_w: float

    def __post_init__(self):
        if self.effective_macs_per_s <= 0 or self.power_w <= 0:
            raise ValueError("device constants must be positive")


#: Calibrated to land near Table II's published FPS at the paper network.
I7_8700 = DeviceSpec("i7 8700", effective_macs_per_s=22.0e9, power_w=58.0)
RTX_5000 = DeviceSpec("RTX 5000", effective_macs_per_s=32.6e9, power_w=48.0)


def snn_macs_per_sample(dims: Sequence[int], T: int, training: bool,
                        feedback: str = "dfa",
                        avg_rate: float = 0.15) -> float:
    """MAC count of simulating one sample of the spiking network.

    A software SNN simulator evaluates every synapse at every timestep of
    the event window (dense matmul per step); training doubles the window
    (two phases), adds the error-path propagation and the outer-product
    weight update.  ``avg_rate`` scales the event-driven part of the error
    path.
    """
    dims = tuple(int(d) for d in dims)
    forward_syn = sum(a * b for a, b in zip(dims[:-1], dims[1:]))
    steps = 2 * T if training else T
    macs = float(forward_syn) * steps
    if training:
        n_out = dims[-1]
        hidden = dims[1:-1]
        if feedback == "dfa":
            fb_syn = n_out * sum(hidden)
        else:
            fb_syn = sum(a * b for a, b in zip(dims[2:], dims[1:-1]))
        macs += fb_syn * T * (0.5 + avg_rate)
        macs += forward_syn * 2.0  # outer-product update + quantize
    return macs


def device_report(device: DeviceSpec, dims: Sequence[int], T: int,
                  training: bool, n_samples: int = 10_000,
                  feedback: str = "dfa") -> EnergyReport:
    """Table II row for a conventional device."""
    macs = snn_macs_per_sample(dims, T, training, feedback=feedback)
    time_per_sample_s = macs / device.effective_macs_per_s
    fps = 1.0 / time_per_sample_s
    energy_j = device.power_w * time_per_sample_s
    return EnergyReport(
        fps=fps,
        power_w=device.power_w,
        energy_per_sample_mj=energy_j * 1e3,
        time_per_sample_ms=time_per_sample_s * 1e3,
        cores_used=0,
        total_time_s=time_per_sample_s * n_samples,
    )
