"""A plain rate ANN trained with true backpropagation.

Not part of the paper's tables — a sanity baseline: EMSTDP is an
*approximation* of backprop, so its accuracy should approach (and not
exceed by much) an equally sized ANN trained with exact gradients on the
same stream.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.encoding import as_sample_batch


class BackpropMLP:
    """Minimal MLP (ReLU hidden, softmax output), online SGD.

    Mirrors the EMSTDP network's two-level API: ``train_sample`` /
    ``predict`` / ``evaluate`` run the paper's batch-1 online regime, while
    ``train_batch`` / ``predict_batch`` / ``evaluate_batch`` are fully
    vectorized (one GEMM per layer for the whole minibatch, gradients
    averaged) so the baseline's throughput is comparable with the batched
    EMSTDP engine rather than being bottlenecked by Python loops.
    """

    def __init__(self, dims: Sequence[int], lr: float = 0.05, seed: int = 0):
        dims = tuple(int(d) for d in dims)
        if len(dims) < 2:
            raise ValueError("need at least input and output layers")
        self.dims = dims
        self.lr = float(lr)
        rng = np.random.default_rng(seed)
        self.weights = [rng.normal(0, np.sqrt(2.0 / a), size=(a, b))
                        for a, b in zip(dims[:-1], dims[1:])]
        self.biases = [np.zeros(b) for b in dims[1:]]

    def _forward(self, x: np.ndarray):
        acts = [np.asarray(x, dtype=float)]
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = acts[-1] @ w + b
            acts.append(np.maximum(z, 0) if i < len(self.weights) - 1 else z)
        return acts

    def predict(self, x: np.ndarray) -> int:
        return int(np.argmax(self._forward(x)[-1]))

    def train_sample(self, x: np.ndarray, label: int) -> bool:
        acts = self._forward(x)
        logits = acts[-1]
        p = np.exp(logits - logits.max())
        p /= p.sum()
        grad = p.copy()
        grad[label] -= 1.0
        for i in range(len(self.weights) - 1, -1, -1):
            # Propagate through the *pre-update* weights: updating first and
            # then backpropagating through the new weights computes a
            # gradient of nothing in particular (and made the sequential and
            # batched paths disagree even at B = 1).
            prev_grad = (grad @ self.weights[i].T) * (acts[i] > 0) \
                if i > 0 else None
            self.weights[i] -= self.lr * np.outer(acts[i], grad)
            self.biases[i] -= self.lr * grad
            grad = prev_grad
        return int(np.argmax(logits)) == label

    def train_stream(self, xs, ys) -> float:
        correct = sum(self.train_sample(x, int(y)) for x, y in zip(xs, ys))
        return correct / max(len(xs), 1)

    def evaluate(self, xs, ys) -> float:
        correct = sum(self.predict(x) == int(y) for x, y in zip(xs, ys))
        return correct / max(len(xs), 1)

    # -- batched path ------------------------------------------------------

    def _forward_batch(self, X: np.ndarray):
        acts = [as_sample_batch(X, self.dims[0])]
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = acts[-1] @ w + b
            acts.append(np.maximum(z, 0) if i < len(self.weights) - 1 else z)
        return acts

    def predict_batch(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self._forward_batch(X)[-1], axis=-1).astype(np.int64)

    def train_batch(self, X: np.ndarray, ys) -> float:
        """One minibatch SGD step (mean gradient); returns batch accuracy."""
        ys = np.asarray(ys, dtype=np.int64).reshape(-1)
        acts = self._forward_batch(X)
        logits = acts[-1]
        if len(logits) != len(ys):
            raise ValueError("samples and labels must have equal length")
        p = np.exp(logits - logits.max(axis=1, keepdims=True))
        p /= p.sum(axis=1, keepdims=True)
        grad = p.copy()
        grad[np.arange(len(ys)), ys] -= 1.0
        grad /= max(len(ys), 1)
        for i in range(len(self.weights) - 1, -1, -1):
            gw = acts[i].T @ grad
            gb = grad.sum(axis=0)
            if i > 0:
                grad = (grad @ self.weights[i].T) * (acts[i] > 0)
            self.weights[i] -= self.lr * gw
            self.biases[i] -= self.lr * gb
        return float(np.mean(np.argmax(logits, axis=1) == ys)) if len(ys) else 0.0

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> dict:
        """Snapshot of everything needed to restore the model."""
        return {
            "dims": self.dims,
            "lr": self.lr,
            "weights": [w.copy() for w in self.weights],
            "biases": [b.copy() for b in self.biases],
        }

    def load_state_dict(self, state: dict) -> None:
        if tuple(int(d) for d in state["dims"]) != self.dims:
            raise ValueError(
                f"checkpoint dims {tuple(state['dims'])} != model dims "
                f"{self.dims}")
        self.weights = [np.array(w, dtype=float) for w in state["weights"]]
        self.biases = [np.array(b, dtype=float) for b in state["biases"]]
        self.lr = float(state.get("lr", self.lr))

    def evaluate_batch(self, xs, ys, batch_size: int = 1024) -> float:
        xs = as_sample_batch(xs, self.dims[0])
        ys = np.asarray(ys, dtype=np.int64).reshape(-1)
        correct = 0
        for lo in range(0, len(xs), batch_size):
            preds = self.predict_batch(xs[lo:lo + batch_size])
            correct += int(np.sum(preds == ys[lo:lo + batch_size]))
        return correct / max(len(xs), 1)
