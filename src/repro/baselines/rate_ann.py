"""A plain rate ANN trained with true backpropagation.

Not part of the paper's tables — a sanity baseline: EMSTDP is an
*approximation* of backprop, so its accuracy should approach (and not
exceed by much) an equally sized ANN trained with exact gradients on the
same stream.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class BackpropMLP:
    """Minimal MLP (ReLU hidden, softmax output), online SGD, batch 1."""

    def __init__(self, dims: Sequence[int], lr: float = 0.05, seed: int = 0):
        dims = tuple(int(d) for d in dims)
        if len(dims) < 2:
            raise ValueError("need at least input and output layers")
        self.dims = dims
        self.lr = float(lr)
        rng = np.random.default_rng(seed)
        self.weights = [rng.normal(0, np.sqrt(2.0 / a), size=(a, b))
                        for a, b in zip(dims[:-1], dims[1:])]
        self.biases = [np.zeros(b) for b in dims[1:]]

    def _forward(self, x: np.ndarray):
        acts = [np.asarray(x, dtype=float)]
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = acts[-1] @ w + b
            acts.append(np.maximum(z, 0) if i < len(self.weights) - 1 else z)
        return acts

    def predict(self, x: np.ndarray) -> int:
        return int(np.argmax(self._forward(x)[-1]))

    def train_sample(self, x: np.ndarray, label: int) -> bool:
        acts = self._forward(x)
        logits = acts[-1]
        p = np.exp(logits - logits.max())
        p /= p.sum()
        grad = p.copy()
        grad[label] -= 1.0
        for i in range(len(self.weights) - 1, -1, -1):
            self.weights[i] -= self.lr * np.outer(acts[i], grad)
            self.biases[i] -= self.lr * grad
            if i > 0:
                grad = (grad @ self.weights[i].T) * (acts[i] > 0)
        return int(np.argmax(logits)) == label

    def train_stream(self, xs, ys) -> float:
        correct = sum(self.train_sample(x, int(y)) for x, y in zip(xs, ys))
        return correct / max(len(xs), 1)

    def evaluate(self, xs, ys) -> float:
        correct = sum(self.predict(x) == int(y) for x, y in zip(xs, ys))
        return correct / max(len(xs), 1)
