"""Comparison baselines: analytic CPU/GPU cost models and a backprop MLP."""

from .hardware_model import (DeviceSpec, I7_8700, RTX_5000, device_report,
                             snn_macs_per_sample)
from .rate_ann import BackpropMLP

__all__ = ["BackpropMLP", "DeviceSpec", "I7_8700", "RTX_5000",
           "device_report", "snn_macs_per_sample"]
