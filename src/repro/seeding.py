"""One definition of "seed -> generator" for the whole codebase.

The data generators (and anything else that accepts a seed-or-generator
argument) funnel through :func:`as_rng`; the experiment runner hands each
worker its plain integer seed and stores it in the run record, so every
stream a run drew can be reproduced from ``records.jsonl`` alone.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything :func:`as_rng` accepts.
SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    An existing generator passes through untouched (so callers can thread
    one stream through helpers); an ``int`` (or ``None`` for OS entropy)
    seeds a fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
