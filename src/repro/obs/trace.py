"""Durable span/event tracing to JSONL files next to the run artifacts.

A trace is a flat append-only JSONL file (``trace.jsonl`` in a run or
sweep directory).  Every record is one complete line written with a
single ``os.write`` on an ``O_APPEND`` descriptor, so *multiple
processes* (the runner parent and its seed workers) append to one file
without interleaving partial lines, and a process killed mid-write can
tear at most its own last line — which :func:`read_trace` tolerates, the
same contract ``records.jsonl`` already has.

Record kinds::

    {"kind": "span",  "name": ..., "span_id": ..., "parent_id": ...,
     "pid": ..., "ts": <unix start>, "dur_ms": ..., "status": "ok"|"error",
     "attrs": {...}}
    {"kind": "event", "name": ..., "parent_id": ..., "pid": ...,
     "ts": ..., "attrs": {...}}
    {"kind": "kernel_stats", "pid": ..., "ts": ..., "kernels":
     {name: {"calls": ..., "timed": ..., "sampled_ms": ...,
             "mean_us": ..., "est_total_ms": ...}}}

Spans are written at *close* time (one line carries start + duration), so
children appear in the file before their parent — consumers build the
tree by id, not by order.  Span ids are ``<pid hex>.<counter>``: unique
across the processes sharing a file without coordination.

The :class:`Tracer` keeps a stack of bound sinks (``bind`` nests: a sweep
binds its own trace, each point's runner binds the child run's trace on
top) and a per-thread stack of open spans for parentage.  With no sink
bound, ``span``/``event`` are no-ops a few attribute checks deep — the
instrumented call sites stay in production code at near-zero cost.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

TRACE_FILE_NAME = "trace.jsonl"


def _jsonable(value):
    """Best-effort JSON coercion for span attrs (numpy scalars, paths)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)  # numpy scalar
    if callable(item):
        try:
            return item()
        except Exception:
            pass
    return str(value)


class TraceWriter:
    """One O_APPEND descriptor; each record is a single atomic write."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fd = os.open(str(self.path),
                           os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)

    def write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True) + "\n"
        try:
            os.write(self._fd, line.encode("utf-8"))
        except OSError:
            pass  # a full disk must never fail the traced work itself

    def close(self) -> None:
        try:
            os.close(self._fd)
        except OSError:
            pass


class SpanHandle:
    """What ``with obs.span(...) as sp`` yields; ``None``-safe no-op too."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_writer",
                 "_ts", "_t0")

    def __init__(self, name, span_id, parent_id, attrs, writer, ts, t0):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._writer = writer
        self._ts = ts
        self._t0 = t0

    def set(self, **attrs) -> None:
        """Attach result attributes before the span closes."""
        self.attrs.update(attrs)


class Tracer:
    """Sink stack + per-thread span stack; see the module docstring."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sinks: List[TraceWriter] = []
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- sink management -------------------------------------------------

    def active(self) -> bool:
        return bool(self._sinks)

    def _sink(self) -> Optional[TraceWriter]:
        sinks = self._sinks
        return sinks[-1] if sinks else None

    @contextlib.contextmanager
    def bind(self, path: Optional[Union[str, Path]]):
        """Route spans/events to ``path`` for the duration of the block.

        ``path=None`` yields without binding anything (callers pass the
        result of an enablement check straight in).  Binds nest; spans
        capture their sink at entry, so a span opened under an outer bind
        closes into that same file even if an inner bind came and went.
        """
        if path is None:
            yield None
            return
        writer = TraceWriter(path)
        with self._lock:
            self._sinks.append(writer)
        try:
            yield writer
        finally:
            with self._lock:
                try:
                    self._sinks.remove(writer)
                except ValueError:  # pragma: no cover - double unbind
                    pass
            writer.close()

    def new_span_id(self) -> str:
        return f"{os.getpid():x}.{next(self._ids)}"

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[str]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- recording -------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, parent_id: Optional[str] = None, **attrs):
        """Time a block; writes one ``span`` record when it exits.

        ``parent_id`` overrides the thread-local parent — the runner uses
        it to link a worker process's root span to the parent process's
        ``run`` span across the process boundary.
        """
        writer = self._sink()
        if writer is None:
            yield None
            return
        stack = self._stack()
        handle = SpanHandle(
            name=str(name), span_id=self.new_span_id(),
            parent_id=parent_id if parent_id is not None
            else (stack[-1] if stack else None),
            attrs={k: _jsonable(v) for k, v in attrs.items()},
            writer=writer, ts=time.time(), t0=time.perf_counter())
        stack.append(handle.span_id)
        status = "ok"
        try:
            yield handle
        except BaseException:
            status = "error"
            raise
        finally:
            dur_ms = (time.perf_counter() - handle._t0) * 1e3
            if stack and stack[-1] == handle.span_id:
                stack.pop()
            writer.write({
                "kind": "span", "name": handle.name,
                "span_id": handle.span_id, "parent_id": handle.parent_id,
                "pid": os.getpid(), "ts": round(handle._ts, 6),
                "dur_ms": round(dur_ms, 3), "status": status,
                "attrs": handle.attrs,
            })

    def event(self, name: str, **attrs) -> None:
        """Write one point-in-time record under the current span."""
        writer = self._sink()
        if writer is None:
            return
        writer.write({
            "kind": "event", "name": str(name),
            "parent_id": self.current_span_id(), "pid": os.getpid(),
            "ts": round(time.time(), 6),
            "attrs": {k: _jsonable(v) for k, v in attrs.items()},
        })

    def write_record(self, record: dict) -> None:
        """Write an arbitrary record (kernel stats, metric snapshots)."""
        writer = self._sink()
        if writer is not None:
            writer.write(record)


# ---------------------------------------------------------------------------
# Reading and analysis
# ---------------------------------------------------------------------------

def read_trace(path: Union[str, Path]) -> List[dict]:
    """Parsed trace records; a torn trailing line is tolerated.

    A process SIGKILLed mid-``write`` leaves at most one incomplete line
    (single-write appends); every record before it is intact.  Torn or
    corrupt lines anywhere are skipped rather than fatal, so a trace is
    always readable up to the instant its writers died.
    """
    records: List[dict] = []
    path = Path(path)
    if not path.is_file():
        return records
    with path.open("rb") as fh:
        for raw in fh.read().split(b"\n"):
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def build_span_forest(records: List[dict]):
    """``(roots, children)``: spans whose parent is absent, and an id ->
    sorted-children map.  Cross-process parents (a worker's root span
    pointing at the parent process's ``run`` span) resolve naturally
    because ids are unique across the processes sharing the file."""
    spans = [r for r in records if r.get("kind") == "span"]
    by_id: Dict[str, dict] = {s["span_id"]: s for s in spans}
    children: Dict[str, List[dict]] = {}
    roots: List[dict] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    for kids in children.values():
        kids.sort(key=lambda s: s.get("ts", 0.0))
    roots.sort(key=lambda s: s.get("ts", 0.0))
    return roots, children


def summarize_spans(records: List[dict]) -> List[dict]:
    """Per-name aggregates over every span, slowest total first.

    ``queue_wait_ms`` is the mean of that attribute over the spans that
    carry it (the executor's ``task`` spans record their enqueue->claim
    latency there) and ``None`` for every other span name.
    """
    agg: Dict[str, dict] = {}
    for span in records:
        if span.get("kind") != "span":
            continue
        entry = agg.setdefault(span["name"], {
            "name": span["name"], "count": 0, "errors": 0,
            "total_ms": 0.0, "max_ms": 0.0,
            "_wait_ms": 0.0, "_wait_n": 0})
        dur = float(span.get("dur_ms", 0.0))
        entry["count"] += 1
        entry["total_ms"] += dur
        entry["max_ms"] = max(entry["max_ms"], dur)
        if span.get("status") == "error":
            entry["errors"] += 1
        wait = span.get("attrs", {}).get("queue_wait_ms")
        if isinstance(wait, (int, float)) and not isinstance(wait, bool):
            entry["_wait_ms"] += float(wait)
            entry["_wait_n"] += 1
    out = sorted(agg.values(), key=lambda e: -e["total_ms"])
    for entry in out:
        entry["total_ms"] = round(entry["total_ms"], 3)
        entry["mean_ms"] = round(entry["total_ms"] / entry["count"], 3)
        entry["max_ms"] = round(entry["max_ms"], 3)
        wait_n = entry.pop("_wait_n")
        wait_ms = entry.pop("_wait_ms")
        entry["queue_wait_ms"] = (round(wait_ms / wait_n, 3)
                                  if wait_n else None)
    return out


def slowest_spans(records: List[dict], top: int = 10) -> List[dict]:
    spans = [r for r in records if r.get("kind") == "span"]
    return sorted(spans, key=lambda s: -float(s.get("dur_ms", 0.0)))[:top]


def summarize_kernels(records: List[dict]) -> List[dict]:
    """Merge every process's ``kernel_stats`` record into one table.

    ``est_total_ms`` extrapolates the sampled timings to all calls
    (mean sampled duration x call count) — an estimate by construction,
    but an honest one at the default 1-in-N sampling of a steady loop.
    """
    agg: Dict[str, dict] = {}
    for record in records:
        if record.get("kind") != "kernel_stats":
            continue
        for name, stats in record.get("kernels", {}).items():
            entry = agg.setdefault(name, {
                "name": name, "calls": 0, "timed": 0, "sampled_ms": 0.0})
            entry["calls"] += int(stats.get("calls", 0))
            entry["timed"] += int(stats.get("timed", 0))
            entry["sampled_ms"] += float(stats.get("sampled_ms", 0.0))
    out = []
    for entry in sorted(agg.values(), key=lambda e: -e["sampled_ms"]):
        timed = entry["timed"]
        mean_us = (entry["sampled_ms"] / timed * 1e3) if timed else 0.0
        entry["mean_us"] = round(mean_us, 2)
        entry["est_total_ms"] = round(mean_us * entry["calls"] / 1e3, 3)
        entry["sampled_ms"] = round(entry["sampled_ms"], 3)
        out.append(entry)
    return out
