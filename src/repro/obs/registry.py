"""In-process metrics: labeled counters, gauges, and histograms.

One :class:`MetricsRegistry` per process is the steady state (the module
global in :mod:`repro.obs`).  The write path is deliberately cheap — a
dict upsert keyed on ``(name, sorted label items)`` under the GIL, no
locking on the hot path — because counters fire inside the serving and
training loops ("lock-free-enough": a torn read in ``snapshot`` can
under-count by one increment, never corrupt).  Snapshots are plain
JSON/pickle-able dicts, which is what lets cluster workers piggyback them
on heartbeats and the front end merge them into one view
(:func:`merge_snapshots`).

Histograms use fixed multiplicative bucket bounds (so Prometheus can
aggregate them across processes): each ``observe`` lands in the first
bucket whose upper bound is >= the value, plus exact ``count``/``sum``/
``min``/``max`` running totals.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds: half-decades from 10us-scale
#: values to minutes, good for both latencies (ms) and batch sizes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0,
)

Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: dict) -> Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class _Histogram:
    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float]):
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class MetricsRegistry:
    """Process-local metric store with a mergeable snapshot format.

    ``enabled=False`` turns every write into an immediate return — the
    switch the overhead benchmark uses to price the instrumentation, and
    what ``REPRO_OBS_METRICS=0`` flips at import.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._counters: Dict[Key, float] = {}
        self._gauges: Dict[Key, float] = {}
        # Only histogram *creation* takes the lock; observes (and the
        # snapshot read path) deliberately ride the GIL, hence [writes].
        self._histograms: Dict[Key, _Histogram] = {}  # guarded-by: _create_lock [writes]
        self._create_lock = threading.Lock()

    # -- write path ------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels) -> None:
        if not self.enabled:
            return
        self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float,
                buckets: Optional[Sequence[float]] = None, **labels) -> None:
        if not self.enabled:
            return
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            with self._create_lock:
                hist = self._histograms.setdefault(
                    key, _Histogram(buckets or DEFAULT_BUCKETS))
        hist.observe(float(value))

    def reset(self) -> None:
        """Drop every series (tests and benchmark isolation)."""
        self._counters = {}
        self._gauges = {}
        # The reassignment must not interleave with a concurrent
        # setdefault in observe(), or the freshly created histogram
        # lands in the dict being thrown away and its observes vanish.
        with self._create_lock:
            self._histograms = {}

    # -- read path -------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every series; picklable and mergeable."""
        counters = [{"name": n, "labels": dict(ls), "value": v}
                    for (n, ls), v in sorted(self._counters.items())]
        gauges = [{"name": n, "labels": dict(ls), "value": v}
                  for (n, ls), v in sorted(self._gauges.items())]
        histograms = []
        for (n, ls), h in sorted(self._histograms.items()):
            histograms.append({
                "name": n, "labels": dict(ls),
                "bounds": list(h.bounds),
                "bucket_counts": list(h.bucket_counts),
                "count": h.count, "sum": h.sum,
                "min": h.min if h.count else 0.0,
                "max": h.max if h.count else 0.0,
            })
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


def merge_snapshots(snapshots: Iterable[Optional[dict]],
                    extra_labels: Optional[List[Optional[dict]]] = None,
                    ) -> dict:
    """Merge per-process snapshots into one registry-shaped snapshot.

    ``extra_labels[i]`` (e.g. ``{"worker": "2"}``) is stamped onto every
    series of ``snapshots[i]`` before merging, which is how a cluster
    front end keeps per-worker attribution while still summing series
    that share a full label set.  Counters and histogram buckets add;
    gauges last-write-wins (identical labels from two processes would be
    a caller bug — the extra labels exist to prevent exactly that).
    """
    counters: Dict[Key, float] = {}
    gauges: Dict[Key, float] = {}
    hists: Dict[Key, dict] = {}
    snapshots = list(snapshots)
    for i, snap in enumerate(snapshots):
        if not snap:
            continue
        extra = (extra_labels[i] if extra_labels is not None else None) or {}
        for c in snap.get("counters", ()):
            key = _key(c["name"], {**c.get("labels", {}), **extra})
            counters[key] = counters.get(key, 0.0) + float(c["value"])
        for g in snap.get("gauges", ()):
            gauges[_key(g["name"], {**g.get("labels", {}), **extra})] = \
                float(g["value"])
        for h in snap.get("histograms", ()):
            key = _key(h["name"], {**h.get("labels", {}), **extra})
            have = hists.get(key)
            if have is None or have["bounds"] != h["bounds"]:
                if have is not None:
                    # Incompatible bucket bounds cannot be added; keep
                    # both by suffixing the later one's name.
                    key = (key[0] + "_alt", key[1])
                    have = hists.get(key)
            if have is None:
                hists[key] = {
                    "name": key[0], "labels": dict(key[1]),
                    "bounds": list(h["bounds"]),
                    "bucket_counts": list(h["bucket_counts"]),
                    "count": h["count"], "sum": h["sum"],
                    "min": h["min"], "max": h["max"],
                }
            else:
                have["bucket_counts"] = [
                    a + b for a, b in zip(have["bucket_counts"],
                                          h["bucket_counts"])]
                new_count = have["count"] + h["count"]
                have["min"] = (min(have["min"], h["min"])
                               if have["count"] and h["count"]
                               else (h["min"] if h["count"] else have["min"]))
                have["max"] = (max(have["max"], h["max"])
                               if have["count"] and h["count"]
                               else (h["max"] if h["count"] else have["max"]))
                have["count"] = new_count
                have["sum"] += h["sum"]
    return {
        "counters": [{"name": n, "labels": dict(ls), "value": v}
                     for (n, ls), v in sorted(counters.items())],
        "gauges": [{"name": n, "labels": dict(ls), "value": v}
                   for (n, ls), v in sorted(gauges.items())],
        "histograms": [hists[k] for k in sorted(hists)],
    }
