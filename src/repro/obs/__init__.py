"""``repro.obs`` — zero-dependency observability for the whole stack.

One import gives every layer the same three primitives:

* **metrics** — labeled counters/gauges/histograms in a process-local
  :class:`~repro.obs.registry.MetricsRegistry` (module global
  ``metrics``); snapshots are plain dicts that cluster workers ship on
  heartbeats and :func:`~repro.obs.registry.merge_snapshots` folds into
  one fleet view, rendered to Prometheus text by :mod:`repro.obs.prom`.
* **traces** — ``with obs.trace_bound(path): with obs.span("fit_epoch")``
  appends durable JSONL span records next to the run artifacts
  (:mod:`repro.obs.trace`); multi-process safe via ``O_APPEND``
  single-write lines.
* **kernel profiling** — the public kernels in :mod:`repro.core.kernels`
  are wrapped by the module-global ``kernel_profiler``
  (:mod:`repro.obs.profile`): every call counted, one in
  ``REPRO_OBS_KERNEL_SAMPLE`` timed.

Environment knobs (all read at import; tests flip the objects directly):

=========================  =============================================
``REPRO_OBS_TRACE``        ``0`` disables trace binding in the runner /
                           sweeps / CLI (default on).
``REPRO_OBS_METRICS``      ``0`` disables the metrics registry write
                           path (default on).
``REPRO_OBS_KERNEL_SAMPLE``  sampling stride for kernel timing; ``0``
                           disables the probes (default ``64``).
``REPRO_OBS_TRACE_FILE``   optional path: bind a global trace sink at
                           import (serve/cluster processes, which have
                           no run directory).
=========================  =============================================

Everything here is stdlib-only so :mod:`repro.obs` can be imported from
anywhere in the package — including mid-init from
``repro.core.kernels`` — without cycles.
"""

from __future__ import annotations

import os
from typing import Optional

from .profile import KernelProfiler
from .registry import DEFAULT_BUCKETS, MetricsRegistry, merge_snapshots
from .trace import (TRACE_FILE_NAME, TraceWriter, Tracer, build_span_forest,
                    read_trace, slowest_spans, summarize_kernels,
                    summarize_spans)

__all__ = [
    "metrics", "tracer", "kernel_profiler",
    "MetricsRegistry", "Tracer", "TraceWriter", "KernelProfiler",
    "merge_snapshots", "DEFAULT_BUCKETS", "TRACE_FILE_NAME",
    "counter", "gauge", "observe", "span", "event", "trace_bound",
    "trace_enabled", "trace_path_for", "emit_kernel_stats",
    "read_trace", "build_span_forest", "summarize_spans",
    "summarize_kernels", "slowest_spans",
]


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Process-global instances; all instrumentation routes through these.
metrics = MetricsRegistry(enabled=_env_flag("REPRO_OBS_METRICS", True))
tracer = Tracer()
kernel_profiler = KernelProfiler(
    sample=_env_int("REPRO_OBS_KERNEL_SAMPLE", 64))

_TRACE_DEFAULT_ON = _env_flag("REPRO_OBS_TRACE", True)


def trace_enabled() -> bool:
    """Whether callers that own a run directory should bind a trace."""
    return _TRACE_DEFAULT_ON


def trace_path_for(directory) -> Optional[str]:
    """``<directory>/trace.jsonl`` if tracing is on, else ``None``.

    The ``None`` feeds straight into :meth:`Tracer.bind`, which treats it
    as "don't bind" — one expression at every call site.
    """
    if not _TRACE_DEFAULT_ON or directory is None:
        return None
    return os.path.join(str(directory), TRACE_FILE_NAME)


# -- convenience aliases over the globals -----------------------------------

counter = metrics.inc
gauge = metrics.set_gauge
observe = metrics.observe
span = tracer.span
event = tracer.event
trace_bound = tracer.bind


def emit_kernel_stats(baseline: Optional[dict] = None) -> None:
    """Write this process's kernel timing (minus ``baseline``) to the
    bound trace.  Seed workers call it once at the end of their work so
    ``trace summary`` can merge per-kernel time across processes."""
    if not tracer.active():
        return
    kernels = kernel_profiler.delta(baseline)
    if not kernels:
        return
    import time
    tracer.write_record({
        "kind": "kernel_stats", "pid": os.getpid(),
        "ts": round(time.time(), 6), "kernels": kernels,
    })


# A serve/cluster process has no run directory; give it a global sink.
_global_trace = os.environ.get("REPRO_OBS_TRACE_FILE")
if _global_trace:
    try:
        tracer._sinks.append(TraceWriter(_global_trace))
    except OSError:
        pass
