"""Prometheus text exposition (format 0.0.4) rendered from snapshots.

Zero-dependency by design: the renderer walks the plain-dict snapshot
shape that :class:`~repro.obs.registry.MetricsRegistry` produces and that
cluster workers ship over heartbeats, plus the JSON payloads the serving
tier already exposes on ``/metrics``.  ``lint`` is a small validator of
the invariants a real Prometheus scraper enforces (one TYPE per metric,
label escaping, cumulative ``le`` buckets ending in ``+Inf``) — used by
tests and the CI smoke job in place of ``promtool``.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_INVALID = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str) -> str:
    name = _INVALID_CHARS.sub("_", str(name))
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def sanitize_label(name: str) -> str:
    label = _LABEL_INVALID.sub("_", str(name))
    if not label or label[0].isdigit():
        label = "_" + label
    if label.startswith("__"):  # reserved prefix
        label = "x" + label
    return label


def _escape_value(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    parts = [f'{sanitize_label(k)}="{_escape_value(v)}"'
             for k, v in sorted(labels.items())]
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _Doc:
    """Accumulates samples grouped per metric name (TYPE emitted once)."""

    def __init__(self, prefix: str = "repro_"):
        self.prefix = prefix
        self._metrics: Dict[str, Tuple[str, str, List[str]]] = {}
        self._order: List[str] = []

    def add(self, name: str, mtype: str, value: float, labels: dict = None,
            help_text: str = "", suffix: str = "") -> None:
        name = sanitize_name(self.prefix + name)
        if name not in self._metrics:
            self._metrics[name] = (mtype, help_text, [])
            self._order.append(name)
        self._metrics[name][2].append(
            f"{name}{suffix}{_labels_text(labels or {})} {_fmt(value)}")

    def add_histogram(self, name: str, bounds, bucket_counts, count, total,
                      labels: dict = None, help_text: str = "") -> None:
        name = sanitize_name(self.prefix + name)
        if name not in self._metrics:
            self._metrics[name] = ("histogram", help_text, [])
            self._order.append(name)
        lines = self._metrics[name][2]
        labels = dict(labels or {})
        cumulative = 0
        for bound, n in zip(list(bounds) + [float("inf")], bucket_counts):
            cumulative += n
            lines.append(f"{name}_bucket"
                         f"{_labels_text({**labels, 'le': _fmt(bound)})} "
                         f"{_fmt(cumulative)}")
        lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(total)}")
        lines.append(f"{name}_count{_labels_text(labels)} {_fmt(count)}")

    def render(self) -> str:
        out: List[str] = []
        for name in self._order:
            mtype, help_text, lines = self._metrics[name]
            if help_text:
                out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} {mtype}")
            out.extend(lines)
        return "\n".join(out) + "\n" if out else ""


def render_snapshot(snapshot: dict, doc: Optional[_Doc] = None,
                    extra_labels: Optional[dict] = None) -> str:
    """Render a registry snapshot (or merged snapshots) to text format."""
    own = doc is None
    doc = doc or _Doc()
    extra = extra_labels or {}
    for c in snapshot.get("counters", ()):
        doc.add(c["name"] + "_total", "counter", c["value"],
                {**c.get("labels", {}), **extra})
    for g in snapshot.get("gauges", ()):
        doc.add(g["name"], "gauge", g["value"],
                {**g.get("labels", {}), **extra})
    for h in snapshot.get("histograms", ()):
        doc.add_histogram(h["name"], h["bounds"], h["bucket_counts"],
                          h["count"], h["sum"],
                          {**h.get("labels", {}), **extra})
    return doc.render() if own else ""


def render_metrics_payload(payload: dict) -> str:
    """Render a serve/cluster ``/metrics`` JSON payload as Prometheus text.

    Handles both shapes: the single-process ``InferenceService.metrics()``
    dict and the ``ClusterService.metrics()`` dict with per-worker
    sub-payloads.  Unknown scalar fields become gauges; the embedded
    ``obs`` registry snapshot renders natively.
    """
    doc = _Doc()
    _render_service_payload(doc, payload, {})
    # A cluster front end's top-level "obs" is already the merge of every
    # worker's registry snapshot under per-worker labels; rendering each
    # worker sub-payload's embedded "obs" again would duplicate those
    # series (which a Prometheus scrape rejects).
    merged_obs = isinstance(payload.get("obs"), dict)
    for worker in payload.get("workers", ()):
        labels = {"worker": worker.get("slot", "?")}
        metrics = worker.get("metrics")
        if isinstance(metrics, dict):
            _render_service_payload(doc, metrics, labels,
                                    include_obs=not merged_obs)
        doc.add("worker_up", "gauge",
                1.0 if worker.get("state") in ("ready", "live", "starting")
                or worker.get("live") else 0.0, labels)
        if "restarts" in worker:
            doc.add("worker_restarts_total", "counter",
                    worker["restarts"], labels)
    return doc.render()


def _render_service_payload(doc: _Doc, payload: dict, labels: dict,
                            include_obs: bool = True) -> None:
    for key in ("requests", "errors", "cache_hits", "rejected_503"):
        if key in payload:
            doc.add(f"{key}_total", "counter", payload[key], labels)
    for key in ("uptime_s", "pending", "inflight", "energy_mj_total",
                "live_workers"):
        if key in payload:
            doc.add(key, "gauge", payload[key], labels)
    for dist_key in ("latency_ms", "queue_ms"):
        dist = payload.get(dist_key)
        if isinstance(dist, dict):
            for pct in ("p50", "p95", "p99", "mean", "max"):
                if pct in dist:
                    doc.add(f"{dist_key}_{pct}", "gauge", dist[pct], labels)
    batch_hist = payload.get("batch_size_histogram")
    if isinstance(batch_hist, dict):
        for size, n in sorted(batch_hist.items(),
                              key=lambda kv: int(kv[0])):
            doc.add("batch_size_total", "counter", n,
                    {**labels, "size": size})
    cache = payload.get("cache")
    if isinstance(cache, dict):
        for key in ("hits", "misses", "evictions"):
            if key in cache:
                doc.add(f"cache_{key}_total", "counter", cache[key], labels)
        if "size" in cache:
            doc.add("cache_size", "gauge", cache["size"], labels)
    sup = payload.get("supervisor")
    if isinstance(sup, dict):
        for key in ("workers", "live_workers", "quorum"):
            if key in sup:
                doc.add(f"supervisor_{key}", "gauge", sup[key], labels)
        if "restarts" in sup:
            doc.add("supervisor_restarts_total", "counter",
                    sup["restarts"], labels)
    obs_snap = payload.get("obs")
    if include_obs and isinstance(obs_snap, dict):
        render_snapshot(obs_snap, doc=doc, extra_labels=labels)


def lint(text: str) -> List[str]:
    """Validate exposition text; returns a list of problems (empty = ok).

    Checks the rules a Prometheus scrape enforces: metric/label name
    charset, float-parsable values, at most one TYPE per metric and
    samples following their TYPE, no two samples with the same name and
    label set, histogram buckets cumulative and terminated by
    ``le="+Inf"``.
    """
    problems: List[str] = []
    typed: Dict[str, str] = {}
    seen_series = set()
    sample_re = re.compile(
        r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)(\s+\d+)?$')
    label_re = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    buckets: Dict[str, List[float]] = {}
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {i}: malformed TYPE line")
                continue
            name = parts[2]
            if name in typed:
                problems.append(f"line {i}: duplicate TYPE for {name}")
            typed[name] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = sample_re.match(line)
        if not m:
            problems.append(f"line {i}: unparsable sample: {line!r}")
            continue
        name, _, labels_text, value = m.group(1), m.group(2), m.group(3), \
            m.group(4)
        if not _NAME_OK.match(name):
            problems.append(f"line {i}: bad metric name {name!r}")
        try:
            float(value.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            problems.append(f"line {i}: bad value {value!r}")
        label_dict = {}
        if labels_text:
            consumed = label_re.sub("", labels_text).replace(",", "").strip()
            if consumed:
                problems.append(f"line {i}: bad label syntax {labels_text!r}")
            for lm in label_re.finditer(labels_text):
                if not _LABEL_OK.match(lm.group(1)):
                    problems.append(
                        f"line {i}: bad label name {lm.group(1)!r}")
                label_dict[lm.group(1)] = lm.group(2)
        series_key = (name, tuple(sorted(label_dict.items())))
        if series_key in seen_series:
            problems.append(
                f"line {i}: duplicate sample for {name} with labels "
                f"{label_dict}")
        seen_series.add(series_key)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in typed:
                base = name[:-len(suffix)]
                break
        if base not in typed and name not in typed:
            problems.append(f"line {i}: sample {name} has no TYPE line")
        if name.endswith("_bucket") and typed.get(base) == "histogram":
            le = label_dict.get("le")
            if le is None:
                problems.append(f"line {i}: bucket sample missing le label")
            else:
                series = base + "|" + ",".join(
                    f"{k}={v}" for k, v in sorted(label_dict.items())
                    if k != "le")
                seq = buckets.setdefault(series, [])
                seq.append(float(value))
                if le == "+Inf":
                    if seq != sorted(seq):
                        problems.append(
                            f"line {i}: histogram {base} buckets not "
                            f"cumulative")
                    buckets[series] = []
    for series, seq in buckets.items():
        if seq:
            problems.append(
                f"histogram series {series.split('|')[0]} has buckets but "
                f'no le="+Inf" terminator')
    return problems
