"""Sampled per-kernel call timing with a near-zero fast path.

The compiled kernels in :mod:`repro.core.kernels` run millions of times
per training run at microsecond scale; timing every call with two
``perf_counter`` reads would cost a measurable fraction of the work
itself.  :class:`KernelProfiler` therefore *counts* every call with a
plain dict upsert and *times* only every ``sample``-th one, so the
steady-state cost of the wrapper is one attribute read, one dict upsert,
and one modulo — priced by ``benchmarks/bench_obs_overhead.py`` against a
< 3% gate.

``REPRO_OBS_KERNEL_SAMPLE`` picks the sampling stride (default 64);
``0`` disables the probes entirely (the wrapper collapses to a single
``if`` plus the real call).  The first call of each kernel is never the
sampled one — with numba backends it pays JIT compilation and would skew
``est_total_ms`` by orders of magnitude.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class _KernelStat:
    __slots__ = ("calls", "timed", "sampled_s")

    def __init__(self):
        self.calls = 0
        self.timed = 0
        self.sampled_s = 0.0


class KernelProfiler:
    """Wraps hot functions; counts all calls, times one in ``sample``."""

    def __init__(self, sample: int = 64):
        self.sample = max(0, int(sample))
        self._stats: Dict[str, _KernelStat] = {}

    def wrap(self, name: str, fn: Callable) -> Callable:
        """Return ``fn`` wrapped with the sampling probe.

        The wrapper closes over the stat record and the profiler so the
        hot path never does a registry lookup; ``self.sample`` is read
        per call, which keeps runtime toggling (tests, the overhead
        bench) effective on already-wrapped kernels.
        """
        stat = self._stats.setdefault(name, _KernelStat())
        profiler = self

        def wrapped(*args, **kwargs):
            sample = profiler.sample
            if not sample:
                return fn(*args, **kwargs)
            stat.calls += 1
            if stat.calls % sample:  # call 1 never sampled: JIT warmup
                return fn(*args, **kwargs)
            t0 = time.perf_counter()
            out = fn(*args, **kwargs)
            stat.sampled_s += time.perf_counter() - t0
            stat.timed += 1
            return out

        wrapped.__name__ = getattr(fn, "__name__", name)
        wrapped.__doc__ = fn.__doc__
        wrapped.__wrapped__ = fn
        return wrapped

    def reset(self) -> None:
        for stat in self._stats.values():
            stat.calls = 0
            stat.timed = 0
            stat.sampled_s = 0.0

    def snapshot(self) -> Dict[str, dict]:
        """Current per-kernel totals (kernels with zero calls omitted)."""
        out: Dict[str, dict] = {}
        for name, stat in self._stats.items():
            if not stat.calls:
                continue
            sampled_ms = stat.sampled_s * 1e3
            mean_us = (sampled_ms / stat.timed * 1e3) if stat.timed else 0.0
            out[name] = {
                "calls": stat.calls,
                "timed": stat.timed,
                "sampled_ms": round(sampled_ms, 3),
                "mean_us": round(mean_us, 2),
                "est_total_ms": round(mean_us * stat.calls / 1e3, 3),
            }
        return out

    def delta(self, baseline: Optional[Dict[str, dict]]) -> Dict[str, dict]:
        """Snapshot minus ``baseline`` — what one traced unit of work did.

        Seed workers record only their own kernel activity this way even
        when they run inline in a process whose counters already carry
        history from earlier seeds.
        """
        current = self.snapshot()
        if not baseline:
            return current
        out: Dict[str, dict] = {}
        for name, stats in current.items():
            base = baseline.get(name)
            calls = stats["calls"] - (base["calls"] if base else 0)
            timed = stats["timed"] - (base["timed"] if base else 0)
            sampled_ms = stats["sampled_ms"] - (base["sampled_ms"]
                                                if base else 0.0)
            if calls <= 0:
                continue
            mean_us = (sampled_ms / timed * 1e3) if timed > 0 else 0.0
            out[name] = {
                "calls": calls,
                "timed": max(0, timed),
                "sampled_ms": round(max(0.0, sampled_ms), 3),
                "mean_us": round(max(0.0, mean_us), 2),
                "est_total_ms": round(max(0.0, mean_us) * calls / 1e3, 3),
            }
        return out
