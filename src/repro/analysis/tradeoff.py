"""The Fig. 3 neurons-per-core trade-off sweep.

For each packing level the network is re-compiled onto a fresh chip and the
energy model evaluates: total training time for N samples, active power,
energy per sample, and occupied cores — the four series of Fig. 3, for both
FA and DFA.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..core.config import EMSTDPConfig
from ..loihi.chip import LoihiChip
from ..loihi.energy import EnergyModel, RunStats
from ..onchip.builder import build_emstdp_network


@dataclasses.dataclass
class TradeoffPoint:
    """One x-position of Fig. 3."""

    neurons_per_core: int
    feedback: str
    cores_used: int
    time_s: float
    active_power_w: float
    energy_per_sample_mj: float


def sweep_neurons_per_core(dims: Sequence[int], config: EMSTDPConfig,
                           packings: Sequence[int] = (5, 10, 15, 20, 25, 30),
                           n_samples: int = 10_000,
                           energy_model: Optional[EnergyModel] = None,
                           syn_event_rate: float = 0.1,
                           ) -> List[TradeoffPoint]:
    """Fig. 3 series for one feedback mode (``config.feedback``).

    ``syn_event_rate`` is the average firing probability used to estimate
    synaptic event counts (the dynamic-power term); Fig. 3's shape is
    dominated by the static per-core power and the step-time scaling.
    """
    if energy_model is None:
        energy_model = EnergyModel()
    points: List[TradeoffPoint] = []
    for packing in packings:
        model = build_emstdp_network(dims, config)
        mapping = model.network.compile(LoihiChip(), neurons_per_core=packing)
        steps = 2 * config.T * n_samples
        n_syn = model.network.n_synapses()
        stats = RunStats(
            steps=steps, samples=n_samples,
            spikes=int(model.network.n_compartments() * steps
                       * syn_event_rate),
            syn_events=int(n_syn * steps * syn_event_rate),
            learning_epochs=2 * n_samples,
            plastic_synapses=model.network.n_plastic_synapses(),
        )
        report = energy_model.report(
            stats, cores_used=mapping.cores_used,
            max_compartments_per_core=mapping.max_compartments_sweep_cores,
            compartments=model.network.n_compartments(), learning=True)
        points.append(TradeoffPoint(
            neurons_per_core=packing,
            feedback=config.feedback,
            cores_used=mapping.cores_used,
            time_s=report.total_time_s,
            active_power_w=report.power_w,
            energy_per_sample_mj=report.energy_per_sample_mj,
        ))
    return points


def best_energy_point(points: Sequence[TradeoffPoint]) -> TradeoffPoint:
    """The packing the paper would pick for Table II (min energy/sample)."""
    return min(points, key=lambda p: p.energy_per_sample_mj)


def as_series(points: Sequence[TradeoffPoint]) -> Dict[str, List[float]]:
    return {
        "neurons_per_core": [p.neurons_per_core for p in points],
        "time_s": [p.time_s for p in points],
        "active_power_w": [p.active_power_w for p in points],
        "energy_per_sample_mj": [p.energy_per_sample_mj for p in points],
        "cores_used": [p.cores_used for p in points],
    }
