"""Plain-text table/series rendering for the benchmark harness.

The benchmarks print the same rows/series the paper reports; these helpers
keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with a separator under the header."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Dict[str, List[float]], title: str = "",
                  x_key: str = None) -> str:
    """Columnar rendering of named series (one figure's data)."""
    keys = list(series.keys())
    if x_key and x_key in keys:
        keys.remove(x_key)
        keys.insert(0, x_key)
    n = max(len(series[k]) for k in keys)
    rows = [[series[k][i] if i < len(series[k]) else "" for k in keys]
            for i in range(n)]
    return format_table(keys, rows, title=title)


def ascii_plot(xs: Sequence[float], ys: Sequence[float], width: int = 60,
               height: int = 14, label: str = "") -> str:
    """Rough terminal scatter/line plot for eyeballing figure shapes."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length, non-empty")
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x0) / xr * (width - 1))
        row = height - 1 - int((y - y0) / yr * (height - 1))
        grid[row][col] = "*"
    lines = [f"{label}  (y: {y0:.3g}..{y1:.3g}, x: {x0:.3g}..{x1:.3g})"]
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
