"""Pareto-front extraction over sweep point summaries.

The paper's headline artifacts are accuracy / energy / latency
*frontiers*, not single best points: a point belongs in a figure when no
other point is at least as good on every axis and strictly better on
one.  :func:`pareto_front` computes exactly that non-dominated front
over a sweep's ``summary.jsonl`` lines, with per-axis dominance counts
so the table explains *why* a point is on or off the front.

Axes are ``(metric, mode)`` pairs (:class:`ParetoAxis`); metrics are
flat keys into a summary's ``metrics`` dict, plus the pseudo-metric
``duration_s`` which reads the summary's top-level wall-clock field
(the latency fallback when no scenario metric names one).  Failed or
still-running points never enter the computation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from .aggregate import resolve_objective

#: Summary top-level fields usable as pseudo-metrics.
_TOP_LEVEL_METRICS = ("duration_s",)


@dataclasses.dataclass(frozen=True)
class ParetoAxis:
    """One objective axis: a metric key and its optimization direction."""

    metric: str
    mode: str = "max"  # "max" (higher is better) or "min"

    def __post_init__(self):
        if self.mode not in ("max", "min"):
            raise ValueError(f"axis mode must be 'max' or 'min', "
                             f"got {self.mode!r}")

    @classmethod
    def parse(cls, text: str) -> "ParetoAxis":
        """``"metric"`` / ``"metric:min"`` / ``"metric:max"``."""
        metric, sep, mode = text.rpartition(":")
        if not sep or mode not in ("max", "min"):
            return cls(metric=text.strip(), mode="max")
        return cls(metric=metric.strip(), mode=mode)


def axis_value(summary: dict, metric: str) -> Optional[float]:
    """The axis value of one point summary, or ``None`` when absent."""
    value = summary.get("metrics", {}).get(metric)
    if value is None and metric in _TOP_LEVEL_METRICS:
        value = summary.get(metric)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def resolve_axes(summaries: Sequence[dict],
                 axes: Optional[Sequence[ParetoAxis]] = None,
                 ) -> List[ParetoAxis]:
    """Concrete axes for a set of summaries.

    Explicit ``axes`` pass through.  The default mirrors the paper's
    frontier: the accuracy-like objective (maximized), the first
    energy-like metric (minimized), and the first latency-like metric —
    falling back to the per-point wall clock ``duration_s`` — minimized.
    Axes whose metric no point carries are dropped.
    """
    if axes:
        resolved = list(axes)
    else:
        keys = set()
        for summary in summaries:
            keys.update(summary.get("metrics", {}))
        resolved = []
        accuracy = resolve_objective(summaries)
        if accuracy:
            resolved.append(ParetoAxis(accuracy, "max"))
        energy = [k for k in sorted(keys) if "energy" in k.lower()]
        if energy:
            resolved.append(ParetoAxis(energy[0], "min"))
        latency = [k for k in sorted(keys) if "latency" in k.lower()]
        if latency:
            resolved.append(ParetoAxis(latency[0], "min"))
        else:
            resolved.append(ParetoAxis("duration_s", "min"))
    return [ax for ax in resolved
            if any(axis_value(s, ax.metric) is not None
                   for s in summaries)]


def _oriented(value: float, mode: str) -> float:
    """Map a value so that *larger is always better*."""
    return value if mode == "max" else -value


def _dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether oriented vector ``a`` Pareto-dominates ``b``."""
    return all(x >= y for x, y in zip(a, b)) \
        and any(x > y for x, y in zip(a, b))


def pareto_front(summaries: Sequence[dict],
                 axes: Optional[Sequence[ParetoAxis]] = None) -> dict:
    """The non-dominated front over complete point summaries.

    Returns a plain-dict report::

        {
          "axes": [{"metric", "mode"}, ...],
          "points": [{"point_id", "run_id", "overrides", "values",
                      "dominates", "dominated_by", "per_axis_beats",
                      "on_front"}, ...],   # complete points, input order
          "front": [point_id, ...],        # non-dominated, input order
          "skipped": [{"point_id", "reason"}, ...],
        }

    ``dominates`` / ``dominated_by`` count full Pareto dominance;
    ``per_axis_beats`` counts, per axis, how many other scored points
    this one strictly beats — the per-axis view that explains a point's
    position without re-reading raw values.
    """
    axes = resolve_axes(summaries, axes)
    skipped: List[dict] = []
    scored: List[Tuple[dict, List[float]]] = []
    for summary in summaries:
        pid = summary.get("point_id", "?")
        if summary.get("status") != "complete":
            skipped.append({"point_id": pid,
                            "reason": summary.get("status", "unknown")})
            continue
        values = [axis_value(summary, ax.metric) for ax in axes]
        if not axes or any(v is None for v in values):
            skipped.append({"point_id": pid, "reason": "missing_metric"})
            continue
        scored.append((summary, values))

    oriented = [[_oriented(v, ax.mode) for v, ax in zip(values, axes)]
                for _, values in scored]
    points: List[dict] = []
    front: List[str] = []
    for i, (summary, values) in enumerate(scored):
        dominates = sum(1 for j in range(len(scored))
                        if j != i and _dominates(oriented[i], oriented[j]))
        dominated_by = sum(
            1 for j in range(len(scored))
            if j != i and _dominates(oriented[j], oriented[i]))
        per_axis = {
            ax.metric: sum(1 for j in range(len(scored))
                           if j != i and oriented[i][k] > oriented[j][k])
            for k, ax in enumerate(axes)
        }
        on_front = dominated_by == 0
        pid = summary.get("point_id", "?")
        points.append({
            "point_id": pid,
            "run_id": summary.get("run_id"),
            "overrides": summary.get("overrides", {}),
            "values": {ax.metric: v for ax, v in zip(axes, values)},
            "dominates": dominates,
            "dominated_by": dominated_by,
            "per_axis_beats": per_axis,
            "on_front": on_front,
        })
        if on_front:
            front.append(pid)
    return {
        "axes": [{"metric": ax.metric, "mode": ax.mode} for ax in axes],
        "points": points,
        "front": front,
        "skipped": skipped,
    }


def pareto_table(result: dict) -> Tuple[List[str], List[List[object]]]:
    """Render a :func:`pareto_front` report as (headers, rows).

    Front members first (best first axis leading), then the dominated
    points in the same order.
    """
    axes = result["axes"]
    headers = (["point", "front"]
               + [f"{ax['metric']} ({ax['mode']})" for ax in axes]
               + ["dominates", "dominated_by"])

    def sort_key(point):
        if not axes:
            return (not point["on_front"],)
        first = axes[0]
        value = point["values"][first["metric"]]
        return (not point["on_front"],
                -value if first["mode"] == "max" else value)

    rows = []
    for point in sorted(result["points"], key=sort_key):
        rows.append([point["point_id"],
                     "*" if point["on_front"] else ""]
                    + [point["values"][ax["metric"]] for ax in axes]
                    + [point["dominates"], point["dominated_by"]])
    return headers, rows
