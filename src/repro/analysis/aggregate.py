"""Aggregation of run records across seeds and sweep points.

Two levels of reduction live here:

* **seed level** — :func:`flatten_metrics` / :func:`mean_metrics` reduce a
  run's per-seed JSONL records to one flat ``metric path -> mean`` dict
  (``python -m repro show`` / ``compare`` render these);
* **point level** — a sweep's per-point summary lines are ranked by an
  objective metric (:func:`best_point`), tabulated across all points
  (:func:`sweep_table`), and marginalized one axis at a time
  (:func:`axis_tables`), which is what ``python -m repro sweep show``
  prints and ``summary.jsonl`` stores.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

Summary = Tuple[List[str], List[List[object]]]


def flatten_metrics(metrics: dict, prefix: str = "") -> Dict[str, float]:
    """Nested metrics dict -> flat ``a.b.c -> float`` (non-numeric dropped)."""
    out: Dict[str, float] = {}
    for key, value in metrics.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten_metrics(value, name + "."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[name] = float(value)
    return out


def mean_metrics(records: Sequence[dict]) -> Dict[str, float]:
    """Mean of every numeric metric leaf over the given records."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for rec in records:
        for key, value in flatten_metrics(rec.get("metrics", {})).items():
            sums[key] = sums.get(key, 0.0) + value
            counts[key] = counts.get(key, 0) + 1
    return {k: sums[k] / counts[k] for k in sums}


def _group_key(value: object) -> object:
    """A hashable stand-in for an axis value (lists -> their JSON text)."""
    try:
        hash(value)
        return value
    except TypeError:
        return json.dumps(value, sort_keys=True)


# ---------------------------------------------------------------------------
# sweep-point aggregation
# ---------------------------------------------------------------------------

def default_objective(metric_keys: Sequence[str]) -> str:
    """A sensible ranking metric when the sweep spec names none.

    Prefers accuracy-like keys (``*test_acc``, then anything ending in
    ``acc``); falls back to the first key alphabetically so the choice is
    at least deterministic.
    """
    keys = sorted(metric_keys)
    for suffix in ("test_acc", "acc"):
        for key in keys:
            if key.endswith(suffix):
                return key
    return keys[0] if keys else ""


def resolve_objective(summaries: Sequence[dict], objective: str = "") -> str:
    """The concrete objective key for a set of point summaries."""
    if objective:
        return objective
    keys = set()
    for summary in summaries:
        keys.update(summary.get("metrics", {}))
    return default_objective(sorted(keys))


def best_point(summaries: Sequence[dict], objective: str = "",
               mode: str = "max") -> Optional[dict]:
    """The finished point with the best objective value, or ``None``."""
    objective = resolve_objective(summaries, objective)
    scored = [s for s in summaries
              if s.get("status") == "complete"
              and objective in s.get("metrics", {})]
    if not scored:
        return None
    pick = max if mode == "max" else min
    return pick(scored, key=lambda s: s["metrics"][objective])


def sweep_table(points: Sequence[dict], summaries: Dict[str, dict],
                axis_fields: Sequence[str], objective: str = "",
                mode: str = "max") -> Summary:
    """The cross-point table: one row per point plus a final best row.

    ``points`` is the sweep manifest's point list (id + overrides, in
    expansion order); ``summaries`` maps point ids to their summary lines.
    """
    done = list(summaries.values())
    objective = resolve_objective(done, objective)
    headers = (["point"] + list(axis_fields)
               + ["status", "seeds", objective or "objective"])
    rows: List[List[object]] = []
    for point in points:
        summary = summaries.get(point["point_id"], {})
        status = summary.get("status", point.get("status", "pending"))
        if status == "failed":
            # Loud in the table: failed points are excluded from the
            # best row, marginals and the Pareto front.
            status = "FAILED"
        seeds = (f"{summary['seeds_ok']}/{summary['seeds_total']}"
                 if "seeds_ok" in summary else "-")
        value = summary.get("metrics", {}).get(objective, "")
        rows.append([point["point_id"]]
                    + [point["overrides"].get(f, "") for f in axis_fields]
                    + [status, seeds, value])
    best = best_point(done, objective, mode)
    if best is not None:
        rows.append([f"best:{best['point_id']}"]
                    + [best["overrides"].get(f, "") for f in axis_fields]
                    + ["", "", best["metrics"][objective]])
    return headers, rows


def axis_tables(axis_fields: Sequence[str], summaries: Sequence[dict],
                objective: str = "",
                mode: str = "max") -> Dict[str, Summary]:
    """Per-axis marginals: mean/best objective for each value of one axis.

    The other axes are averaged out — the tables answer "how does the
    objective move along *this* knob", which is the per-axis view the
    paper's figures plot.
    """
    done = [s for s in summaries if s.get("status") == "complete"]
    objective = resolve_objective(done, objective)
    tables: Dict[str, Summary] = {}
    pick = max if mode == "max" else min
    for field in axis_fields:
        # Axis values may be unhashable (a list-valued `hidden` point):
        # group by a canonical hashable key, display the original value.
        groups: Dict[object, List[float]] = {}
        display: Dict[object, object] = {}
        for summary in done:
            if field not in summary.get("overrides", {}):
                continue
            value = summary["metrics"].get(objective)
            if value is None:
                continue
            axis_value = summary["overrides"][field]
            key = _group_key(axis_value)
            groups.setdefault(key, []).append(value)
            display.setdefault(key, axis_value)
        if not groups:
            continue
        rows = [[display[key], len(vals), sum(vals) / len(vals), pick(vals)]
                for key, vals in sorted(groups.items(), key=lambda kv:
                                        (str(type(kv[0])), kv[0]))]
        tables[field] = ([field, "points", f"mean {objective}",
                          f"{'best' if mode == 'max' else 'min'} "
                          f"{objective}"], rows)
    return tables
