"""Metrics, sweeps and formatting used by the benchmark harness."""

from .metrics import (accuracy, confusion_matrix, per_class_accuracy,
                      spike_sparsity, summarize_run)
from .reporting import ascii_plot, format_series, format_table
from .tradeoff import (TradeoffPoint, as_series, best_energy_point,
                       sweep_neurons_per_core)

__all__ = ["TradeoffPoint", "accuracy", "as_series", "ascii_plot",
           "best_energy_point", "confusion_matrix", "format_series",
           "format_table", "per_class_accuracy", "spike_sparsity",
           "summarize_run", "sweep_neurons_per_core"]
