"""Metrics, sweeps, aggregation and formatting for the harnesses."""

from .aggregate import (axis_tables, best_point, default_objective,
                        flatten_metrics, mean_metrics, resolve_objective,
                        sweep_table)
from .metrics import (accuracy, confusion_matrix, per_class_accuracy,
                      spike_sparsity, summarize_run)
from .pareto import ParetoAxis, pareto_front, pareto_table, resolve_axes
from .reporting import ascii_plot, format_series, format_table
from .tradeoff import (TradeoffPoint, as_series, best_energy_point,
                       sweep_neurons_per_core)

__all__ = ["ParetoAxis", "TradeoffPoint", "accuracy", "as_series",
           "ascii_plot", "axis_tables", "best_energy_point", "best_point",
           "confusion_matrix", "default_objective", "flatten_metrics",
           "format_series", "format_table", "mean_metrics",
           "pareto_front", "pareto_table", "per_class_accuracy",
           "resolve_axes", "resolve_objective", "spike_sparsity",
           "summarize_run", "sweep_table"]
