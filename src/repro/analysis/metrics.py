"""Evaluation metrics and result containers shared by the benchmarks."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def accuracy(predictions: Sequence[int], labels: Sequence[int]) -> float:
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    if len(labels) == 0:
        raise ValueError("empty evaluation set")
    return float((predictions == labels).mean())


def confusion_matrix(predictions: Sequence[int], labels: Sequence[int],
                     n_classes: int) -> np.ndarray:
    cm = np.zeros((n_classes, n_classes), dtype=np.int64)
    for p, t in zip(predictions, labels):
        cm[int(t), int(p)] += 1
    return cm


def per_class_accuracy(cm: np.ndarray) -> np.ndarray:
    totals = cm.sum(axis=1)
    with np.errstate(invalid="ignore"):
        acc = np.where(totals > 0, np.diag(cm) / np.maximum(totals, 1), np.nan)
    return acc


def spike_sparsity(rates: np.ndarray) -> float:
    """Fraction of silent neurons — the sparsity Loihi's energy rides on."""
    rates = np.asarray(rates)
    if rates.size == 0:
        raise ValueError("empty rates")
    return float((rates == 0).mean())


def summarize_run(name: str, **fields) -> Dict[str, object]:
    out = {"name": name}
    out.update(fields)
    return out
