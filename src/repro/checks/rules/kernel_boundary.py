"""REP002 — kernel boundary: only the public kernel API crosses it.

``repro.core.kernels`` pins three interchangeable backends bit-identical
to each other; that guarantee holds *only* for the seven public entry
points, which normalize dtypes/contiguity before dispatch.  Importing a
backend module (``_numpy`` / ``_numba`` / ``_cext`` / ``_csrc``)
directly skips the normalization and the selection logic; redefining a
function with a public kernel's name outside the package reintroduces
the exact drift the equivalence suite exists to prevent (a reimplemented
loop is never re-pinned against the golden fixtures).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import FileContext, Finding, Rule, register
from . import dotted

#: The public kernel signatures (see repro.core.kernels.__all__).
PUBLIC_KERNELS = {
    "if_step", "cuba_step", "trace_update", "delta_w", "delta_w_batch",
    "delta_w_loihi", "sum_of_products",
}

#: Private backend modules of the kernels package.
BACKEND_MODULES = {"_numpy", "_numba", "_cext", "_csrc"}


@register
class KernelBoundaryRule(Rule):
    id = "REP002"
    title = "private kernel backend used outside repro.core.kernels"
    rationale = ("the bit-identity guarantee only covers the public "
                 "kernel API; backends and reimplementations drift")
    severity = "error"

    def applies(self, ctx: FileContext) -> bool:
        if ctx.is_test:  # the equivalence suite imports backends on purpose
            return False
        return not ctx.module.startswith("repro.core.kernels")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                findings.extend(self._check_import_from(ctx, node))
            elif isinstance(node, ast.Import):
                findings.extend(self._check_import(ctx, node))
            elif isinstance(node, ast.Attribute):
                if node.attr in BACKEND_MODULES:
                    base = dotted(node.value)
                    if base is not None and base.split(".")[-1] == "kernels":
                        findings.append(self.finding(
                            ctx, node,
                            f"kernels.{node.attr} is a private backend; "
                            f"call the public kernel API instead"))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in PUBLIC_KERNELS:
                    findings.append(self.finding(
                        ctx, node,
                        f"def {node.name}() shadows a public kernel "
                        f"signature outside repro.core.kernels; import "
                        f"it from repro.core.kernels instead of "
                        f"reimplementing it"))
        return findings

    def _check_import_from(self, ctx: FileContext,
                           node: ast.ImportFrom) -> Iterable[Finding]:
        module = node.module or ""
        tail = module.split(".")[-1]
        # from repro.core.kernels._numba import ... / from .kernels._cext ...
        if tail in BACKEND_MODULES and "kernels" in module.split("."):
            yield self.finding(
                ctx, node,
                f"import from private kernel backend {module!r}; only "
                f"repro.core.kernels' public API is bit-identity pinned")
            return
        # from repro.core.kernels import _numpy
        if tail == "kernels" or module.endswith("kernels"):
            for alias in node.names:
                if alias.name in BACKEND_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"import of private kernel backend "
                        f"{alias.name!r}; use the public kernel API")

    def _check_import(self, ctx: FileContext,
                      node: ast.Import) -> Iterable[Finding]:
        for alias in node.names:
            parts = alias.name.split(".")
            if len(parts) >= 2 and parts[-1] in BACKEND_MODULES \
                    and parts[-2] == "kernels":
                yield self.finding(
                    ctx, node,
                    f"import of private kernel backend {alias.name!r}; "
                    f"use the public kernel API")
