"""REP004 — wire-protocol consistency across process boundaries.

The cluster front end, supervisor, and workers talk over pipes in plain
``(kind, msg_id, payload)`` tuples, and the work-queue executor's
planners enqueue ``(kind, payload)`` task rows; nothing at runtime
validates either until a worker answers ``400 unknown message kind`` or
a handler ``KeyError``s on a missing payload field — across a process
boundary, at the worst possible time.  Each wire therefore declares its
contract twice — once as prose, once as a machine-readable ``MESSAGES``
dict — in a ``protocol.py`` next to its senders
(``cluster/protocol.py`` for the pipes, ``exec/protocol.py`` for the
task queue).  This rule folds that dict out of the protocol module's
AST (no import — the checker never executes repo code) and verifies
every send site in the checked modules against it:

* ``*.send((...))`` tuples have exactly three elements;
* the ``kind`` argument of ``request`` / ``_roundtrip`` / ``enqueue``
  resolves to a declared message kind (via ``protocol.X`` / ``X``
  constants or a string literal);
* a *literal* payload dict carries every required key and nothing
  outside the allowed set.  Payloads built dynamically (``self.stats()``,
  a parameter) are skipped — but a dict literal bound to a local name in
  the same function is chased one hop, which covers the front end's
  ``body = {...}; self._roundtrip(kind, body)`` idiom.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from ..engine import FileContext, Finding, Rule, register
from . import dotted

#: Modules whose send sites are checked: the three cluster processes
#: plus the executor's enqueue side (its workers only *read* payloads).
CHECKED_MODULES = {
    "repro.cluster.worker", "repro.cluster.frontend",
    "repro.cluster.supervisor",
    "repro.exec.planner",
}

#: Call-attribute names that carry a protocol message.
#: ``send`` takes the whole tuple; the request-shaped ones take
#: ``(kind, payload)`` as their first two arguments (``enqueue`` is the
#: task queue's producer verb).
SEND_ATTRS = {"send"}
REQUEST_ATTRS = {"request", "_roundtrip", "enqueue"}

_Spec = Optional[Tuple[Tuple[str, ...], Tuple[str, ...]]]


class _Protocol:
    """The MESSAGES contract, folded from protocol.py's AST."""

    def __init__(self, constants: Dict[str, str],
                 messages: Dict[str, _Spec]):
        self.constants = constants  # constant name -> kind string
        self.messages = messages    # kind string -> spec

    @classmethod
    def parse(cls, source: str) -> "_Protocol":
        tree = ast.parse(source)
        constants: Dict[str, str] = {}
        messages: Dict[str, _Spec] = {}
        for stmt in tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) \
                        and isinstance(stmt.value, ast.Constant) \
                        and isinstance(stmt.value.value, str):
                    constants[target.id] = stmt.value.value
                elif isinstance(target, ast.Tuple) \
                        and isinstance(stmt.value, ast.Tuple) \
                        and len(target.elts) == len(stmt.value.elts):
                    for name, value in zip(target.elts, stmt.value.elts):
                        if isinstance(name, ast.Name) \
                                and isinstance(value, ast.Constant) \
                                and isinstance(value.value, str):
                            constants[name.id] = value.value
                elif isinstance(target, ast.Name) \
                        and target.id == "MESSAGES" \
                        and isinstance(stmt.value, ast.Dict):
                    cls._fold_messages(stmt.value, constants, messages)
        return cls(constants, messages)

    @staticmethod
    def _fold_messages(node: ast.Dict, constants: Dict[str, str],
                       messages: Dict[str, _Spec]) -> None:
        for key, value in zip(node.keys, node.values):
            if isinstance(key, ast.Name) and key.id in constants:
                kind = constants[key.id]
            elif isinstance(key, ast.Constant) \
                    and isinstance(key.value, str):
                kind = key.value
            else:
                continue
            if isinstance(value, ast.Constant) and value.value is None:
                messages[kind] = None
            elif isinstance(value, ast.Tuple) and len(value.elts) == 2:
                folded = []
                for elt in value.elts:
                    if not isinstance(elt, ast.Tuple):
                        break
                    keys = tuple(e.value for e in elt.elts
                                 if isinstance(e, ast.Constant)
                                 and isinstance(e.value, str))
                    if len(keys) != len(elt.elts):
                        break
                    folded.append(keys)
                if len(folded) == 2:
                    messages[kind] = (folded[0], folded[1])


@register
class WireProtocolRule(Rule):
    id = "REP004"
    title = "cluster message disagrees with the protocol contract"
    rationale = ("a malformed pipe tuple only fails inside another "
                 "process; protocol.MESSAGES is the single source of "
                 "truth for kinds, arity, and payload fields")
    severity = "error"

    def applies(self, ctx: FileContext) -> bool:
        return ctx.module in CHECKED_MODULES

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        proto = self._load_protocol(ctx)
        if proto is None or not proto.messages:
            return []
        findings: List[Finding] = []
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            bindings = self._dict_bindings(func)
            for node in ast.walk(func):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    if node.func.attr in SEND_ATTRS:
                        self._check_send(ctx, proto, node, bindings,
                                         findings)
                    elif node.func.attr in REQUEST_ATTRS:
                        self._check_request(ctx, proto, node, bindings,
                                            findings)
        return findings

    # -- protocol loading ------------------------------------------------

    def _load_protocol(self, ctx: FileContext) -> Optional[_Protocol]:
        if ctx.real_path is None:
            return None
        candidate = ctx.real_path.parent / "protocol.py"
        try:
            source = candidate.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return _Protocol.parse(source)
        except SyntaxError:
            return None

    # -- local helpers ---------------------------------------------------

    @staticmethod
    def _dict_bindings(func: ast.AST) -> Dict[str, ast.Dict]:
        """Local names bound to a dict literal anywhere in ``func``."""
        bindings: Dict[str, ast.Dict] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Dict):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = node.value
        return bindings

    def _resolve_kind(self, proto: _Protocol,
                      node: ast.AST) -> Tuple[Optional[str], Optional[str]]:
        """-> (kind string, unresolved constant name) — one side is None."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value, None
        name = dotted(node)
        if name is None:
            return None, None  # a parameter / computed expression: skip
        tail = name.split(".")[-1]
        if tail in proto.constants:
            return proto.constants[tail], None
        if name.split(".")[0] == "protocol" or tail.isupper():
            return None, name  # looks like a constant but is not declared
        return None, None

    # -- the checks ------------------------------------------------------

    def _check_send(self, ctx: FileContext, proto: _Protocol,
                    call: ast.Call, bindings: Dict[str, ast.Dict],
                    findings: List[Finding]) -> None:
        if len(call.args) != 1:
            return  # not the pipe idiom (e.g. socket.send(bytes))
        arg = call.args[0]
        if not isinstance(arg, ast.Tuple):
            return  # forwarding a prebuilt message: cannot resolve
        if len(arg.elts) != 3:
            findings.append(self.finding(
                ctx, arg,
                f"protocol tuple has {len(arg.elts)} elements, expected "
                f"3: (kind, msg_id, payload)"))
            return
        kind_node, _msg_id, payload = arg.elts
        self._check_message(ctx, proto, kind_node, payload, bindings,
                            findings)

    def _check_request(self, ctx: FileContext, proto: _Protocol,
                       call: ast.Call, bindings: Dict[str, ast.Dict],
                       findings: List[Finding]) -> None:
        if not call.args:
            return
        payload = call.args[1] if len(call.args) > 1 else None
        self._check_message(ctx, proto, call.args[0], payload, bindings,
                            findings)

    def _check_message(self, ctx: FileContext, proto: _Protocol,
                       kind_node: ast.AST, payload: Optional[ast.AST],
                       bindings: Dict[str, ast.Dict],
                       findings: List[Finding]) -> None:
        kind, bad_name = self._resolve_kind(proto, kind_node)
        if bad_name is not None:
            findings.append(self.finding(
                ctx, kind_node,
                f"{bad_name} is not a message kind declared in this "
                f"module's protocol.py"))
            return
        if kind is None:
            return
        if kind not in proto.messages:
            findings.append(self.finding(
                ctx, kind_node,
                f"message kind {kind!r} is not declared in "
                f"protocol.MESSAGES"))
            return
        spec = proto.messages[kind]
        if spec is None or payload is None:
            return  # free-form payload, or a bare-kind call form
        if isinstance(payload, ast.Name):
            payload = bindings.get(payload.id)
        if not isinstance(payload, ast.Dict):
            return  # built dynamically: out of static reach
        keys = []
        for key in payload.keys:
            if key is None:  # **expansion: give up on this literal
                return
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                return
            keys.append(key.value)
        required, allowed = spec
        for missing in sorted(set(required) - set(keys)):
            findings.append(self.finding(
                ctx, payload,
                f"{kind!r} payload is missing required field "
                f"{missing!r} (see protocol.MESSAGES)"))
        for extra in sorted(set(keys) - set(allowed)):
            findings.append(self.finding(
                ctx, payload,
                f"{kind!r} payload has undeclared field {extra!r} "
                f"(allowed: {', '.join(allowed) or 'none'})"))
