"""The repo-specific rule set.  Importing this package registers every
rule with :mod:`repro.checks.engine`; each module holds one rule plus
its helpers, named after the convention it enforces:

========  ====================================================
REP000    dead symbols (hidden advisory pass)
REP001    determinism: no unseeded randomness / wall-clock
REP002    kernel boundary: only the public kernel API
REP003    lock discipline: ``# guarded-by:`` annotations
REP004    wire-protocol arity between cluster processes
REP005    metric naming for the ``obs`` registry
========  ====================================================
"""

from __future__ import annotations

import ast
from typing import Optional


def dotted(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"`` (else None)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# Imported last, after the helpers above exist: each submodule registers
# its rule with the engine as a side effect of this import.
from . import (dead, determinism, kernel_boundary,  # noqa: E402,F401
               lock_discipline, metric_naming, wire_protocol)
