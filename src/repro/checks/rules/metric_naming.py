"""REP005 — metric naming for the ``obs`` registry.

The Prometheus exposition layer (``repro.obs.prom``) owns the
``repro_`` namespace prefix and appends ``_total`` to counters at render
time.  A source literal that already carries either gets *doubled* on
the wire (``repro_repro_...``, ``..._total_total``) — and a name that is
not snake_case, or a label set that is unbounded or reserved, breaks
every dashboard query written against the documented series.  Scraping
only catches this after deploy; the rule catches it at the call site:

* metric names passed as static literals to ``obs.counter`` /
  ``obs.gauge`` / ``obs.observe`` (and the underlying registry methods
  ``inc`` / ``set_gauge`` / ``observe``) must be snake_case, without the
  ``repro_`` prefix, and counters without a ``_total`` suffix;
* label keyword names must be snake_case, not Prometheus-reserved
  (``le``, ``quantile``, ``__*``), and at most ``MAX_LABELS`` per call
  site (label cardinality is a memory commitment in every scraper).

Dynamic names (f-strings, variables) are skipped — the runtime
``prom.lint()`` validator still covers those.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from ..engine import FileContext, Finding, Rule, register
from . import dotted

_SNAKE_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: call-attribute name -> metric family it creates.
METRIC_CALLS = {
    "counter": "counter", "inc": "counter",
    "gauge": "gauge", "set_gauge": "gauge",
    "observe": "histogram",
}

#: receivers whose methods above are metric calls (module alias or the
#: registry object; ``self.metrics`` style instances included).
RECEIVER_TAILS = {"obs", "metrics"}

#: keyword arguments that are call parameters, not labels.
NON_LABEL_KWARGS = {"value", "buckets"}

#: Prometheus-reserved label names a user series may never set.
RESERVED_LABELS = {"le", "quantile", "job", "instance"}

#: bounded-label-set ceiling per call site.
MAX_LABELS = 5


@register
class MetricNamingRule(Rule):
    id = "REP005"
    title = "obs metric name/labels violate the naming contract"
    rationale = ("prom.py adds the repro_ prefix and the counter _total "
                 "suffix at render time; literals carrying them double "
                 "up on the wire, and bad labels break every query")
    severity = "error"

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) \
                    or not isinstance(node.func, ast.Attribute):
                continue
            family = METRIC_CALLS.get(node.func.attr)
            if family is None:
                continue
            receiver = dotted(node.func.value)
            if receiver is None \
                    or receiver.split(".")[-1] not in RECEIVER_TAILS:
                continue
            findings.extend(self._check_site(ctx, node, family))
        return findings

    def _check_site(self, ctx: FileContext, call: ast.Call,
                    family: str) -> Iterable[Finding]:
        name_node = call.args[0] if call.args else None
        if isinstance(name_node, ast.Constant) \
                and isinstance(name_node.value, str):
            name = name_node.value
            if not _SNAKE_RE.match(name):
                yield self.finding(
                    ctx, name_node,
                    f"metric name {name!r} is not snake_case "
                    f"([a-z][a-z0-9_]*)")
            if name.startswith("repro_"):
                yield self.finding(
                    ctx, name_node,
                    f"metric name {name!r} hardcodes the 'repro_' "
                    f"namespace; prom.py adds it at render time")
            if family == "counter" and name.endswith("_total"):
                yield self.finding(
                    ctx, name_node,
                    f"counter {name!r} hardcodes the '_total' suffix; "
                    f"prom.py appends it at render time")
        labels = [kw for kw in call.keywords
                  if kw.arg is not None and kw.arg not in NON_LABEL_KWARGS]
        for kw in labels:
            if kw.arg in RESERVED_LABELS or kw.arg.startswith("__"):
                yield self.finding(
                    ctx, kw.value,
                    f"label {kw.arg!r} is reserved by Prometheus "
                    f"conventions and may not be set by a series")
            elif not _SNAKE_RE.match(kw.arg):
                yield self.finding(
                    ctx, kw.value,
                    f"label name {kw.arg!r} is not snake_case")
        if len(labels) > MAX_LABELS:
            yield self.finding(
                ctx, call,
                f"{len(labels)} labels on one series (max {MAX_LABELS}); "
                f"label cardinality is a per-scraper memory commitment")
        for kw in call.keywords:
            if kw.arg is None:  # **labels — unbounded label set
                yield self.finding(
                    ctx, call,
                    "**-expanded labels make the label set unbounded; "
                    "pass a fixed set of keyword labels")
