"""REP001 — determinism: no unseeded randomness or wall-clock reads.

The paper's reproduction claims rest on every random stream being
derivable from the seed stored in ``records.jsonl``.  One
``np.random.default_rng()`` with no seed — or any call into the legacy
global-state ``np.random.*`` / stdlib ``random.*`` APIs — silently
breaks that: the run still "works", but can never be replayed.  Inside
the deterministic zones, RNGs must arrive through
``repro.seeding.as_rng`` (caller controls the seed) or carry an explicit
seed expression; timestamps in results come from the orchestration
layer, so ``time.time()`` has no business in model math either
(``time.monotonic()`` / ``time.perf_counter()`` remain fine for
durations).
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..engine import FileContext, Finding, Rule, register
from . import dotted

#: Module prefixes where the rule is enforced (the model/data/orchestration
#: layers whose outputs land in run records).
DETERMINISTIC_MODULES = (
    "repro.core", "repro.loihi", "repro.data", "repro.experiments",
    "repro.sweeps", "repro.incremental",
)

#: Legacy global-state numpy RNG entry points (always order-dependent).
_NP_RANDOM_FUNCS = {
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "normal", "uniform",
    "standard_normal", "poisson", "binomial", "exponential", "beta",
    "gamma", "seed", "get_state", "set_state", "bytes", "integers",
}

#: Stdlib ``random`` module functions (all share hidden global state).
_STDLIB_RANDOM_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "seed", "gauss", "normalvariate",
    "betavariate", "expovariate", "getrandbits", "triangular",
}


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


@register
class DeterminismRule(Rule):
    id = "REP001"
    title = "unseeded randomness / wall-clock in deterministic code"
    rationale = ("every random stream must be reproducible from the "
                 "recorded seed; route RNGs through repro.seeding.as_rng "
                 "or seed them explicitly")
    severity = "error"

    def applies(self, ctx: FileContext) -> bool:
        if ctx.is_test:
            return False
        if any(ctx.module == m or ctx.module.startswith(m + ".")
               for m in DETERMINISTIC_MODULES):
            return True
        # Benchmarks and examples feed committed BENCH_*.json numbers and
        # documented walkthroughs — both must replay exactly too.
        return ctx.in_dirs("benchmarks", "examples")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted(node.func)
            if name is None:
                continue
            findings.extend(self._check_call(ctx, node, name))
        return findings

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    name: str) -> Iterable[Finding]:
        parts = name.split(".")
        # np.random.default_rng() / numpy.random.default_rng(None)
        if parts[-1] == "default_rng" and len(parts) >= 2 \
                and parts[-2] == "random":
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "np.random.default_rng() without a seed is not "
                    "reproducible; use repro.seeding.as_rng(seed) or "
                    "pass an explicit seed expression")
            elif node.args and _is_none(node.args[0]):
                yield self.finding(
                    ctx, node,
                    "np.random.default_rng(None) draws OS entropy; use "
                    "repro.seeding.as_rng(seed) or an explicit seed")
            return
        # Legacy global-state numpy API: np.random.rand(...), seed(...)
        if len(parts) == 3 and parts[0] in ("np", "numpy") \
                and parts[1] == "random" and parts[2] in _NP_RANDOM_FUNCS:
            yield self.finding(
                ctx, node,
                f"np.random.{parts[2]}() uses the hidden global RNG "
                "state; draw from a Generator obtained via "
                "repro.seeding.as_rng instead")
            return
        # Stdlib random module: random.random(), random.shuffle(...)
        if len(parts) == 2 and parts[0] == "random" \
                and parts[1] in _STDLIB_RANDOM_FUNCS:
            yield self.finding(
                ctx, node,
                f"random.{parts[1]}() uses the process-global stdlib "
                "RNG; use a seeded numpy Generator via "
                "repro.seeding.as_rng instead")
            return
        # Wall clock inside deterministic code.
        if name == "time.time":
            yield self.finding(
                ctx, node,
                "time.time() makes results depend on the wall clock; "
                "timestamps belong to the run store — use "
                "time.monotonic()/perf_counter() for durations")
