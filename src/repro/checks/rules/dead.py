"""REP000 — dead symbols (hidden advisory pass).

An opt-in sweep (``--rule REP000``; never part of the default set) for
the two cheap-to-detect forms of dead code that accumulate in a growing
repo: imports nothing in the module references, and statements that sit
after an unconditional ``return`` / ``raise`` / ``break`` / ``continue``
in the same block.  It is advisory (severity ``warning``) and
deliberately conservative:

* ``__init__.py`` files are exempt — their imports *are* the re-export
  surface;
* names re-exported via ``__all__``, referenced from string annotations,
  or imported as ``_`` (explicit discard) count as used;
* ``from __future__ import ...`` is a directive, never dead;
* a file that touches ``globals()``/``locals()``/``eval``/``exec`` is
  skipped wholesale — name usage there is not statically knowable.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Set

from ..engine import FileContext, Finding, Rule, register

_DYNAMIC_NAMES = {"globals", "locals", "eval", "exec", "vars"}
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)
_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@register
class DeadSymbolRule(Rule):
    id = "REP000"
    title = "dead symbol: unused import or unreachable statement"
    rationale = ("dead imports misstate a module's dependencies and "
                 "unreachable branches hide the code that actually runs")
    severity = "warning"
    hidden = True  # advisory: runs only with an explicit --rule REP000

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_test

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        if not ctx.is_init:
            findings.extend(self._unused_imports(ctx))
        findings.extend(self._unreachable(ctx))
        return findings

    # -- unused imports --------------------------------------------------

    def _unused_imports(self, ctx: FileContext) -> Iterable[Finding]:
        used: Set[str] = set()
        dynamic = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name):
                if node.id in _DYNAMIC_NAMES:
                    dynamic = True
                if isinstance(node.ctx, ast.Load):
                    used.add(node.id)
            elif isinstance(node, ast.Constant) \
                    and isinstance(node.value, str):
                # String annotations, __all__ entries, TypeVar bounds —
                # any identifier-looking word inside a string literal
                # keeps the import alive (conservative by construction).
                used.update(_WORD_RE.findall(node.value))
            elif isinstance(node, ast.Attribute):
                used.add(node.attr)  # covers `import a.b; a.b.c` chains
        if dynamic:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if bound != "_" and bound not in used:
                        yield self.finding(
                            ctx, node,
                            f"import {alias.name!r} is never used")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    if bound != "_" and bound not in used:
                        yield self.finding(
                            ctx, node,
                            f"'{alias.name}' imported from "
                            f"{node.module or '.'!r} is never used")

    # -- unreachable statements ------------------------------------------

    def _unreachable(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            for field in ("body", "orelse", "finalbody"):
                block = getattr(node, field, None)
                if not isinstance(block, list):
                    continue
                for stmt, successor in zip(block, block[1:]):
                    if isinstance(stmt, _TERMINATORS) \
                            and isinstance(successor, ast.stmt):
                        kind = type(stmt).__name__.lower()
                        yield self.finding(
                            ctx, successor,
                            f"statement is unreachable: the block "
                            f"already ended with '{kind}' on line "
                            f"{stmt.lineno}")
                        break  # one report per block is enough
