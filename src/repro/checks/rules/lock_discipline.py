"""REP003 — lock discipline: ``# guarded-by:`` annotated state.

A lightweight static race detector for the serve/cluster/obs tier.  An
attribute whose *defining* assignment carries a marker comment

.. code-block:: python

    self._entries = OrderedDict()  # guarded-by: _lock

may afterwards only be read or written inside a ``with self._lock:``
block in the same class.  The ``[writes]`` variant relaxes reads for
deliberately lock-free-read structures (the metrics registry's
GIL-riding write path):

.. code-block:: python

    self._histograms = {}  # guarded-by: _create_lock [writes]

Scope and honesty limits, by design: accesses from *other* classes are
not tracked (annotate the owning class's accessor instead), a method
call on a guarded attribute counts as a read (``self._entries.pop(...)``
is a Load of ``self._entries``), and a lock held by a caller is not
visible — hold the lock in the method that touches the field, which is
the convention this repo already follows.  ``__init__`` is exempt: the
object is not shared during construction.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, NamedTuple, Set

from ..engine import FileContext, Finding, Rule, register
from . import dotted

_GUARD_RE = re.compile(
    r"#\s*guarded-by:\s*(?:self\.)?(?P<lock>\w+)"
    r"\s*(?P<writes>\[writes\])?")


class _Guard(NamedTuple):
    lock: str
    writes_only: bool
    decl_line: int


@register
class LockDisciplineRule(Rule):
    id = "REP003"
    title = "guarded attribute accessed outside its lock"
    rationale = ("fields annotated '# guarded-by: <lock>' are shared "
                 "across threads; touching one without the lock is a "
                 "data race waiting for load")
    severity = "error"

    def applies(self, ctx: FileContext) -> bool:
        # The annotations concentrate in serve/cluster/obs, but the rule
        # is cheap and correct anywhere an annotation appears.
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        annotated_lines = {line for line, comment in ctx.comments.items()
                           if _GUARD_RE.search(comment)}
        if not annotated_lines:
            return findings
        claimed: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node, claimed))
        for line in sorted(annotated_lines - claimed):
            findings.append(Finding(
                rule=self.id, severity=self.severity, path=ctx.rel,
                line=line, col=0,
                message="'# guarded-by:' marker is not attached to a "
                        "self-attribute assignment inside a class (put "
                        "it on the defining line or the line above)"))
        return findings

    # -- per class -------------------------------------------------------

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef,
                     claimed: Set[int]) -> Iterable[Finding]:
        guards = self._collect_guards(ctx, cls, claimed)
        if not guards:
            return []
        findings: List[Finding] = []
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                continue  # construction: the object is not shared yet
            self._walk(ctx, stmt.body, guards, frozenset(), findings)
        return findings

    def _collect_guards(self, ctx: FileContext, cls: ast.ClassDef,
                        claimed: Set[int]) -> Dict[str, _Guard]:
        """Map attr name -> guard for every annotated ``self.X = ...``."""
        guards: Dict[str, _Guard] = {}
        for method in cls.body:
            if not isinstance(method,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                else:
                    continue
                marker = self._marker_for(ctx, stmt.lineno)
                if marker is None:
                    continue
                line, m = marker
                for target in targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        claimed.add(line)
                        guards[target.attr] = _Guard(
                            lock=m.group("lock"),
                            writes_only=m.group("writes") is not None,
                            decl_line=stmt.lineno)
        return guards

    @staticmethod
    def _marker_for(ctx: FileContext, lineno: int):
        """The guard marker on ``lineno`` or alone on the line above."""
        for line in (lineno, lineno - 1):
            comment = ctx.comments.get(line)
            if comment is None:
                continue
            m = _GUARD_RE.search(comment)
            if m is None:
                continue
            if line == lineno - 1 \
                    and ctx.lines[line - 1].split("#")[0].strip():
                continue  # the line above is code with its own comment
            return line, m
        return None

    # -- lock-aware walk -------------------------------------------------

    def _walk(self, ctx: FileContext, body: List[ast.stmt],
              guards: Dict[str, _Guard], held: frozenset,
              findings: List[Finding]) -> None:
        for stmt in body:
            self._visit(ctx, stmt, guards, held, findings)

    def _visit(self, ctx: FileContext, node: ast.AST,
               guards: Dict[str, _Guard], held: frozenset,
               findings: List[Finding]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                name = dotted(item.context_expr)
                if name is not None and name.startswith("self."):
                    acquired.add(name[len("self."):])
                # guard against `with self._lock_a, self._lock_b:` too
            for item in node.items:
                self._visit(ctx, item.context_expr, guards, held, findings)
            self._walk(ctx, node.body, guards,
                       held | frozenset(acquired), findings)
            return
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" and node.attr in guards:
            guard = guards[node.attr]
            is_write = isinstance(node.ctx, (ast.Store, ast.Del))
            if guard.lock not in held \
                    and (is_write or not guard.writes_only):
                kind = "written" if is_write else "read"
                findings.append(self.finding(
                    ctx, node,
                    f"self.{node.attr} is guarded by self.{guard.lock} "
                    f"(declared at line {guard.decl_line}) but {kind} "
                    f"outside 'with self.{guard.lock}:'"))
            return
        for child in ast.iter_child_nodes(node):
            self._visit(ctx, child, guards, held, findings)
