"""``repro.checks`` — the repo-native static analyzer.

Stdlib-only (``ast`` + ``tokenize``) enforcement of the conventions this
codebase's correctness arguments lean on but Python cannot express:
deterministic seeding (REP001), the kernel bit-identity boundary
(REP002), ``# guarded-by:`` lock discipline (REP003), the cluster wire
protocol (REP004), and ``obs`` metric naming (REP005) — plus a hidden
advisory dead-symbol sweep (REP000, ``--rule REP000``).

Run it as ``python -m repro check [paths]``; suppress one line with
``# repro: ignore[REP001]`` (bare ``# repro: ignore`` silences every
rule on that line); grandfather existing debt into
``.repro-checks-baseline.json`` with ``--write-baseline``.  The engine
is importable too — ``check_source(source, path_hint)`` runs the rules
over an in-memory snippet, which is how the fixture tests probe each
rule without touching the real tree.
"""

from __future__ import annotations

from .engine import (  # noqa: F401
    BASELINE_NAME,
    CheckResult,
    FileContext,
    Finding,
    Rule,
    all_rules,
    check_source,
    default_rules,
    find_repo_root,
    get_rules,
    load_baseline,
    register,
    run_checks,
    save_baseline,
)
from .report import render_json, render_text  # noqa: F401

__all__ = [
    "BASELINE_NAME", "CheckResult", "FileContext", "Finding", "Rule",
    "all_rules", "check_source", "default_rules", "find_repo_root",
    "get_rules", "load_baseline", "register", "render_json",
    "render_text", "run_checks", "save_baseline",
]
