"""The static-analysis engine: file contexts, rule running, baselines.

The analyzer is deliberately stdlib-only (``ast`` + ``tokenize``), the
same discipline as :mod:`repro.obs`: it must be importable and runnable
in every CI job without installing anything.  One :class:`FileContext`
per file carries the parsed tree, the raw source, the per-line comment
map (``# guarded-by:`` markers and ``# repro: ignore[...]``
suppressions live in comments, which ``ast`` drops), and enough path
metadata for rules to scope themselves (module dotted name, "is this a
test file", "is this inside the deterministic core").

Findings are plain frozen dataclasses; identity for baseline matching is
``(rule, path, message)`` — deliberately line-free, so an unrelated edit
shifting a grandfathered finding by a few lines does not resurrect it.
Each baseline entry absolves exactly one finding (multiset semantics):
a *new* duplicate of a grandfathered problem still fails the build.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import time
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Directory names never descended into when expanding path arguments.
SKIP_DIRS = {
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", ".benchmarks",
    "runs", "checks_fixtures", "node_modules", ".claude",
}

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One problem at one place; ordering groups a report by file."""

    rule: str
    severity: str  # "error" | "warning"
    path: str      # repo-relative posix path
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class FileContext:
    """Everything the rules need to know about one source file."""

    def __init__(self, rel: str, source: str,
                 real_path: Optional[Path] = None):
        self.rel = rel.replace("\\", "/")
        self.source = source
        self.real_path = real_path
        self.tree = ast.parse(source, filename=self.rel)
        self.lines = source.splitlines()
        #: line number -> full comment text (including the leading ``#``).
        self.comments: Dict[int, str] = {}
        try:
            for tok in tokenize.generate_tokens(
                    io.StringIO(source).readline):
                if tok.type == tokenize.COMMENT:
                    self.comments[tok.start[0]] = tok.string
        except tokenize.TokenError:  # pragma: no cover - parse() caught it
            pass
        self._suppressions = self._scan_suppressions()

    # -- path metadata ---------------------------------------------------

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(self.rel.split("/"))

    @property
    def module(self) -> str:
        """Dotted module name, derived from the path string alone.

        ``src/repro/core/learning.py`` -> ``repro.core.learning``; files
        outside the ``repro`` package keep just their stem
        (``benchmarks/bench_kernels.py`` -> ``bench_kernels``).
        """
        parts = list(self.parts)
        parts[-1] = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
        if parts[-1] == "__init__":
            parts.pop()
        if "repro" in parts:
            return ".".join(parts[parts.index("repro"):])
        return parts[-1] if parts else ""

    @property
    def is_test(self) -> bool:
        name = self.parts[-1]
        return ("tests" in self.parts[:-1]
                or name.startswith("test_") or name == "conftest.py")

    @property
    def is_init(self) -> bool:
        return self.parts[-1] == "__init__.py"

    def in_dirs(self, *names: str) -> bool:
        """True when any ancestor directory is one of ``names``."""
        return any(n in self.parts[:-1] for n in names)

    # -- suppressions ----------------------------------------------------

    def _scan_suppressions(self) -> Dict[int, Optional[Set[str]]]:
        """line -> suppressed rule ids (``None`` = every rule)."""
        out: Dict[int, Optional[Set[str]]] = {}
        for line_no, comment in self.comments.items():
            m = _SUPPRESS_RE.search(comment)
            if not m:
                continue
            rules = m.group("rules")
            if rules is None:
                out[line_no] = None
            else:
                out[line_no] = {r.strip() for r in rules.split(",")
                                if r.strip()}
        return out

    def suppressed(self, rule_id: str, line: int) -> bool:
        if line not in self._suppressions:
            return False
        rules = self._suppressions[line]
        return rules is None or rule_id in rules


class Rule:
    """One named check.  Subclasses set the class attributes and
    implement :meth:`check`; :meth:`applies` scopes the rule to the part
    of the tree its convention governs."""

    id: str = "REP000"
    title: str = ""
    rationale: str = ""
    severity: str = "error"
    #: Hidden rules run only when named explicitly with ``--rule``.
    hidden: bool = False

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def finding(self, ctx: FileContext, node, message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=self.id, severity=self.severity, path=ctx.rel,
                       line=line, col=col, message=message)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls) -> type:
    """Class decorator: instantiate and register one rule."""
    rule = rule_cls()
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Every registered rule, hidden ones included, in id order."""
    _load_builtin_rules()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def default_rules() -> List[Rule]:
    return [r for r in all_rules() if not r.hidden]


def get_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve ``--rule`` selections; ``None`` = every non-hidden rule."""
    _load_builtin_rules()
    if not ids:
        return default_rules()
    out = []
    for rid in ids:
        key = rid.strip().upper()
        if key not in _REGISTRY:
            raise KeyError(
                f"unknown rule {rid!r}; known rules: "
                f"{', '.join(sorted(_REGISTRY))}")
        out.append(_REGISTRY[key])
    return out


def _load_builtin_rules() -> None:
    from . import rules  # noqa: F401  (registers on import)


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------

def find_repo_root(start: Path) -> Path:
    """Nearest ancestor holding ``pyproject.toml`` or ``.git`` (else cwd)."""
    cur = start if start.is_dir() else start.parent
    cur = cur.resolve()
    for candidate in (cur, *cur.parents):
        if (candidate / "pyproject.toml").exists() \
                or (candidate / ".git").exists():
            return candidate
    return Path.cwd().resolve()


def collect_files(paths: Sequence[str], root: Path) -> List[Path]:
    """Expand path arguments into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            if path.suffix == ".py":
                out.add(path.resolve())
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for sub in sorted(path.rglob("*.py")):
            if any(part in SKIP_DIRS for part in sub.parts):
                continue
            out.add(sub.resolve())
    return sorted(out)


def check_source(source: str, path_hint: str,
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run rules over one in-memory source blob (the test entry point).

    ``path_hint`` is the repo-relative path the snippet pretends to live
    at — rule scoping is driven entirely by it, so a fixture can probe
    "what would REP001 say inside ``src/repro/core``" without touching
    the real tree.
    """
    ctx = FileContext(path_hint, source)
    return _run_rules(ctx, list(rules) if rules is not None
                      else default_rules())


def _run_rules(ctx: FileContext, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.rule, finding.line):
                findings.append(finding)
    return findings


@dataclasses.dataclass
class CheckResult:
    """Everything one analyzer run produced, pre-baseline and post."""

    findings: List[Finding]           # new findings (not baselined)
    baselined: List[Finding]          # grandfathered by the baseline
    stale_baseline: List[dict]        # baseline entries matching nothing
    files_checked: int
    rules_run: List[str]
    elapsed_s: float
    errors: List[str]                 # unreadable/unparsable files

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def run_checks(paths: Sequence[str],
               rules: Optional[Sequence[Rule]] = None,
               baseline: Optional[Sequence[dict]] = None,
               root: Optional[Path] = None) -> CheckResult:
    """Analyze ``paths`` (files or directories) with ``rules``.

    Returns a :class:`CheckResult`; ``baseline`` (as loaded by
    :func:`load_baseline`) absolves matching findings one-for-one.
    """
    t0 = time.perf_counter()
    rules = list(rules) if rules is not None else default_rules()
    root = (root or find_repo_root(Path(paths[0]) if paths
                                   else Path.cwd())).resolve()
    findings: List[Finding] = []
    errors: List[str] = []
    files = collect_files(paths, root)
    for path in files:
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext(rel, source, real_path=path)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{rel}: {type(exc).__name__}: {exc}")
            continue
        findings.extend(_run_rules(ctx, rules))
    findings.sort(key=Finding.sort_key)
    fresh, grandfathered, stale = apply_baseline(findings, baseline or [])
    return CheckResult(
        findings=fresh, baselined=grandfathered, stale_baseline=stale,
        files_checked=len(files), rules_run=[r.id for r in rules],
        elapsed_s=time.perf_counter() - t0, errors=errors)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

BASELINE_NAME = ".repro-checks-baseline.json"


def load_baseline(path: Path) -> List[dict]:
    """Parse a baseline file into its entry list (missing file = empty)."""
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings", []) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline must hold a findings list")
    return entries


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write current findings as the new baseline (sorted, stable)."""
    entries = [f.to_dict() for f in sorted(findings, key=Finding.sort_key)]
    payload = {"version": 1, "tool": "repro.checks", "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(findings: Sequence[Finding], entries: Sequence[dict],
                   ) -> Tuple[List[Finding], List[Finding], List[dict]]:
    """Split findings into (fresh, grandfathered) against the baseline.

    Matching is by ``(rule, path, message)`` with multiset semantics:
    each entry absolves one finding.  Entries that matched nothing come
    back as ``stale`` so the report can nudge the baseline shrinking.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        key = (str(entry.get("rule", "")), str(entry.get("path", "")),
               str(entry.get("message", "")))
        budget[key] = budget.get(key, 0) + 1
    fresh: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    stale = [{"rule": k[0], "path": k[1], "message": k[2], "count": n}
             for k, n in sorted(budget.items()) if n > 0]
    return fresh, grandfathered, stale
