"""Reporters: one line per finding for humans, one document for CI.

The text form is the compiler-style ``path:line:col RULE severity:
message`` a terminal (and every editor's error-matcher) understands; the
JSON form is the full :class:`~repro.checks.engine.CheckResult` as one
stable document, which the CI ``checks`` job uploads as an artifact.
"""

from __future__ import annotations

import json

from .engine import CheckResult


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """Compiler-style report; ``verbose`` also lists baselined findings."""
    lines = []
    for finding in result.findings:
        lines.append(f"{finding.path}:{finding.line}:{finding.col} "
                     f"{finding.rule} {finding.severity}: "
                     f"{finding.message}")
    if verbose:
        for finding in result.baselined:
            lines.append(f"{finding.path}:{finding.line}:{finding.col} "
                         f"{finding.rule} baselined: {finding.message}")
    for error in result.errors:
        lines.append(f"error: {error}")
    for entry in result.stale_baseline:
        lines.append(f"stale baseline entry ({entry['count']}x): "
                     f"{entry['rule']} {entry['path']}: "
                     f"{entry['message']}")
    summary = (f"{len(result.findings)} finding(s)"
               f"{_suffix(result)} — {result.files_checked} files, "
               f"rules {','.join(result.rules_run)}, "
               f"{result.elapsed_s:.2f}s")
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def _suffix(result: CheckResult) -> str:
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.stale_baseline:
        stale = sum(e.get("count", 1) for e in result.stale_baseline)
        extras.append(f"{stale} stale baseline entr"
                      + ("y" if stale == 1 else "ies"))
    if result.errors:
        extras.append(f"{len(result.errors)} file error(s)")
    return f" ({', '.join(extras)})" if extras else ""


def render_json(result: CheckResult) -> str:
    """The whole result as one JSON document (CI artifact format)."""
    payload = {
        "version": 1,
        "tool": "repro.checks",
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "elapsed_s": round(result.elapsed_s, 4),
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": list(result.stale_baseline),
        "errors": list(result.errors),
    }
    return json.dumps(payload, indent=2)
