"""The sweep runner: fan a SweepSpec's points through the experiment Runner.

One ``SweepRunner.run(sweep)`` call expands the sweep and executes its
points in order, each as an ordinary run of the existing
:class:`~repro.experiments.runner.Runner` — so every point inherits the
seed fan-out process pool, the checkpointing run store, and seed-level
resume unchanged.  The sweep layer only adds the index: before a point
starts, its freshly created child run id is committed to ``sweep.json``;
after it finishes, a summary line (mean metrics over its seeds) is
appended to ``summary.jsonl``.

Resume is two-level.  ``resume=<sweep_id>`` re-expands the spec from the
sweep manifest and walks the points again: finished points are skipped
outright, and a point that was mid-flight when the sweep died is resumed
*through the runner's own manifest machinery* — its finished seeds are
not re-run either.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Dict, List, Optional

from .. import obs
from ..analysis.aggregate import mean_metrics
from ..experiments.runner import Runner, RunResult, new_run_id
from .spec import SweepPoint, SweepSpec
from .store import SweepInfo, SweepStore


def new_sweep_id() -> str:
    """Sweep ids share the run-id format (sortable stamp + hex suffix)."""
    return new_run_id()


@dataclasses.dataclass
class PointResult:
    """One executed (or skipped) point of a sweep."""

    point: SweepPoint
    run_id: str
    status: str
    summary: dict
    skipped: bool = False


@dataclasses.dataclass
class SweepResult:
    """What ``SweepRunner.run`` hands back: the sweep plus its points."""

    sweep: SweepInfo
    points: List[PointResult]

    @property
    def sweep_id(self) -> str:
        return self.sweep.sweep_id

    @property
    def sweep_dir(self) -> Path:
        return self.sweep.path

    @property
    def status(self) -> str:
        return self.sweep.status

    def complete_points(self) -> List[PointResult]:
        return [p for p in self.points if p.status == "complete"]


class SweepRunner:
    """Executes :class:`SweepSpec` expansions against a run + sweep store.

    Parameters
    ----------
    out_root:
        Root of the run store; the sweep index lives under
        ``<out_root>/sweeps/`` and child runs in the store proper.
    max_workers:
        Passed through to the point runner's seed fan-out (``1`` runs
        seeds inline).
    runner:
        An existing :class:`Runner` to share instead of building one —
        points then reuse its store and pool configuration.
    """

    def __init__(self, out_root="runs", max_workers: Optional[int] = None,
                 runner: Optional[Runner] = None):
        self.runner = runner or Runner(out_root=out_root,
                                       max_workers=max_workers)
        self.store = SweepStore(self.runner.store.root)

    def run(self, spec: Optional[SweepSpec] = None,
            resume: Optional[str] = None,
            progress: Optional[callable] = None) -> SweepResult:
        """Run ``spec``, or resume an existing sweep.

        ``resume`` is a sweep id (or unique prefix), or ``"latest"`` for
        the newest unfinished sweep (of ``spec.name`` when a spec is
        given).  A resumed sweep takes its spec from ``sweep.json``.
        """
        if resume is not None:
            if resume == "latest":
                sweep = self.store.latest(
                    spec.name if spec is not None else None,
                    unfinished_only=True)
            else:
                sweep = self.store.find(resume)
            spec = sweep.spec()
        else:
            if spec is None:
                raise ValueError("need a sweep spec or a sweep id to resume")
            sweep = self.store.create_sweep(spec, new_sweep_id())

        points = spec.expand()
        state: Dict[str, dict] = {p["point_id"]: p for p in sweep.points()}
        summaries = self.store.summaries(sweep)
        results: List[PointResult] = []
        failed = False
        # The sweep trace holds one span per point; each child run writes
        # its own trace.jsonl under its run directory as usual.
        with obs.trace_bound(obs.trace_path_for(sweep.path)):
            with obs.span("sweep", sweep_id=sweep.sweep_id,
                          sweep_name=spec.name, points=len(points)):
                for point in points:
                    entry = state.get(point.point_id, {})
                    if entry.get("status") == "complete" \
                            and point.point_id in summaries:
                        if progress is not None:
                            progress(f"point {point.point_id} "
                                     f"({point.label}): already complete")
                        obs.event("sweep_point_skipped",
                                  point_id=point.point_id)
                        results.append(PointResult(
                            point=point, run_id=entry.get("run_id", ""),
                            status="complete",
                            summary=summaries[point.point_id], skipped=True))
                        continue
                    with obs.span("sweep_point", point_id=point.point_id,
                                  label=point.label) as sp:
                        sweep, result = self._run_point(sweep, point, entry,
                                                        progress)
                        if sp is not None:
                            sp.set(run_id=result.run_id,
                                   status=result.status)
                    summary = self._summarize_point(point, result)
                    self.store.append_summary(sweep, summary)
                    sweep = self.store.update_point(
                        sweep, point.point_id, status=result.status
                        if result.status in ("complete", "failed")
                        else "failed")
                    failed = failed or result.status != "complete"
                    obs.counter("sweep_points_finished", sweep=spec.name,
                                status=result.status)
                    results.append(PointResult(
                        point=point, run_id=result.run_id,
                        status=result.status, summary=summary))
                    if progress is not None:
                        progress(f"point {point.point_id} ({point.label}): "
                                 f"{result.status}")
        sweep = self.store.update_status(
            sweep, "failed" if failed else "complete")
        return SweepResult(sweep=sweep, points=results)

    # -- one point -------------------------------------------------------

    def _run_point(self, sweep: SweepInfo, point: SweepPoint, entry: dict,
                   progress: Optional[callable]):
        """Execute one point as a child run, creating or resuming it.

        The child run directory is created (and committed to the sweep
        manifest) *before* any seed executes, so a sweep killed mid-point
        finds the run again on resume and continues its finished seeds.
        """
        run_id = entry.get("run_id")
        if run_id is None:
            run = self.runner.store.create_run(point.spec, new_run_id())
            run_id = run.run_id
            sweep = self.store.update_point(sweep, point.point_id,
                                            run_id=run_id, status="running")
        else:
            sweep = self.store.update_point(sweep, point.point_id,
                                            status="running")
        if progress is not None:
            progress(f"point {point.point_id} ({point.label}) -> "
                     f"run {run_id}")
        result = self.runner.run(resume=run_id, progress=progress)
        return sweep, result

    @staticmethod
    def _summarize_point(point: SweepPoint, result: RunResult) -> dict:
        ok = result.ok_records()
        return {
            "point_id": point.point_id,
            "overrides": point.overrides,
            "run_id": result.run_id,
            "status": result.status,
            "experiment": point.spec.name,
            "seeds_ok": len(ok),
            "seeds_total": len(point.spec.seeds),
            "duration_s": round(sum(r.get("duration_s", 0.0)
                                    for r in result.records), 3),
            "metrics": mean_metrics(ok),
            "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
