"""The sweep runner: fan a SweepSpec's point × seed product over the executor.

One ``SweepRunner.run(sweep)`` call expands the sweep, ensures every
incomplete point has a child run directory in the ordinary experiment
run store, then enqueues *all* pending ``(point, seed)`` tasks onto one
SQLite-backed queue in the sweep directory and drains it with a shared
:class:`~repro.exec.pool.WorkerPool` — so points interleave across
workers instead of running point-by-point, and a 100-point × 5-seed
grid saturates the machine.  A point's summary line (mean metrics over
its seeds) is appended to ``summary.jsonl`` the moment its last seed
lands, in whatever order the fleet finishes them; with one worker the
claim order is the enqueue order, so summaries stay in expansion order.

Resume is two-level and unchanged from the sequential design:
``resume=<sweep_id>`` re-expands the spec from ``sweep.json``, skips
finished points outright, and for a point that was mid-flight re-reads
its child run's ``records.jsonl`` so finished seeds are not re-enqueued.
A SIGKILLed worker's leased task is requeued by the pool, not lost.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Dict, List, Optional

from .. import obs
from ..analysis.aggregate import mean_metrics
from ..exec import Task, WorkerPool, default_workers, enqueue_seed
from ..experiments.runner import (Runner, final_records, fresh_queue,
                                  new_run_id)
from .spec import SweepPoint, SweepSpec
from .store import SweepInfo, SweepStore


def new_sweep_id() -> str:
    """Sweep ids share the run-id format (sortable stamp + hex suffix)."""
    return new_run_id()


@dataclasses.dataclass
class PointResult:
    """One executed (or skipped) point of a sweep."""

    point: SweepPoint
    run_id: str
    status: str
    summary: dict
    skipped: bool = False


@dataclasses.dataclass
class SweepResult:
    """What ``SweepRunner.run`` hands back: the sweep plus its points."""

    sweep: SweepInfo
    points: List[PointResult]

    @property
    def sweep_id(self) -> str:
        return self.sweep.sweep_id

    @property
    def sweep_dir(self) -> Path:
        return self.sweep.path

    @property
    def status(self) -> str:
        return self.sweep.status

    def complete_points(self) -> List[PointResult]:
        return [p for p in self.points if p.status == "complete"]


@dataclasses.dataclass
class _Plan:
    """One incomplete point's execution state during a sweep."""

    point: SweepPoint
    run_id: str
    run_dir: Path
    outstanding: set


class SweepRunner:
    """Executes :class:`SweepSpec` expansions against a run + sweep store.

    Parameters
    ----------
    out_root:
        Root of the run store; the sweep index lives under
        ``<out_root>/sweeps/`` and child runs in the store proper.
    max_workers:
        Worker-fleet width shared by *all* points' seeds (``1`` runs
        the claim loop inline).  Defaults to
        :func:`repro.exec.default_workers` capped at the task count.
    runner:
        An existing :class:`Runner` to share instead of building one —
        points then reuse its store and worker configuration.
    """

    def __init__(self, out_root="runs", max_workers: Optional[int] = None,
                 runner: Optional[Runner] = None):
        self.runner = runner or Runner(out_root=out_root,
                                       max_workers=max_workers)
        self.store = SweepStore(self.runner.store.root)
        self.max_workers = (max_workers if max_workers is not None
                            else self.runner.max_workers)

    def run(self, spec: Optional[SweepSpec] = None,
            resume: Optional[str] = None,
            progress: Optional[callable] = None) -> SweepResult:
        """Run ``spec``, or resume an existing sweep.

        ``resume`` is a sweep id (or unique prefix), or ``"latest"`` for
        the newest unfinished sweep (of ``spec.name`` when a spec is
        given).  A resumed sweep takes its spec from ``sweep.json``.
        """
        if resume is not None:
            if resume == "latest":
                sweep = self.store.latest(
                    spec.name if spec is not None else None,
                    unfinished_only=True)
            else:
                sweep = self.store.find(resume)
            spec = sweep.spec()
        else:
            if spec is None:
                raise ValueError("need a sweep spec or a sweep id to resume")
            sweep = self.store.create_sweep(spec, new_sweep_id())

        points = spec.expand()
        state: Dict[str, dict] = {p["point_id"]: p for p in sweep.points()}
        summaries = self.store.summaries(sweep)
        results: Dict[str, PointResult] = {}
        # The sweep trace holds the executor's task spans (enqueue ->
        # claim -> done); each child run writes its own trace.jsonl
        # under its run directory as usual.
        with obs.trace_bound(obs.trace_path_for(sweep.path)):
            with obs.span("sweep", sweep_id=sweep.sweep_id,
                          sweep_name=spec.name, points=len(points)) as root:
                queue_parent = root.span_id if root is not None else None
                sweep = self._run_points(sweep, spec, points, state,
                                         summaries, results, queue_parent,
                                         progress)
        ordered = [results[p.point_id] for p in points]
        failed = any(r.status != "complete" for r in ordered)
        sweep = self.store.update_status(
            sweep, "failed" if failed else "complete")
        return SweepResult(sweep=sweep, points=ordered)

    # -- planning + execution -------------------------------------------

    def _run_points(self, sweep: SweepInfo, spec: SweepSpec,
                    points: List[SweepPoint], state: Dict[str, dict],
                    summaries: Dict[str, dict],
                    results: Dict[str, PointResult],
                    queue_parent: Optional[str],
                    progress: Optional[callable]) -> SweepInfo:
        # Phase 1: skip finished points, ensure every live point has a
        # child run directory (committed to sweep.json *before* any seed
        # executes, so a killed sweep finds it again on resume).
        plans: Dict[str, _Plan] = {}
        for point in points:
            entry = state.get(point.point_id, {})
            if entry.get("status") == "complete" \
                    and point.point_id in summaries:
                if progress is not None:
                    progress(f"point {point.point_id} "
                             f"({point.label}): already complete")
                obs.event("sweep_point_skipped", point_id=point.point_id)
                results[point.point_id] = PointResult(
                    point=point, run_id=entry.get("run_id", ""),
                    status="complete",
                    summary=summaries[point.point_id], skipped=True)
                continue
            run_id = entry.get("run_id")
            if run_id is None:
                run = self.runner.store.create_run(point.spec, new_run_id())
                run_id = run.run_id
                sweep = self.store.update_point(sweep, point.point_id,
                                                run_id=run_id,
                                                status="running")
            else:
                run = self.runner.store.find(run_id)
                sweep = self.store.update_point(sweep, point.point_id,
                                                status="running")
            if progress is not None:
                progress(f"point {point.point_id} ({point.label}) -> "
                         f"run {run_id}")
            done = self.runner.store.done_seeds(run)
            pending = [s for s in point.spec.seeds if s not in done]
            if progress is not None and done:
                progress(f"resuming {run_id}: seeds "
                         f"{sorted(done)} already done")
            plans[point.point_id] = _Plan(
                point=point, run_id=run_id, run_dir=run.path,
                outstanding=set(int(s) for s in pending))

        # Phase 2: enqueue the full point x seed product on one queue.
        queue = fresh_queue(sweep.path)
        n_tasks = 0
        for point in points:
            plan = plans.get(point.point_id)
            if plan is None:
                continue
            run = self.runner.store.find(plan.run_id)
            spec_dict = point.spec.to_dict()
            for seed in sorted(plan.outstanding):
                enqueue_seed(
                    queue,
                    experiment=point.spec.name,
                    run_id=plan.run_id,
                    run_dir=str(plan.run_dir),
                    spec=spec_dict,
                    seed=seed,
                    repro_version=run.manifest.get("repro_version"),
                    point_id=point.point_id,
                    queue_parent=queue_parent,
                )
                n_tasks += 1
            if not plan.outstanding:
                # Every seed already recorded (sweep died between the
                # last seed and the summary line): finalize straight away.
                sweep = self._finalize_point(sweep, plan, results,
                                             progress)

        if n_tasks == 0:
            return sweep

        # Phase 3: drain; finalize each point the moment it empties.
        workers = self.max_workers
        if workers is None:
            workers = min(default_workers(), n_tasks)
        holder = {"sweep": sweep}

        def on_done(task: Task, result: dict) -> None:
            point_id = task.payload.get("point_id")
            seed = result.get("seed", task.payload.get("seed"))
            status = result.get("status", "error")
            obs.event("seed_finished", seed=seed, status=status,
                      point_id=point_id,
                      duration_s=result.get("duration_s"))
            obs.counter("seeds_finished",
                        experiment=task.payload.get("experiment"),
                        status=status)
            if progress is not None:
                progress(f"point {point_id} seed {seed}: {status}")
            plan = plans.get(point_id)
            if plan is None:
                return
            plan.outstanding.discard(int(seed))
            if not plan.outstanding and point_id not in results:
                holder["sweep"] = self._finalize_point(
                    holder["sweep"], plan, results, progress)

        WorkerPool(queue, workers=workers).run(
            on_task_done=on_done, progress=progress)
        sweep = holder["sweep"]

        # Safety net: a task marked failed at the queue level (no record
        # written) leaves its point unfinalized — finalize from disk.
        for point in points:
            plan = plans.get(point.point_id)
            if plan is not None and point.point_id not in results:
                sweep = self._finalize_point(sweep, plan, results,
                                             progress)
        return sweep

    # -- one point -------------------------------------------------------

    def _finalize_point(self, sweep: SweepInfo, plan: _Plan,
                        results: Dict[str, PointResult],
                        progress: Optional[callable]) -> SweepInfo:
        """Settle a drained point: child run status, summary line, index."""
        point = plan.point
        run = self.runner.store.find(plan.run_id)
        finals = final_records(plan.run_dir, point.spec.seeds)
        ok = sorted((r for r in finals.values()
                     if r.get("status") == "ok"),
                    key=lambda r: r["seed"])
        status = ("complete"
                  if len(ok) == len(point.spec.seeds) else "failed")
        self.runner.store.update_status(run, status)
        summary = {
            "point_id": point.point_id,
            "overrides": point.overrides,
            "run_id": plan.run_id,
            "status": status,
            "experiment": point.spec.name,
            "seeds_ok": len(ok),
            "seeds_total": len(point.spec.seeds),
            "duration_s": round(sum(r.get("duration_s", 0.0)
                                    for r in finals.values()), 3),
            "metrics": mean_metrics(ok),
            "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        }
        self.store.append_summary(sweep, summary)
        sweep = self.store.update_point(sweep, point.point_id,
                                        status=status)
        obs.counter("sweep_points_finished", sweep=sweep.name,
                    status=status)
        results[point.point_id] = PointResult(
            point=point, run_id=plan.run_id, status=status,
            summary=summary)
        if progress is not None:
            progress(f"point {point.point_id} ({point.label}): {status}")
        return sweep
