"""Declarative sweep configuration: axes over a base experiment spec.

A :class:`SweepSpec` turns one frozen
:class:`~repro.experiments.spec.ExperimentSpec` into a *surface* of
experiments: grid axes are crossed (every combination becomes one point),
random axes are jointly sampled ``n_random`` times and appended.  An axis
names either a top-level spec field (``phase_length``, ``dataset``,
``epochs``, ``hidden``, ...) or a dotted ``params.`` path merged into the
spec's scenario-specific params (``params.noise_level``,
``params.neurons_per_core``, ...).

Like the experiment spec, a sweep spec is a frozen, JSON-round-trippable
value: the sweep runner writes it into ``sweep.json`` and expansion is a
pure function of the spec (random axes draw from ``rng_seed``), so a
resumed sweep re-derives exactly the same points with the same ids.
"""

from __future__ import annotations

import dataclasses
import functools
import itertools
import typing
from typing import Dict, List, Tuple

import numpy as np

from ..experiments.spec import ExperimentSpec

PARAMS_PREFIX = "params."


@dataclasses.dataclass(frozen=True)
class SweepAxis:
    """One grid axis: ``field`` takes each of ``values`` in turn."""

    field: str
    values: Tuple[object, ...]

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))
        if not self.field:
            raise ValueError("axis needs a field name")
        if not self.values:
            raise ValueError(f"axis {self.field!r} needs at least one value")

    def to_dict(self) -> dict:
        return {"field": self.field, "values": list(self.values)}


@dataclasses.dataclass(frozen=True)
class RandomAxis:
    """One random-search axis: ``field`` is drawn from ``[low, high]``.

    ``log=True`` samples uniformly in log-space (learning rates);
    ``integer=True`` rounds the draw (layer widths, phase lengths).
    """

    field: str
    low: float
    high: float
    log: bool = False
    integer: bool = False

    def __post_init__(self):
        if not self.field:
            raise ValueError("axis needs a field name")
        if not self.low <= self.high:
            raise ValueError(f"axis {self.field!r}: low > high")
        if self.log and self.low <= 0:
            raise ValueError(f"axis {self.field!r}: log sampling needs "
                             "low > 0")

    def draw(self, rng: np.random.Generator) -> object:
        if self.log:
            value = float(np.exp(rng.uniform(np.log(self.low),
                                             np.log(self.high))))
        else:
            value = float(rng.uniform(self.low, self.high))
        return int(round(value)) if self.integer else value

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One expanded point: its stable id, overrides, and concrete spec."""

    point_id: str
    overrides: Dict[str, object]
    spec: ExperimentSpec

    @property
    def label(self) -> str:
        return ",".join(f"{k}={v}" for k, v in self.overrides.items()) \
            or "(base)"


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A named family of experiment specs spanned by sweep axes.

    Attributes
    ----------
    name:
        Sweep name (also the registry key for the built-in sweeps).
    base:
        The :class:`ExperimentSpec` every point starts from; its ``name``
        selects the scenario the points run.
    grid:
        Grid axes, crossed in order (first axis varies slowest).
    random:
        Random-search axes, jointly sampled ``n_random`` times on top of
        the base values of the grid fields.
    n_random:
        Number of random draws to append (0 with random axes is an error).
    rng_seed:
        Seed of the random-axis generator — expansion is deterministic.
    objective:
        Dotted metric path (e.g. ``rate.test_acc``) the analysis layer
        ranks points by; empty picks a default at report time.
    mode:
        ``"max"`` or ``"min"`` — which end of the objective is best.
    """

    name: str
    base: ExperimentSpec
    grid: Tuple[SweepAxis, ...] = ()
    random: Tuple[RandomAxis, ...] = ()
    n_random: int = 0
    rng_seed: int = 0
    objective: str = ""
    mode: str = "max"

    def __post_init__(self):
        object.__setattr__(self, "grid", tuple(self.grid))
        object.__setattr__(self, "random", tuple(self.random))
        if self.mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', got {self.mode!r}")
        if self.random and self.n_random <= 0:
            raise ValueError("random axes need n_random > 0")
        if self.n_random > 0 and not self.random:
            raise ValueError("n_random > 0 needs at least one random axis")
        if not self.grid and not self.random:
            raise ValueError("a sweep needs at least one axis")
        fields = [a.field for a in self.grid] + [a.field for a in self.random]
        if len(set(fields)) != len(fields):
            raise ValueError(f"duplicate axis fields in {fields}")

    def replace(self, **changes) -> "SweepSpec":
        return dataclasses.replace(self, **changes)

    # -- expansion -------------------------------------------------------

    def axis_fields(self) -> List[str]:
        return [a.field for a in self.grid] + [a.field for a in self.random]

    def expand(self) -> List[SweepPoint]:
        """Every point of the sweep, in stable order with stable ids."""
        combos: List[Dict[str, object]] = []
        if self.grid:
            for values in itertools.product(*(a.values for a in self.grid)):
                combos.append({a.field: v
                               for a, v in zip(self.grid, values)})
        rng = np.random.default_rng(self.rng_seed)
        for _ in range(self.n_random):
            combos.append({a.field: a.draw(rng) for a in self.random})
        width = max(3, len(str(len(combos) - 1)))
        return [SweepPoint(point_id=f"p{i:0{width}d}", overrides=dict(ov),
                           spec=apply_overrides(self.base, ov))
                for i, ov in enumerate(combos)]

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "grid": [a.to_dict() for a in self.grid],
            "random": [a.to_dict() for a in self.random],
            "n_random": self.n_random,
            "rng_seed": self.rng_seed,
            "objective": self.objective,
            "mode": self.mode,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown sweep fields: {sorted(unknown)}")
        d = dict(d)
        d["base"] = ExperimentSpec.from_dict(d["base"])
        d["grid"] = tuple(SweepAxis(**a) for a in d.get("grid", ()))
        d["random"] = tuple(RandomAxis(**a) for a in d.get("random", ()))
        return cls(**d)


#: Spec fields whose value is a tuple: a scalar axis value means a
#: 1-tuple (sweeping ``hidden`` over 64 and 128 means one width per
#: point), and a bare string must not be iterated character-wise.
_TUPLE_FIELDS = ("hidden", "backends", "seeds")

_TRUE_WORDS = ("true", "1", "yes", "on")
_FALSE_WORDS = ("false", "0", "no", "off")


@functools.lru_cache(maxsize=1)
def _spec_field_types() -> Dict[str, object]:
    """Resolved type annotation per :class:`ExperimentSpec` field."""
    hints = typing.get_type_hints(ExperimentSpec)
    return {f.name: hints[f.name]
            for f in dataclasses.fields(ExperimentSpec)}


def _coerce_scalar(value: object, kind: type, field: str) -> object:
    if kind is bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            if value.lower() in _TRUE_WORDS:
                return True
            if value.lower() in _FALSE_WORDS:
                return False
        raise ValueError(
            f"axis {field!r} wants a bool, got {value!r} "
            f"(use true/false)")
    if kind is int:
        if isinstance(value, bool):
            raise ValueError(f"axis {field!r} wants an int, got {value!r}")
        if isinstance(value, int):
            return value
        try:
            as_float = float(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"axis {field!r} wants an int, got {value!r}") from None
        if as_float != int(as_float):
            raise ValueError(
                f"axis {field!r} wants an int, got {value!r}")
        return int(as_float)
    if kind is float:
        if isinstance(value, bool):
            raise ValueError(f"axis {field!r} wants a float, got {value!r}")
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ValueError(
                f"axis {field!r} wants a float, got {value!r}") from None
    if kind is str:
        if not isinstance(value, str):
            raise ValueError(f"axis {field!r} wants a string, got {value!r}")
        return value
    return value


def coerce_axis_value(field: str, value: object) -> object:
    """Coerce one sweep-axis value to the spec field's declared type.

    CLI ``--axis F=V1,V2`` values arrive as parsed-JSON-or-bare-string
    tokens; a bare ``16`` already comes back as an int, but quoted or
    unparseable tokens stay strings and would otherwise poison the
    expanded specs (``phase_length="16"`` type-checks nowhere until deep
    inside a run).  This resolves the target type from
    :class:`ExperimentSpec`'s annotations — ``Optional`` unwrapped, tuple
    fields coerced elementwise — and raises a clear :class:`ValueError`
    for unknown fields or unconvertible values.  ``params.<key>`` paths
    are schemaless and pass through unchanged.
    """
    if field.startswith(PARAMS_PREFIX):
        return value
    if field == "params":
        raise ValueError("sweep 'params' via dotted params.<key> axes")
    hints = _spec_field_types()
    if field not in hints:
        raise ValueError(
            f"axis field {field!r} is neither an ExperimentSpec field "
            f"nor a params.<key> path (fields: {sorted(hints)})")
    target = hints[field]
    if typing.get_origin(target) is typing.Union:  # Optional[X]
        args = [a for a in typing.get_args(target) if a is not type(None)]
        if value is None or (isinstance(value, str)
                             and value.lower() in ("none", "null")):
            return None
        target = args[0]
    if typing.get_origin(target) is tuple:
        element = typing.get_args(target)[0]
        if isinstance(value, (list, tuple)):
            return [_coerce_scalar(v, element, field) for v in value]
        return _coerce_scalar(value, element, field)
    if isinstance(target, type):
        return _coerce_scalar(value, target, field)
    return value


def apply_overrides(base: ExperimentSpec,
                    overrides: Dict[str, object]) -> ExperimentSpec:
    """One point's spec: axis values written onto the base spec.

    ``params.<key>`` paths merge into the base's ``params`` dict (the other
    base params are kept); anything else must be a spec field.  A scalar
    value for a tuple-valued field (``hidden``, ``backends``, ``seeds``)
    becomes a 1-tuple — pass a list (e.g. a JSON axis value) for
    multi-element points.
    """
    changes: Dict[str, object] = {}
    params = dict(base.params)
    params_touched = False
    spec_fields = {f.name for f in dataclasses.fields(ExperimentSpec)}
    for field, value in overrides.items():
        if field.startswith(PARAMS_PREFIX):
            params[field[len(PARAMS_PREFIX):]] = value
            params_touched = True
        elif field == "params":
            raise ValueError("sweep 'params' via dotted params.<key> axes")
        elif field in spec_fields:
            if field in _TUPLE_FIELDS and not isinstance(value,
                                                         (list, tuple)):
                value = (value,)
            changes[field] = value
        else:
            raise ValueError(
                f"axis field {field!r} is neither an ExperimentSpec field "
                f"nor a params.<key> path")
    if params_touched:
        changes["params"] = params
    return base.replace(**changes) if changes else base
