"""Sweep orchestration: experiment surfaces over the PR 2 runner.

The paper's headline results are sweeps — accuracy/energy vs. a knob, not
single points — and this package turns one frozen
:class:`~repro.experiments.spec.ExperimentSpec` into that surface:

* :class:`SweepSpec` — grid + random axes (spec fields or dotted
  ``params.<key>`` paths) expanded deterministically into points;
* :class:`SweepRunner` — fans the points through the existing
  :class:`~repro.experiments.runner.Runner`/run store (each point is an
  ordinary resumable child run) and keeps a ``sweeps/<sweep_id>/`` index
  linking child run ids, resumable mid-sweep;
* :data:`SWEEPS` / :func:`get_sweep` — the registry of built-in sweep
  families (``noise_robustness``, ``t_sweep``);
* cross-point aggregation (best point, per-axis marginals, the JSONL
  summary) lives in :mod:`repro.analysis.aggregate`.

``python -m repro sweep run/show/compare`` is the CLI over all of it.
"""

from .runner import PointResult, SweepResult, SweepRunner, new_sweep_id
from .scenarios import SWEEPS, SweepFamily, get_sweep, register_sweep
from .spec import (RandomAxis, SweepAxis, SweepPoint, SweepSpec,
                   apply_overrides, coerce_axis_value)
from .store import SweepInfo, SweepStore

__all__ = ["PointResult", "RandomAxis", "SWEEPS", "SweepAxis", "SweepFamily",
           "SweepInfo", "SweepPoint", "SweepResult", "SweepRunner",
           "SweepSpec", "SweepStore", "apply_overrides", "coerce_axis_value",
           "get_sweep", "new_sweep_id", "register_sweep"]
