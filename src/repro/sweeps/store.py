"""The on-disk sweep index: ``<run-store-root>/sweeps/<sweep_id>/``.

Layout of one sweep directory::

    runs/sweeps/20260729-103015-ab12cd/
        sweep.json        # SweepSpec + per-point status/run ids (atomic)
        summary.jsonl     # one line per finished point, appended as done

``sweep.json`` is the source of truth for resuming: it embeds the full
:class:`~repro.sweeps.spec.SweepSpec` (so expansion re-derives the same
points) plus, per point, the child run id and status.  Child runs live in
the ordinary experiment run store — a sweep only *links* them, so every
existing tool (``repro show``, checkpoint loading, seed-level resume)
keeps working on the children.

The ``sweeps/`` directory sits inside the run-store root but holds no
``manifest.json`` files, so :class:`~repro.experiments.store.RunStore`
listings skip it cleanly.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional

from ..experiments.store import (append_jsonl, pick_latest, read_jsonl,
                                 resolve_id)
from .spec import SweepSpec

SWEEPS_DIR_NAME = "sweeps"
SWEEP_MANIFEST_NAME = "sweep.json"
SWEEP_SUMMARY_NAME = "summary.jsonl"

#: Bump when the sweep-directory layout changes.
SWEEP_FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class SweepInfo:
    """A located sweep: its directory plus the parsed manifest."""

    sweep_id: str
    path: Path
    manifest: dict

    @property
    def name(self) -> str:
        return self.manifest.get("name", "?")

    @property
    def status(self) -> str:
        return self.manifest.get("status", "unknown")

    def spec(self) -> SweepSpec:
        return SweepSpec.from_dict(self.manifest["spec"])

    def points(self) -> List[dict]:
        """Per-point state: ``{point_id, overrides, run_id, status}``."""
        return list(self.manifest.get("points", []))


class SweepStore:
    """Reads and writes the ``sweeps/`` directory tree."""

    def __init__(self, root="runs"):
        self.root = Path(root) / SWEEPS_DIR_NAME

    def sweep_dir(self, sweep_id: str) -> Path:
        return self.root / sweep_id

    # -- writing ---------------------------------------------------------

    def create_sweep(self, spec: SweepSpec, sweep_id: str) -> SweepInfo:
        from .. import __version__

        path = self.sweep_dir(sweep_id)
        if path.exists():
            raise FileExistsError(f"sweep directory {path} already exists")
        path.mkdir(parents=True)
        manifest = {
            "sweep_format_version": SWEEP_FORMAT_VERSION,
            "repro_version": __version__,
            "name": spec.name,
            "sweep_id": sweep_id,
            "spec": spec.to_dict(),
            "status": "running",
            "points": [
                {"point_id": p.point_id, "overrides": p.overrides,
                 "run_id": None, "status": "pending"}
                for p in spec.expand()
            ],
        }
        self._write_manifest(path, manifest)
        (path / SWEEP_SUMMARY_NAME).touch()
        return SweepInfo(sweep_id, path, manifest)

    def update_point(self, sweep: SweepInfo, point_id: str,
                     run_id: Optional[str] = None,
                     status: Optional[str] = None) -> SweepInfo:
        manifest = json.loads(json.dumps(sweep.manifest))  # deep copy
        for point in manifest["points"]:
            if point["point_id"] == point_id:
                if run_id is not None:
                    point["run_id"] = run_id
                if status is not None:
                    point["status"] = status
                break
        else:
            raise KeyError(f"no point {point_id!r} in sweep "
                           f"{sweep.sweep_id}")
        self._write_manifest(sweep.path, manifest)
        return SweepInfo(sweep.sweep_id, sweep.path, manifest)

    def update_status(self, sweep: SweepInfo, status: str) -> SweepInfo:
        manifest = dict(sweep.manifest)
        manifest["status"] = status
        self._write_manifest(sweep.path, manifest)
        return SweepInfo(sweep.sweep_id, sweep.path, manifest)

    def append_summary(self, sweep: SweepInfo, line: dict) -> None:
        append_jsonl(sweep.path / SWEEP_SUMMARY_NAME, line)

    @staticmethod
    def _write_manifest(path: Path, manifest: dict) -> None:
        tmp = path / (SWEEP_MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        tmp.replace(path / SWEEP_MANIFEST_NAME)

    # -- reading ---------------------------------------------------------

    def list_sweeps(self, name: Optional[str] = None) -> List[SweepInfo]:
        """All sweeps (oldest directory name first), optionally by name."""
        sweeps: List[SweepInfo] = []
        if not self.root.is_dir():
            return sweeps
        for sweep_dir in sorted(self.root.iterdir()):
            manifest_path = sweep_dir / SWEEP_MANIFEST_NAME
            if not manifest_path.is_file():
                continue
            manifest = json.loads(manifest_path.read_text())
            if name is not None and manifest.get("name") != name:
                continue
            sweeps.append(SweepInfo(sweep_dir.name, sweep_dir, manifest))
        return sweeps

    def find(self, sweep_id: str) -> SweepInfo:
        """Locate a sweep by id (or unique id prefix)."""
        return resolve_id(self.list_sweeps(), sweep_id,
                          lambda s: s.sweep_id, "sweep", self.root)

    def latest(self, name: Optional[str] = None,
               unfinished_only: bool = False) -> SweepInfo:
        label = f"sweeps of {name!r}" if name else "sweeps"
        return pick_latest(self.list_sweeps(name), lambda s: s.status,
                           label, self.root,
                           unfinished_only=unfinished_only)

    def summaries(self, sweep: SweepInfo) -> Dict[str, dict]:
        """point_id -> last summary line on disk (skips torn lines)."""
        return {entry["point_id"]: entry for entry in
                read_jsonl(sweep.path / SWEEP_SUMMARY_NAME)}
