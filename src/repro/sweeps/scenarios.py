"""Built-in sweeps reproducing the paper's results *surfaces*.

``noise_robustness``
    Input corruption level x dataset, over the ``noise_robustness``
    scenario: how fast does online-EMSTDP accuracy fall off as the edge
    sensor degrades, per dataset difficulty tier.
``t_sweep``
    Timing precision ``T`` (``phase_length``) x dataset, over the
    ``timing_precision`` scenario: accuracy *and* modeled chip energy per
    inference vs. the presentation length — extending the Fig. 3
    accuracy/energy trade-off story to the time axis (a shorter phase is
    linearly cheaper but quantizes the rate code harder).

A sweep builder mirrors the scenario ``build_spec`` contract: it takes
``tiny`` and returns a :class:`~repro.sweeps.spec.SweepSpec` (the tiny
variants are 2x2 grids sized for the <60s CI smoke job).  Register new
sweeps with :func:`register_sweep`; the CLI discovers them by name, and
any plain scenario can still be swept ad hoc with ``--axis``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict

from ..experiments.scenarios import get_scenario
from .spec import SweepAxis, SweepSpec


@dataclasses.dataclass(frozen=True)
class SweepFamily:
    """A named, buildable sweep."""

    name: str
    description: str
    build_sweep: Callable[..., SweepSpec]


SWEEPS: Dict[str, SweepFamily] = {}


def register_sweep(family: SweepFamily) -> SweepFamily:
    if family.name in SWEEPS:
        raise ValueError(f"sweep {family.name!r} already registered")
    SWEEPS[family.name] = family
    return family


def get_sweep(name: str) -> SweepFamily:
    if name not in SWEEPS:
        raise KeyError(
            f"unknown sweep {name!r}; available: {sorted(SWEEPS)}")
    return SWEEPS[name]


# ---------------------------------------------------------------------------
# noise_robustness: corruption level x dataset
# ---------------------------------------------------------------------------

def _noise_sweep(tiny: bool = False, **overrides) -> SweepSpec:
    base = get_scenario("noise_robustness").build_spec(tiny=tiny)
    if overrides:
        base = base.replace(**overrides)
    if tiny:
        grid = (SweepAxis("params.noise_level", (0.0, 0.4)),
                SweepAxis("dataset", ("mnist_like", "fashion_like")))
    else:
        grid = (SweepAxis("params.noise_level", (0.0, 0.1, 0.2, 0.4)),
                SweepAxis("dataset", ("mnist_like", "fashion_like",
                                      "cifar_like")))
    return SweepSpec(name="noise_robustness", base=base, grid=grid,
                     objective="rate.noisy_acc", mode="max")


register_sweep(SweepFamily(
    name="noise_robustness",
    description="Input corruption level x dataset over the "
                "noise_robustness scenario (accuracy fall-off surface)",
    build_sweep=_noise_sweep,
))


# ---------------------------------------------------------------------------
# t_sweep: timing precision x dataset
# ---------------------------------------------------------------------------

def _t_sweep(tiny: bool = False, **overrides) -> SweepSpec:
    base = get_scenario("timing_precision").build_spec(tiny=tiny)
    if overrides:
        base = base.replace(**overrides)
    if tiny:
        grid = (SweepAxis("phase_length", (8, 16)),
                SweepAxis("dataset", ("mnist_like", "fashion_like")))
    else:
        grid = (SweepAxis("phase_length", (8, 16, 32, 64)),
                SweepAxis("dataset", ("mnist_like", "fashion_like")))
    return SweepSpec(name="t_sweep", base=base, grid=grid,
                     objective="rate.test_acc", mode="max")


register_sweep(SweepFamily(
    name="t_sweep",
    description="Timing precision T x dataset over the timing_precision "
                "scenario (accuracy + modeled energy vs. phase length)",
    build_sweep=_t_sweep,
))
