"""From-scratch numpy CNN used to pretrain the convolutional frontend.

The paper pretrains the two conv layers *offline* with the respective
dataset before mapping them onto the chip ("the convolutional layers are
pretrained offline ... whereas the dense layers are trained from scratch in
the Loihi", Section IV-A) — a transfer-learning setup.  This module is that
offline substrate: im2col convolutions, ReLU, a linear classifier head, and
a plain SGD-with-momentum trainer on softmax cross-entropy.

After pretraining, :class:`ConvFrontend.features` exposes the flattened,
[0, 1]-normalized conv activations used as rate-coded input to the on-chip
dense layers.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from .topology import ConvSpec, DenseSpec, parse_topology


def im2col(x: np.ndarray, kernel: int, stride: int) -> Tuple[np.ndarray, int, int]:
    """Patch-extract ``(N, H, W, C)`` into ``(N, OH, OW, k*k*C)`` columns."""
    n, h, w, c = x.shape
    pad = kernel // 2
    xp = np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))
    oh = (h + 2 * pad - kernel) // stride + 1
    ow = (w + 2 * pad - kernel) // stride + 1
    cols = np.empty((n, oh, ow, kernel * kernel * c), dtype=x.dtype)
    idx = 0
    for dr in range(kernel):
        for dc in range(kernel):
            patch = xp[:, dr:dr + stride * oh:stride,
                       dc:dc + stride * ow:stride, :]
            cols[..., idx * c:(idx + 1) * c] = patch
            idx += 1
    return cols, oh, ow


class ConvLayer:
    """One strided convolution + ReLU."""

    def __init__(self, spec: ConvSpec, in_channels: int,
                 rng: np.random.Generator):
        self.spec = spec
        fan_in = spec.kernel * spec.kernel * in_channels
        self.weight = rng.normal(0, np.sqrt(2.0 / fan_in),
                                 size=(fan_in, spec.channels))
        self.bias = np.zeros(spec.channels)
        self._cache = None
        self.v_w = np.zeros_like(self.weight)
        self.v_b = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        cols, oh, ow = im2col(x, self.spec.kernel, self.spec.stride)
        z = cols @ self.weight + self.bias
        out = np.maximum(z, 0.0)
        if train:
            self._cache = (cols, z, x.shape)
        return out

    def backward(self, grad: np.ndarray, lr: float,
                 momentum: float) -> Optional[np.ndarray]:
        cols, z, x_shape = self._cache
        grad = grad * (z > 0)
        n = grad.shape[0]
        g2 = grad.reshape(-1, grad.shape[-1])
        c2 = cols.reshape(-1, cols.shape[-1])
        dw = c2.T @ g2 / n
        db = g2.mean(axis=0) * g2.shape[0] / n
        self.v_w = momentum * self.v_w - lr * dw
        self.v_b = momentum * self.v_b - lr * db
        self.weight += self.v_w
        self.bias += self.v_b
        # Input gradient is not needed for a 2-layer frontend head-first
        # training scheme, but col2im is implemented for completeness.
        dcols = g2 @ self.weight.T
        return self._col2im(dcols.reshape(cols.shape), x_shape)

    def _col2im(self, dcols: np.ndarray, x_shape) -> np.ndarray:
        n, h, w, c = x_shape
        k, stride = self.spec.kernel, self.spec.stride
        pad = k // 2
        dxp = np.zeros((n, h + 2 * pad, w + 2 * pad, c))
        _, oh, ow, _ = dcols.shape
        idx = 0
        for dr in range(k):
            for dc in range(k):
                dxp[:, dr:dr + stride * oh:stride,
                    dc:dc + stride * ow:stride, :] += \
                    dcols[..., idx * c:(idx + 1) * c]
                idx += 1
        return dxp[:, pad:pad + h, pad:pad + w, :]


class LinearLayer:
    """Dense layer (used as the pretraining classifier head)."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator):
        self.weight = rng.normal(0, np.sqrt(2.0 / n_in), size=(n_in, n_out))
        self.bias = np.zeros(n_out)
        self._cache = None
        self.v_w = np.zeros_like(self.weight)
        self.v_b = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if train:
            self._cache = x
        return x @ self.weight + self.bias

    def backward(self, grad: np.ndarray, lr: float,
                 momentum: float) -> np.ndarray:
        x = self._cache
        n = grad.shape[0]
        dw = x.T @ grad / n
        db = grad.mean(axis=0)
        dx = grad @ self.weight.T
        self.v_w = momentum * self.v_w - lr * dw
        self.v_b = momentum * self.v_b - lr * db
        self.weight += self.v_w
        self.bias += self.v_b
        return dx


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray
                          ) -> Tuple[float, np.ndarray]:
    z = logits - logits.max(axis=1, keepdims=True)
    p = np.exp(z)
    p /= p.sum(axis=1, keepdims=True)
    n = len(labels)
    loss = -np.log(p[np.arange(n), labels] + 1e-12).mean()
    grad = p
    grad[np.arange(n), labels] -= 1.0
    return float(loss), grad


@dataclasses.dataclass
class PretrainResult:
    train_accuracy: float
    losses: List[float]


class ConvFrontend:
    """The conv stack + throwaway classifier head, trained offline."""

    def __init__(self, topology: str, seed: int = 0):
        self.input_spec, layer_specs = parse_topology(topology)
        self.rng = np.random.default_rng(seed)
        self.conv_layers: List[ConvLayer] = []
        c = self.input_spec.channels
        h, w = self.input_spec.height, self.input_spec.width
        for spec in layer_specs:
            if isinstance(spec, ConvSpec):
                self.conv_layers.append(ConvLayer(spec, c, self.rng))
                h, w = spec.output_hw(h, w)
                c = spec.channels
        self.feature_shape = (h, w, c)
        self.n_features = h * w * c
        dense_units = [s.units for s in layer_specs
                       if isinstance(s, DenseSpec)]
        self.n_classes = dense_units[-1]
        self.head = LinearLayer(self.n_features, self.n_classes, self.rng)
        #: 99th-percentile activation used to normalize features to [0, 1].
        self.feature_scale = 1.0

    def _ensure_nhwc(self, images: np.ndarray) -> np.ndarray:
        x = np.asarray(images, dtype=float)
        if x.ndim == 3:  # (N, H, W) greyscale
            x = x[..., None]
        if x.ndim != 4:
            raise ValueError("images must be (N,H,W) or (N,H,W,C)")
        return x

    def _conv_forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        for layer in self.conv_layers:
            x = layer.forward(x, train=train)
        return x.reshape(len(x), -1)

    def pretrain(self, images: np.ndarray, labels: np.ndarray,
                 epochs: int = 5, batch_size: int = 32, lr: float = 0.05,
                 momentum: float = 0.9) -> PretrainResult:
        """Offline supervised pretraining with SGD + momentum."""
        x = self._ensure_nhwc(images)
        labels = np.asarray(labels, dtype=np.int64)
        losses: List[float] = []
        n = len(x)
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                feats = self._conv_forward(x[idx], train=True)
                logits = self.head.forward(feats, train=True)
                loss, grad = softmax_cross_entropy(logits, labels[idx])
                losses.append(loss)
                dfeat = self.head.backward(grad, lr, momentum)
                dfeat = dfeat.reshape((len(idx),) + self.feature_shape)
                for layer in reversed(self.conv_layers):
                    dfeat = layer.backward(dfeat, lr, momentum)
        feats = self._conv_forward(x)
        self.feature_scale = max(float(np.percentile(feats, 99)), 1e-6)
        preds = np.argmax(self.head.forward(feats), axis=1)
        return PretrainResult(
            train_accuracy=float((preds == labels).mean()), losses=losses)

    def features(self, images: np.ndarray) -> np.ndarray:
        """[0, 1]-normalized flattened conv features (spike-rate input)."""
        x = self._ensure_nhwc(images)
        feats = self._conv_forward(x) / self.feature_scale
        return np.clip(feats, 0.0, 1.0)

    def head_accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy of the offline head (pretraining diagnostic only)."""
        feats = self._conv_forward(self._ensure_nhwc(images))
        preds = np.argmax(self.head.forward(feats), axis=1)
        return float((preds == np.asarray(labels)).mean())
