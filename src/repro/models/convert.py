"""Conversion of pretrained conv layers into fixed on-chip weight matrices.

The paper maps the offline-pretrained convolutions onto Loihi as ordinary
(non-plastic) synaptic connectivity; a strided convolution is just a sparse
linear map, so each conv layer unrolls into a dense ``(n_in, n_out)`` matrix
whose nonzero pattern is the receptive-field structure.  A ReLU unit with
non-negative input maps onto an IF neuron whose rate is the (clipped)
normalized pre-activation.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .conv import ConvFrontend


def conv_layer_matrix(weight: np.ndarray, kernel: int, stride: int,
                      in_shape: Tuple[int, int, int]
                      ) -> Tuple[np.ndarray, Tuple[int, int, int]]:
    """Unroll an im2col conv weight into a flat ``(n_in, n_out)`` matrix.

    ``weight`` has shape ``(kernel*kernel*C_in, C_out)`` as stored by
    :class:`~repro.models.conv.ConvLayer`; ``in_shape`` is ``(H, W, C_in)``.
    """
    h, w, c = in_shape
    pad = kernel // 2
    oh = (h + 2 * pad - kernel) // stride + 1
    ow = (w + 2 * pad - kernel) // stride + 1
    c_out = weight.shape[1]
    mat = np.zeros((h * w * c, oh * ow * c_out))
    for orow in range(oh):
        for ocol in range(ow):
            base_r = orow * stride - pad
            base_c = ocol * stride - pad
            for dr in range(kernel):
                for dc in range(kernel):
                    r, cc_ = base_r + dr, base_c + dc
                    if not (0 <= r < h and 0 <= cc_ < w):
                        continue
                    k_idx = dr * kernel + dc
                    for ci in range(c):
                        src = (r * w + cc_) * c + ci
                        dst0 = (orow * ow + ocol) * c_out
                        mat[src, dst0:dst0 + c_out] += \
                            weight[k_idx * c + ci, :]
    return mat, (oh, ow, c_out)


def frontend_matrices(frontend: ConvFrontend
                      ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """All conv layers of a frontend as flat matrices (weights, biases).

    Weights and biases are normalized by the frontend's feature scale so the
    resulting IF rates live in [0, 1] like the offline features.  The
    normalization is folded into the *last* conv layer only (earlier layers'
    scales cancel through the linear maps between ReLUs only approximately;
    per-layer scales are calibrated from the layer activations instead).
    """
    mats: List[np.ndarray] = []
    biases: List[np.ndarray] = []
    shape = frontend.input_spec.shape
    for i, layer in enumerate(frontend.conv_layers):
        mat, shape = conv_layer_matrix(layer.weight, layer.spec.kernel,
                                       layer.spec.stride, shape)
        bias = np.tile(layer.bias, shape[0] * shape[1])
        if i == len(frontend.conv_layers) - 1:
            mat = mat / frontend.feature_scale
            bias = bias / frontend.feature_scale
        mats.append(mat)
        biases.append(bias)
    return mats, biases
