"""Parser for the paper's network topology strings.

Section IV-A describes the evaluation network as::

    W x H x C - 5x5k 16c 2s - 3x3k 8c 2s - 100d - 10d

i.e. an input volume, two strided convolutions (kernel ``k``, channels
``c``, stride ``s``) and two dense layers.  :func:`parse_topology` accepts
the compact form ``"16x16x1-5x5k16c2s-3x3k8c2s-100d-10d"`` and returns the
layer specs plus the resulting feature dimensions.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List, Tuple, Union


@dataclasses.dataclass(frozen=True)
class InputSpec:
    height: int
    width: int
    channels: int

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.height, self.width, self.channels)


@dataclasses.dataclass(frozen=True)
class ConvSpec:
    kernel: int
    channels: int
    stride: int

    def output_hw(self, h: int, w: int) -> Tuple[int, int]:
        """Output spatial size with 'same-ish' padding of kernel//2."""
        pad = self.kernel // 2
        oh = (h + 2 * pad - self.kernel) // self.stride + 1
        ow = (w + 2 * pad - self.kernel) // self.stride + 1
        return oh, ow


@dataclasses.dataclass(frozen=True)
class DenseSpec:
    units: int


LayerSpec = Union[ConvSpec, DenseSpec]

_INPUT_RE = re.compile(r"^(\d+)x(\d+)x(\d+)$")
_CONV_RE = re.compile(r"^(\d+)x(\d+)k(\d+)c(\d+)s$")
_DENSE_RE = re.compile(r"^(\d+)d$")


def parse_topology(spec: str) -> Tuple[InputSpec, List[LayerSpec]]:
    """Parse a topology string into an input spec and layer specs."""
    tokens = [t.strip() for t in spec.replace(" ", "").split("-") if t.strip()]
    if not tokens:
        raise ValueError("empty topology spec")
    m = _INPUT_RE.match(tokens[0])
    if not m:
        raise ValueError(f"first token must be WxHxC, got {tokens[0]!r}")
    input_spec = InputSpec(*(int(g) for g in m.groups()))
    layers: List[LayerSpec] = []
    for tok in tokens[1:]:
        m = _CONV_RE.match(tok)
        if m:
            kh, kw, ch, st = (int(g) for g in m.groups())
            if kh != kw:
                raise ValueError(f"only square kernels supported: {tok!r}")
            layers.append(ConvSpec(kernel=kh, channels=ch, stride=st))
            continue
        m = _DENSE_RE.match(tok)
        if m:
            layers.append(DenseSpec(units=int(m.group(1))))
            continue
        raise ValueError(f"cannot parse layer token {tok!r}")
    if not layers or not isinstance(layers[-1], DenseSpec):
        raise ValueError("topology must end with a dense layer")
    for a, b in zip(layers, layers[1:]):
        if isinstance(a, DenseSpec) and isinstance(b, ConvSpec):
            raise ValueError("conv layers cannot follow dense layers")
    return input_spec, layers


def feature_dims(spec: str) -> Tuple[int, List[int]]:
    """Flattened conv-feature size and the dense layer widths.

    Returns ``(n_features, dense_units)`` where ``n_features`` is the input
    dimension of the first dense layer (the on-chip trainable part).
    """
    input_spec, layers = parse_topology(spec)
    h, w, c = input_spec.shape
    dense: List[int] = []
    for layer in layers:
        if isinstance(layer, ConvSpec):
            if dense:
                raise ValueError("conv after dense")
            h, w = layer.output_hw(h, w)
            c = layer.channels
        else:
            dense.append(layer.units)
    return h * w * c, dense


def paper_topology(side: int = 16, channels: int = 1) -> str:
    """The Section IV-A network at a given input size."""
    return f"{side}x{side}x{channels}-5x5k16c2s-3x3k8c2s-100d-10d"
