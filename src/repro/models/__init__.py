"""Offline model substrate: topology parsing and conv-frontend pretraining."""

from .conv import (ConvFrontend, ConvLayer, LinearLayer, PretrainResult,
                   im2col, softmax_cross_entropy)
from .topology import (ConvSpec, DenseSpec, InputSpec, feature_dims,
                       paper_topology, parse_topology)

__all__ = ["ConvFrontend", "ConvLayer", "ConvSpec", "DenseSpec", "InputSpec",
           "LinearLayer", "PretrainResult", "feature_dims", "im2col",
           "paper_topology", "parse_topology", "softmax_cross_entropy"]
