"""Checkpoint save/load: npz arrays + a JSON manifest, versioned.

A checkpoint is a *pair* of files sharing one stem:

``<stem>.npz``
    Every array in the model's ``state_dict`` (lists of arrays are stored
    as ``key.0``, ``key.1``, ... entries), saved uncompressed for fast
    round trips.
``<stem>.json``
    The manifest: checkpoint format version, the ``repro`` package version
    that wrote it, the model class name, all non-array state, and optional
    caller metadata (seed, experiment name, ...).

Any object exposing the ``state_dict`` / ``load_state_dict`` protocol works
— :class:`repro.core.EMSTDPNetwork`, :class:`repro.baselines.BackpropMLP`
and :class:`repro.onchip.LoihiEMSTDPTrainer` all do.  Restoring is strict:
the manifest's model class must match the target object, format versions
from the future are rejected, and dimension mismatches surface as the
model's own ``load_state_dict`` errors.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

#: Bump when the on-disk layout changes; readers reject newer versions.
CHECKPOINT_FORMAT_VERSION = 1

_ARRAY_LIST = "__array_list__"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or applied."""


def checkpoint_paths(stem: Union[str, Path]) -> Tuple[Path, Path]:
    """The ``(npz, json)`` file pair behind checkpoint ``stem``.

    ``stem`` may be a ``str`` or a :class:`~pathlib.Path`; a stem that
    already carries one of the pair's extensions (``ckpt/model.npz`` or
    ``ckpt/model.json``) resolves to the same pair as the bare stem, so
    tab-completed file names work everywhere a stem is accepted.  Other
    extensions are appended, not substituted: a stem like
    ``ckpt/model-v1.2`` keeps its dot instead of being truncated the way
    ``Path.with_suffix`` would.
    """
    stem = Path(stem)
    name = stem.name
    if name.endswith((".npz", ".json")):
        name = name.rsplit(".", 1)[0]
    return (stem.parent / (name + ".npz"),
            stem.parent / (name + ".json"))


def save_checkpoint(model, stem: Union[str, Path],
                    meta: Optional[Dict[str, object]] = None) -> Path:
    """Write ``model.state_dict()`` to ``<stem>.npz`` + ``<stem>.json``.

    Returns the manifest path.  ``meta`` is stored verbatim under the
    manifest's ``"meta"`` key (it must be JSON-serializable).
    """
    from .. import __version__

    state = model.state_dict()
    arrays: Dict[str, np.ndarray] = {}
    json_state: Dict[str, object] = {}
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            json_state[key] = {_ARRAY_LIST: None}  # scalar array marker
            arrays[key] = value
        elif (isinstance(value, (list, tuple)) and value
              and all(isinstance(v, np.ndarray) for v in value)):
            json_state[key] = {_ARRAY_LIST: len(value)}
            for i, v in enumerate(value):
                arrays[f"{key}.{i}"] = v
        else:
            json_state[key] = _jsonable(key, value)

    npz_path, json_path = checkpoint_paths(stem)
    npz_path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(npz_path, **arrays)
    manifest = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "repro_version": __version__,
        "model_class": type(model).__name__,
        "state": json_state,
        "meta": dict(meta) if meta else {},
    }
    json_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return json_path


def load_checkpoint(stem: Union[str, Path], model=None,
                    ) -> Tuple[Dict[str, object], dict]:
    """Read a checkpoint; returns ``(state_dict, manifest)``.

    When ``model`` is given, the checkpoint is also applied via
    ``model.load_state_dict`` after checking that the manifest's model
    class matches ``type(model).__name__``.  A missing half of the pair —
    whichever of ``<stem>.json`` / ``<stem>.npz`` is absent — raises
    :class:`CheckpointError` naming the missing file, never a raw
    ``FileNotFoundError``.
    """
    npz_path, json_path = checkpoint_paths(stem)
    if not json_path.exists():
        if npz_path.exists():
            raise CheckpointError(
                f"array file {npz_path} has no manifest {json_path} "
                f"(checkpoints are .npz/.json pairs)")
        raise CheckpointError(f"no checkpoint manifest at {json_path}")
    if not npz_path.exists():
        raise CheckpointError(f"manifest {json_path} has no array file "
                              f"{npz_path}")
    manifest = json.loads(json_path.read_text())
    fmt = int(manifest.get("format_version", -1))
    if not 0 <= fmt <= CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format v{fmt} is newer than this build "
            f"(v{CHECKPOINT_FORMAT_VERSION}); upgrade repro to read it")

    state: Dict[str, object] = {}
    with np.load(npz_path, allow_pickle=False) as arrays:
        for key, value in manifest["state"].items():
            if isinstance(value, dict) and _ARRAY_LIST in value:
                n = value[_ARRAY_LIST]
                if n is None:
                    state[key] = arrays[key]
                else:
                    state[key] = [arrays[f"{key}.{i}"] for i in range(n)]
            else:
                state[key] = value

    if model is not None:
        expected = manifest["model_class"]
        if type(model).__name__ != expected:
            raise CheckpointError(
                f"checkpoint holds a {expected}, cannot load into "
                f"{type(model).__name__}")
        model.load_state_dict(state)
    return state, manifest


def _jsonable(key: str, value):
    """Plain-JSON view of a non-array state entry (tuples become lists)."""
    try:
        return json.loads(json.dumps(value, default=_coerce))
    except TypeError as exc:  # pragma: no cover - defensive
        raise CheckpointError(
            f"state entry {key!r} is not JSON-serializable: {exc}") from exc


def _coerce(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    raise TypeError(f"unsupported type {type(value).__name__}")
