"""Versioned checkpoint persistence for every trainable model."""

from .checkpoint import (CHECKPOINT_FORMAT_VERSION, CheckpointError,
                         checkpoint_paths, load_checkpoint, save_checkpoint)

__all__ = ["CHECKPOINT_FORMAT_VERSION", "CheckpointError", "checkpoint_paths",
           "load_checkpoint", "save_checkpoint"]
