"""Backend-selected compiled kernels for the per-timestep inner loops.

Every number in ``BENCH_*.json`` bottoms out in the same four hot loops:
the IF membrane update (:mod:`repro.core.neuron` and the chip compartments
in :mod:`repro.loihi.compartment`), trace decay/accumulation
(:mod:`repro.loihi.traces`), the EMSTDP ``dW`` accumulation (Eq. 7 /
Eq. 12 in :mod:`repro.core.learning`) and the microcode sum-of-products
(:mod:`repro.loihi.microcode`).  This package routes them through one of
three interchangeable backends:

``numba``
    The reference loops under ``@njit(cache=True)``.  Preferred when numba
    is installed.
``cext``
    The same loops as C, compiled once with the system compiler and loaded
    via ctypes (no third-party dependency beyond a C compiler).
``numpy``
    The pure-NumPy reference implementation — always available.

Selection happens once at import: the first available backend in the order
above wins, with a single ``RuntimeWarning`` if only NumPy is left.  The
``REPRO_KERNEL_BACKEND`` environment variable overrides autodetection
(values: ``numba``, ``cext``, ``numpy``); an unknown value raises
``ValueError``, a known-but-unavailable one raises ``ImportError`` — an
explicit request must never silently degrade.

The backends are pinned bit-identical to each other — exact
``np.array_equal``, never ``allclose`` — by ``tests/test_kernels.py`` and
the golden fixtures in ``tests/golden/``, because the EMSTDP learning rule
is the paper's core contribution: a fast kernel that drifts the math by one
ulp is a wrong kernel.  ``benchmarks/bench_kernels.py`` gates the speedup.
"""

from __future__ import annotations

import contextlib
import functools
import os
import warnings
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "available_backends", "backend_name", "cuba_step", "delta_w",
    "delta_w_batch", "delta_w_loihi", "forced_backend", "if_step",
    "select_backend", "sum_of_products", "trace_update",
]

#: Autodetection preference order.
BACKENDS = ("numba", "cext", "numpy")

#: Environment variable overriding backend autodetection.
ENV_VAR = "REPRO_KERNEL_BACKEND"


def _import_numba():
    from . import _numba
    return _numba


def _import_cext():
    from . import _cext
    return _cext


def _import_numpy():
    from . import _numpy
    return _numpy


#: name -> loader.  Kept as a module-level dict so tests can monkeypatch a
#: loader to raise ImportError and exercise the degradation chain.
_LOADERS = {
    "numba": _import_numba,
    "cext": _import_cext,
    "numpy": _import_numpy,
}

_active_name: Optional[str] = None
_active_impl = None


def select_backend(name: Optional[str] = None) -> str:
    """Select the kernel backend; ``None`` autodetects.

    Explicit names fail loudly: ``ValueError`` for an unknown name,
    ``ImportError`` when the requested backend cannot be loaded.
    Autodetection walks :data:`BACKENDS` in order and warns once if it has
    to degrade all the way to pure NumPy.
    """
    global _active_name, _active_impl
    if name is not None:
        key = str(name).strip().lower()
        if key not in _LOADERS:
            raise ValueError(
                f"unknown kernel backend {name!r} (from ${ENV_VAR} or "
                f"select_backend): valid values are "
                f"{', '.join(repr(b) for b in BACKENDS)}")
        try:
            impl = _LOADERS[key]()
        except ImportError as exc:
            raise ImportError(
                f"kernel backend {key!r} was requested explicitly but is "
                f"not available: {exc}") from exc
        _active_name, _active_impl = key, impl
        return key
    failures = []
    for key in BACKENDS:
        try:
            impl = _LOADERS[key]()
        except ImportError as exc:
            failures.append(f"{key}: {exc}")
            continue
        if key == "numpy" and failures:
            warnings.warn(
                "no compiled kernel backend is available ("
                + "; ".join(failures)
                + "); falling back to pure-NumPy kernels.  Results are "
                "bit-identical but the per-timestep inner loops run "
                "slower.", RuntimeWarning, stacklevel=2)
        _active_name, _active_impl = key, impl
        return key
    raise ImportError(  # pragma: no cover - the numpy backend always loads
        "no kernel backend could be loaded: " + "; ".join(failures))


def backend_name() -> str:
    """Name of the active backend (``numba``, ``cext`` or ``numpy``)."""
    return _active_name


def available_backends() -> Tuple[str, ...]:
    """Backends that load successfully on this machine."""
    out = []
    for key in BACKENDS:
        try:
            _LOADERS[key]()
        except ImportError:
            continue
        out.append(key)
    return tuple(out)


@contextlib.contextmanager
def forced_backend(name: str):
    """Temporarily force a backend (used by tests and benchmarks)."""
    previous = _active_name
    select_backend(name)
    try:
        yield
    finally:
        select_backend(previous)


# ----------------------------------------------------------------------
# Input normalization
#
# Backends operate on flat C-contiguous arrays.  State arrays (membrane,
# refractory counters, traces) are updated in place: contiguous arrays are
# handed to the backend directly, non-contiguous views go through a
# copy/compute/copy-back round trip so callers holding odd views still see
# the update.
# ----------------------------------------------------------------------

_FLOAT_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _state(a: np.ndarray, dtypes) -> tuple:
    """Flat contiguous view of an in-place state array + write-back hook."""
    if not isinstance(a, np.ndarray) or a.dtype not in dtypes:
        raise TypeError(
            f"state array must be a numpy array with dtype in "
            f"{[str(d) for d in dtypes]}, got {getattr(a, 'dtype', type(a))}")
    if a.flags.c_contiguous:
        return a.reshape(-1), None
    flat = np.ascontiguousarray(a).reshape(-1)
    return flat, lambda: np.copyto(a, flat.reshape(a.shape))


def _input(a, dtype, shape) -> np.ndarray:
    """Flat contiguous read-only operand, broadcast to ``shape``."""
    a = np.asarray(a, dtype=dtype)
    if a.shape != shape:
        a = np.broadcast_to(a, shape)
    return np.ascontiguousarray(a).reshape(-1)


def _impl():
    return _active_impl


# ----------------------------------------------------------------------
# Public kernels
# ----------------------------------------------------------------------

def if_step(v: np.ndarray, refrac: np.ndarray, drive, threshold: float,
            soft_reset: bool = True, refractory: int = 0) -> np.ndarray:
    """One IF timestep: integrate ``drive``, spike, soft/hard reset.

    ``v`` (float32/float64) and ``refrac`` (int64) are updated in place;
    returns the boolean spike array with ``v``'s shape.
    """
    vf, v_back = _state(v, _FLOAT_DTYPES)
    rf, r_back = _state(refrac, (np.dtype(np.int64),))
    if refrac.shape != v.shape:
        raise ValueError(
            f"refrac shape {refrac.shape} != membrane shape {v.shape}")
    df = _input(drive, v.dtype, v.shape)
    spikes = _impl().if_step(vf, rf, df, float(threshold), bool(soft_reset),
                             int(refractory))
    for back in (v_back, r_back):
        if back is not None:
            back()
    return spikes.reshape(v.shape)


def cuba_step(u: np.ndarray, v: np.ndarray, refrac: np.ndarray,
              bias: np.ndarray, syn_input, decay_u: int, decay_v: int,
              vth: int, soft_reset: bool = True, refractory: int = 0,
              floor_at_zero: bool = True,
              non_spiking: bool = False) -> np.ndarray:
    """One CUBA LIF timestep on Loihi's integer state (Eq. 8).

    ``u``, ``v`` and ``refrac`` (all int64) are updated in place; returns
    the boolean fired array.  ``decay_*`` use the 12-bit convention where
    4096 clears the state every step.
    """
    i64 = (np.dtype(np.int64),)
    uf, u_back = _state(u, i64)
    vf, v_back = _state(v, i64)
    rf, r_back = _state(refrac, i64)
    if u.shape != v.shape or refrac.shape != v.shape:
        raise ValueError("u, v and refrac must share one shape")
    bf = _input(bias, np.int64, v.shape)
    sf = _input(syn_input, np.int64, v.shape)
    fired = _impl().cuba_step(uf, vf, rf, bf, sf, int(decay_u), int(decay_v),
                              int(vth), bool(soft_reset), int(refractory),
                              bool(floor_at_zero), bool(non_spiking))
    for back in (u_back, v_back, r_back):
        if back is not None:
            back()
    return fired.reshape(v.shape)


def trace_update(values: np.ndarray, spikes, impulse: float, decay: float,
                 trace_max: float) -> None:
    """One trace timestep: decay, add ``impulse`` where spiked, saturate.

    ``values`` (float32/float64) is updated in place.
    """
    vf, v_back = _state(values, _FLOAT_DTYPES)
    sf = _input(spikes, bool, values.shape)
    _impl().trace_update(vf, sf, float(impulse), float(decay),
                         float(trace_max))
    if v_back is not None:
        v_back()


def _dw_operands(*arrays):
    """Common dtype (float32 only if everything already is) + flat copies."""
    arrays = [np.asarray(a) for a in arrays]
    dtype = np.result_type(*arrays)
    if dtype not in _FLOAT_DTYPES:
        dtype = np.dtype(np.float64)
    return dtype, arrays


def delta_w(h_hat_post, h_post, h_pre, eta: float) -> np.ndarray:
    """Eq. (7): ``dW[i, j] = eta * (h_hat[j] - h[j]) * h_pre[i]``.

    Inputs are raveled (matching ``np.outer``); returns
    ``(h_pre.size, h_hat.size)``.
    """
    dtype, (h_hat, h, pre) = _dw_operands(h_hat_post, h_post, h_pre)
    if h_hat.size != h.size:
        raise ValueError(
            f"h_hat has {h_hat.size} entries, h has {h.size}")
    h_hat = _input(h_hat, dtype, h_hat.shape)
    h = _input(h, dtype, h.shape)
    pre = _input(pre, dtype, pre.shape)
    return _impl().delta_w(h_hat, h, pre, float(eta))


def delta_w_batch(h_hat_post, h_post, h_pre, eta: float,
                  mean: bool = True) -> np.ndarray:
    """Batched Eq. (7), accumulated in batch order then scaled.

    ``h_hat_post`` / ``h_post`` are ``(B, n_post)``, ``h_pre`` is
    ``(B, n_pre)``; returns ``(n_pre, n_post)``.  The reduction order is
    part of the kernel contract (sample 0 first), which is what lets a
    compiled loop be bit-identical to the NumPy reference — a BLAS GEMM's
    blocked summation order would not be.
    """
    dtype, (h_hat, h, pre) = _dw_operands(h_hat_post, h_post, h_pre)
    if h_hat.ndim != 2 or pre.ndim != 2 or h_hat.shape != h.shape \
            or h_hat.shape[0] != pre.shape[0]:
        raise ValueError(
            f"expected (B, n_post) and (B, n_pre) stacks, got "
            f"{h_hat.shape}, {h.shape} and {pre.shape}")
    if mean and h_hat.shape[0] == 0:
        raise ValueError("cannot mean-reduce an empty batch")
    flat = [np.ascontiguousarray(a, dtype=dtype) for a in (h_hat, h, pre)]
    return _impl().delta_w_batch(*flat, float(eta), bool(mean))


def delta_w_loihi(h_hat_post, z_post, pre_trace, eta: float) -> np.ndarray:
    """Eq. (12): ``dW = (2*eta*h_hat - eta*Z) (x) pre`` (inputs raveled)."""
    dtype, (h_hat, z, pre) = _dw_operands(h_hat_post, z_post, pre_trace)
    if h_hat.size != z.size:
        raise ValueError(f"h_hat has {h_hat.size} entries, Z has {z.size}")
    h_hat = _input(h_hat, dtype, h_hat.shape)
    z = _input(z, dtype, z.shape)
    pre = _input(pre, dtype, pre.shape)
    return _impl().delta_w_loihi(h_hat, z, pre, float(eta))


# -- microcode sum-of-products -----------------------------------------

#: Factor-variable encoding shared by all backends: (kind, index) where
#: kind 0 = presynaptic, 1 = postsynaptic, 2 = synaptic, 3 = bare constant.
_VAR_CODES = {
    "x0": (0, 0), "x1": (0, 1),
    "y0": (1, 0), "y1": (1, 1),
    "t": (2, 0), "w": (2, 1),
    None: (3, 0),
}


@functools.lru_cache(maxsize=256)
def _flatten_rule(rule) -> tuple:
    """Flatten a parsed :class:`SumOfProducts` rule into plain arrays."""
    scales, offs, kinds, idxs, consts = [], [0], [], [], []
    for term in rule.terms:
        scales.append(float(term.sign) * 2.0 ** term.scale_exp)
        for factor in term.factors:
            kind, idx = _VAR_CODES[factor.var]
            kinds.append(kind)
            idxs.append(idx)
            consts.append(float(factor.const))
        offs.append(len(kinds))
    return (np.array(scales, dtype=np.float64),
            np.array(offs, dtype=np.int32),
            np.array(kinds, dtype=np.int32),
            np.array(idxs, dtype=np.int32),
            np.array(consts, dtype=np.float64))


def sum_of_products(rule, x0, x1, y0, y1, tag, w) -> np.ndarray:
    """Evaluate a microcode rule ``z += sum_i S_i * prod_j (V_ij + C_ij)``.

    ``x0``/``x1`` are presynaptic ``(S,)`` (or replicated ``(R, S)``),
    ``y0``/``y1`` postsynaptic ``(D,)`` / ``(R, D)``, ``tag``/``w``
    synaptic ``(S, D)`` / ``(R, S, D)``.  Returns the float64 ``dz`` block
    with the synaptic shape.  Trace/tag magnitudes are hardware-bounded
    (7-to-9-bit), so the int -> float64 conversions are exact and the
    result is bit-identical across backends.
    """
    tag = np.asarray(tag)
    replicated = tag.ndim == 3
    if replicated:
        n_rep, n_src, n_dst = tag.shape
    elif tag.ndim == 2:
        n_rep, (n_src, n_dst) = 1, tag.shape
    else:
        raise ValueError(f"synaptic block must be 2-D or 3-D, got {tag.ndim}-D")
    pre_shape = (n_rep, n_src) if replicated else (n_src,)
    post_shape = (n_rep, n_dst) if replicated else (n_dst,)
    pre_stack = np.ascontiguousarray(
        [np.broadcast_to(np.asarray(a, dtype=np.float64), pre_shape)
         for a in (x0, x1)]).reshape(2, n_rep, n_src)
    post_stack = np.ascontiguousarray(
        [np.broadcast_to(np.asarray(a, dtype=np.float64), post_shape)
         for a in (y0, y1)]).reshape(2, n_rep, n_dst)
    syn_shape = tag.shape
    syn_stack = np.ascontiguousarray(
        [np.broadcast_to(np.asarray(a, dtype=np.float64), syn_shape)
         for a in (tag, w)]).reshape(2, n_rep, n_src, n_dst)
    dz = _impl().sop_eval(*_flatten_rule(rule), pre_stack, post_stack,
                          syn_stack, n_rep, n_src, n_dst)
    return dz.reshape(syn_shape)


# Backend bootstrap: the env override wins over autodetection; unknown
# values are rejected here, at import, with the ValueError from
# select_backend.
select_backend(os.environ.get(ENV_VAR) or None)

# Observability: wrap the public kernels with the sampled call-timing
# probe.  repro.obs is stdlib-only, so importing it here cannot cycle
# back into this module.  REPRO_OBS_KERNEL_SAMPLE=0 reduces each wrapper
# to a single `if` before the real call.
from ... import obs as _obs  # noqa: E402

if_step = _obs.kernel_profiler.wrap("if_step", if_step)
cuba_step = _obs.kernel_profiler.wrap("cuba_step", cuba_step)
trace_update = _obs.kernel_profiler.wrap("trace_update", trace_update)
delta_w = _obs.kernel_profiler.wrap("delta_w", delta_w)
delta_w_batch = _obs.kernel_profiler.wrap("delta_w_batch", delta_w_batch)
delta_w_loihi = _obs.kernel_profiler.wrap("delta_w_loihi", delta_w_loihi)
sum_of_products = _obs.kernel_profiler.wrap("sum_of_products",
                                            sum_of_products)
