"""Pure-NumPy kernel backend — the bit-exact reference implementation.

Every other backend is pinned to this one by ``tests/test_kernels.py``
(exact ``array_equal``, never ``allclose``).  All operations are elementwise
IEEE-754 (or exact integer) arithmetic in a defined per-element order, so a
compiled loop performing the same operations reproduces the results bit for
bit.  Reductions are therefore written with an explicit order: the batched
Eq. (7) kernel accumulates per-sample outer products in batch order rather
than delegating to a BLAS GEMM, whose blocked summation order is
unspecified and unreproducible from a plain loop.

Scalars are cast to the array dtype *before* entering the arithmetic so the
float32 path performs genuine float32 operations (matching the compiled
backends) instead of promoting to float64.
"""

from __future__ import annotations

import numpy as np


def if_step(v, refrac, drive, threshold, soft_reset, refractory):
    dt = v.dtype.type
    thr = dt(threshold)
    margin = thr - dt(1e-9)
    active = refrac == 0
    np.copyto(v, np.where(active, v + drive, v))
    # The epsilon margin keeps grid-exact drives (e.g. 0.3 over 100 steps)
    # from losing a spike to float accumulation error.
    spikes = active & (v >= margin)
    if soft_reset:
        np.copyto(v, np.where(spikes, v - thr, v))
    else:
        np.copyto(v, np.where(spikes, dt(0), v))
    np.clip(v, 0, None, out=v)
    if refractory:
        refrac[spikes] = refractory
        refrac[~spikes & (refrac > 0)] -= 1
    return spikes


def cuba_step(u, v, refrac, bias, syn, decay_u, decay_v, vth, soft_reset,
              refractory, floor_at_zero, non_spiking):
    # Current decay then accumulation (Eq. 8, forward-Euler, integer).
    np.copyto(u, (u * (4096 - decay_u)) // 4096 + syn)
    ok = refrac == 0
    leaked = (v * (4096 - decay_v)) // 4096
    np.copyto(v, np.where(ok, leaked + u + bias, v))
    if floor_at_zero:
        np.clip(v, 0, None, out=v)
    if non_spiking:
        return np.zeros(v.shape, dtype=bool)
    fired = ok & (v >= vth)
    if soft_reset:
        np.copyto(v, np.where(fired, v - vth, v))
    else:
        np.copyto(v, np.where(fired, 0, v))
    if refractory:
        refrac[fired] = refractory
        refrac[~fired & (refrac > 0)] -= 1
    return fired


def trace_update(values, spikes, impulse, decay, trace_max):
    dt = values.dtype.type
    if decay != 1.0:
        values *= dt(decay)
    bumped = values + np.where(spikes, dt(impulse), dt(0))
    np.copyto(values, np.minimum(bumped, dt(trace_max)))


def delta_w(h_hat, h, pre, eta):
    dt = h_hat.dtype.type
    diff = h_hat - h
    return dt(eta) * (pre[:, None] * diff[None, :])


def delta_w_batch(h_hat, h, pre, eta, mean):
    dt = h_hat.dtype.type
    nb = h_hat.shape[0]
    diff = h_hat - h
    acc = np.zeros((pre.shape[1], h_hat.shape[1]), dtype=h_hat.dtype)
    for b in range(nb):
        acc += pre[b][:, None] * diff[b][None, :]
    dw = dt(eta) * acc
    if mean:
        dw = dw / dt(nb)
    return dw


def delta_w_loihi(h_hat, z, pre, eta):
    dt = h_hat.dtype.type
    coeff = dt(2.0 * eta) * h_hat - dt(eta) * z
    return pre[:, None] * coeff[None, :]


def sop_eval(scales, offs, kinds, idxs, consts, pre_stack, post_stack,
             syn_stack, n_rep, n_src, n_dst):
    pre = pre_stack.reshape(-1, n_rep, n_src)
    post = post_stack.reshape(-1, n_rep, n_dst)
    syn = syn_stack.reshape(-1, n_rep, n_src, n_dst)
    dz = np.zeros((n_rep, n_src, n_dst), dtype=np.float64)
    for t in range(len(scales)):
        value = np.float64(scales[t])
        for f in range(offs[t], offs[t + 1]):
            kind = kinds[f]
            if kind == 0:
                base = pre[idxs[f]][:, :, None]
            elif kind == 1:
                base = post[idxs[f]][:, None, :]
            elif kind == 2:
                base = syn[idxs[f]]
            else:
                base = np.float64(0.0)
            value = value * (base + consts[f])
        dz = dz + value
    return dz
