"""``cext`` kernel backend: C kernels compiled once and loaded via ctypes.

On first import the embedded C source (:mod:`._csrc`) is compiled with the
system C compiler into a shared library cached under
``$REPRO_KERNEL_CACHE`` (default ``$XDG_CACHE_HOME/repro-kernels``, falling
back to ``~/.cache/repro-kernels``).  The cache key hashes the source, the
compiler and the flags, so upgrading any of them rebuilds; concurrent
builders (e.g. the ProcessPoolExecutor seed fan-out) race benignly through
an atomic ``os.replace``.

Any failure — no compiler, compilation error, unloadable library — raises
``ImportError`` so the selection chain in :mod:`repro.core.kernels` can
fall through to the next backend.

Calls release the GIL while the C loop runs (plain ctypes semantics), which
lets the sharded Loihi runtime's thread pool overlap shard steps for real.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from ._csrc import SOURCE, SOURCE_VERSION

#: No value-changing optimizations: ``-ffp-contract=off`` forbids FMA
#: contraction, which would round differently from the NumPy reference and
#: break bit-identity (see tests/test_kernels.py).  ``-fno-trapping-math``
#: only licenses transformations that may change *FP exception flags*
#: (which nothing here inspects), never computed values; without it gcc
#: refuses to if-convert the speculative ``v - threshold`` in the spike
#: blend and the hot loops stay scalar.
CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math",
          "-fno-trapping-math")

#: Preferred extra flags, dropped if the compiler rejects them.
#: ``-march=native`` widens the vector unit (the baseline x86-64 SSE2
#: target cannot vectorize the float-compare-to-uint8 spike stores at
#: all); lane-wise SIMD performs the same IEEE operations as the scalar
#: loop, and FMA contraction stays forbidden, so results are unchanged.
OPT_FLAGS = ("-march=native",)


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro-kernels"


def _find_compiler() -> str:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    raise ImportError(
        "no C compiler (cc/gcc/clang or $CC) found for the 'cext' kernel "
        "backend")


def _build() -> ctypes.CDLL:
    cc = _find_compiler()
    # Try the optimized flag set first; a compiler that rejects any of
    # OPT_FLAGS (old gcc, non-x86 clang spellings, ...) falls back to the
    # portable baseline.  The cache key hashes the exact flags used, so
    # the two variants never collide.
    last_error = None
    for flags in (CFLAGS + OPT_FLAGS, CFLAGS):
        key = "|".join((str(SOURCE_VERSION), cc, " ".join(flags), SOURCE))
        digest = hashlib.sha256(key.encode()).hexdigest()[:16]
        cache = _cache_dir()
        lib_path = cache / f"repro_kernels_{digest}.so"
        if not lib_path.exists():
            try:
                cache.mkdir(parents=True, exist_ok=True)
                src_path = cache / f"repro_kernels_{digest}.c"
                src_path.write_text(SOURCE)
                fd, tmp_path = tempfile.mkstemp(dir=cache, suffix=".so")
                os.close(fd)
                try:
                    proc = subprocess.run(
                        [cc, *flags, "-o", tmp_path, str(src_path)],
                        capture_output=True, text=True)
                    if proc.returncode != 0:
                        last_error = (
                            f"kernel C compilation failed ({cc} "
                            f"{' '.join(flags)}): {proc.stderr}")
                        continue
                    os.replace(tmp_path, lib_path)
                finally:
                    if os.path.exists(tmp_path):
                        os.unlink(tmp_path)
            except OSError as exc:
                raise ImportError(
                    f"could not build the 'cext' kernel backend: {exc}"
                ) from exc
        try:
            return ctypes.CDLL(str(lib_path))
        except OSError as exc:
            raise ImportError(
                f"could not load compiled kernels from {lib_path}: {exc}"
            ) from exc
    raise ImportError(last_error or "could not build the 'cext' backend")


_lib = _build()

_c_double = ctypes.c_double
_c_int = ctypes.c_int
_c_int64 = ctypes.c_int64
_c_ssize = ctypes.c_ssize_t
_ptr = ctypes.c_void_p

for _name, _argtypes in {
    "if_step_f64": [_ptr, _ptr, _ptr, _c_double, _c_int, _c_int64, _ptr,
                    _c_ssize],
    "if_step_f32": [_ptr, _ptr, _ptr, _c_double, _c_int, _c_int64, _ptr,
                    _c_ssize],
    "cuba_step_i64": [_ptr, _ptr, _ptr, _ptr, _ptr, _c_int64, _c_int64,
                      _c_int64, _c_int, _c_int64, _c_int, _c_int, _ptr,
                      _c_ssize],
    "trace_update_f64": [_ptr, _ptr, _c_double, _c_double, _c_double,
                         _c_ssize],
    "trace_update_f32": [_ptr, _ptr, _c_double, _c_double, _c_double,
                         _c_ssize],
    "delta_w_f64": [_ptr, _ptr, _ptr, _c_double, _ptr, _c_ssize, _c_ssize],
    "delta_w_f32": [_ptr, _ptr, _ptr, _c_double, _ptr, _c_ssize, _c_ssize],
    "delta_w_batch_f64": [_ptr, _ptr, _ptr, _c_double, _c_int, _ptr,
                          _c_ssize, _c_ssize, _c_ssize],
    "delta_w_batch_f32": [_ptr, _ptr, _ptr, _c_double, _c_int, _ptr,
                          _c_ssize, _c_ssize, _c_ssize],
    "delta_w_loihi_f64": [_ptr, _ptr, _ptr, _c_double, _ptr, _c_ssize,
                          _c_ssize],
    "delta_w_loihi_f32": [_ptr, _ptr, _ptr, _c_double, _ptr, _c_ssize,
                          _c_ssize],
    "sop_eval_f64": [_ptr, _ptr, _ptr, _ptr, _ptr, _c_ssize, _ptr, _ptr,
                     _ptr, _ptr, _c_ssize, _c_ssize, _c_ssize],
}.items():
    _fn = getattr(_lib, _name)
    _fn.argtypes = _argtypes
    _fn.restype = None


def _p(a: np.ndarray):
    return a.ctypes.data_as(_ptr)


def _float_fn(stem: str, dtype):
    return getattr(_lib, f"{stem}_f64" if dtype == np.float64
                   else f"{stem}_f32")


# -- backend interface (flat arrays; normalization done by the package) ----

def if_step(v, refrac, drive, threshold, soft_reset, refractory):
    spikes = np.empty(v.size, dtype=bool)
    _float_fn("if_step", v.dtype)(
        _p(v), _p(refrac), _p(drive), threshold, int(soft_reset),
        refractory, _p(spikes), v.size)
    return spikes


def cuba_step(u, v, refrac, bias, syn, decay_u, decay_v, vth, soft_reset,
              refractory, floor_at_zero, non_spiking):
    fired = np.empty(v.size, dtype=bool)
    _lib.cuba_step_i64(
        _p(u), _p(v), _p(refrac), _p(bias), _p(syn), decay_u, decay_v, vth,
        int(soft_reset), refractory, int(floor_at_zero), int(non_spiking),
        _p(fired), v.size)
    return fired


def trace_update(values, spikes, impulse, decay, trace_max):
    _float_fn("trace_update", values.dtype)(
        _p(values), _p(spikes), impulse, decay, trace_max, values.size)


def delta_w(h_hat, h, pre, eta):
    dw = np.empty((pre.size, h_hat.size), dtype=h_hat.dtype)
    _float_fn("delta_w", h_hat.dtype)(
        _p(h_hat), _p(h), _p(pre), eta, _p(dw), pre.size, h_hat.size)
    return dw


def delta_w_batch(h_hat, h, pre, eta, mean):
    nb, nj = h_hat.shape
    ni = pre.shape[1]
    dw = np.empty((ni, nj), dtype=h_hat.dtype)
    _float_fn("delta_w_batch", h_hat.dtype)(
        _p(h_hat), _p(h), _p(pre), eta, int(mean), _p(dw), nb, ni, nj)
    return dw


def delta_w_loihi(h_hat, z, pre, eta):
    dw = np.empty((pre.size, h_hat.size), dtype=h_hat.dtype)
    _float_fn("delta_w_loihi", h_hat.dtype)(
        _p(h_hat), _p(z), _p(pre), eta, _p(dw), pre.size, h_hat.size)
    return dw


def sop_eval(scales, offs, kinds, idxs, consts, pre_stack, post_stack,
             syn_stack, n_rep, n_src, n_dst):
    dz = np.empty((n_rep, n_src, n_dst), dtype=np.float64)
    _lib.sop_eval_f64(
        _p(scales), _p(offs), _p(kinds), _p(idxs), _p(consts), len(scales),
        _p(pre_stack), _p(post_stack), _p(syn_stack), _p(dz),
        n_rep, n_src, n_dst)
    return dz
