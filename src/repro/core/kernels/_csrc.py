"""C source for the compiled (``cext``) kernel backend.

The source is embedded as a string (rather than shipped as a data file) so
the backend works from any install layout; :mod:`._cext` writes it into the
kernel cache directory and compiles it with the system C compiler.

Bit-identity contract: every kernel performs exactly the same IEEE-754
operations, in the same per-element order, as the pure-NumPy reference in
:mod:`._numpy`.  That is why compilation must NOT enable value-changing
optimizations — no ``-ffast-math`` and no FMA contraction
(``-ffp-contract=off``): a fused multiply-add rounds once where the
reference rounds twice, which would break the ``array_equal`` equivalence
suite in ``tests/test_kernels.py``.
"""

#: Bump when the C ABI below changes; part of the compile-cache key.
SOURCE_VERSION = 2

SOURCE = r"""
#include <stdint.h>
#include <stddef.h>
#include <stdlib.h>

/* Python floor division (// rounds toward -inf; C / truncates toward 0). */
static int64_t floordiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;
    return q;
}

/* -- IF membrane update + spike/soft-reset step (core/neuron.py) -------- *
 * Branchless on purpose: every per-element decision is a ternary so the
 * compiler can emit masked/blend SIMD instead of branchy scalar code.
 * Blends select between the *same* elementwise IEEE results the reference
 * computes, so vectorization cannot change a single bit.                  */
#define DEFINE_IF_STEP(NAME, T)                                             \
void NAME(T *v, int64_t *refrac, const T *drive, double threshold,          \
          int soft_reset, int64_t refractory, uint8_t *spikes,              \
          ptrdiff_t n) {                                                    \
    T thr = (T)threshold;                                                   \
    T margin = thr - (T)1e-9;                                               \
    if (!refractory) {                                                      \
        /* Hot path: no refractory bookkeeping (EMSTDP's configuration).   \
         * The int64 refrac mask blocks SIMD when mixed into the float     \
         * blend, so OR-reduce it first (vectorizes on its own); with no   \
         * held neuron the update is a pure float compare/blend loop.      \
         * refrac[i] can still be nonzero if the caller seeded it; a held  \
         * neuron neither integrates nor counts down, exactly like the     \
         * general path below.  */                                         \
        int64_t any_held = 0;                                               \
        for (ptrdiff_t i = 0; i < n; i++) any_held |= refrac[i];            \
        if (!any_held) {                                                    \
            /* The compare is repeated instead of reusing a flag: gcc      \
             * only if-converts (and thus vectorizes) this shape.  */      \
            if (soft_reset) {                                               \
                for (ptrdiff_t i = 0; i < n; i++) {                         \
                    T vi = v[i] + drive[i];                                 \
                    spikes[i] = vi >= margin;                               \
                    vi = vi >= margin ? vi - thr : vi;                      \
                    v[i] = vi < (T)0 ? (T)0 : vi;                           \
                }                                                           \
            } else {                                                        \
                for (ptrdiff_t i = 0; i < n; i++) {                         \
                    T vi = v[i] + drive[i];                                 \
                    spikes[i] = vi >= margin;                               \
                    vi = vi >= margin ? (T)0 : vi;                          \
                    v[i] = vi < (T)0 ? (T)0 : vi;                           \
                }                                                           \
            }                                                               \
            return;                                                         \
        }                                                                   \
        for (ptrdiff_t i = 0; i < n; i++) {                                 \
            int active = refrac[i] == 0;                                    \
            T vi = active ? v[i] + drive[i] : v[i];                         \
            int s = active && (vi >= margin);                               \
            vi = s ? (soft_reset ? vi - thr : (T)0) : vi;                   \
            v[i] = vi < (T)0 ? (T)0 : vi;                                   \
            spikes[i] = (uint8_t)s;                                         \
        }                                                                   \
        return;                                                             \
    }                                                                       \
    for (ptrdiff_t i = 0; i < n; i++) {                                     \
        int64_t rf = refrac[i];                                             \
        int active = rf == 0;                                               \
        T vi = active ? v[i] + drive[i] : v[i];                             \
        int s = active && (vi >= margin);                                   \
        vi = s ? (soft_reset ? vi - thr : (T)0) : vi;                       \
        v[i] = vi < (T)0 ? (T)0 : vi;                                       \
        refrac[i] = s ? refractory : (rf > 0 ? rf - 1 : 0);                 \
        spikes[i] = (uint8_t)s;                                             \
    }                                                                       \
}
DEFINE_IF_STEP(if_step_f64, double)
DEFINE_IF_STEP(if_step_f32, float)

/* -- CUBA integer compartment step (loihi/compartment.py) --------------- *
 * decay_u == 4096 (instant current decay) and decay_v == 0 (no leak) are
 * the paper's IF configuration; both make the floordiv exact:
 * floordiv(u * 0, 4096) == 0 and floordiv(v * 4096, 4096) == v, so the
 * specializations below change the arithmetic path but not one result.   */
void cuba_step_i64(int64_t *u, int64_t *v, int64_t *refrac,
                   const int64_t *bias, const int64_t *syn,
                   int64_t decay_u, int64_t decay_v, int64_t vth,
                   int soft_reset, int64_t refractory, int floor_at_zero,
                   int non_spiking, uint8_t *fired, ptrdiff_t n) {
    int u_clears = decay_u == 4096;
    int v_holds = decay_v == 0;
    if (u_clears && v_holds && !non_spiking && !refractory
        && floor_at_zero && soft_reset) {
        /* The default IF prototype with nobody refractory: a pure int64
         * compare/blend loop the compiler can vectorize.  Identical
         * arithmetic to the general loop below (see the floordiv
         * identities above), just without the masks.  */
        int64_t any_held = 0;
        for (ptrdiff_t i = 0; i < n; i++) any_held |= refrac[i];
        if (!any_held) {
            for (ptrdiff_t i = 0; i < n; i++) {
                int64_t ui = syn[i];
                int64_t vi = v[i] + ui + bias[i];
                vi = vi < 0 ? 0 : vi;
                fired[i] = vi >= vth;
                v[i] = vi >= vth ? vi - vth : vi;
                u[i] = ui;
            }
            return;
        }
    }
    for (ptrdiff_t i = 0; i < n; i++) {
        int64_t ui = u_clears ? syn[i]
                              : floordiv(u[i] * (4096 - decay_u), 4096)
                                + syn[i];
        int64_t rf = refrac[i];
        int ok = rf == 0;
        int64_t leaked = v_holds ? v[i]
                                 : floordiv(v[i] * (4096 - decay_v), 4096);
        int64_t vi = ok ? leaked + ui + bias[i] : v[i];
        if (floor_at_zero) vi = vi < 0 ? 0 : vi;
        u[i] = ui;
        if (non_spiking) { v[i] = vi; fired[i] = 0; continue; }
        int f = ok && (vi >= vth);
        vi = f ? (soft_reset ? vi - vth : 0) : vi;
        v[i] = vi;
        if (refractory) refrac[i] = f ? refractory : (rf > 0 ? rf - 1 : 0);
        fired[i] = (uint8_t)f;
    }
}

/* -- Trace decay / accumulation / saturation (loihi/traces.py) ---------- */
#define DEFINE_TRACE_UPDATE(NAME, T)                                        \
void NAME(T *values, const uint8_t *spikes, double impulse, double decay,   \
          double trace_max, ptrdiff_t n) {                                  \
    T imp = (T)impulse;                                                     \
    T mx = (T)trace_max;                                                    \
    T dec = (T)decay;                                                       \
    if (decay != 1.0) {                                                     \
        for (ptrdiff_t i = 0; i < n; i++) {                                 \
            T x = values[i] * dec + (spikes[i] ? imp : (T)0);               \
            values[i] = x < mx ? x : mx;                                    \
        }                                                                   \
    } else {                                                                \
        for (ptrdiff_t i = 0; i < n; i++) {                                 \
            T x = values[i] + (spikes[i] ? imp : (T)0);                     \
            values[i] = x < mx ? x : mx;                                    \
        }                                                                   \
    }                                                                       \
}
DEFINE_TRACE_UPDATE(trace_update_f64, double)
DEFINE_TRACE_UPDATE(trace_update_f32, float)

/* -- EMSTDP Eq. (7): dW = eta * (h_hat - h) (x) pre --------------------- */
#define DEFINE_DELTA_W(NAME, T)                                             \
void NAME(const T *h_hat, const T *h, const T *pre, double eta, T *dw,      \
          ptrdiff_t ni, ptrdiff_t nj) {                                     \
    T e = (T)eta;                                                           \
    for (ptrdiff_t i = 0; i < ni; i++) {                                    \
        T p = pre[i];                                                       \
        for (ptrdiff_t j = 0; j < nj; j++)                                  \
            dw[i * nj + j] = e * (p * (h_hat[j] - h[j]));                   \
    }                                                                       \
}
DEFINE_DELTA_W(delta_w_f64, double)
DEFINE_DELTA_W(delta_w_f32, float)

/* -- Batched Eq. (7): ordered accumulation over the batch axis ---------- */
#define DEFINE_DELTA_W_BATCH(NAME, T)                                       \
void NAME(const T *h_hat, const T *h, const T *pre, double eta, int mean,   \
          T *dw, ptrdiff_t nb, ptrdiff_t ni, ptrdiff_t nj) {                \
    for (ptrdiff_t k = 0; k < ni * nj; k++) dw[k] = (T)0;                   \
    for (ptrdiff_t b = 0; b < nb; b++) {                                    \
        for (ptrdiff_t i = 0; i < ni; i++) {                                \
            T p = pre[b * ni + i];                                          \
            for (ptrdiff_t j = 0; j < nj; j++)                              \
                dw[i * nj + j] += p * (h_hat[b * nj + j] - h[b * nj + j]);  \
        }                                                                   \
    }                                                                       \
    T e = (T)eta;                                                           \
    for (ptrdiff_t k = 0; k < ni * nj; k++) dw[k] = e * dw[k];              \
    if (mean) {                                                             \
        T bb = (T)nb;                                                       \
        for (ptrdiff_t k = 0; k < ni * nj; k++) dw[k] = dw[k] / bb;         \
    }                                                                       \
}
DEFINE_DELTA_W_BATCH(delta_w_batch_f64, double)
DEFINE_DELTA_W_BATCH(delta_w_batch_f32, float)

/* -- EMSTDP Eq. (12): dW = (2*eta*h_hat - eta*Z) (x) pre ---------------- */
#define DEFINE_DELTA_W_LOIHI(NAME, T)                                       \
void NAME(const T *h_hat, const T *z, const T *pre, double eta, T *dw,      \
          ptrdiff_t ni, ptrdiff_t nj) {                                     \
    T e = (T)eta;                                                           \
    T e2 = (T)(2.0 * eta);                                                  \
    for (ptrdiff_t i = 0; i < ni; i++) {                                    \
        T p = pre[i];                                                       \
        for (ptrdiff_t j = 0; j < nj; j++)                                  \
            dw[i * nj + j] = p * (e2 * h_hat[j] - e * z[j]);                \
    }                                                                       \
}
DEFINE_DELTA_W_LOIHI(delta_w_loihi_f64, double)
DEFINE_DELTA_W_LOIHI(delta_w_loihi_f32, float)

/* -- Microcode sum-of-products (loihi/microcode.py) --------------------- *
 * Flattened rule encoding (built by kernels._flatten_rule):
 *   scales[t]            sign * 2^k of term t
 *   offs[t] .. offs[t+1] factor range of term t
 *   kinds[f]             0 = presynaptic (R, S), 1 = postsynaptic (R, D),
 *                        2 = synaptic (R, S, D), 3 = bare constant
 *   idxs[f]              index into the variable stack of that kind
 *                        (pre: x0, x1; post: y0, y1; syn: t, w)
 *   consts[f]            the additive constant C of the (V + C) factor
 */
/* The per-element factor product is *separable*: a term's pre factors only
 * depend on i, its post factors only on j, bare constants on neither.  We
 * therefore fold each term into cpart * pre_buf[i] * post_buf[j] * (syn
 * factors) and sweep the synaptic block once per term.  Regrouping float
 * multiplications is normally not bit-safe, but every learning-engine
 * variable is an integer from a hardware-bounded register (traces <= 127,
 * |tag| <= 511, |w| <= 255) and every scale is a signed power of two, so
 * each partial product is exact in float64 and any grouping yields the
 * same bits as the reference's strict factor-order product.  Term sums
 * still accumulate in program order (term 0 first) like the reference.   */
void sop_eval_f64(const double *scales, const int32_t *offs,
                  const int32_t *kinds, const int32_t *idxs,
                  const double *consts, ptrdiff_t n_terms,
                  const double *pre, const double *post, const double *syn,
                  double *dz, ptrdiff_t R, ptrdiff_t S, ptrdiff_t D) {
    double *pre_buf = (double *)malloc((size_t)(S > 0 ? S : 1)
                                       * sizeof(double));
    double *post_buf = (double *)malloc((size_t)(D > 0 ? D : 1)
                                        * sizeof(double));
    ptrdiff_t n_factors = n_terms > 0 ? offs[n_terms] : 0;
    int32_t *syn_f = (int32_t *)malloc((size_t)(n_factors > 0 ? n_factors : 1)
                                       * sizeof(int32_t));
    for (ptrdiff_t k = 0; k < R * S * D; k++) dz[k] = 0.0;
    for (ptrdiff_t r = 0; r < R; r++) {
        for (ptrdiff_t t = 0; t < n_terms; t++) {
            double cpart = scales[t];
            ptrdiff_t n_syn = 0;
            for (ptrdiff_t i = 0; i < S; i++) pre_buf[i] = 1.0;
            for (ptrdiff_t j = 0; j < D; j++) post_buf[j] = 1.0;
            for (int32_t f = offs[t]; f < offs[t + 1]; f++) {
                switch (kinds[f]) {
                case 0: {
                    const double *p = pre + (ptrdiff_t)idxs[f] * R * S
                                      + r * S;
                    double c = consts[f];
                    for (ptrdiff_t i = 0; i < S; i++)
                        pre_buf[i] *= p[i] + c;
                    break;
                }
                case 1: {
                    const double *p = post + (ptrdiff_t)idxs[f] * R * D
                                      + r * D;
                    double c = consts[f];
                    for (ptrdiff_t j = 0; j < D; j++)
                        post_buf[j] *= p[j] + c;
                    break;
                }
                case 2:
                    syn_f[n_syn++] = f;
                    break;
                default:
                    cpart *= consts[f];
                }
            }
            double *out = dz + r * S * D;
            if (n_syn == 0) {
                for (ptrdiff_t i = 0; i < S; i++) {
                    double pi = cpart * pre_buf[i];
                    for (ptrdiff_t j = 0; j < D; j++)
                        out[i * D + j] += pi * post_buf[j];
                }
            } else if (n_syn == 1) {
                const double *sp = syn + ((ptrdiff_t)idxs[syn_f[0]] * R + r)
                                   * S * D;
                double c = consts[syn_f[0]];
                for (ptrdiff_t i = 0; i < S; i++) {
                    double pi = cpart * pre_buf[i];
                    for (ptrdiff_t j = 0; j < D; j++)
                        out[i * D + j] += pi * post_buf[j]
                                          * (sp[i * D + j] + c);
                }
            } else {
                for (ptrdiff_t i = 0; i < S; i++) {
                    double pi = cpart * pre_buf[i];
                    for (ptrdiff_t j = 0; j < D; j++) {
                        double val = pi * post_buf[j];
                        for (ptrdiff_t k = 0; k < n_syn; k++) {
                            int32_t f = syn_f[k];
                            val *= syn[((ptrdiff_t)idxs[f] * R + r) * S * D
                                       + i * D + j] + consts[f];
                        }
                        out[i * D + j] += val;
                    }
                }
            }
        }
    }
    free(pre_buf);
    free(post_buf);
    free(syn_f);
}
"""
