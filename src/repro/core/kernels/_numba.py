"""Numba kernel backend: the reference loops under ``@njit(cache=True)``.

Importing this module requires numba; the selection chain in
:mod:`repro.core.kernels` catches the ImportError and falls through to the
``cext`` or ``numpy`` backend when it is absent.

The jitted loops perform exactly the operations of the C backend
(:mod:`._csrc`), element by element, in the same order.  Scalars are cast
to the array dtype by the thin dispatch wrappers *before* entering the
jitted code, so numba specializes a genuine float32 pipeline for float32
arrays instead of promoting intermediates to float64 — promotion would
round differently and break the bit-identity suite.
"""

from __future__ import annotations

import numpy as np
from numba import njit


@njit(cache=True)
def _if_step(v, refrac, drive, thr, margin, soft_reset, refractory, spikes):
    for i in range(v.size):
        active = refrac[i] == 0
        if active:
            v[i] = v[i] + drive[i]
        s = active and (v[i] >= margin)
        if s:
            if soft_reset:
                v[i] = v[i] - thr
            else:
                v[i] = 0
        if v[i] < 0:
            v[i] = 0
        if refractory != 0:
            if s:
                refrac[i] = refractory
            elif refrac[i] > 0:
                refrac[i] -= 1
        spikes[i] = s


def if_step(v, refrac, drive, threshold, soft_reset, refractory):
    dt = v.dtype.type
    thr = dt(threshold)
    margin = thr - dt(1e-9)
    spikes = np.empty(v.size, dtype=np.bool_)
    _if_step(v, refrac, drive, thr, margin, soft_reset, refractory, spikes)
    return spikes


@njit(cache=True)
def _cuba_step(u, v, refrac, bias, syn, decay_u, decay_v, vth, soft_reset,
               refractory, floor_at_zero, non_spiking, fired):
    for i in range(v.size):
        u[i] = (u[i] * (4096 - decay_u)) // 4096 + syn[i]
        ok = refrac[i] == 0
        if ok:
            leaked = (v[i] * (4096 - decay_v)) // 4096
            v[i] = leaked + u[i] + bias[i]
        if floor_at_zero and v[i] < 0:
            v[i] = 0
        if non_spiking:
            fired[i] = False
            continue
        f = ok and (v[i] >= vth)
        if f:
            if soft_reset:
                v[i] = v[i] - vth
            else:
                v[i] = 0
        if refractory != 0:
            if f:
                refrac[i] = refractory
            elif refrac[i] > 0:
                refrac[i] -= 1
        fired[i] = f


def cuba_step(u, v, refrac, bias, syn, decay_u, decay_v, vth, soft_reset,
              refractory, floor_at_zero, non_spiking):
    fired = np.empty(v.size, dtype=np.bool_)
    _cuba_step(u, v, refrac, bias, syn, np.int64(decay_u), np.int64(decay_v),
               np.int64(vth), soft_reset, np.int64(refractory),
               floor_at_zero, non_spiking, fired)
    return fired


@njit(cache=True)
def _trace_update(values, spikes, imp, dec, mx, do_decay):
    for i in range(values.size):
        x = values[i]
        if do_decay:
            x = x * dec
        if spikes[i]:
            x = x + imp
        values[i] = x if x < mx else mx


def trace_update(values, spikes, impulse, decay, trace_max):
    dt = values.dtype.type
    _trace_update(values, spikes, dt(impulse), dt(decay), dt(trace_max),
                  decay != 1.0)


@njit(cache=True)
def _delta_w(h_hat, h, pre, eta, dw):
    for i in range(pre.size):
        p = pre[i]
        for j in range(h_hat.size):
            dw[i, j] = eta * (p * (h_hat[j] - h[j]))


def delta_w(h_hat, h, pre, eta):
    dw = np.empty((pre.size, h_hat.size), dtype=h_hat.dtype)
    _delta_w(h_hat, h, pre, h_hat.dtype.type(eta), dw)
    return dw


@njit(cache=True)
def _delta_w_batch(h_hat, h, pre, eta, bb, mean, dw):
    ni = pre.shape[1]
    nj = h_hat.shape[1]
    for i in range(ni):
        for j in range(nj):
            dw[i, j] = 0
    for b in range(h_hat.shape[0]):
        for i in range(ni):
            p = pre[b, i]
            for j in range(nj):
                dw[i, j] += p * (h_hat[b, j] - h[b, j])
    for i in range(ni):
        for j in range(nj):
            dw[i, j] = eta * dw[i, j]
    if mean:
        for i in range(ni):
            for j in range(nj):
                dw[i, j] = dw[i, j] / bb


def delta_w_batch(h_hat, h, pre, eta, mean):
    dt = h_hat.dtype.type
    dw = np.empty((pre.shape[1], h_hat.shape[1]), dtype=h_hat.dtype)
    _delta_w_batch(h_hat, h, pre, dt(eta), dt(h_hat.shape[0]), mean, dw)
    return dw


@njit(cache=True)
def _delta_w_loihi(h_hat, z, pre, eta, eta2, dw):
    for i in range(pre.size):
        p = pre[i]
        for j in range(h_hat.size):
            dw[i, j] = p * (eta2 * h_hat[j] - eta * z[j])


def delta_w_loihi(h_hat, z, pre, eta):
    dt = h_hat.dtype.type
    dw = np.empty((pre.size, h_hat.size), dtype=h_hat.dtype)
    _delta_w_loihi(h_hat, z, pre, dt(eta), dt(2.0 * eta), dw)
    return dw


@njit(cache=True)
def _sop_eval(scales, offs, kinds, idxs, consts, pre, post, syn, dz,
              n_rep, n_src, n_dst):
    for r in range(n_rep):
        for i in range(n_src):
            for j in range(n_dst):
                total = 0.0
                for t in range(scales.size):
                    acc = scales[t]
                    for f in range(offs[t], offs[t + 1]):
                        kind = kinds[f]
                        if kind == 0:
                            base = pre[idxs[f] * n_rep * n_src
                                       + r * n_src + i]
                        elif kind == 1:
                            base = post[idxs[f] * n_rep * n_dst
                                        + r * n_dst + j]
                        elif kind == 2:
                            base = syn[(idxs[f] * n_rep + r) * n_src * n_dst
                                       + i * n_dst + j]
                        else:
                            base = 0.0
                        acc = acc * (base + consts[f])
                    total += acc
                dz[(r * n_src + i) * n_dst + j] = total
    return dz


def sop_eval(scales, offs, kinds, idxs, consts, pre_stack, post_stack,
             syn_stack, n_rep, n_src, n_dst):
    dz = np.empty(n_rep * n_src * n_dst, dtype=np.float64)
    _sop_eval(scales, offs, kinds, idxs, consts, pre_stack.reshape(-1),
              post_stack.reshape(-1), syn_stack.reshape(-1), dz,
              n_rep, n_src, n_dst)
    return dz.reshape(n_rep, n_src, n_dst)
